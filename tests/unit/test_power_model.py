"""Unit tests for per-script power modelling (future work, Section 6)."""

import pytest

from repro.apps import battery_monitor, localization
from repro.core.middleware import PogoSimulation
from repro.core.power_model import ScriptPowerModel
from repro.sim import HOUR, MINUTE


def deploy_localization(hours=2.0, seed=31):
    sim = PogoSimulation(seed=seed)
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(localization.build_experiment(), [device.jid])
    sim.run(hours=hours)
    return sim, device


def test_estimates_cover_deployed_scripts():
    sim, device = deploy_localization()
    model = ScriptPowerModel(device.node)
    estimates = {e.script: e for e in model.estimate()}
    assert "localization/scan" in estimates
    assert "localization/clustering" in estimates


def test_scan_script_pays_for_wifi_scanning():
    sim, device = deploy_localization()
    model = ScriptPowerModel(device.node)
    estimates = {e.script: e for e in model.estimate()}
    scan = estimates["localization/scan"]
    # ~120 scans in 2 hours at ~1 J each.
    assert scan.sensor_samples > 100
    assert scan.sensor_j > 50.0
    # The clustering script consumes no sensor directly.
    clustering = estimates["localization/clustering"]
    assert clustering.sensor_j == 0.0


def test_invocation_counts_tracked():
    sim, device = deploy_localization()
    model = ScriptPowerModel(device.node)
    estimates = {e.script: e for e in model.estimate()}
    # Both device scripts handle one message per scan.
    assert estimates["localization/scan"].invocations > 100
    assert estimates["localization/clustering"].invocations > 100


def test_modeled_total_bounded_by_measured_energy():
    """The model must not invent energy the device never drew."""
    sim, device = deploy_localization()
    model = ScriptPowerModel(device.node)
    modeled = sum(e.total_j for e in model.estimate())
    assert 0.0 < modeled < device.phone.energy_joules


def test_heavy_script_dominates_light_one():
    sim, device = deploy_localization()
    model = ScriptPowerModel(device.node)
    estimates = model.estimate()
    # The scan script (sensor cost) tops the ranking.
    assert estimates[0].script == "localization/scan"


def test_remote_subscription_attributed_to_collector():
    sim = PogoSimulation(seed=32)
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=1)
    model = ScriptPowerModel(device.node)
    estimates = {e.script: e for e in model.estimate()}
    key = f"{battery_monitor.EXPERIMENT_ID}/<collector>"
    assert key in estimates
    assert estimates[key].sensor_samples > 50


def test_report_renders():
    sim, device = deploy_localization(hours=1.0)
    text = ScriptPowerModel(device.node).report()
    assert "localization/scan" in text
    assert "measured" in text
