"""Unit tests for the fleet subsystem: partitioner, merger, epoch
validation, ingress hardening, and worker-crash handling."""

import json

import pytest

from repro.core.shard import DeviceSpec, Handoff, Shard, ShardSpec
from repro.fleet import (
    FleetError,
    fleet_spec,
    merge_fleet_reports,
    merge_metrics,
    merge_trace_jsonl,
    plan_fleet,
    run_fleet,
)
from repro.fleet.merge import MergeError, report_to_json
from repro.fleet.partition import PartitionError, device_jid
from repro.net.xmpp import RoutingError


class TestPartitioner:
    def test_round_robin_assignment_is_deterministic(self):
        root = fleet_spec(10, seed=3)
        plan = plan_fleet(root, 4)
        assert plan.n_shards == 4
        # device-1 -> shard 0, device-2 -> shard 1, ... (index mod K)
        for index, jid in enumerate(plan.device_jids):
            assert plan.owner_of(jid) == index % 4
        again = plan_fleet(fleet_spec(10, seed=3), 4)
        assert again.owners == plan.owners

    def test_every_device_lands_on_exactly_one_shard(self):
        plan = plan_fleet(fleet_spec(7, seed=0), 3)
        seen = []
        for shard_spec in plan.shards:
            seen.extend(d.jid for d in shard_spec.devices)
        assert sorted(seen) == sorted(plan.device_jids)
        assert len(seen) == len(set(seen))

    def test_collectors_live_on_shard_zero(self):
        plan = plan_fleet(fleet_spec(4, seed=0), 2)
        assert plan.shards[0].collectors
        assert not plan.shards[1].collectors

    def test_shard_jids_are_pinned_globally(self):
        # Partitioned specs must pin the global JID numbering: shard 1 of
        # two holds device-2, device-4, ... not device-1, device-2, ...
        plan = plan_fleet(fleet_spec(4, seed=0), 2)
        assert [d.jid for d in plan.shards[1].devices] == [
            device_jid(1), device_jid(3),
        ]

    def test_rejects_bad_shard_counts(self):
        root = fleet_spec(4, seed=0)
        with pytest.raises(PartitionError):
            plan_fleet(root, 0)
        with pytest.raises(PartitionError):
            plan_fleet(root, -2)

    def test_owner_of_unknown_jid_raises(self):
        plan = plan_fleet(fleet_spec(2, seed=0), 2)
        with pytest.raises(PartitionError, match="nobody@pogo"):
            plan.owner_of("nobody@pogo")


class TestIngressHardening:
    def _shard(self, devices=2):
        spec = ShardSpec(
            seed=5,
            collectors=("lab",),
            devices=tuple(
                DeviceSpec(with_email_app=True) for _ in range(devices)
            ),
        )
        shard = Shard(spec)
        shard.start()
        return shard

    def test_unknown_recipient_names_the_jid_and_shard(self):
        shard = self._shard()
        with pytest.raises(RoutingError) as excinfo:
            shard.ingress(
                [Handoff(0.0, 1, "x@other", "ghost@pogo", {"type": "ping"})]
            )
        message = str(excinfo.value)
        assert "ghost@pogo" in message
        assert shard.shard_id in message

    def test_misroute_is_rejected_before_any_replay(self):
        # One good and one bad handoff: validation is all-or-nothing, so
        # the good one must NOT have been scheduled.
        shard = self._shard()
        target = sorted(shard.devices)[0]
        before = shard.kernel.pending_events
        with pytest.raises(RoutingError, match="wrong shard"):
            shard.ingress(
                [
                    Handoff(0.0, 1, "x@other", target, {"kind": "ack", "ack": 0}),
                    Handoff(0.0, 2, "x@other", "ghost@pogo", {"type": "ping"}),
                ]
            )
        assert shard.kernel.pending_events == before

    def test_late_handoff_is_a_barrier_violation(self):
        shard = self._shard()
        shard.run(minutes=5)
        target = sorted(shard.devices)[0]
        # Submitted long enough ago that submit+latency is in the past.
        stale = shard.kernel.now - shard.server.latency_ms - 1.0
        with pytest.raises(RoutingError, match="late cross-shard handoff"):
            shard.ingress(
                [Handoff(stale, 1, "x@other", target, {"kind": "ack", "ack": 0})]
            )


class TestEpochValidation:
    def test_epoch_above_min_latency_is_rejected(self):
        with pytest.raises(FleetError, match="epoch"):
            run_fleet(2, 2, seed=0, hours=0.01, epoch_ms=80.5, processes=False)

    def test_epoch_zero_is_rejected(self):
        with pytest.raises(FleetError, match="epoch"):
            run_fleet(2, 2, seed=0, hours=0.01, epoch_ms=0.0, processes=False)

    def test_unknown_workload_is_rejected(self):
        with pytest.raises(FleetError, match="workload"):
            run_fleet(2, 2, seed=0, hours=0.01, workload="nope", processes=False)

    def test_nonpositive_duration_is_rejected(self):
        with pytest.raises(FleetError, match="duration"):
            run_fleet(2, 2, seed=0, hours=0.0, processes=False)


class TestMerger:
    def _report(self, shard_id, jids, events=10, routed=3):
        return {
            "collectors": {},
            "devices": {jid: {"energy_j": 1.0} for jid in jids},
            "events_executed": events,
            "now_ms": 1000.0,
            "seed": 7,
            "server": {
                "stanzas_lost": 0,
                "stanzas_routed": routed,
                "stanzas_stored_offline": 0,
            },
            "shard": shard_id,
        }

    def test_counters_sum_and_tables_union(self):
        merged = merge_fleet_reports(
            [self._report("f/0", ["a@p"]), self._report("f/1", ["b@p"])],
            fleet_id="f",
        )
        assert merged["events_executed"] == 20
        assert merged["server"]["stanzas_routed"] == 6
        assert sorted(merged["devices"]) == ["a@p", "b@p"]
        assert merged["shard"] == "f"

    def test_duplicate_device_is_an_error(self):
        with pytest.raises(MergeError, match="more than one shard"):
            merge_fleet_reports(
                [self._report("f/0", ["a@p"]), self._report("f/1", ["a@p"])],
                fleet_id="f",
            )

    def test_clock_disagreement_is_an_error(self):
        late = self._report("f/1", ["b@p"])
        late["now_ms"] = 999.0
        with pytest.raises(MergeError, match="clock"):
            merge_fleet_reports(
                [self._report("f/0", ["a@p"]), late], fleet_id="f"
            )

    def test_empty_merge_is_an_error(self):
        with pytest.raises(MergeError):
            merge_fleet_reports([], fleet_id="f")

    def test_metrics_histograms_recompute_mean(self):
        merged = merge_metrics(
            [
                {"n": 2, "h": {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}},
                {"n": 3, "h": {"count": 1, "sum": 5.0, "min": 5.0, "max": 5.0}},
            ]
        )
        assert merged["n"] == 5
        assert merged["h"] == {
            "count": 3, "sum": 9.0, "min": 1.0, "max": 5.0, "mean": 3.0,
        }

    def test_empty_histograms_merge_cleanly(self):
        merged = merge_metrics(
            [{"h": {"count": 0, "sum": 0.0, "min": None, "max": None}}]
        )
        assert merged["h"]["mean"] == 0.0
        assert merged["h"]["min"] is None

    def test_trace_lines_gain_shard_and_sort_totally(self):
        line_a = json.dumps({"span": 1, "start_ms": 5.0, "end_ms": 6.0})
        line_b = json.dumps({"span": 1, "start_ms": 1.0, "end_ms": 2.0})
        merged = merge_trace_jsonl([("f/0", line_a + "\n"), ("f/1", line_b + "\n")])
        records = [json.loads(line) for line in merged.splitlines()]
        assert [r["shard"] for r in records] == ["f/1", "f/0"]
        assert [r["start_ms"] for r in records] == [1.0, 5.0]

    def test_report_json_round_trips(self):
        report = self._report("f", ["a@p"])
        assert json.loads(report_to_json(report)) == report

    def test_zero_device_shard_report_merges_cleanly(self):
        # A partitioner may legitimately hand a worker zero devices (2
        # devices over 4 shards); its empty-table report must merge.
        merged = merge_fleet_reports(
            [self._report("f/0", ["a@p"]), self._report("f/1", [])],
            fleet_id="f",
        )
        assert sorted(merged["devices"]) == ["a@p"]
        assert merged["events_executed"] == 20

    def test_trace_merge_tolerates_a_shard_with_no_spans(self):
        line = json.dumps({"span": 1, "start_ms": 5.0, "end_ms": 6.0})
        merged = merge_trace_jsonl([("f/0", line + "\n"), ("f/1", "")])
        records = [json.loads(l) for l in merged.splitlines()]
        assert len(records) == 1
        assert records[0]["shard"] == "f/0"

    def test_trace_merge_of_all_empty_shards_is_empty(self):
        assert merge_trace_jsonl([("f/0", ""), ("f/1", "")]) == ""


class TestCoordinatorSmoke:
    def test_more_shards_than_devices_matches_solo(self):
        # Round-robin leaves shards 2 and 3 with zero devices; the fleet
        # must still run and merge byte-identically to the solo report.
        sharded = run_fleet(2, 4, seed=6, hours=0.25, processes=False)
        solo = run_fleet(2, 1, seed=6, hours=0.25, processes=False)
        assert sharded.report_json == solo.report_json

    def test_single_shard_in_process_matches_plain_run(self):
        from repro.fleet.worker import run_battery_monitor_hour

        result = run_fleet(
            3, 1, seed=4, hours=0.25, collector="fleet", processes=False
        )
        plan_root = fleet_spec(3, seed=4, collector="fleet")
        solo = run_battery_monitor_hour(plan_root, hours=0.25)
        assert result.report_json == solo["report"]

    def test_two_shards_in_process_match_single_shard(self):
        sharded = run_fleet(4, 2, seed=6, hours=0.25, processes=False)
        solo = run_fleet(4, 1, seed=6, hours=0.25, processes=False)
        assert sharded.report_json == solo.report_json
        assert sharded.trace_jsonl != ""  # merged trace rides along

    def test_worker_crash_surfaces_cleanly(self):
        from repro.fleet.worker import WorkerCrashed, call_in_subprocess

        with pytest.raises(WorkerCrashed, match="_explode"):
            call_in_subprocess(_explode, timeout_s=120.0)


class TestWorkerCrashDiagnostics:
    def test_in_process_setup_crash_carries_shard_and_cause(self):
        from repro.fleet.worker import WorkerCrashed

        with pytest.raises(WorkerCrashed) as excinfo:
            run_fleet(
                2, 2, seed=0, hours=0.01, processes=False,
                workload="crash-canary",
            )
        exc = excinfo.value
        assert exc.shard_id == "fleet/0"
        assert exc.cause == "RuntimeError: crash canary tripped"

    def test_spawned_setup_crash_carries_shard_and_cause(self):
        from repro.fleet.worker import WorkerCrashed

        with pytest.raises(WorkerCrashed) as excinfo:
            run_fleet(
                2, 2, seed=0, hours=0.01, processes=True,
                workload="crash-canary", barrier_timeout_s=120.0,
            )
        exc = excinfo.value
        assert exc.shard_id == "fleet/0"
        # One line, extracted from the child's traceback.
        assert exc.cause == "RuntimeError: crash canary tripped"
        assert "\n" not in exc.cause

    def _mid_epoch_crash(self, processes):
        from repro.fleet.worker import WorkerCrashed
        from repro.scenarios import ScenarioSpec

        spec = ScenarioSpec(name="crashy", seed=5, devices=4, hours=0.25,
                            city_places=16)
        with pytest.raises(WorkerCrashed) as excinfo:
            run_fleet(
                spec=spec.compile(), shards=2, duration_ms=0.25 * 3_600_000.0,
                workload="scenario-crash-mid-epoch",
                workload_ctx={"scenario": spec},
                processes=processes, barrier_timeout_s=120.0,
            )
        return excinfo.value

    def test_in_process_mid_epoch_crash_is_stamped_with_barrier_progress(self):
        # The bomb detonates at t=1000 ms, several 80 ms epochs in — the
        # coordinator must stamp which barrier the fleet had reached, not
        # just that a worker died during setup.
        exc = self._mid_epoch_crash(processes=False)
        assert exc.shard_id.endswith("/0")  # device-1 hosts the bomb
        assert exc.cause == "RuntimeError: scenario mid-epoch crash canary"
        assert "\n" not in exc.cause
        assert exc.barriers is not None and exc.barriers >= 1
        assert exc.barrier_ms is not None and exc.barrier_ms > 0.0

    def test_spawned_mid_epoch_crash_is_stamped_with_barrier_progress(self):
        exc = self._mid_epoch_crash(processes=True)
        assert exc.shard_id.endswith("/0")
        assert exc.cause == "RuntimeError: scenario mid-epoch crash canary"
        assert exc.barriers is not None and exc.barriers >= 1
        assert exc.barrier_ms is not None and exc.barrier_ms > 0.0


def _explode():
    raise RuntimeError("boom from the worker")


class TestLatencyKnob:
    def test_spec_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError, match="latency_ms"):
            fleet_spec(2, latency_ms=0)
        with pytest.raises(ValueError, match="latency_ms"):
            fleet_spec(2, latency_ms=-5.0)

    def test_run_fleet_rejects_nonpositive_latency(self):
        with pytest.raises(FleetError, match="latency_ms"):
            run_fleet(2, 2, seed=0, hours=0.01, latency_ms=0, processes=False)
        with pytest.raises(FleetError, match="latency_ms"):
            run_fleet(2, 2, seed=0, hours=0.01, latency_ms=-1, processes=False)

    def test_latency_is_copied_to_every_shard(self):
        plan = plan_fleet(fleet_spec(4, seed=0, latency_ms=120.0), 2)
        assert all(s.latency_ms == 120.0 for s in plan.shards)

    def test_latency_bounds_the_epoch(self):
        # The barrier window may not exceed the (now smaller) latency.
        with pytest.raises(FleetError, match="epoch"):
            run_fleet(2, 2, seed=0, hours=0.01, latency_ms=40.0,
                      epoch_ms=41.0, processes=False)

    def test_latency_is_physics_solo_and_sharded_agree(self):
        # A different latency changes the schedule itself — but changes
        # it identically for the solo and partitioned runs.
        solo = run_fleet(4, 1, seed=6, hours=0.25, latency_ms=40.0,
                         processes=False)
        sharded = run_fleet(4, 2, seed=6, hours=0.25, latency_ms=40.0,
                            processes=False)
        default = run_fleet(4, 1, seed=6, hours=0.25, processes=False)
        assert sharded.report_json == solo.report_json
        assert sharded.epoch_ms == 40.0
        assert solo.report_json != default.report_json

    def test_latency_overrides_an_explicit_spec(self):
        spec = fleet_spec(2, seed=1)
        result = run_fleet(spec=spec, shards=2, hours=0.1, latency_ms=50.0,
                           processes=False)
        assert result.epoch_ms == 50.0


class TestAdaptiveBarriers:
    def test_single_shard_collapses_to_one_barrier(self):
        # One shard can never egress (every JID is local), so the adaptive
        # horizon jumps straight to T: one window, same merged report.
        result = run_fleet(3, 1, seed=6, hours=0.5, processes=False)
        assert result.barriers == 1
        assert result.handoffs == 0

    def test_fleet_without_cross_shard_edges_collapses(self):
        # One device + its collector both land on shard 0; shard 1 is
        # empty.  No shard holds a remote roster edge, so neither bounds
        # the window — yet the merged report must still match solo.
        sharded = run_fleet(1, 2, seed=6, hours=0.5, processes=False)
        solo = run_fleet(1, 1, seed=6, hours=0.5, processes=False)
        assert sharded.barriers == 1
        assert sharded.report_json == solo.report_json

    def test_capable_fleet_still_barriers_at_epoch_granularity(self):
        # Devices on shards 1.. talk to the collector on shard 0 and vice
        # versa: every shard keeps remote edges, so the adaptive horizon
        # changes nothing for the standard battery fleet.
        result = run_fleet(6, 3, seed=6, hours=0.25, processes=False)
        assert result.barriers > 10
        assert result.handoffs > 0

    def test_incapable_egress_fails_loudly(self):
        # A shard that reported no remote edges and then egresses anyway
        # violates the capability contract; the coordinator must raise,
        # not silently mis-time the delivery.
        from repro.fleet.worker import WORKLOADS

        def rogue_setup(shard, fleet_ctx):
            WORKLOADS["battery-monitor"](shard, fleet_ctx)
            if shard.shard_id.endswith("/1"):
                shard.kernel.schedule_at(
                    100.0, shard._queue_egress,
                    "ghost@elsewhere", "device-1@pogo", {"kind": "message"},
                )

        WORKLOADS["rogue-egress"] = rogue_setup
        try:
            with pytest.raises(FleetError, match="egress-capability"):
                run_fleet(1, 2, seed=0, hours=0.25, processes=False,
                          workload="rogue-egress")
        finally:
            del WORKLOADS["rogue-egress"]


class TestShmCleanup:
    @staticmethod
    def _shm_entries():
        import glob
        import os

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        return set(glob.glob("/dev/shm/*pogo*"))

    def test_spawned_run_leaves_no_shm(self):
        before = self._shm_entries()
        run_fleet(2, 2, seed=0, hours=0.05, processes=True,
                  barrier_timeout_s=120.0)
        assert self._shm_entries() == before

    def test_setup_crash_leaves_no_shm_or_workers(self):
        import multiprocessing

        from repro.fleet.worker import WorkerCrashed

        before = self._shm_entries()
        with pytest.raises(WorkerCrashed):
            run_fleet(2, 2, seed=0, hours=0.05, processes=True,
                      workload="crash-canary", barrier_timeout_s=120.0)
        assert self._shm_entries() == before
        assert multiprocessing.active_children() == []

    def test_mid_epoch_crash_leaves_no_shm_or_workers(self):
        import multiprocessing

        from repro.fleet.worker import WorkerCrashed
        from repro.scenarios import ScenarioSpec

        spec = ScenarioSpec(name="crashy", seed=5, devices=4, hours=0.25,
                            city_places=16)
        before = self._shm_entries()
        with pytest.raises(WorkerCrashed):
            run_fleet(
                spec=spec.compile(), shards=2,
                duration_ms=0.25 * 3_600_000.0,
                workload="scenario-crash-mid-epoch",
                workload_ctx={"scenario": spec},
                processes=True, barrier_timeout_s=120.0,
            )
        assert self._shm_entries() == before
        assert multiprocessing.active_children() == []

    def test_ring_disabled_fallback_matches(self):
        # shm_ring_bytes=0 forces the inline pipe path end to end.
        inline = run_fleet(4, 2, seed=6, hours=0.25, processes=True,
                           shm_ring_bytes=0, barrier_timeout_s=120.0,
                           telemetry=True)
        solo = run_fleet(4, 1, seed=6, hours=0.25, processes=False)
        assert inline.report_json == solo.report_json
        assert inline.timeline is not None
