"""Unit tests for testbed organization (Section 3.1)."""

import pytest

from repro.core.testbed import AssignmentError, TestbedAdmin
from repro.net.xmpp import XmppServer
from repro.sim import Kernel


def make_admin(**kwargs):
    server = XmppServer(Kernel())
    return server, TestbedAdmin(server, **kwargs)


def test_enrollment_registers_accounts():
    server, admin = make_admin()
    device = admin.enroll_device()
    researcher = admin.enroll_researcher("alice")
    assert server.registered(device)
    assert server.registered(researcher)
    assert admin.pool_size() == 1


def test_device_jids_are_pseudonymous():
    """Double-blind: a device JID carries no owner identity."""
    _, admin = make_admin()
    jid = admin.enroll_device()
    assert jid.startswith("device-")
    assert "@pogo" in jid


def test_assignment_creates_roster_pair():
    server, admin = make_admin()
    device = admin.enroll_device()
    researcher = admin.enroll_researcher("alice")
    admin.assign(researcher, [device])
    assert device in server.roster(researcher)
    assert researcher in server.roster(device)


def test_unassign_removes_roster_pair():
    server, admin = make_admin()
    device = admin.enroll_device()
    researcher = admin.enroll_researcher("alice")
    admin.assign(researcher, [device])
    admin.unassign(researcher, [device])
    assert device not in server.roster(researcher)


def test_request_devices_prefers_least_loaded():
    _, admin = make_admin()
    devices = [admin.enroll_device() for _ in range(4)]
    alice = admin.enroll_researcher("alice")
    bob = admin.enroll_researcher("bob")
    first = admin.request_devices(alice, 2)
    second = admin.request_devices(bob, 2)
    # Bob gets the two devices Alice is not using.
    assert set(first).isdisjoint(second)


def test_request_devices_respects_capabilities():
    _, admin = make_admin()
    gps_device = admin.enroll_device(capabilities={"gps", "wifi"})
    admin.enroll_device(capabilities={"wifi"})
    alice = admin.enroll_researcher("alice")
    chosen = admin.request_devices(alice, 1, required_capabilities={"gps"})
    assert chosen == [gps_device]


def test_request_too_many_devices_fails():
    _, admin = make_admin()
    admin.enroll_device()
    alice = admin.enroll_researcher("alice")
    with pytest.raises(AssignmentError):
        admin.request_devices(alice, 2)


def test_devices_are_shared_up_to_limit():
    _, admin = make_admin(max_experiments_per_device=2)
    device = admin.enroll_device()
    a = admin.enroll_researcher("a")
    b = admin.enroll_researcher("b")
    c = admin.enroll_researcher("c")
    admin.assign(a, [device])
    admin.assign(b, [device])
    with pytest.raises(AssignmentError):
        admin.assign(c, [device])


def test_remove_device_revokes_assignments():
    server, admin = make_admin()
    device = admin.enroll_device()
    alice = admin.enroll_researcher("alice")
    admin.assign(alice, [device])
    admin.remove_device(device)
    assert admin.pool_size() == 0
    assert device not in server.roster(alice)


def test_unknown_ids_raise():
    _, admin = make_admin()
    alice = admin.enroll_researcher("alice")
    with pytest.raises(AssignmentError):
        admin.assign(alice, ["ghost@pogo"])
    with pytest.raises(AssignmentError):
        admin.assign("ghost@pogo", [])


def test_admin_report_is_pseudonymous():
    _, admin = make_admin()
    device = admin.enroll_device(capabilities={"gps"}, region="delft")
    alice = admin.enroll_researcher("alice")
    admin.assign(alice, [device])
    report = admin.report()
    assert device in report
    assert "region=delft" in report
    assert "caps=gps" in report
    assert "alice" in report
    assert "experiments=1/4" in report


def test_region_filter_in_request_devices():
    _, admin = make_admin()
    delft = admin.enroll_device(region="delft")
    admin.enroll_device(region="amsterdam")
    alice = admin.enroll_researcher("alice")
    chosen = admin.request_devices(alice, 1, region="delft")
    assert chosen == [delft]
    with pytest.raises(AssignmentError):
        admin.request_devices(alice, 1, region="rotterdam")


def test_devices_matching_predicate():
    _, admin = make_admin()
    prof = admin.enroll_device(attributes={"carrier": "professor"})
    admin.enroll_device(attributes={"carrier": "student"})
    matched = admin.devices_matching(lambda attrs: attrs.get("carrier") == "professor")
    assert matched == [prof]
