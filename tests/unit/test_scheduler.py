"""Unit tests for the Pogo scheduler (device) and simple scheduler (PC)."""

import pytest

from repro.core.scheduler import PogoScheduler, SimpleScheduler
from repro.device.cpu import Cpu, CpuConfig
from repro.device.power import PowerRail
from repro.sim import Kernel


def make_pogo(hold_ms=500.0):
    kernel = Kernel()
    cpu = Cpu(kernel, PowerRail(kernel), CpuConfig(awake_hold_ms=hold_ms))
    return kernel, cpu, PogoScheduler(kernel, cpu)


def test_submit_runs_task_and_releases_lock():
    kernel, cpu, scheduler = make_pogo()
    ran = []
    scheduler.submit(ran.append, "task")
    kernel.run_until(100.0)
    assert ran == ["task"]
    assert cpu.wake_locks_held == 0
    assert scheduler.tasks_run == 1


def test_scheduled_task_uses_alarm_and_wakes_cpu():
    kernel, cpu, scheduler = make_pogo(hold_ms=200.0)
    kernel.run_until(1000.0)
    assert not cpu.awake
    ran = []
    scheduler.schedule(5000.0, lambda: ran.append(kernel.now))
    kernel.run_until(10_000.0)
    assert ran == [6000.0]
    assert cpu.wake_count == 1


def test_schedule_cancel():
    kernel, _, scheduler = make_pogo()
    ran = []
    task = scheduler.schedule(100.0, ran.append, 1)
    task.cancel()
    kernel.run_until(1000.0)
    assert ran == []


def test_repeating_schedule():
    kernel, _, scheduler = make_pogo()
    times = []
    task = scheduler.schedule_repeating(1000.0, lambda: times.append(kernel.now))
    kernel.run_until(3500.0)
    assert len(times) == 3
    task.cancel()
    kernel.run_until(6000.0)
    assert len(times) == 3


def test_serialized_tasks_run_in_fifo_order():
    kernel, _, scheduler = make_pogo()
    order = []

    def task(n):
        order.append(n)
        if n == 0:
            # Submitting more work for the same key while running must
            # not interleave.
            scheduler.submit(task, 2, serial_key="script")

    scheduler.submit(task, 0, serial_key="script")
    scheduler.submit(task, 1, serial_key="script")
    kernel.run_until(100.0)
    assert order == [0, 1, 2]


def test_different_keys_are_independent():
    kernel, _, scheduler = make_pogo()
    order = []
    scheduler.submit(order.append, "a1", serial_key="a")
    scheduler.submit(order.append, "b1", serial_key="b")
    kernel.run_until(100.0)
    assert set(order) == {"a1", "b1"}


def test_errors_contained_and_reported():
    kernel, cpu, scheduler = make_pogo()
    errors = []
    scheduler.on_error.append(lambda key, exc: errors.append((key, type(exc).__name__)))

    def boom():
        raise RuntimeError("x")

    scheduler.submit(boom, serial_key="s")
    scheduler.submit(lambda: None, serial_key="s")  # still runs after error
    kernel.run_until(100.0)
    assert errors == [("s", "RuntimeError")]
    assert scheduler.task_errors == 1
    assert scheduler.tasks_run == 2
    assert cpu.wake_locks_held == 0


def test_stop_and_restart():
    kernel, _, scheduler = make_pogo()
    ran = []
    scheduler.stop()
    scheduler.submit(ran.append, 1)
    task = scheduler.schedule(10.0, ran.append, 2)
    assert task.cancelled
    kernel.run_until(100.0)
    assert ran == []
    scheduler.restart()
    scheduler.submit(ran.append, 3)
    kernel.run_until(200.0)
    assert ran == [3]


def test_simple_scheduler_matches_interface():
    kernel = Kernel()
    scheduler = SimpleScheduler(kernel)
    ran = []
    scheduler.submit(ran.append, "now")
    scheduler.schedule(50.0, ran.append, "later")
    task = scheduler.schedule_repeating(100.0, lambda: ran.append("tick"))
    kernel.run_until(250.0)
    assert ran == ["now", "later", "tick", "tick"]
    task.cancel()
    kernel.run_until(1000.0)
    assert ran.count("tick") == 2


def test_simple_scheduler_serial_order():
    kernel = Kernel()
    scheduler = SimpleScheduler(kernel)
    order = []
    for n in range(5):
        scheduler.submit(order.append, n, serial_key="k")
    kernel.run_until(10.0)
    assert order == [0, 1, 2, 3, 4]


def test_simple_scheduler_error_containment():
    kernel = Kernel()
    scheduler = SimpleScheduler(kernel)
    errors = []
    scheduler.on_error.append(lambda key, exc: errors.append(key))

    def boom():
        raise ValueError("nope")

    scheduler.submit(boom, serial_key="s")
    scheduler.submit(lambda: None, serial_key="s")
    kernel.run_until(10.0)
    assert errors == ["s"]
    assert scheduler.tasks_run == 2


def test_simple_scheduler_invalid_interval():
    with pytest.raises(ValueError):
        SimpleScheduler(Kernel()).schedule_repeating(0.0, lambda: None)
