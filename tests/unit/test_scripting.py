"""Unit tests for the script sandbox, API surface and watchdog."""

import pytest

from repro.core.api import API_METHOD_COUNT, api_method_names
from repro.core.node import CollectorNode, DeviceNode
from repro.core.multibroker import CollectorContext
from repro.core.scripting import ScriptError, ScriptHost, ScriptTimeoutError, Watchdog
from repro.net.xmpp import XmppServer
from repro.sim import Kernel


def make_host(source, name="test", watchdog_ms=200.0, autoload=True):
    """A script host inside a collector context (simplest harness)."""
    kernel = Kernel()
    server = XmppServer(kernel)
    node = CollectorNode(kernel, server, "pc@x")
    context = CollectorContext(node, "exp")
    host = ScriptHost(context, name, source, watchdog_ms=watchdog_ms)
    if autoload:
        host.load()
        kernel.run_until(10.0)
    return kernel, node, context, host


def test_api_has_exactly_eleven_methods():
    assert API_METHOD_COUNT == 11
    assert len(api_method_names()) == 11


def test_script_body_runs_and_sets_metadata():
    _, _, _, host = make_host(
        "setDescription('my experiment')\nsetAutoStart(False)\n"
    )
    assert host.description == "my experiment"
    assert host.autostart is False


def test_start_function_called_when_autostart():
    kernel, _, _, host = make_host(
        "ran = []\n"
        "def start():\n"
        "    ran.append(1)\n"
    )
    assert host.namespace["ran"] == [1]


def test_autostart_false_defers_start():
    kernel, _, _, host = make_host(
        "setAutoStart(False)\n"
        "ran = []\n"
        "def start():\n"
        "    ran.append(1)\n"
    )
    assert host.namespace["ran"] == []
    host.start()
    kernel.run_until(20.0)
    assert host.namespace["ran"] == [1]


def test_print_and_logs():
    _, _, _, host = make_host(
        "print('hello', 42)\n"
        "log('a line')\n"
        "logTo('special', 'x', 'y')\n"
    )
    assert host.debug_lines == ["hello 42"]
    assert host.logs["default"] == ["a line"]
    assert host.logs["special"] == ["x y"]


def test_json_function():
    _, _, _, host = make_host("text = json({'b': 1, 'a': [True]})\n")
    assert host.namespace["text"] == '{"a":[true],"b":1}'


def test_freeze_thaw_roundtrip_and_overwrite():
    kernel, node, context, host = make_host(
        "first = thaw()\n"
        "freeze({'count': 1})\n"
        "freeze({'count': 2})\n"
        "second = thaw()\n"
    )
    assert host.namespace["first"] is None
    assert host.namespace["second"] == {"count": 2}


def test_freeze_survives_update():
    """The Section 5.3 fix: state persists across script updates."""
    kernel, node, context, host = make_host("freeze({'kept': True})\n")
    host.update("recovered = thaw()\n")
    kernel.run_until(20.0)
    assert host.namespace["recovered"] == {"kept": True}
    assert host.load_count == 2


def test_set_timeout_runs_later():
    kernel, _, _, host = make_host(
        "ran = []\n"
        "def later():\n"
        "    ran.append(1)\n"
        "setTimeout(later, 500)\n"
    )
    assert host.namespace["ran"] == []
    kernel.run_until(1000.0)
    assert host.namespace["ran"] == [1]


def test_stop_cancels_timers_and_subscriptions():
    kernel, _, context, host = make_host(
        "ran = []\n"
        "def later():\n"
        "    ran.append(1)\n"
        "setTimeout(later, 500)\n"
        "subscribe('ch', lambda m: ran.append(m))\n"
    )
    assert context.broker.has_subscribers("ch")
    host.stop()
    kernel.run_until(1000.0)
    assert host.namespace["ran"] == []
    assert not context.broker.has_subscribers("ch")


def test_subscribe_and_publish_within_context():
    kernel, _, _, host = make_host(
        "got = []\n"
        "subscribe('data', lambda m: got.append(m))\n"
        "publish('data', {'n': 7})\n"
    )
    kernel.run_until(20.0)
    assert host.namespace["got"] == [{"n": 7}]


def test_sandbox_blocks_import():
    _, _, _, host = make_host("import os\n", autoload=False)
    with pytest.raises(ScriptError):
        host.load()


def test_sandbox_blocks_open_and_eval():
    for line in ("open('/etc/passwd')", "eval('1+1')", "exec('x=1')", "__import__('os')"):
        _, _, _, host = make_host(f"{line}\n", autoload=False)
        with pytest.raises(ScriptError):
            host.load()


def test_sandbox_provides_math():
    _, _, _, host = make_host("root = math.sqrt(16.0)\n")
    assert host.namespace["root"] == 4.0


def test_sandbox_allows_classes():
    _, _, _, host = make_host(
        "class Acc:\n"
        "    def __init__(self):\n"
        "        self.total = 0\n"
        "    def add(self, n):\n"
        "        self.total += n\n"
        "acc = Acc()\n"
        "acc.add(3)\n"
    )
    assert host.namespace["acc"].total == 3


def test_watchdog_kills_infinite_loop_at_load():
    source = "while True:\n    pass\n"
    _, _, _, host = make_host(source, autoload=False, watchdog_ms=50.0)
    with pytest.raises(ScriptError):
        host.load()
    assert host.watchdog.violations == 1


def test_watchdog_kills_runaway_handler_but_script_survives():
    kernel, _, context, host = make_host(
        "spin = []\n"
        "def handler(msg):\n"
        "    if msg == 'spin':\n"
        "        while True:\n"
        "            spin.append(1)\n"
        "    else:\n"
        "        spin.append(msg)\n"
        "subscribe('ch', handler)\n",
        watchdog_ms=50.0,
    )
    context.broker.publish("ch", "spin")
    kernel.run_until(100.0)
    assert any(isinstance(e, ScriptTimeoutError) for e in host.errors)
    # The script keeps running: later messages are still delivered.
    context.broker.publish("ch", "ok")
    kernel.run_until(200.0)
    assert host.namespace["spin"][-1] == "ok"


def test_watchdog_guard_passes_results_through():
    watchdog = Watchdog(timeout_ms=1000.0)
    assert watchdog.guard(lambda a, b: a + b, 1, 2) == 3
    assert watchdog.violations == 0


def test_watchdog_timeout_emits_span_with_call_attrs():
    kernel, _, context, host = make_host(
        "def handler(msg):\n"
        "    while True:\n"
        "        pass\n"
        "subscribe('ch', handler)\n",
        watchdog_ms=50.0,
    )
    context.broker.publish("ch", "go")
    kernel.run_until(100.0)
    (span,) = kernel.spans.spans(hop="script.watchdog")
    assert span.attrs["script"] == "exp/test"
    assert span.attrs["fn"] == "handler"
    assert span.attrs["budget_ms"] == 50.0
    assert kernel.metrics.counter("watchdog.hits").value == 1


def test_watchdog_timeout_alias_is_public():
    from repro.core.scripting import WatchdogTimeout

    assert WatchdogTimeout is ScriptTimeoutError


def test_script_call_durations_land_in_per_script_histogram():
    kernel, _, context, host = make_host(
        "def handler(msg):\n"
        "    pass\n"
        "subscribe('ch', handler)\n"
    )
    context.broker.publish("ch", 1)
    context.broker.publish("ch", 2)
    kernel.run_until(50.0)
    histogram = kernel.metrics.histogram("script.call_ms.exp/test")
    # load() + two handler invocations, wall-clock durations observed.
    assert histogram.count == host.invocations
    assert histogram.count >= 2
    assert histogram.max is not None and histogram.max >= 0.0
    # Sim-time call spans exist too, but never carry wall-clock values.
    calls = kernel.spans.spans(hop="script.call")
    assert len(calls) >= 2
    assert all(span.duration_ms == 0.0 for span in calls)


def test_handler_errors_recorded_not_raised():
    kernel, _, context, host = make_host(
        "def handler(msg):\n"
        "    raise ValueError('from script')\n"
        "subscribe('ch', handler)\n"
    )
    context.broker.publish("ch", 1)
    kernel.run_until(50.0)
    assert len(host.errors) == 1
    assert isinstance(host.errors[0], ValueError)


def test_syntax_error_fails_load():
    _, _, _, host = make_host("def broken(:\n", autoload=False)
    with pytest.raises((ScriptError, SyntaxError)):
        host.load()
