"""Unit tests for the envelope pipeline: freeze, cache, splice."""

import copy
import json

import pytest

from repro.core.envelope import (
    Envelope,
    FrozenDict,
    FrozenList,
    MessageError,
    canonical_json,
    freeze_message,
    thaw_message,
)


# ---------------------------------------------------------------------------
# Validation and freezing
# ---------------------------------------------------------------------------


def test_freeze_validates_with_path():
    with pytest.raises(MessageError) as exc:
        freeze_message({"outer": {"inner": object()}})
    assert "$.outer.inner" in str(exc.value)
    with pytest.raises(MessageError):
        freeze_message({1: "non-string key"})


def test_frozen_view_reads_like_plain_containers():
    payload = freeze_message({"a": [1, {"b": None}], "c": "x"})
    assert isinstance(payload, dict)
    assert isinstance(payload["a"], list)
    assert payload == {"a": [1, {"b": None}], "c": "x"}
    assert sorted(payload) == ["a", "c"]
    assert json.loads(json.dumps(payload)) == {"a": [1, {"b": None}], "c": "x"}


def test_frozen_containers_reject_mutation():
    payload = freeze_message({"list": [1], "map": {"k": "v"}})
    with pytest.raises(MessageError):
        payload["new"] = 1
    with pytest.raises(MessageError):
        del payload["map"]
    with pytest.raises(MessageError):
        payload["list"].append(2)
    with pytest.raises(MessageError):
        payload["list"].sort()
    with pytest.raises(MessageError):
        payload["map"].update(x=1)
    with pytest.raises(MessageError):
        payload["map"].pop("k")


def test_copy_escape_hatches_give_plain_mutable_objects():
    payload = freeze_message({"list": [1], "map": {"k": "v"}})
    shallow = payload.copy()
    assert type(shallow) is dict
    shallow["new"] = 1  # top-level mutation is fine on the shallow copy

    deep = thaw_message(payload)
    assert type(deep) is dict and type(deep["list"]) is list
    deep["list"].append(2)
    assert payload["list"] == [1]

    via_deepcopy = copy.deepcopy(payload)
    assert type(via_deepcopy) is dict
    via_deepcopy["list"].append(2)
    assert payload["list"] == [1]


def test_freeze_short_circuits_frozen_subtrees():
    inner = freeze_message({"deep": [1, 2, 3]})
    outer = freeze_message({"wrap": inner})
    assert outer["wrap"] is inner


# ---------------------------------------------------------------------------
# Envelope caching
# ---------------------------------------------------------------------------


def test_wrap_is_idempotent():
    env = Envelope.wrap({"a": 1})
    assert Envelope.wrap(env) is env


def test_json_and_size_are_computed_once_and_cached():
    env = Envelope.wrap({"b": 1, "a": "é"})
    first = env.json
    assert first == '{"a":"é","b":1}'
    assert env.json is first  # cached string, not a re-serialization
    assert env.wire_size == len(first.encode("utf-8"))


def test_envelope_equality_with_raw_trees():
    env = Envelope.wrap({"a": (1, 2)})
    assert env == {"a": [1, 2]}
    assert env == Envelope.wrap({"a": [1, 2]})
    assert not (env == {"a": [1, 2, 3]})


def test_envelope_copy_is_deep_and_mutable():
    env = Envelope.wrap({"list": [1]})
    clone = env.copy()
    clone["list"].append(2)
    assert env.payload == {"list": [1]}


# ---------------------------------------------------------------------------
# Canonical JSON splicing
# ---------------------------------------------------------------------------


def test_canonical_json_splices_cached_envelope_text():
    env = Envelope.wrap({"b": 2, "a": 1})
    _ = env.json  # warm the cache
    stanza = {"kind": "env", "seq": 7, "payload": env}
    text = canonical_json(stanza)
    assert text == '{"kind":"env","payload":{"a":1,"b":2},"seq":7}'
    assert json.loads(text) == {"kind": "env", "seq": 7, "payload": {"a": 1, "b": 2}}


def test_canonical_json_matches_plain_dumps_for_plain_trees():
    tree = {"z": [1, {"y": None}], "a": "é"}
    assert canonical_json(tree) == json.dumps(
        tree, separators=(",", ":"), sort_keys=True, ensure_ascii=False
    )


def test_canonical_json_envelope_in_list_stanza():
    envs = [Envelope.wrap({"n": i}) for i in range(3)]
    text = canonical_json({"batch": envs})
    assert json.loads(text) == {"batch": [{"n": 0}, {"n": 1}, {"n": 2}]}


def test_canonical_json_rejects_bad_stanza_with_path():
    with pytest.raises(MessageError) as exc:
        canonical_json({"payload": Envelope.wrap({"a": 1}), "bad": object()})
    assert "$.bad" in str(exc.value)
