"""Unit tests for the Wi-Fi interface model."""

import pytest

from repro.device.power import PowerRail
from repro.device.wifi import WifiConfig, WifiInterface, WifiUnavailable
from repro.sim import Kernel


def make_wifi(**kwargs):
    kernel = Kernel()
    rail = PowerRail(kernel)
    wifi = WifiInterface(kernel, rail, **kwargs)
    return kernel, rail, wifi


def test_transfer_requires_connection():
    kernel, _, wifi = make_wifi()
    with pytest.raises(WifiUnavailable):
        wifi.transfer(tx_bytes=10)
    wifi.set_connected(True)
    done = []
    wifi.transfer(tx_bytes=10, on_complete=done.append)
    kernel.run()
    assert done == [True]


def test_transfer_updates_counters_and_power():
    kernel, rail, wifi = make_wifi()
    wifi.set_connected(True)
    wifi.transfer(tx_bytes=1000, rx_bytes=2000)
    kernel.run_until(1.0)
    assert rail.draw_of(wifi.name) == pytest.approx(wifi.config.active_w)
    kernel.run()
    assert wifi.total_bytes == 3000
    assert rail.draw_of(wifi.name) == pytest.approx(wifi.config.idle_connected_w)


def test_disconnect_fails_queued_transfers():
    kernel, _, wifi = make_wifi()
    wifi.set_connected(True)
    results = []
    wifi.transfer(tx_bytes=10, duration_hint_ms=500.0, on_complete=results.append)
    wifi.transfer(tx_bytes=10, on_complete=results.append)
    kernel.run_until(100.0)
    wifi.set_connected(False)
    kernel.run()
    # In-flight job still completes (bytes already in the air model);
    # the queued one fails.
    assert False in results


def test_connectivity_listeners():
    _, _, wifi = make_wifi()
    seen = []
    wifi.on_connectivity.append(seen.append)
    wifi.set_connected(True)
    wifi.set_connected(True)  # no duplicate notification
    wifi.set_connected(False)
    assert seen == [True, False]


def test_disable_forces_disconnect():
    _, rail, wifi = make_wifi()
    wifi.set_connected(True)
    wifi.set_enabled(False)
    assert not wifi.connected
    assert not wifi.available
    assert rail.draw_of(wifi.name) == 0.0
    # Cannot connect while disabled.
    wifi.set_connected(True)
    assert not wifi.connected


def test_scan_returns_environment_readings():
    kernel, rail, wifi = make_wifi()
    wifi.scan_source = lambda: ["ap1", "ap2"]
    got = []
    assert wifi.scan(got.append)
    kernel.run_until(1.0)
    assert rail.draw_of(wifi.name) == pytest.approx(wifi.config.scan_w)
    kernel.run_until(wifi.config.scan_duration_ms + 1.0)
    assert got == [["ap1", "ap2"]]
    assert wifi.scan_count == 1


def test_concurrent_scan_rejected():
    kernel, _, wifi = make_wifi()
    wifi.scan_source = lambda: []
    assert wifi.scan(lambda r: None)
    assert not wifi.scan(lambda r: None)
    kernel.run()
    assert wifi.scan(lambda r: None)


def test_scan_while_disabled_rejected():
    _, _, wifi = make_wifi()
    wifi.set_enabled(False)
    assert not wifi.scan(lambda r: None)


def test_scan_without_source_returns_empty():
    kernel, _, wifi = make_wifi()
    got = []
    wifi.scan(got.append)
    kernel.run()
    assert got == [[]]
