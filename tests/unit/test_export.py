"""Unit tests for CSV export."""

import csv
import io

import pytest

from repro.analysis.export import (
    intervals_to_csv,
    rows_to_csv,
    series_to_csv,
    trace_to_csv,
)
from repro.sim.trace import IntervalTrack, TimeSeries, TraceRecorder


def test_series_to_string():
    series = TimeSeries("watts")
    series.append(0.0, 0.5)
    series.append(10.0, 1.25)
    text = series_to_csv(series)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["time_ms", "watts"]
    assert rows[1] == ["0.000", "0.5"]
    assert rows[2] == ["10.000", "1.25"]


def test_series_to_file(tmp_path):
    series = TimeSeries()
    series.append(1.0, 2.0)
    path = tmp_path / "series.csv"
    assert series_to_csv(series, str(path)) is None
    content = path.read_text()
    assert "time_ms" in content and "1.000" in content


def test_series_to_open_handle():
    series = TimeSeries()
    series.append(1.0, 2.0)
    handle = io.StringIO()
    series_to_csv(series, handle)
    assert "1.000" in handle.getvalue()


def test_intervals_export():
    track = IntervalTrack("cpu")
    track.open(time=0.0, label="boot")
    track.close(time=5.0)
    track.open(time=10.0)
    text = intervals_to_csv([track], until=12.0)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["track", "start_ms", "end_ms", "label"]
    assert rows[1] == ["cpu", "0.000", "5.000", "boot"]
    assert rows[2] == ["cpu", "10.000", "12.000", ""]


def test_trace_export_serializes_data():
    trace = TraceRecorder(lambda: 0.0)
    trace.record("modem", "state", old="idle", new="ramp")
    text = trace_to_csv(trace)
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[1][1] == "modem"
    assert '"new": "ramp"' in rows[1][3]


def make_spans():
    from repro.sim.spans import SpanRecorder

    recorder = SpanRecorder()
    root = recorder.hop("publish").record(1, 0, 0.0, 0.0, {"channel": "battery"})
    recorder.hop("buffer.dwell").record(1, root, 0.0, 512.5, {"bytes": 75})
    return recorder


def test_spans_to_csv():
    from repro.analysis.export import spans_to_csv

    text = spans_to_csv(make_spans())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0] == ["span", "trace", "parent", "hop", "start_ms", "end_ms", "attrs"]
    assert rows[1][:4] == ["1", "1", "0", "publish"]
    assert rows[2][3:6] == ["buffer.dwell", "0.000", "512.500"]
    assert '"bytes": 75' in rows[2][6]


def test_spans_jsonl_roundtrip_string_and_file(tmp_path):
    from repro.analysis.export import spans_from_jsonl, spans_to_jsonl

    recorder = make_spans()
    text = spans_to_jsonl(recorder)
    assert text.count("\n") == 2

    path = tmp_path / "spans.jsonl"
    assert spans_to_jsonl(recorder, str(path)) is None
    assert path.read_text() == text

    restored = spans_from_jsonl(str(path))
    assert [s.to_dict() for s in restored] == [s.to_dict() for s in recorder]
    # Round-tripping the restored spans reproduces the bytes exactly.
    assert spans_to_jsonl(restored) == text


def test_rows_export():
    text = rows_to_csv(["user", "scans"], [["user1", 100], ["user2", 200]])
    rows = list(csv.reader(io.StringIO(text)))
    assert rows == [["user", "scans"], ["user1", "100"], ["user2", "200"]]


def test_roundtrip_through_real_simulation():
    """End-to-end: export the power trace of a real transmission."""
    from repro.core.middleware import PogoSimulation
    from repro.device.power import PowerMeter
    from repro.sim.kernel import MINUTE

    sim = PogoSimulation(seed=3)
    device = sim.add_device(with_email_app=True)
    meter = PowerMeter(sim.kernel, device.phone.rail, interval_ms=1000.0)
    meter.start()
    sim.start()
    sim.run(duration_ms=6 * MINUTE)
    text = series_to_csv(meter.samples)
    rows = list(csv.reader(io.StringIO(text)))
    assert len(rows) > 300
    values = [float(v) for _, v in rows[1:]]
    assert max(values) > 0.5  # the e-mail transmission is visible
