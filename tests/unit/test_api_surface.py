"""Unit tests pinning down the sandbox's exact API surface (Table 1)."""

import pytest

from repro.core.api import API_METHOD_COUNT, SAFE_BUILTINS, api_method_names, build_namespace
from repro.core.multibroker import CollectorContext
from repro.core.node import CollectorNode
from repro.core.scripting import ScriptHost
from repro.net.xmpp import XmppServer
from repro.sim import Kernel


def make_host():
    kernel = Kernel()
    node = CollectorNode(kernel, XmppServer(kernel), "pc@x")
    context = CollectorContext(node, "exp")
    return ScriptHost(context, "s", "pass\n")


def test_table1_method_names():
    assert api_method_names() == [
        "setDescription",
        "setAutoStart",
        "print",
        "log",
        "logTo",
        "publish",
        "subscribe",
        "freeze",
        "thaw",
        "json",
        "setTimeout",
    ]
    assert len(api_method_names()) == API_METHOD_COUNT == 11


def test_namespace_contains_exactly_the_api_plus_math():
    namespace = build_namespace(make_host())
    non_dunder = {k for k in namespace if not k.startswith("__")}
    assert non_dunder == set(api_method_names()) | {"math"}


def test_dangerous_builtins_absent():
    namespace = build_namespace(make_host())
    builtins = namespace["__builtins__"]
    for name in (
        "__import__", "open", "eval", "exec", "compile", "input",
        "globals", "locals", "vars", "getattr", "setattr", "delattr",
        "memoryview", "breakpoint", "exit", "quit",
    ):
        assert name not in builtins, name


def test_useful_builtins_present():
    for name in ("len", "range", "sorted", "dict", "list", "min", "max",
                 "sum", "abs", "enumerate", "zip", "isinstance",
                 "__build_class__", "ValueError"):
        assert name in SAFE_BUILTINS, name


def test_namespaces_are_isolated_between_scripts():
    a = build_namespace(make_host())
    b = build_namespace(make_host())
    a["__builtins__"]["len"] = None  # sabotage one sandbox
    assert b["__builtins__"]["len"] is len


def test_math_is_the_real_module():
    import math

    namespace = build_namespace(make_host())
    assert namespace["math"].sqrt(9.0) == 3.0
    assert namespace["math"] is math
