"""Unit tests for the ASCII figure renderer."""

import pytest

from repro.analysis.plotting import render_series, render_tracks
from repro.sim.trace import Interval, TimeSeries


def make_step_series():
    series = TimeSeries()
    for i in range(101):
        series.append(i * 10.0, 1.0 if 30 <= i <= 60 else 0.1)
    return series


class TestRenderSeries:
    def test_basic_shape(self):
        out = render_series(make_step_series(), width=50, height=4)
        lines = out.splitlines()
        # 4 chart rows + axis + annotation row + time row.
        assert len(lines) == 7
        assert "+" in lines[4]
        assert "█" in out

    def test_y_axis_labels(self):
        out = render_series(make_step_series(), width=40, height=5)
        assert "1.00 W" in out
        assert "0 s" in out

    def test_annotations_positioned(self):
        out = render_series(
            make_step_series(), width=50, height=3,
            annotations=[(300.0, "a"), (600.0, "d")],
        )
        footer = out.splitlines()[-2]
        assert "a" in footer and "d" in footer
        assert footer.index("a") < footer.index("d")

    def test_annotations_outside_window_skipped(self):
        out = render_series(
            make_step_series(), width=50, height=3,
            annotations=[(99_999.0, "x")],
        )
        assert "x" not in out.splitlines()[-2]

    def test_window_selection(self):
        out = render_series(make_step_series(), width=20, height=3,
                            start_ms=300.0, end_ms=600.0)
        # Whole window is the high plateau: every column full.
        chart_rows = out.splitlines()[:3]
        assert all(set(r.split("|")[1]) == {"█"} for r in chart_rows)

    def test_empty_series(self):
        assert "empty" in render_series(TimeSeries())

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            render_series(make_step_series(), start_ms=500.0, end_ms=500.0)

    def test_peaks_survive_downsampling(self):
        series = TimeSeries()
        for i in range(1000):
            series.append(float(i), 5.0 if i == 500 else 0.0)
        out = render_series(series, width=20, height=4)
        assert "█" in out  # the single-sample spike is visible


class TestRenderTracks:
    def test_blocks_positioned(self):
        out = render_tracks(
            [
                ("cpu", [Interval(0.0, 100.0), Interval(900.0, 1000.0)]),
                ("app", [Interval(450.0, 550.0)]),
            ],
            0.0,
            1000.0,
            width=20,
        )
        cpu_row, app_row = out.splitlines()[:2]
        cells = cpu_row.split("|")[1]
        assert cells[0] == "█" and cells[-1] == "█"
        assert cells[10] == " "
        assert app_row.split("|")[1][10] == "█"

    def test_out_of_window_intervals_ignored(self):
        out = render_tracks(
            [("x", [Interval(5000.0, 6000.0)])], 0.0, 1000.0, width=10
        )
        assert "█" not in out

    def test_labels_aligned(self):
        out = render_tracks(
            [("a", []), ("longer-name", [])], 0.0, 10.0, width=5
        )
        first, second = out.splitlines()[:2]
        assert first.index("|") == second.index("|")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            render_tracks([], 10.0, 10.0)
