"""Unit tests for the shipped application script builders."""

import pytest

from repro.analysis.sloc import count_sloc
from repro.apps import battery_monitor, localization, roguefinder


class TestLocalizationScripts:
    def test_experiment_validates(self):
        localization.build_experiment().validate()

    def test_scripts_compile(self):
        for source in (
            localization.build_scan_script(),
            localization.build_clustering_script(),
            localization.build_clustering_script(with_freeze=True),
            localization.build_collect_script(),
        ):
            compile(source, "<script>", "exec")

    def test_parameters_embedded(self):
        scan = localization.build_scan_script(interval_ms=30_000)
        assert "30000" in scan
        clustering = localization.build_clustering_script(eps_similarity=0.7, min_pts=3, window=45)
        assert "0.7" in clustering and "MIN_PTS = 3" in clustering and "WINDOW = 45" in clustering

    def test_freeze_variant_contains_freeze_calls(self):
        plain = localization.build_clustering_script(with_freeze=False)
        frozen = localization.build_clustering_script(with_freeze=True)
        assert "freeze(dbscan.state())" not in plain
        assert "freeze(dbscan.state())" in frozen
        assert "thaw()" in frozen

    def test_clustering_embeds_analysis_core(self):
        """The deployed algorithm is byte-identical to the library's."""
        from repro.analysis.clustering import clustering_script_core

        script = localization.build_clustering_script()
        assert clustering_script_core() in script

    def test_sloc_in_paper_ballpark(self):
        experiment = localization.build_experiment()
        scan = count_sloc(experiment.device_scripts["scan"]).sloc
        clustering = count_sloc(experiment.device_scripts["clustering"]).sloc
        collect = count_sloc(experiment.collector_scripts["collect"]).sloc
        assert 15 <= scan <= 60  # paper: 41
        assert 80 <= clustering <= 250  # paper: 155
        assert 10 <= collect <= 40  # paper: 18
        assert clustering > scan  # "clustering.js is by far the largest"


class TestRogueFinderScripts:
    def test_experiment_validates(self):
        roguefinder.build_experiment([(52.0, 4.3), (52.1, 4.4), (52.0, 4.5)]).validate()

    def test_polygon_embedded(self):
        script = roguefinder.build_roguefinder_script([(52.5, 4.25), (52.6, 4.35), (52.5, 4.45)])
        assert "52.5" in script and "4.45" in script

    def test_collector_script_tiny(self):
        assert count_sloc(roguefinder.build_collect_script()).sloc <= 8  # paper: 5

    def test_release_renew_pattern_present(self):
        """Listing 2's defining structure."""
        script = roguefinder.build_roguefinder_script([(1, 1), (2, 2), (3, 0)])
        assert "subscription.release()" in script
        assert "subscription.renew()" in script
        assert "location_in_polygon" in script


class TestBatteryMonitor:
    def test_experiment_has_no_device_scripts(self):
        """Pure sensor collection: the collector's subscription drives
        the device's sensor (Section 4.2)."""
        experiment = battery_monitor.build_experiment()
        experiment.validate()
        assert experiment.device_scripts == {}
        assert "collect" in experiment.collector_scripts

    def test_interval_parameter(self):
        script = battery_monitor.build_collect_script(interval_ms=120_000)
        assert "120000" in script
