"""Unit tests for the power rail and power meter."""

import pytest

from repro.device.power import PowerMeter, PowerRail
from repro.sim import Kernel


def test_energy_integrates_piecewise_constant_draw():
    kernel = Kernel()
    rail = PowerRail(kernel)
    rail.set_draw("cpu", 1.0)  # 1 W from t=0
    kernel.schedule(1000.0, rail.set_draw, "cpu", 0.0)  # off at 1 s
    kernel.run()
    kernel.run_until(5000.0)
    assert rail.energy_joules == pytest.approx(1.0)


def test_multiple_components_sum():
    kernel = Kernel()
    rail = PowerRail(kernel)
    rail.set_draw("a", 0.3)
    rail.set_draw("b", 0.7)
    assert rail.total_watts == pytest.approx(1.0)
    kernel.run_until(2000.0)
    assert rail.energy_joules == pytest.approx(2.0)
    assert rail.draw_of("a") == pytest.approx(0.3)
    assert rail.draw_of("missing") == 0.0


def test_overwriting_draw_replaces_not_adds():
    kernel = Kernel()
    rail = PowerRail(kernel)
    rail.set_draw("cpu", 0.5)
    rail.set_draw("cpu", 0.2)
    assert rail.total_watts == pytest.approx(0.2)


def test_negative_draw_rejected():
    rail = PowerRail(Kernel())
    with pytest.raises(ValueError):
        rail.set_draw("cpu", -0.1)


def test_reset_energy():
    kernel = Kernel()
    rail = PowerRail(kernel)
    rail.set_draw("cpu", 1.0)
    kernel.run_until(3000.0)
    drained = rail.reset_energy()
    assert drained == pytest.approx(3.0)
    assert rail.energy_joules == pytest.approx(0.0)
    kernel.run_until(4000.0)
    assert rail.energy_joules == pytest.approx(1.0)


def test_history_breakpoints_when_tracked():
    kernel = Kernel()
    rail = PowerRail(kernel, track_history=True)
    rail.set_draw("cpu", 1.0)
    kernel.schedule(100.0, rail.set_draw, "cpu", 0.5)
    kernel.run()
    # Initial point + two points per change (step edges).
    assert len(rail.history) == 5
    assert rail.history.values[-1] == pytest.approx(0.5)


def test_meter_sampling_approximates_exact_energy():
    kernel = Kernel()
    rail = PowerRail(kernel)
    meter = PowerMeter(kernel, rail, interval_ms=10.0)
    meter.start()
    rail.set_draw("cpu", 2.0)
    kernel.schedule(1000.0, rail.set_draw, "cpu", 0.0)
    kernel.run_until(2000.0)
    meter.stop()
    exact = rail.energy_joules
    sampled = meter.energy_joules()
    assert exact == pytest.approx(2.0)
    assert sampled == pytest.approx(exact, rel=0.05)


def test_meter_interval_validation_and_idempotent_start():
    kernel = Kernel()
    rail = PowerRail(kernel)
    with pytest.raises(ValueError):
        PowerMeter(kernel, rail, interval_ms=0.0)
    meter = PowerMeter(kernel, rail, interval_ms=5.0)
    meter.start()
    meter.start()
    kernel.run_until(100.0)
    meter.stop()
    count = len(meter.samples)
    kernel.run_until(200.0)
    assert len(meter.samples) == count  # stopped for real
