"""Unit tests for mobility timelines."""

import random

import pytest

from repro.sim.kernel import DAY, HOUR, MINUTE
from repro.world.geometry import Point
from repro.world.mobility import (
    DWELL,
    TRAVEL,
    Segment,
    Timeline,
    TimelineBuilder,
    UserProfile,
)
from repro.world.places import PlaceFactory


def make_places(seed=1):
    factory = PlaceFactory(random.Random(seed))
    rng = random.Random(seed + 1)

    def place(name, category):
        return factory.make_place(
            name, Point(rng.uniform(-3000, 3000), rng.uniform(-3000, 3000)), category=category
        )

    return {
        "home": [place("home", "home")],
        "office": [place("office", "office")],
        "cafe": [place("cafe1", "cafe"), place("cafe2", "cafe")],
        "restaurant": [place("rest", "restaurant")],
        "gym": [place("gym", "gym")],
        "supermarket": [place("market", "supermarket")],
        "friend": [place("friend", "friend")],
        "generic": [place("g1", "generic"), place("g2", "generic")],
    }


def build(days=5, lifestyle="regular", seed=1):
    places = make_places(seed)
    profile = UserProfile(name="u", lifestyle=lifestyle)
    return TimelineBuilder(profile, places, random.Random(seed)).build(days), places


def test_timeline_is_contiguous_and_ordered():
    timeline, _ = build(days=7)
    assert timeline.start_ms == 0.0
    assert timeline.end_ms == 7 * DAY
    for earlier, later in zip(timeline.segments, timeline.segments[1:]):
        assert later.start_ms == pytest.approx(earlier.end_ms)


def test_weekday_contains_office_dwell():
    timeline, places = build(days=1)  # day 0 is a Monday
    office = places["office"][0]
    office_time = sum(
        s.duration_ms
        for s in timeline.dwells()
        if s.place is office
    )
    assert office_time > 5 * HOUR


def test_night_is_at_home():
    timeline, places = build(days=3)
    home = places["home"][0]
    for hour in (2.0, 26.0, 50.0):
        assert timeline.place_at(hour * HOUR) is home


def test_weekend_has_no_office():
    timeline, places = build(days=7)
    office = places["office"][0]
    for t in range(int(5 * DAY), int(7 * DAY), int(HOUR)):
        place = timeline.place_at(float(t))
        assert place is not office


def test_mobile_lifestyle_has_many_more_dwells():
    regular, _ = build(days=5, lifestyle="regular")
    mobile, _ = build(days=5, lifestyle="mobile")
    assert len(mobile.dwells(10 * MINUTE)) > 1.5 * len(regular.dwells(10 * MINUTE))


def test_travel_position_interpolates():
    timeline, _ = build(days=1)
    travels = [s for s in timeline.segments if s.kind == TRAVEL]
    assert travels
    travel = travels[0]
    start = travel.position_at(travel.start_ms)
    end = travel.position_at(travel.end_ms)
    mid = travel.position_at((travel.start_ms + travel.end_ms) / 2)
    assert start.distance_to(mid) + mid.distance_to(end) == pytest.approx(
        start.distance_to(end), rel=1e-6
    )


def test_segment_lookup_boundaries():
    timeline, _ = build(days=1)
    # Before the first boundary and after the last, lookups clamp.
    first = timeline.segment_at(-100.0)
    assert first is timeline.segments[0]
    last = timeline.segment_at(10 * DAY)
    assert last is timeline.segments[-1]


def test_boundaries_match_segments():
    timeline, _ = build(days=2)
    boundaries = timeline.boundaries()
    assert len(boundaries) == len(timeline.segments) - 1


def test_dwell_min_duration_filter():
    timeline, _ = build(days=3)
    all_dwells = timeline.dwells()
    long_dwells = timeline.dwells(30 * MINUTE)
    assert len(long_dwells) <= len(all_dwells)
    assert all(d.duration_ms >= 30 * MINUTE for d in long_dwells)


def test_timeline_requires_home():
    with pytest.raises(ValueError):
        TimelineBuilder(UserProfile(name="u"), {}, random.Random(1))


def test_overlapping_segments_rejected():
    place = make_places()["home"][0]
    with pytest.raises(ValueError):
        Timeline(
            [
                Segment(DWELL, 0.0, 100.0, place=place),
                Segment(DWELL, 50.0, 150.0, place=place),
            ]
        )


def test_empty_timeline_rejected():
    with pytest.raises(ValueError):
        Timeline([])


def test_determinism():
    a, _ = build(days=3, seed=9)
    b, _ = build(days=3, seed=9)
    assert [(s.kind, s.start_ms, s.end_ms) for s in a.segments] == [
        (s.kind, s.start_ms, s.end_ms) for s in b.segments
    ]
