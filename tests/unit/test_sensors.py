"""Unit tests for sensors, the sensor manager and privacy controls."""

import pytest

from repro.core.node import CollectorNode, DeviceNode
from repro.device import Phone
from repro.net.xmpp import XmppServer
from repro.sensors import (
    AccelerometerSensor,
    BatterySensor,
    LocationSensor,
    WifiScanSensor,
)
from repro.sensors.location import PROVIDER_GPS, PROVIDER_NETWORK
from repro.sim import Kernel, MINUTE, RandomStreams, SECOND
from repro.world.geometry import Point


def make_device():
    kernel = Kernel()
    server = XmppServer(kernel)
    phone = Phone(kernel, "dev@x")
    node = DeviceNode(kernel, phone, server, "dev@x")
    # Create a context by hand (normally done by a deploy op).
    from repro.core.context import DeviceContext

    context = DeviceContext(node, "exp", "pc@x")
    node.contexts["exp"] = context
    node.sensor_manager.on_context_added(context)
    return kernel, phone, node, context


def test_sensor_off_without_subscribers():
    kernel, phone, node, context = make_device()
    sensor = BatterySensor(phone)
    node.sensor_manager.register(sensor)
    assert not sensor.enabled
    kernel.run_until(5 * MINUTE)
    assert sensor.sample_count == 0


def test_sensor_enables_on_subscription_and_disables_on_removal():
    kernel, phone, node, context = make_device()
    sensor = BatterySensor(phone)
    node.sensor_manager.register(sensor)
    sub = context.broker.subscribe("battery", lambda m: None, {"interval": MINUTE})
    assert sensor.enabled
    kernel.run_until(3.5 * MINUTE)
    # First sample ~1 s after activation, then at the 1-minute interval.
    assert sensor.sample_count == 4
    sub.remove()
    assert not sensor.enabled
    kernel.run_until(10 * MINUTE)
    assert sensor.sample_count == 4


def test_release_renew_toggle_sensor():
    """RogueFinder's core behaviour (Listing 2)."""
    kernel, phone, node, context = make_device()
    sensor = WifiScanSensor(phone)
    phone.wifi.scan_source = lambda: []
    node.sensor_manager.register(sensor)
    sub = context.broker.subscribe("wifi-scan", lambda m: None)
    assert sensor.enabled
    sub.release()
    assert not sensor.enabled
    sub.renew()
    assert sensor.enabled


def test_highest_rate_wins():
    """Section 3.5: two scripts, scan at the highest frequency."""
    kernel, phone, node, context = make_device()
    sensor = BatterySensor(phone)
    node.sensor_manager.register(sensor)
    slow = context.broker.subscribe("battery", lambda m: None, {"interval": 5 * MINUTE})
    assert sensor.interval_ms == 5 * MINUTE
    fast = context.broker.subscribe("battery", lambda m: None, {"interval": MINUTE})
    assert sensor.interval_ms == MINUTE
    fast.remove()
    assert sensor.interval_ms == 5 * MINUTE
    slow.remove()


def test_sensor_publishes_into_context():
    kernel, phone, node, context = make_device()
    sensor = BatterySensor(phone)
    node.sensor_manager.register(sensor)
    got = []
    context.broker.subscribe("battery", got.append, {"interval": MINUTE})
    kernel.run_until(MINUTE + SECOND)
    assert got
    assert set(got[0]) >= {"voltage", "level", "timestamp"}


def test_wifi_scan_sensor_holds_wake_lock_during_scan():
    kernel, phone, node, context = make_device()
    sensor = WifiScanSensor(phone)
    phone.wifi.scan_source = lambda: []
    node.sensor_manager.register(sensor)
    context.broker.subscribe("wifi-scan", lambda m: None, {"interval": MINUTE})
    # Second scan starts at ~61 s and takes 1.5 s.
    kernel.run_until(MINUTE + 1.5 * SECOND)
    assert phone.cpu.holds_wake_lock("wifi-scan")
    kernel.run_until(MINUTE + 3 * SECOND)
    assert not phone.cpu.holds_wake_lock("wifi-scan")
    assert sensor.completed_scans == 2


def test_location_sensor_provider_selection():
    """Section 4.3: provider comes from subscription parameters."""
    kernel, phone, node, context = make_device()
    sensor = LocationSensor(phone)
    sensor.position_source = lambda: Point(10.0, 20.0)
    node.sensor_manager.register(sensor)
    network_sub = context.broker.subscribe("locations", lambda m: None)
    assert sensor.provider == PROVIDER_NETWORK
    assert phone.rail.draw_of("gps") == 0.0
    gps_sub = context.broker.subscribe("locations", lambda m: None, {"provider": "GPS"})
    assert sensor.provider == PROVIDER_GPS
    assert phone.rail.draw_of("gps") == pytest.approx(sensor.gps_power_w)
    gps_sub.remove()
    assert sensor.provider == PROVIDER_NETWORK
    assert phone.rail.draw_of("gps") == 0.0


def test_location_fix_shape_and_gps_delay():
    kernel, phone, node, context = make_device()
    sensor = LocationSensor(phone)
    sensor.position_source = lambda: Point(0.0, 0.0)
    node.sensor_manager.register(sensor)
    got = []
    context.broker.subscribe(
        "locations", got.append, {"provider": "GPS", "interval": MINUTE}
    )
    kernel.run_until(MINUTE + sensor.gps_fix_ms + SECOND)
    assert got
    fix = got[0]
    assert fix["provider"] == PROVIDER_GPS
    assert fix["accuracy"] == sensor.gps_accuracy_m
    assert abs(fix["lat"] - 52.0022) < 0.01


def test_accelerometer_reflects_activity():
    kernel, phone, node, context = make_device()
    activity = ["still"]
    sensor = AccelerometerSensor(phone, rng=RandomStreams(1).stream("a"))
    sensor.activity_source = lambda: activity[0]
    node.sensor_manager.register(sensor)
    got = []
    context.broker.subscribe("accel", got.append, {"interval": 5 * SECOND})
    kernel.run_until(6 * SECOND)
    still_std = got[-1]["std"]
    activity[0] = "walking"
    kernel.run_until(12 * SECOND)
    walking_std = got[-1]["std"]
    assert walking_std > still_std * 5


def test_privacy_block_disables_sensor_and_suppresses_publishes():
    kernel, phone, node, context = make_device()
    sensor = BatterySensor(phone)
    node.sensor_manager.register(sensor)
    context.broker.subscribe("battery", lambda m: None, {"interval": MINUTE})
    assert sensor.enabled
    node.privacy.block("battery")
    assert not sensor.enabled
    # Direct publishes are suppressed too.
    delivered = node.sensor_manager.publish("battery", {"voltage": 4.0})
    assert delivered == 0
    assert node.privacy.suppressed_publishes == 1
    node.privacy.allow("battery")
    assert sensor.enabled


def test_duplicate_sensor_channel_rejected():
    kernel, phone, node, context = make_device()
    node.sensor_manager.register(BatterySensor(phone))
    with pytest.raises(ValueError):
        node.sensor_manager.register(BatterySensor(phone))


def test_sensor_skips_sampling_while_phone_dead():
    kernel, phone, node, context = make_device()
    sensor = BatterySensor(phone)
    node.sensor_manager.register(sensor)
    context.broker.subscribe("battery", lambda m: None, {"interval": MINUTE})
    phone.alive = False  # crude: sample() checks alive
    kernel.run_until(2 * MINUTE)
    assert sensor.publish_count == 0
