"""Unit tests for the shared-memory SPSC ring (repro.obs.shm)."""

import random

import pytest

from repro.obs.shm import DEFAULT_RING_BYTES, ShmError, ShmRing, shm_available

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no POSIX shared memory on this platform"
)


@needs_shm
class TestRing:
    def test_push_drain_round_trip(self):
        ring = ShmRing.create(256)
        try:
            assert ring.try_push(b"alpha")
            assert ring.try_push(b"")
            assert ring.try_push(b"beta")
            assert ring.drain() == [b"alpha", b"", b"beta"]
            assert ring.drain() == []
        finally:
            ring.unlink()

    def test_len_counts_unread_bytes(self):
        ring = ShmRing.create(128)
        try:
            assert len(ring) == 0
            ring.try_push(b"12345")
            assert len(ring) == 4 + 5
            ring.drain()
            assert len(ring) == 0
        finally:
            ring.unlink()

    def test_full_ring_refuses_without_corruption(self):
        ring = ShmRing.create(64)
        try:
            payload = b"x" * 64  # 4 + 64 > 64: can never fit
            assert not ring.try_push(payload)
            assert len(ring) == 0
            assert ring.try_push(b"ok")
            assert ring.drain() == [b"ok"]
        finally:
            ring.unlink()

    def test_wraparound_preserves_records(self):
        # Fill/drain far past capacity so the cursors wrap byte-wise many
        # times; every record must come back intact and in order.
        ring = ShmRing.create(96)
        rng = random.Random(7)
        expected = []
        try:
            for round_no in range(200):
                payload = bytes([round_no % 256]) * rng.randrange(0, 40)
                if ring.try_push(payload):
                    expected.append(payload)
                else:
                    # Exact fit condition: it failed because it cannot fit.
                    assert 4 + len(payload) > ring.capacity - len(ring)
                    assert ring.drain() == expected
                    expected = [payload]
                    assert ring.try_push(payload)
            assert ring.drain() == expected
        finally:
            ring.unlink()

    def test_torn_record_is_detected(self):
        import struct

        ring = ShmRing.create(64)
        try:
            ring.try_push(b"abc")
            # Corrupt the length prefix to claim more bytes than exist.
            struct.Struct("<I").pack_into(ring._shm.buf, 16, 1000)
            with pytest.raises(ShmError, match="torn"):
                ring.drain()
        finally:
            ring.unlink()

    def test_attach_sees_creator_writes(self):
        ring = ShmRing.create(128)
        try:
            other = ShmRing.attach(ring.name)
            ring.try_push(b"hello")
            assert other.drain() == [b"hello"]
            other.close()
        finally:
            ring.unlink()

    def test_close_then_use_raises(self):
        ring = ShmRing.create(64)
        ring.unlink()
        with pytest.raises(ShmError, match="closed"):
            ring.try_push(b"x")
        with pytest.raises(ShmError, match="closed"):
            ring.drain()

    def test_unlink_is_idempotent(self):
        ring = ShmRing.create(64)
        ring.unlink()
        ring.unlink()  # second call is a no-op, not an error

    def test_tiny_capacity_is_rejected(self):
        with pytest.raises(ShmError, match="capacity"):
            ShmRing.create(8)

    def test_name_is_unique_per_ring(self):
        a = ShmRing.create(64)
        b = ShmRing.create(64)
        try:
            assert a.name != b.name
        finally:
            a.unlink()
            b.unlink()

    def test_default_capacity(self):
        ring = ShmRing.create()
        try:
            assert ring.capacity == DEFAULT_RING_BYTES
        finally:
            ring.unlink()
