"""Unit tests for generator-based processes and signals."""

import pytest

from repro.sim import Kernel, Process, Signal, SimulationError, spawn


def test_process_sleeps_between_yields():
    kernel = Kernel()
    times = []

    def worker():
        times.append(kernel.now)
        yield 100.0
        times.append(kernel.now)
        yield 50.0
        times.append(kernel.now)

    process = spawn(kernel, worker())
    kernel.run()
    assert times == [0.0, 100.0, 150.0]
    assert process.finished


def test_spawn_with_delay():
    kernel = Kernel()
    times = []

    def worker():
        times.append(kernel.now)
        yield 1.0

    spawn(kernel, worker(), delay=25.0)
    kernel.run()
    assert times == [25.0]


def test_signal_wakes_waiters_with_payload():
    kernel = Kernel()
    signal = Signal(kernel, "ready")
    got = []

    def worker():
        payload = yield signal
        got.append(payload)

    spawn(kernel, worker())
    kernel.run()
    assert got == []  # nothing fired yet
    kernel.schedule(10.0, signal.fire, "hello")
    kernel.run()
    assert got == ["hello"]
    assert signal.fire_count == 1


def test_signal_only_wakes_current_waiters():
    kernel = Kernel()
    signal = Signal(kernel, "s")
    woken = kernel.schedule(0.0, lambda: None)  # noqa: F841 - warm the queue
    count = signal.fire()
    assert count == 0


def test_process_stop_prevents_resume():
    kernel = Kernel()
    steps = []

    def worker():
        steps.append(1)
        yield 100.0
        steps.append(2)

    process = spawn(kernel, worker())
    kernel.run_until(50.0)
    process.stop()
    kernel.run()
    assert steps == [1]
    assert process.finished


def test_process_failure_recorded_and_raised():
    kernel = Kernel()

    def worker():
        yield 1.0
        raise RuntimeError("boom")

    process = spawn(kernel, worker())
    with pytest.raises(RuntimeError):
        kernel.run()
    assert process.finished
    assert isinstance(process.failed, RuntimeError)


def test_double_start_rejected():
    kernel = Kernel()

    def worker():
        yield 1.0

    process = spawn(kernel, worker())
    with pytest.raises(SimulationError):
        process.start()


def test_bad_yield_type_rejected():
    kernel = Kernel()

    def worker():
        yield "not a delay"

    spawn(kernel, worker())
    with pytest.raises(SimulationError):
        kernel.run()


def test_negative_delay_rejected():
    kernel = Kernel()

    def worker():
        yield -5.0

    spawn(kernel, worker())
    with pytest.raises(SimulationError):
        kernel.run()


def test_yield_none_means_immediate_resume():
    kernel = Kernel()
    steps = []

    def worker():
        steps.append(kernel.now)
        yield
        steps.append(kernel.now)

    spawn(kernel, worker())
    kernel.run()
    assert steps == [0.0, 0.0]


def test_signal_remove_waiter():
    kernel = Kernel()
    signal = Signal(kernel)
    calls = []
    cb = calls.append
    signal.wait(cb)
    assert signal.waiter_count == 1
    signal.remove_waiter(cb)
    assert signal.waiter_count == 0
    signal.fire("x")
    kernel.run()
    assert calls == []
