"""Unit tests for the telemetry plane: sampler, timeline, aggregation,
Prometheus rendering, health verdicts, and the live progress view."""

import io
import json

import pytest

from repro.core.shard import DeviceSpec, Shard, ShardSpec
from repro.obs.live import LiveView
from repro.obs.prometheus import (
    metric_name,
    snapshot_to_prometheus,
    timeline_to_prometheus,
)
from repro.obs.telemetry import NullShardTelemetry, ShardTelemetry
from repro.obs.timeline import (
    FleetTimeline,
    TimelineError,
    aggregate_totals,
    fleet_health,
    read_timeline,
    render_health,
    timeline_to_jsonl,
    totals_from_jsonl,
)


def _shard(telemetry=True, seed=3, devices=2):
    spec = ShardSpec(
        seed=seed,
        collectors=("lab",),
        devices=tuple(DeviceSpec(with_email_app=True) for _ in range(devices)),
        telemetry=telemetry,
    )
    shard = Shard(spec)
    shard.start()
    return shard


class TestSampler:
    def test_sample_carries_every_section(self):
        shard = _shard()
        shard.run(minutes=10)
        sample = shard.telemetry.sample(3, shard.kernel.now, 2, 5)
        assert sample["kind"] == "sample"
        assert sample["epoch"] == 3
        assert sample["shard"] == shard.shard_id
        assert sample["kernel"]["events"] == shard.kernel.events_executed
        assert sample["kernel"]["pending"] == shard.kernel.pending_events
        assert sample["handoffs"] == {"in": 2, "out": 5}
        assert sample["energy_uj"] > 0
        assert isinstance(sample["energy_uj"], int)
        assert set(sample["server"]) == {
            "stanzas_routed", "stanzas_lost", "stanzas_stored_offline",
        }
        assert sample["invariants"] is None
        assert "wall" not in sample  # wall only appears when passed in

    def test_wall_section_is_segregated_under_one_key(self):
        shard = _shard()
        wall = {"cpu_s": 1.5, "stall_s": 0.25, "rss_kb": 1024}
        sample = shard.telemetry.sample(1, 80.0, wall=wall)
        assert sample["wall"] == wall

    def test_disabled_sampler_is_a_null_lane(self):
        shard = _shard(telemetry=False)
        assert type(shard.telemetry) is NullShardTelemetry
        assert shard.telemetry.sample(1, 80.0) is None
        shard.telemetry.enable()
        assert type(shard.telemetry) is ShardTelemetry
        assert shard.telemetry.sample(1, 80.0) is not None
        shard.telemetry.disable()
        assert shard.telemetry.sample(2, 160.0) is None

    def test_sampling_never_perturbs_the_kernel(self):
        shard = _shard()
        pending = shard.kernel.pending_events
        executed = shard.kernel.events_executed
        shard.telemetry.sample(1, shard.kernel.now)
        assert shard.kernel.pending_events == pending
        assert shard.kernel.events_executed == executed

    def test_invariant_monitor_is_reported_when_attached(self):
        shard = _shard()

        class FakeMonitor:
            violations = []

        shard.extras["invariant_monitor"] = FakeMonitor()
        assert shard.telemetry.sample(1, 0.0)["invariants"] == {
            "ok": True, "violations": 0,
        }
        FakeMonitor.violations = ["boom"]
        assert shard.telemetry.sample(2, 0.0)["invariants"] == {
            "ok": False, "violations": 1,
        }


def _frame_samples(barrier_ms, shards=2, events=10):
    samples = []
    for k in range(shards):
        samples.append({
            "kind": "sample",
            "epoch": 1,
            "barrier_ms": barrier_ms,
            "shard": f"f/{k}",
            "kernel": {"events": events + k, "pending": 3, "tombstones": 0,
                       "compactions": 0},
            "handoffs": {"in": 0, "out": 1},
            "server": {"stanzas_routed": k, "stanzas_lost": 0,
                       "stanzas_stored_offline": 0},
            "energy_uj": 1000 * (k + 1),
            "spans": {"recorded": 5, "dropped": 0},
            "hops": {"route": {"count": 2, "sum_ms": 4.0, "min_ms": 1.0,
                               "max_ms": 3.0}},
            "counters": {"broker.published": 4 + k},
            "invariants": None,
            "wall": {"cpu_s": 0.5 + k, "stall_s": 0.1, "rss_kb": 2048},
        })
    return samples


def _timeline(barriers=2):
    timeline = FleetTimeline("f", devices=4, shards=2)
    for i in range(1, barriers + 1):
        timeline.append(
            epoch=i,
            barrier_ms=80.0 * i,
            samples=_frame_samples(80.0 * i),
            handoffs=3,
            backlog=1,
            window_wall_s=0.01 * i,
        )
    return timeline


class TestTimeline:
    def test_totals_sum_additive_fields(self):
        totals = aggregate_totals(_timeline())
        assert totals["events"] == 21
        assert totals["energy_uj"] == 3000
        assert totals["spans_recorded"] == 10
        assert totals["server"]["stanzas_routed"] == 1
        assert totals["counters"]["broker.published"] == 9
        assert totals["hop_counts"]["route"] == 4
        assert totals["shards"] == 2

    def test_totals_of_empty_timeline_raise(self):
        with pytest.raises(TimelineError, match="no samples"):
            aggregate_totals(FleetTimeline("f", 0, 1))

    def test_totals_reject_mixed_barriers(self):
        mixed = _frame_samples(80.0) + _frame_samples(160.0, shards=1)
        with pytest.raises(TimelineError, match="different barriers"):
            aggregate_totals(mixed)

    def test_deterministic_export_strips_wall_everywhere(self):
        text = timeline_to_jsonl(_timeline(), deterministic=True)
        assert '"wall"' not in text
        records = [json.loads(line) for line in text.splitlines()]
        kinds = [r["kind"] for r in records]
        assert kinds.count("totals") == 1
        assert kinds[-1] == "totals"
        assert kinds.count("barrier") == 2
        assert kinds.count("sample") == 4

    def test_wall_mode_keeps_wall_sections(self):
        text = timeline_to_jsonl(_timeline(), deterministic=False)
        assert '"wall"' in text
        assert '"cpu_s"' in text
        assert '"window_s"' in text

    def test_export_round_trips_and_totals_parse(self, tmp_path):
        timeline = _timeline()
        path = tmp_path / "timeline.jsonl"
        path.write_text(timeline_to_jsonl(timeline), encoding="utf-8")
        records = read_timeline(str(path))
        assert len(records) == 7  # 4 samples + 2 barriers + 1 totals
        totals = totals_from_jsonl(str(path))
        expected = aggregate_totals(timeline)
        assert totals == json.loads(json.dumps(expected))

    def test_totals_from_export_without_totals_line_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(TimelineError, match="no totals"):
            totals_from_jsonl(str(path))

    def test_empty_timeline_exports_empty_text(self):
        assert timeline_to_jsonl(FleetTimeline("f", 0, 1)) == ""


class TestHealth:
    def test_health_reads_wall_sections(self):
        health = fleet_health(_timeline())
        assert health["barriers"] == 2
        assert health["shards"]["f/0"]["cpu_s"] == 0.5
        assert health["shards"]["f/1"]["cpu_s"] == 1.5
        assert health["stall_s_total"] == pytest.approx(0.2)
        assert health["imbalance"] == 1.5
        assert health["window_s_max"] == 0.02

    def test_slow_shard_is_flagged(self):
        timeline = FleetTimeline("f", 4, 2)
        samples = _frame_samples(80.0)
        samples[1]["wall"]["cpu_s"] = 100.0
        timeline.append(1, 80.0, samples, 0, 0, 0.01)
        health = fleet_health(timeline)
        assert health["slow_shards"] == ["f/1"]
        verdict = render_health(health)
        assert "slow: f/1" in verdict

    def test_balanced_fleet_renders_balanced(self):
        timeline = FleetTimeline("f", 4, 2)
        samples = _frame_samples(80.0)
        for sample in samples:
            sample["wall"]["cpu_s"] = 1.0
        timeline.append(1, 80.0, samples, 0, 0, 0.01)
        assert "balanced" in render_health(fleet_health(timeline))

    def _health_for_cpus(self, cpus):
        timeline = FleetTimeline("f", 4, len(cpus))
        samples = _frame_samples(80.0, shards=len(cpus))
        for sample, cpu in zip(samples, cpus):
            sample["wall"]["cpu_s"] = cpu
        timeline.append(1, 80.0, samples, 0, 0, 0.01)
        return fleet_health(timeline)

    def test_exactly_at_slow_factor_is_not_slow(self):
        # cpu [3.0, 1.0]: mean 2.0, threshold 1.5x mean = 3.0 — the slow
        # flag requires strictly greater, so the boundary shard passes.
        health = self._health_for_cpus([3.0, 1.0])
        assert health["slow_shards"] == []
        # The same frame still trips the imbalance flag (1.5 > 1.25).
        assert "barrier imbalance" in render_health(health)

    def test_just_past_slow_factor_is_flagged(self):
        health = self._health_for_cpus([3.000003, 1.0])
        assert health["slow_shards"] == ["f/0"]

    def test_exactly_at_imbalance_flag_renders_balanced(self):
        # max/mean = 1.25/1.0 — the flag requires strictly greater.
        health = self._health_for_cpus([1.25, 0.75])
        assert health["imbalance"] == 1.25
        assert "balanced" in render_health(health)

    def test_just_past_imbalance_flag_is_reported(self):
        health = self._health_for_cpus([1.3, 0.7])
        assert health["imbalance"] == 1.3
        assert health["slow_shards"] == []  # imbalance alone, not slowness
        assert "barrier imbalance 1.30x" in render_health(health)

    def test_missing_rss_renders_as_zero(self):
        timeline = FleetTimeline("f", 4, 2)
        samples = _frame_samples(80.0)
        for sample in samples:
            sample["wall"]["rss_kb"] = None
        timeline.append(1, 80.0, samples, 0, 0, 0.01)
        health = fleet_health(timeline)
        assert health["shards"]["f/0"]["rss_kb"] == 0
        render_health(health)  # must not raise on formatting


class TestPrometheus:
    def test_metric_names_are_sanitized(self):
        assert metric_name("broker.published") == "pogo_broker_published"
        assert metric_name("9lives") == "pogo__9lives"

    def test_snapshot_rendering_scalars_and_histograms(self):
        text = snapshot_to_prometheus(
            {"c": 3, "g": 1.5,
             "h": {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}},
            labels={"shard": "f/0"},
        )
        assert '# TYPE pogo_c counter' in text
        assert 'pogo_c{shard="f/0"} 3' in text
        assert '# TYPE pogo_g gauge' in text
        assert 'pogo_h_count{shard="f/0"} 2' in text
        assert 'pogo_h_sum{shard="f/0"} 4.0' in text

    def test_timeline_rendering_is_deterministic(self):
        a = timeline_to_prometheus(_timeline())
        b = timeline_to_prometheus(_timeline())
        assert a == b
        assert 'pogo_events_executed{shard="f/0"} 10' in a
        assert "pogo_fleet_events_executed 21" in a
        assert 'pogo_hop_latency_ms_count{hop="route",shard="f/0"} 2' in a
        assert "# TYPE pogo_events_executed counter" in a
        # one TYPE header per family, not per sample
        assert a.count("# TYPE pogo_events_executed counter") == 1

    def test_empty_timeline_renders_empty(self):
        assert timeline_to_prometheus(FleetTimeline("f", 0, 1)) == ""


class TestLiveView:
    def _frame(self, barrier_ms, epoch=1):
        return {
            "epoch": epoch,
            "barrier_ms": barrier_ms,
            "samples": _frame_samples(barrier_ms),
            "handoffs": 3,
            "backlog": 1,
            "wall": {"window_s": 0.01},
        }

    def test_non_tty_emits_one_line_summaries(self):
        stream = io.StringIO()
        view = LiveView(160.0, devices=4, shards=2, stream=stream, refresh_s=0.0)
        view(self._frame(80.0))
        view(self._frame(160.0, epoch=2))
        view.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "repro top" in lines[0]
        assert "events" in lines[0]
        assert "\x1b[" not in stream.getvalue()

    def test_tty_repaints_with_shard_bars(self):
        class FakeTty(io.StringIO):
            def isatty(self):
                return True

        stream = FakeTty()
        view = LiveView(160.0, devices=4, shards=2, stream=stream, refresh_s=0.0)
        view(self._frame(80.0))
        view(self._frame(160.0, epoch=2))
        view.close()
        text = stream.getvalue()
        assert "f/0" in text and "f/1" in text
        assert "\x1b[" in text  # cursor-up repaint

    def test_refresh_throttle_skips_but_final_frame_paints(self):
        stream = io.StringIO()
        view = LiveView(160.0, devices=4, shards=2, stream=stream,
                        refresh_s=3600.0)
        view(self._frame(80.0))        # first paint (last_paint=0)
        view(self._frame(120.0))       # throttled
        view(self._frame(160.0, epoch=3))  # final: always paints
        assert view.frames_seen == 3
        assert len(stream.getvalue().splitlines()) == 2
