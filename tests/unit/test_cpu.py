"""Unit tests for the CPU model: wake locks, alarms, sleep-frozen timers."""

import pytest

from repro.device.cpu import Cpu, CpuConfig
from repro.device.power import PowerRail
from repro.sim import Kernel


def make_cpu(hold_ms=1000.0):
    kernel = Kernel()
    rail = PowerRail(kernel)
    cpu = Cpu(kernel, rail, CpuConfig(awake_hold_ms=hold_ms))
    return kernel, rail, cpu


def test_cpu_sleeps_after_hold_with_no_activity():
    kernel, rail, cpu = make_cpu(hold_ms=1000.0)
    assert cpu.awake
    kernel.run_until(2000.0)
    assert not cpu.awake
    assert rail.draw_of("cpu") == cpu.config.sleep_w


def test_wake_lock_prevents_sleep():
    kernel, _, cpu = make_cpu(hold_ms=500.0)
    cpu.acquire_wake_lock("task")
    kernel.run_until(10_000.0)
    assert cpu.awake
    cpu.release_wake_lock("task")
    kernel.run_until(12_000.0)
    assert not cpu.awake


def test_nested_wake_locks():
    kernel, _, cpu = make_cpu(hold_ms=200.0)
    cpu.acquire_wake_lock("t")
    cpu.acquire_wake_lock("t")
    assert cpu.wake_locks_held == 2
    cpu.release_wake_lock("t")
    assert cpu.holds_wake_lock("t")
    kernel.run_until(5000.0)
    assert cpu.awake
    cpu.release_wake_lock("t")
    kernel.run_until(6000.0)
    assert not cpu.awake


def test_release_unknown_wake_lock_raises():
    _, _, cpu = make_cpu()
    with pytest.raises(KeyError):
        cpu.release_wake_lock("never-acquired")


def test_alarm_wakes_cpu_and_runs_callback():
    kernel, _, cpu = make_cpu(hold_ms=500.0)
    fired = []
    kernel.run_until(2000.0)
    assert not cpu.awake
    cpu.set_alarm(3000.0, fired.append, "ding")
    kernel.run_until(6000.0)
    assert fired == ["ding"]
    assert cpu.wake_count == 1


def test_alarm_cancel():
    kernel, _, cpu = make_cpu()
    fired = []
    alarm = cpu.set_alarm(1000.0, fired.append, "x")
    alarm.cancel()
    kernel.run_until(3000.0)
    assert fired == []


def test_repeating_alarm_fires_at_fixed_rate():
    kernel, _, cpu = make_cpu(hold_ms=100.0)
    times = []
    alarm = cpu.set_repeating_alarm(1000.0, lambda: times.append(kernel.now))
    kernel.run_until(3500.0)
    assert times == [1000.0, 2000.0, 3000.0]
    assert alarm.fire_count == 3
    alarm.cancel()
    kernel.run_until(6000.0)
    assert len(times) == 3


def test_repeating_alarm_initial_delay():
    kernel, _, cpu = make_cpu(hold_ms=100.0)
    times = []
    cpu.set_repeating_alarm(1000.0, lambda: times.append(kernel.now), initial_delay_ms=250.0)
    kernel.run_until(2500.0)
    assert times == [250.0, 1250.0, 2250.0]


def test_invalid_repeating_interval():
    _, _, cpu = make_cpu()
    with pytest.raises(ValueError):
        cpu.set_repeating_alarm(0.0, lambda: None)


def test_sleep_frozen_timer_freezes_while_asleep():
    """The Section 4.7 mechanism: a Thread.sleep-style timer only counts
    down while the CPU is awake, so it fires shortly after some *other*
    wakeup — never causing one itself."""
    kernel, _, cpu = make_cpu(hold_ms=1000.0)
    fired = []
    # CPU sleeps at ~1000ms.  Timer of 2000ms started at t=0 has 1000ms
    # left when the CPU sleeps.
    cpu.sleep_frozen_timer(2000.0, lambda: fired.append(kernel.now))
    kernel.run_until(60_000.0)
    assert fired == []  # frozen all this time
    assert not cpu.awake
    # An alarm wakes the CPU at t=100000; the timer resumes and fires
    # 1000ms later.
    cpu.set_alarm(40_000.0, lambda: None)
    kernel.run_until(200_000.0)
    assert fired == [101_000.0]


def test_sleep_frozen_timer_runs_normally_while_awake():
    kernel, _, cpu = make_cpu(hold_ms=10_000.0)
    fired = []
    cpu.sleep_frozen_timer(500.0, lambda: fired.append(kernel.now))
    kernel.run_until(1000.0)
    assert fired == [500.0]


def test_sleep_frozen_timer_cancel():
    kernel, _, cpu = make_cpu(hold_ms=10_000.0)
    fired = []
    timer = cpu.sleep_frozen_timer(500.0, lambda: fired.append(1))
    timer.cancel()
    kernel.run_until(1000.0)
    assert fired == []


def test_frozen_timer_fire_does_not_extend_awake_window():
    """Pogo's polling must not keep the CPU awake (Section 4.7)."""
    kernel, _, cpu = make_cpu(hold_ms=1000.0)

    polls = []

    def poll():
        polls.append(kernel.now)
        cpu.sleep_frozen_timer(400.0, poll)

    cpu.sleep_frozen_timer(400.0, poll)
    kernel.run_until(30_000.0)
    # CPU slept at ~1000ms; polls happened only before that.
    assert not cpu.awake
    assert all(t <= 1000.0 for t in polls)
    assert len(polls) == 2  # t=400, t=800


def test_wake_listeners_and_track():
    kernel, _, cpu = make_cpu(hold_ms=100.0)
    reasons = []
    cpu.on_wake.append(reasons.append)
    kernel.run_until(1000.0)
    cpu.set_alarm(500.0, lambda: None)
    kernel.run_until(5000.0)
    assert reasons == ["alarm"]
    blocks = cpu.awake_track.closed_intervals(kernel.now)
    assert len(blocks) == 2  # boot block + alarm block
    assert blocks[0].label == "boot"


def test_wake_while_awake_returns_false():
    _, _, cpu = make_cpu()
    assert cpu.awake
    assert cpu.wake("poke") is False
