"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Kernel, SimulationError
from repro.sim.kernel import HOUR, MINUTE, SECOND


def test_time_constants():
    assert SECOND == 1000.0
    assert MINUTE == 60 * SECOND
    assert HOUR == 60 * MINUTE


def test_schedule_and_run_orders_by_time():
    kernel = Kernel()
    fired = []
    kernel.schedule(30.0, fired.append, "c")
    kernel.schedule(10.0, fired.append, "a")
    kernel.schedule(20.0, fired.append, "b")
    kernel.run()
    assert fired == ["a", "b", "c"]
    assert kernel.now == 30.0


def test_same_time_events_fire_fifo():
    kernel = Kernel()
    fired = []
    for tag in range(5):
        kernel.schedule(10.0, fired.append, tag)
    kernel.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    kernel = Kernel()
    kernel.schedule(10.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.schedule_at(5.0, lambda: None)


def test_cancel_prevents_firing():
    kernel = Kernel()
    fired = []
    handle = kernel.schedule(10.0, fired.append, "x")
    assert handle.pending
    assert handle.cancel()
    kernel.run()
    assert fired == []
    assert not handle.pending
    # Second cancel reports failure.
    assert not handle.cancel()


def test_cancel_after_firing_returns_false():
    kernel = Kernel()
    handle = kernel.schedule(1.0, lambda: None)
    kernel.run()
    assert handle.fired
    assert not handle.cancel()


def test_run_until_stops_at_horizon_and_advances_clock():
    kernel = Kernel()
    fired = []
    kernel.schedule(10.0, fired.append, "early")
    kernel.schedule(100.0, fired.append, "late")
    kernel.run_until(50.0)
    assert fired == ["early"]
    assert kernel.now == 50.0
    kernel.run_until(150.0)
    assert fired == ["early", "late"]


def test_run_until_backwards_rejected():
    kernel = Kernel()
    kernel.run_until(100.0)
    with pytest.raises(SimulationError):
        kernel.run_until(50.0)


def test_events_scheduled_during_run_execute():
    kernel = Kernel()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            kernel.schedule(1.0, chain, n + 1)

    kernel.schedule(0.0, chain, 0)
    kernel.run()
    assert fired == [0, 1, 2, 3]
    assert kernel.now == 3.0


def test_max_events_limit():
    kernel = Kernel()
    fired = []

    def forever():
        fired.append(kernel.now)
        kernel.schedule(1.0, forever)

    kernel.schedule(0.0, forever)
    executed = kernel.run(max_events=10)
    assert executed == 10
    assert len(fired) == 10


def test_stop_inside_callback():
    kernel = Kernel()
    fired = []

    def stopper():
        fired.append("stop")
        kernel.stop()

    kernel.schedule(1.0, stopper)
    kernel.schedule(2.0, fired.append, "after")
    kernel.run()
    assert fired == ["stop"]
    # A later run picks the remaining event up.
    kernel.run()
    assert fired == ["stop", "after"]


def test_pending_events_and_next_event_time():
    kernel = Kernel()
    assert kernel.next_event_time() is None
    a = kernel.schedule(5.0, lambda: None)
    kernel.schedule(10.0, lambda: None)
    assert kernel.pending_events == 2
    assert kernel.next_event_time() == 5.0
    a.cancel()
    assert kernel.pending_events == 1
    assert kernel.next_event_time() == 10.0


def test_events_executed_counter():
    kernel = Kernel()
    for _ in range(7):
        kernel.schedule(1.0, lambda: None)
    kernel.run()
    assert kernel.events_executed == 7


# ---------------------------------------------------------------------------
# Repeating timers (native, re-armed in place)
# ---------------------------------------------------------------------------


def test_schedule_repeating_fires_every_interval():
    kernel = Kernel()
    times = []
    kernel.schedule_repeating(10.0, lambda: times.append(kernel.now))
    kernel.run_until(45.0)
    assert times == [10.0, 20.0, 30.0, 40.0]


def test_schedule_repeating_initial_delay():
    kernel = Kernel()
    times = []
    kernel.schedule_repeating(10.0, lambda: times.append(kernel.now), initial_delay=3.0)
    kernel.run_until(25.0)
    assert times == [3.0, 13.0, 23.0]


def test_schedule_repeating_reuses_one_handle():
    kernel = Kernel()
    ticks = []
    handle = kernel.schedule_repeating(5.0, lambda: ticks.append(kernel.now))
    kernel.run_until(20.0)
    assert len(ticks) == 4
    # The same handle is still armed for the next tick — no fresh
    # allocation per fire.
    assert handle.pending
    assert handle.time == 25.0


def test_schedule_repeating_cancel_stops_the_chain():
    kernel = Kernel()
    ticks = []
    handle = kernel.schedule_repeating(5.0, lambda: ticks.append(kernel.now))
    kernel.run_until(12.0)
    assert handle.cancel() is True
    kernel.run_until(100.0)
    assert ticks == [5.0, 10.0]


def test_schedule_repeating_rejects_bad_interval():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.schedule_repeating(0.0, lambda: None)
    with pytest.raises(SimulationError):
        kernel.schedule_repeating(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        kernel.schedule_repeating(5.0, lambda: None, initial_delay=-1.0)


def test_repeating_callback_may_cancel_its_own_handle():
    kernel = Kernel()
    ticks = []
    handle = None

    def tick():
        ticks.append(kernel.now)
        if len(ticks) == 3:
            handle.cancel()

    handle = kernel.schedule_repeating(5.0, tick)
    kernel.run()
    assert ticks == [5.0, 10.0, 15.0]
    assert kernel.pending_events == 0


# ---------------------------------------------------------------------------
# rearm (handle recycling)
# ---------------------------------------------------------------------------


def test_rearm_recycles_a_fired_handle():
    kernel = Kernel()
    fired = []
    handle = kernel.schedule(5.0, lambda: fired.append(kernel.now))
    kernel.run()
    assert fired == [5.0]
    same = kernel.rearm(handle, 7.0)
    assert same is handle
    assert handle.pending
    kernel.run()
    assert fired == [5.0, 12.0]


def test_rearm_rejects_pending_and_cancelled_handles():
    kernel = Kernel()
    pending = kernel.schedule(5.0, lambda: None)
    with pytest.raises(SimulationError):
        kernel.rearm(pending, 1.0)
    pending.cancel()
    with pytest.raises(SimulationError):
        kernel.rearm(pending, 1.0)
    fired = kernel.schedule(1.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.rearm(fired, -1.0)


def test_rearm_preserves_fifo_with_fresh_schedules():
    kernel = Kernel()
    log = []
    handle = kernel.schedule(1.0, lambda: log.append("recycled"))
    kernel.run()
    log.clear()
    # Re-armed handle scheduled first for t=5, fresh handle second for
    # t=5: scheduling order decides.
    kernel.rearm(handle, 5.0)
    kernel.schedule(5.0, lambda: log.append("fresh"))
    kernel.run()
    assert log == ["recycled", "fresh"]


# ---------------------------------------------------------------------------
# Tombstones and compaction
# ---------------------------------------------------------------------------


def test_cancel_leaves_tombstone_until_threshold(monkeypatch):
    import repro.sim.kernel as kernel_mod

    monkeypatch.setattr(kernel_mod, "COMPACT_MIN_TOMBSTONES", 4)
    kernel = Kernel()
    handles = [kernel.schedule(float(i + 100), lambda: None) for i in range(10)]
    for handle in handles[:3]:
        handle.cancel()
    # Below threshold: tombstones sit in the heap.
    assert kernel._tombstones == 3
    assert len(kernel._queue) == 10
    assert kernel.compactions == 0
    # Live count is maintained without scanning.
    assert kernel.pending_events == 7


def test_compaction_triggers_and_preserves_order(monkeypatch):
    import repro.sim.kernel as kernel_mod

    monkeypatch.setattr(kernel_mod, "COMPACT_MIN_TOMBSTONES", 4)
    kernel = Kernel()
    log = []
    handles = [kernel.schedule(float(i), lambda i=i: log.append(i)) for i in range(12)]
    # Compaction requires tombstones >= the floor (4) AND tombstones >
    # live, first true at the 7th cancel (7 tombstones > 5 live).
    for i in range(7):
        handles[i].cancel()
    assert kernel.compactions == 1
    assert kernel._tombstones == 0
    assert len(kernel._queue) == kernel.pending_events == 5
    # A cancel after compaction starts a fresh tombstone count.
    handles[7].cancel()
    assert kernel._tombstones == 1
    assert kernel.pending_events == 4
    kernel.run()
    assert log == [8, 9, 10, 11]


def test_next_event_time_skips_tombstones():
    kernel = Kernel()
    first = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    first.cancel()
    assert kernel.next_event_time() == 2.0
    assert kernel.pending_events == 1
