"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Kernel, SimulationError
from repro.sim.kernel import HOUR, MINUTE, SECOND


def test_time_constants():
    assert SECOND == 1000.0
    assert MINUTE == 60 * SECOND
    assert HOUR == 60 * MINUTE


def test_schedule_and_run_orders_by_time():
    kernel = Kernel()
    fired = []
    kernel.schedule(30.0, fired.append, "c")
    kernel.schedule(10.0, fired.append, "a")
    kernel.schedule(20.0, fired.append, "b")
    kernel.run()
    assert fired == ["a", "b", "c"]
    assert kernel.now == 30.0


def test_same_time_events_fire_fifo():
    kernel = Kernel()
    fired = []
    for tag in range(5):
        kernel.schedule(10.0, fired.append, tag)
    kernel.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    kernel = Kernel()
    kernel.schedule(10.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.schedule_at(5.0, lambda: None)


def test_cancel_prevents_firing():
    kernel = Kernel()
    fired = []
    handle = kernel.schedule(10.0, fired.append, "x")
    assert handle.pending
    assert handle.cancel()
    kernel.run()
    assert fired == []
    assert not handle.pending
    # Second cancel reports failure.
    assert not handle.cancel()


def test_cancel_after_firing_returns_false():
    kernel = Kernel()
    handle = kernel.schedule(1.0, lambda: None)
    kernel.run()
    assert handle.fired
    assert not handle.cancel()


def test_run_until_stops_at_horizon_and_advances_clock():
    kernel = Kernel()
    fired = []
    kernel.schedule(10.0, fired.append, "early")
    kernel.schedule(100.0, fired.append, "late")
    kernel.run_until(50.0)
    assert fired == ["early"]
    assert kernel.now == 50.0
    kernel.run_until(150.0)
    assert fired == ["early", "late"]


def test_run_until_backwards_rejected():
    kernel = Kernel()
    kernel.run_until(100.0)
    with pytest.raises(SimulationError):
        kernel.run_until(50.0)


def test_events_scheduled_during_run_execute():
    kernel = Kernel()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            kernel.schedule(1.0, chain, n + 1)

    kernel.schedule(0.0, chain, 0)
    kernel.run()
    assert fired == [0, 1, 2, 3]
    assert kernel.now == 3.0


def test_max_events_limit():
    kernel = Kernel()
    fired = []

    def forever():
        fired.append(kernel.now)
        kernel.schedule(1.0, forever)

    kernel.schedule(0.0, forever)
    executed = kernel.run(max_events=10)
    assert executed == 10
    assert len(fired) == 10


def test_stop_inside_callback():
    kernel = Kernel()
    fired = []

    def stopper():
        fired.append("stop")
        kernel.stop()

    kernel.schedule(1.0, stopper)
    kernel.schedule(2.0, fired.append, "after")
    kernel.run()
    assert fired == ["stop"]
    # A later run picks the remaining event up.
    kernel.run()
    assert fired == ["stop", "after"]


def test_pending_events_and_next_event_time():
    kernel = Kernel()
    assert kernel.next_event_time() is None
    a = kernel.schedule(5.0, lambda: None)
    kernel.schedule(10.0, lambda: None)
    assert kernel.pending_events == 2
    assert kernel.next_event_time() == 5.0
    a.cancel()
    assert kernel.pending_events == 1
    assert kernel.next_event_time() == 10.0


def test_events_executed_counter():
    kernel = Kernel()
    for _ in range(7):
        kernel.schedule(1.0, lambda: None)
    kernel.run()
    assert kernel.events_executed == 7
