"""Unit tests for deployment disruptions."""

import random

import pytest

from repro.device import Phone
from repro.sim import DAY, HOUR, Kernel
from repro.world.disruptions import (
    BATTERY_OUT,
    DATA_OFF,
    DATA_ON,
    REBOOT,
    SCRIPT_UPDATE,
    Disruption,
    DisruptionPlan,
    cell_outage,
    random_reboots,
    script_update_schedule,
    standard_plan,
    trip_abroad,
)


def test_plan_schedules_reboot():
    kernel = Kernel()
    phone = Phone(kernel)
    plan = DisruptionPlan().add(1 * HOUR, REBOOT)
    plan.schedule(kernel, phone)
    kernel.run_until(1 * HOUR + 1.0)
    assert not phone.alive
    kernel.run_until(2 * HOUR)
    assert phone.alive
    assert phone.reboot_count == 1


def test_battery_out_has_long_downtime():
    kernel = Kernel()
    phone = Phone(kernel)
    DisruptionPlan().add(1000.0, BATTERY_OUT).schedule(kernel, phone)
    kernel.run_until(20 * 60 * 1000.0)
    assert not phone.alive  # still charging
    kernel.run_until(50 * 60 * 1000.0)
    assert phone.alive


def test_data_off_and_on():
    kernel = Kernel()
    phone = Phone(kernel)
    plan = DisruptionPlan()
    plan.add(100.0, DATA_OFF)
    plan.add(200.0, DATA_ON)
    plan.schedule(kernel, phone)
    kernel.run_until(150.0)
    assert not phone.modem.data_enabled
    kernel.run_until(250.0)
    assert phone.modem.data_enabled


def test_script_update_invokes_hook():
    kernel = Kernel()
    phone = Phone(kernel)
    updates = []
    DisruptionPlan().add(500.0, SCRIPT_UPDATE).schedule(
        kernel, phone, on_script_update=lambda: updates.append(kernel.now)
    )
    kernel.run_until(1000.0)
    assert updates == [500.0]


def test_unknown_kind_raises():
    kernel = Kernel()
    phone = Phone(kernel)
    DisruptionPlan().add(10.0, "frobnicate").schedule(kernel, phone)
    with pytest.raises(ValueError):
        kernel.run()


def test_random_reboots_rate():
    rng = random.Random(3)
    events = random_reboots(rng, days=100, rate_per_day=0.5)
    assert 25 <= len(events) <= 80
    assert all(e.kind == REBOOT for e in events)
    assert all(0 <= e.time_ms < 100 * DAY for e in events)


def test_random_reboots_zero_rate():
    assert random_reboots(random.Random(1), days=10, rate_per_day=0.0) == []


def test_script_update_schedule_respects_horizon():
    events = script_update_schedule(days=6, update_days=[1, 3, 10])
    assert len(events) == 2
    assert all(e.kind == SCRIPT_UPDATE for e in events)


def test_trip_abroad_and_outage_shapes():
    trip = trip_abroad(10.0, 17.0)
    # Data roaming off AND no known Wi-Fi networks while abroad.
    assert [e.kind for e in trip[:2]] == [DATA_OFF, "wifi_off"]
    assert {e.kind for e in trip if e.time_ms == 17.0 * DAY} == {DATA_ON, "wifi_on"}
    outage = cell_outage(12.0, 14.0)
    assert outage[0].time_ms == 12.0 * DAY
    assert outage[1].time_ms == 14.0 * DAY


def test_wifi_suppression_survives_reboot():
    kernel = Kernel()
    phone = Phone(kernel)
    phone.set_wifi_connected(True)
    phone.suppress_wifi_association(True)
    assert not phone.wifi.connected
    phone.reboot(downtime_ms=5000.0)
    kernel.run_until(60_000.0)
    # The boot path must not silently restore the association.
    assert not phone.wifi.connected
    phone.suppress_wifi_association(False)
    assert phone.wifi.connected


def test_standard_plan_composition():
    plan = standard_plan(
        random.Random(5),
        days=24,
        update_days=[2, 5],
        extra=trip_abroad(10, 17),
    )
    assert plan.count(SCRIPT_UPDATE) == 2
    assert plan.count(DATA_OFF) == 1
    events = plan.sorted_events()
    assert all(a.time_ms <= b.time_ms for a, b in zip(events, events[1:]))


def test_past_events_skipped():
    kernel = Kernel()
    kernel.run_until(1000.0)
    phone = Phone(kernel)
    plan = DisruptionPlan().add(500.0, REBOOT)  # already in the past
    plan.schedule(kernel, phone)
    kernel.run_until(2000.0)
    assert phone.reboot_count == 0
