"""Unit tests for the end-to-end acknowledgement layer."""

import pytest

from repro.net.acks import ReliableLink
from repro.sim import Kernel


class Pipe:
    """Connects two ReliableLinks with controllable loss."""

    def __init__(self):
        self.kernel = Kernel()
        self.drop_a_to_b = False
        self.drop_b_to_a = False
        self.delivered_a = []
        self.delivered_b = []
        self.a = ReliableLink(
            self.kernel, "b", self._send_a_to_b, self.delivered_a.append,
            request_ack_send=lambda: self._ack_from("a"),
        )
        self.b = ReliableLink(
            self.kernel, "a", self._send_b_to_a, self.delivered_b.append,
            request_ack_send=lambda: self._ack_from("b"),
        )

    def _send_a_to_b(self, stanza):
        if not self.drop_a_to_b:
            self.kernel.schedule(1.0, self.b.on_raw, stanza)

    def _send_b_to_a(self, stanza):
        if not self.drop_b_to_a:
            self.kernel.schedule(1.0, self.a.on_raw, stanza)

    def _ack_from(self, side):
        link, send = (self.a, self._send_a_to_b) if side == "a" else (self.b, self._send_b_to_a)
        ack = link.make_ack()
        if ack is not None:
            send(ack)

    def run(self, ms=10.0):
        self.kernel.run_until(self.kernel.now + ms)


def test_in_order_delivery():
    pipe = Pipe()
    for n in range(5):
        pipe.a.send({"n": n})
    pipe.run()
    assert [m["n"] for m in pipe.delivered_b] == [0, 1, 2, 3, 4]
    assert pipe.a.unacked_count == 0


def test_loss_recovered_by_resend():
    pipe = Pipe()
    pipe.drop_a_to_b = True
    pipe.a.send({"n": 0})
    pipe.run()
    assert pipe.delivered_b == []
    assert pipe.a.unacked_count == 1
    pipe.drop_a_to_b = False
    # Not resent before the minimum age...
    assert pipe.a.resend_unacked() == 0
    pipe.run(40_000.0)
    assert pipe.a.resend_unacked() == 1
    pipe.run()
    assert [m["n"] for m in pipe.delivered_b] == [0]
    assert pipe.a.unacked_count == 0


def test_duplicate_suppressed():
    pipe = Pipe()
    pipe.a.send({"n": 0})
    pipe.run(40_000.0)
    pipe.a._unacked[1] = {"n": 0}  # simulate a lost ack: force retransmit
    pipe.a._sent_at[1] = 0.0
    pipe.a._transmit(1)
    pipe.run()
    assert len(pipe.delivered_b) == 1
    assert pipe.b.duplicates >= 1


def test_out_of_order_buffered_until_gap_fills():
    pipe = Pipe()
    pipe.drop_a_to_b = True
    pipe.a.send({"n": 0})  # lost
    pipe.run()
    pipe.drop_a_to_b = False
    pipe.a.send({"n": 1})  # arrives out of order
    pipe.run()
    assert pipe.delivered_b == []  # held back
    pipe.run(40_000.0)
    pipe.a.resend_unacked()
    pipe.run()
    assert [m["n"] for m in pipe.delivered_b] == [0, 1]


def test_abandonment_advances_base_and_receiver_skips():
    pipe = Pipe()
    pipe.drop_a_to_b = True
    pipe.a.send({"n": 0})
    pipe.run(100_000.0)
    pipe.drop_a_to_b = False
    # Abandon everything older than 50 s, then send fresh data.
    pipe.a.resend_unacked(max_age_ms=50_000.0)
    assert pipe.a.abandoned == 1
    pipe.a.send({"n": 1})
    pipe.run()
    assert [m["n"] for m in pipe.delivered_b] == [1]


def test_piggybacked_acks_clear_reverse_direction():
    pipe = Pipe()
    pipe.b.send({"from_b": 1})
    pipe.run()
    # a received b's envelope; a's next envelope carries the ack.
    pipe.a.send({"from_a": 1})
    pipe.run()
    assert pipe.b.unacked_count == 0


def test_unknown_stanza_kind_rejected():
    pipe = Pipe()
    with pytest.raises(ValueError):
        pipe.a.on_raw({"kind": "mystery"})


def test_metrics_accumulate():
    pipe = Pipe()
    for n in range(3):
        pipe.a.send({"n": n})
    pipe.run()
    assert pipe.a.sent == 3
    assert pipe.b.delivered == 3
