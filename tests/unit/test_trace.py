"""Unit tests for trace recorders, interval tracks and time series."""

import pytest

from repro.sim import Interval, IntervalTrack, TimeSeries, TraceRecorder


class TestTraceRecorder:
    def test_record_with_clock(self):
        now = [0.0]
        trace = TraceRecorder(lambda: now[0])
        trace.record("cpu", "wake", reason="alarm")
        now[0] = 5.0
        trace.record("cpu", "sleep")
        assert len(trace) == 2
        assert trace.events[0].time == 0.0
        assert trace.events[1].time == 5.0

    def test_record_requires_time_source(self):
        trace = TraceRecorder()
        with pytest.raises(ValueError):
            trace.record("cpu", "wake")
        trace.record("cpu", "wake", time=1.0)
        assert trace.count() == 1

    def test_filter_and_count(self):
        trace = TraceRecorder(lambda: 0.0)
        trace.record("cpu", "wake")
        trace.record("cpu", "sleep")
        trace.record("modem", "state", old="idle", new="ramp")
        assert trace.count(source="cpu") == 2
        assert trace.count(kind="state") == 1
        assert trace.count(source="cpu", kind="sleep") == 1
        assert trace.last(source="modem").data["new"] == "ramp"
        assert trace.last(source="gps") is None

    def test_disabled_recorder_drops_events(self):
        trace = TraceRecorder(lambda: 0.0)
        trace.enabled = False
        trace.record("cpu", "wake")
        assert len(trace) == 0

    def test_clear(self):
        trace = TraceRecorder(lambda: 0.0)
        trace.record("a", "b")
        trace.clear()
        assert len(trace) == 0

    def test_ring_mode_keeps_most_recent_and_counts_dropped(self):
        trace = TraceRecorder(lambda: 0.0, max_events=3)
        for i in range(5):
            trace.record("src", f"event-{i}")
        assert len(trace) == 3
        assert [e.kind for e in trace] == ["event-2", "event-3", "event-4"]
        assert trace.recorded == 5
        assert trace.dropped == 2
        # Unbounded mode never drops.
        unbounded = TraceRecorder(lambda: 0.0)
        unbounded.record("src", "event")
        assert unbounded.dropped == 0

    def test_ring_mode_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(lambda: 0.0, max_events=0)

    def test_clear_resets_dropped_accounting(self):
        trace = TraceRecorder(lambda: 0.0, max_events=2)
        for i in range(4):
            trace.record("src", str(i))
        trace.clear()
        assert trace.recorded == 0
        assert trace.dropped == 0
        trace.record("src", "fresh")
        assert trace.recorded == 1 and trace.dropped == 0


class TestIntervalTrack:
    def test_open_close_records_interval(self):
        track = IntervalTrack("cpu")
        track.open(time=10.0, label="alarm")
        interval = track.close(time=25.0)
        assert interval == Interval(10.0, 25.0, "alarm")
        assert interval.duration == 15.0

    def test_reopen_is_noop(self):
        track = IntervalTrack("cpu")
        track.open(time=10.0, label="first")
        track.open(time=20.0, label="second")
        interval = track.close(time=30.0)
        assert interval.start == 10.0
        assert interval.label == "first"

    def test_close_without_open_returns_none(self):
        track = IntervalTrack("cpu")
        assert track.close(time=5.0) is None

    def test_closed_intervals_force_closes_open_block(self):
        track = IntervalTrack("cpu")
        track.open(time=0.0)
        track.close(time=10.0)
        track.open(time=20.0)
        intervals = track.closed_intervals(until=25.0)
        assert len(intervals) == 2
        assert intervals[-1].end == 25.0
        assert track.is_open  # not mutated

    def test_total_duration(self):
        track = IntervalTrack("x")
        track.open(time=0.0)
        track.close(time=5.0)
        track.open(time=10.0)
        track.close(time=12.0)
        assert track.total_duration() == 7.0

    def test_overlap_with_slack(self):
        a = Interval(0.0, 10.0)
        b = Interval(10.5, 20.0)
        assert not a.overlaps(b)
        assert a.overlaps(b, slack=1.0)
        assert a.overlaps(Interval(5.0, 6.0))
        assert not a.overlaps(Interval(11.0, 12.0))


class TestTimeSeries:
    def test_append_requires_time_order(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        with pytest.raises(ValueError):
            series.append(-1.0, 2.0)

    def test_integrate_trapezoid(self):
        series = TimeSeries()
        series.append(0.0, 0.0)
        series.append(10.0, 10.0)
        assert series.integrate() == pytest.approx(50.0)

    def test_integrate_constant(self):
        series = TimeSeries()
        for t in range(11):
            series.append(float(t), 2.0)
        assert series.integrate() == pytest.approx(20.0)

    def test_window(self):
        series = TimeSeries()
        for t in range(10):
            series.append(float(t), float(t))
        windowed = series.window(3.0, 6.0)
        assert windowed.times == [3.0, 4.0, 5.0, 6.0]

    def test_max_mean_empty(self):
        series = TimeSeries()
        assert series.max() == 0.0
        assert series.mean() == 0.0
        series.append(0.0, 4.0)
        series.append(1.0, 8.0)
        assert series.max() == 8.0
        assert series.mean() == 6.0
