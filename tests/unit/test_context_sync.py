"""Unit tests for context/broker synchronization across the link.

These exercise DeviceContext and CollectorContext directly with a fake
node, checking the op-level protocol: subscription mirroring, remote
proxies, pub forwarding and fan-out.
"""

import pytest

from repro.core.context import LINK_OWNER, DeviceContext
from repro.core.deployment import (
    OP_PUB,
    OP_SUB_ADD,
    OP_SUB_RELEASE,
    OP_SUB_REMOVE,
    OP_SUB_RENEW,
    sub_add_op,
    sub_change_op,
)
from repro.core.multibroker import CollectorContext
from repro.core.scheduler import SimpleScheduler
from repro.core.scripting import FreezeStore
from repro.sim import Kernel


class FakeNode:
    """Just enough node surface for contexts: records sends."""

    def __init__(self):
        self.kernel = Kernel()
        self.jid = "fake@x"
        self.watchdog_ms = 200.0
        self.scheduler = SimpleScheduler(self.kernel)
        self.freeze_store = FreezeStore()
        self.sent = []

    def send_to(self, peer, payload):
        self.sent.append((peer, payload))

    def ops(self, op):
        return [p for _, p in self.sent if p.get("op") == op]


def test_device_script_subscription_mirrored_to_collector():
    node = FakeNode()
    context = DeviceContext(node, "exp", "pc@x")
    sub = context.broker.subscribe("cmd", lambda m: None, {"p": 1}, owner="script:s")
    adds = node.ops(OP_SUB_ADD)
    assert len(adds) == 1
    assert adds[0]["channel"] == "cmd"
    assert adds[0]["params"] == {"p": 1}
    sub.release()
    assert node.ops(OP_SUB_RELEASE)
    sub.renew()
    assert node.ops(OP_SUB_RENEW)
    sub.remove()
    assert node.ops(OP_SUB_REMOVE)


def test_proxy_subscriptions_not_mirrored():
    node = FakeNode()
    context = DeviceContext(node, "exp", "pc@x")
    context.apply_sub_op(sub_add_op("exp", 42, "battery", {"interval": 60000}))
    # The remote proxy exists in the broker (sensors see it)...
    subs = context.broker.subscriptions("battery")
    assert len(subs) == 1
    assert subs[0].owner == LINK_OWNER
    assert subs[0].parameters == {"interval": 60000}
    # ...but no sub_add went back over the wire.
    assert node.ops(OP_SUB_ADD) == []


def test_publish_forwarded_only_with_remote_interest():
    node = FakeNode()
    context = DeviceContext(node, "exp", "pc@x")
    context.publish_internal("battery", {"v": 1})
    assert node.ops(OP_PUB) == []
    context.apply_sub_op(sub_add_op("exp", 1, "battery", None))
    context.publish_internal("battery", {"v": 2})
    pubs = node.ops(OP_PUB)
    assert len(pubs) == 1
    assert pubs[0]["msg"] == {"v": 2}


def test_released_proxy_stops_forwarding():
    node = FakeNode()
    context = DeviceContext(node, "exp", "pc@x")
    context.apply_sub_op(sub_add_op("exp", 1, "battery", None))
    context.apply_sub_op(sub_change_op(OP_SUB_RELEASE, "exp", 1))
    context.publish_internal("battery", {"v": 1})
    assert node.ops(OP_PUB) == []
    context.apply_sub_op(sub_change_op(OP_SUB_RENEW, "exp", 1))
    context.publish_internal("battery", {"v": 2})
    assert len(node.ops(OP_PUB)) == 1


def test_sub_add_same_id_replaces_proxy():
    node = FakeNode()
    context = DeviceContext(node, "exp", "pc@x")
    context.apply_sub_op(sub_add_op("exp", 1, "battery", None))
    context.apply_sub_op(sub_add_op("exp", 1, "battery", {"interval": 5000}))
    subs = context.broker.subscriptions("battery")
    assert len(subs) == 1
    assert subs[0].parameters == {"interval": 5000}


def test_deliver_remote_skips_proxies():
    node = FakeNode()
    context = DeviceContext(node, "exp", "pc@x")
    got = []
    context.broker.subscribe("cmd", got.append, owner="script:s")
    context.apply_sub_op(sub_add_op("exp", 1, "cmd", None))  # proxy on same channel
    delivered = context.deliver_remote("cmd", {"go": True})
    assert delivered == 1
    assert got == [{"go": True}]
    # Crucially, nothing was forwarded back (no loop).
    assert node.ops(OP_PUB) == []


def test_clear_remote_subs():
    node = FakeNode()
    context = DeviceContext(node, "exp", "pc@x")
    context.apply_sub_op(sub_add_op("exp", 1, "battery", None))
    context.clear_remote_subs()
    assert context.broker.subscriptions("battery") == []


def test_announce_local_subs_replays_state():
    node = FakeNode()
    context = DeviceContext(node, "exp", "pc@x")
    sub = context.broker.subscribe("cmd", lambda m: None, owner="script:s")
    sub.release()
    node.sent.clear()
    context.announce_local_subs()
    assert len(node.ops(OP_SUB_ADD)) == 1
    assert len(node.ops(OP_SUB_RELEASE)) == 1


# ---------------------------------------------------------------------------
# Collector side
# ---------------------------------------------------------------------------


def test_collector_subscription_fans_out_to_all_devices():
    node = FakeNode()
    context = CollectorContext(node, "exp")
    context.attach_device("d1@x")
    context.attach_device("d2@x")
    node.sent.clear()
    context.broker.subscribe("battery", lambda m: None, owner="script:collect")
    adds = node.ops(OP_SUB_ADD)
    assert {peer for peer, p in node.sent if p.get("op") == OP_SUB_ADD} == {"d1@x", "d2@x"}
    assert len(adds) == 2


def test_late_attached_device_gets_existing_subs_and_scripts():
    node = FakeNode()
    context = CollectorContext(node, "exp")
    context.device_scripts = {"scan": "x = 1\n"}
    context.broker.subscribe("battery", lambda m: None, owner="script:collect")
    node.sent.clear()
    context.attach_device("late@x")
    ops = [p["op"] for peer, p in node.sent if peer == "late@x"]
    assert "attach" in ops
    assert "deploy" in ops
    assert OP_SUB_ADD in ops


def test_collector_publish_fans_out_only_to_interested_devices():
    node = FakeNode()
    context = CollectorContext(node, "exp")
    context.attach_device("d1@x")
    context.attach_device("d2@x")
    context.apply_sub_op("d1@x", sub_add_op("exp", 7, "cmd", None))
    node.sent.clear()
    context.publish_from_script(None, "cmd", {"go": 1})
    pub_targets = [peer for peer, p in node.sent if p.get("op") == OP_PUB]
    assert pub_targets == ["d1@x"]


def test_deliver_remote_tags_origin_device():
    node = FakeNode()
    context = CollectorContext(node, "exp")
    context.attach_device("d1@x")
    got = []
    context.broker.subscribe("clusters", got.append, owner="script:collect")
    context.deliver_remote("d1@x", "clusters", {"entry": 1})
    assert got == [{"entry": 1, "_device": "d1@x"}]


def test_service_subscriptions_not_fanned_out():
    node = FakeNode()
    context = CollectorContext(node, "exp")
    context.attach_device("d1@x")
    node.sent.clear()
    context.broker.subscribe("geo-lookup", lambda m: None, owner="service:geo")
    assert node.ops(OP_SUB_ADD) == []
    node.sent.clear()
    context.sync_subscriptions_to("d1@x")
    assert node.ops(OP_SUB_ADD) == []


def test_reset_device_subs():
    node = FakeNode()
    context = CollectorContext(node, "exp")
    link = context.attach_device("d1@x")
    context.apply_sub_op("d1@x", sub_add_op("exp", 7, "cmd", None))
    assert link.interested_in("cmd")
    context.reset_device_subs("d1@x")
    assert not link.interested_in("cmd")


def test_push_script_updates_fleet():
    node = FakeNode()
    context = CollectorContext(node, "exp")
    context.attach_device("d1@x")
    context.attach_device("d2@x")
    node.sent.clear()
    context.push_script("scan", "y = 2\n")
    deploys = node.ops("deploy")
    assert len(deploys) == 2
    assert all(p["source"] == "y = 2\n" for p in deploys)
