"""Unit tests for message validation, wire format and copying."""

import pytest

from repro.core.messages import (
    MessageError,
    copy_message,
    from_json,
    message_size_bytes,
    messages_equal,
    to_json,
    validate_message,
)


def test_scalars_and_trees_validate():
    for value in (1, 1.5, "x", True, None, {"a": [1, {"b": None}]}, [1, 2, 3]):
        validate_message(value)


def test_invalid_types_rejected_with_path():
    with pytest.raises(MessageError) as exc:
        validate_message({"outer": {"inner": object()}})
    assert "$.outer.inner" in str(exc.value)
    with pytest.raises(MessageError) as exc:
        validate_message([1, [2, set()]])
    assert "[1][1]" in str(exc.value)


def test_non_string_keys_rejected():
    with pytest.raises(MessageError):
        validate_message({1: "x"})


def test_json_roundtrip():
    message = {"b": 1, "a": [True, None, 2.5], "c": {"nested": "x"}}
    assert from_json(to_json(message)) == message


def test_json_is_compact_and_sorted():
    text = to_json({"b": 1, "a": 2})
    assert text == '{"a":2,"b":1}'


def test_size_counts_utf8_bytes():
    assert message_size_bytes({"a": 1}) == len('{"a":1}')
    assert message_size_bytes({"a": "é"}) == len('{"a":"é"}'.encode("utf-8"))


def test_copy_is_deep_and_isolated():
    original = {"list": [1, 2], "map": {"k": "v"}}
    clone = copy_message(original)
    clone["list"].append(3)
    clone["map"]["k"] = "changed"
    assert original == {"list": [1, 2], "map": {"k": "v"}}


def test_copy_converts_tuples_to_lists():
    assert copy_message({"t": (1, 2)}) == {"t": [1, 2]}


def test_messages_equal_structural():
    assert messages_equal({"a": 1, "b": 2}, {"b": 2, "a": 1})
    assert not messages_equal({"a": 1}, {"a": 2})


# ---------------------------------------------------------------------------
# Tuple normalization: one observable shape regardless of delivery path
# ---------------------------------------------------------------------------


def test_tuple_payload_local_delivery_matches_json_roundtrip():
    """A tuple payload must look identical whether delivered locally
    (through the broker's frozen view) or remotely (via the wire)."""
    from repro.core.broker import Broker

    message = {"samples": (1, 2, 3), "nested": {"pair": ("a", "b")}}
    local = []
    broker = Broker()
    broker.subscribe("ch", local.append)
    broker.publish("ch", message)

    remote = from_json(to_json(message))

    assert local[0] == remote
    assert local[0]["samples"] == [1, 2, 3]
    assert remote["samples"] == [1, 2, 3]
    assert local[0]["nested"]["pair"] == ["a", "b"]


def test_tuple_normalized_at_ingest_not_just_on_copy():
    """freeze_message converts tuples to (frozen) lists up front, so the
    delivered object reports list semantics — isinstance, ==, json."""
    from repro.core.envelope import Envelope

    env = Envelope.wrap({"t": (1, 2)})
    assert isinstance(env.payload["t"], list)
    assert env.payload["t"] == [1, 2]
    assert env.json == '{"t":[1,2]}'
    assert copy_message(env) == {"t": [1, 2]}


def test_tuple_wire_size_matches_list_wire_size():
    assert message_size_bytes({"t": (1, 2)}) == message_size_bytes({"t": [1, 2]})
