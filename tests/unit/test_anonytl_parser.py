"""Unit tests for the AnonyTL s-expression parser and task model."""

import pytest

from repro.anonytl.parser import (
    AnonyTLSyntaxError,
    Attribute,
    Symbol,
    head_is,
    parse_forms,
    tokenize,
)
from repro.anonytl.tasks import (
    ROGUEFINDER_TASK,
    AnonyTLSemanticError,
    parse_task,
)
from repro.sim import MINUTE


class TestTokenizer:
    def test_basic_tokens(self):
        assert tokenize("(Task 25043)") == ["(", "Task", "25043", ")"]

    def test_quoted_strings(self):
        assert tokenize("(= @carrier 'professor')") == [
            "(", "=", "@carrier", "'professor'", ")",
        ]

    def test_unterminated_string(self):
        with pytest.raises(AnonyTLSyntaxError):
            tokenize("(= @x 'oops)")

    def test_comments_stripped(self):
        tokens = tokenize("(Task 1) ; the task id\n(Expires 2)")
        assert ";" not in " ".join(tokens)
        assert "Expires" in tokens

    def test_whitespace_and_newlines(self):
        assert tokenize("(a\n  b\tc)") == ["(", "a", "b", "c", ")"]


class TestReader:
    def test_atoms(self):
        forms = parse_forms("(x 1 2.5 -3 'text' @attr)")
        (form,) = forms
        assert form[0] == Symbol("x")
        assert form[1] == 1
        assert form[2] == 2.5
        assert form[3] == -3
        assert form[4] == "text"
        assert form[5] == Attribute("attr")

    def test_nested_forms(self):
        (form,) = parse_forms("(a (b (c 1)) 2)")
        assert form[1][1][1] == 1

    def test_multiple_top_level_forms(self):
        forms = parse_forms("(Task 1) (Expires 2)")
        assert len(forms) == 2

    def test_unbalanced_parens(self):
        with pytest.raises(AnonyTLSyntaxError):
            parse_forms("(a (b)")
        with pytest.raises(AnonyTLSyntaxError):
            parse_forms("a))")

    def test_head_is_case_insensitive(self):
        (form,) = parse_forms("(REPORT x)")
        assert head_is(form, "report")
        assert not head_is(form, "task")
        assert not head_is(12, "report")

    def test_empty_attribute_rejected(self):
        with pytest.raises(AnonyTLSyntaxError):
            parse_forms("(@ x)")


class TestTaskModel:
    def test_listing1_parses(self):
        task = parse_task(ROGUEFINDER_TASK)
        assert task.task_id == 25043
        assert task.expires == 1196728453
        assert task.accept.requirements == (("carrier", "professor"),)
        (report,) = task.reports
        assert report.fields == ("location", "ssids")
        assert report.interval_ms == 1 * MINUTE
        assert report.condition.vertices == ((1.0, 1.0), (2.0, 2.0), (3.0, 0.0))

    def test_accept_matching(self):
        task = parse_task(ROGUEFINDER_TASK)
        assert task.accept.matches({"carrier": "professor"})
        assert not task.accept.matches({"carrier": "student"})
        assert not task.accept.matches({})

    def test_accept_conjunction(self):
        task = parse_task(
            "(Task 1)\n(Accept (and (= @carrier 'a') (= @os 'android')))\n"
            "(Report (location) (Every 5 Minutes))"
        )
        assert task.accept.matches({"carrier": "a", "os": "android"})
        assert not task.accept.matches({"carrier": "a"})

    def test_report_without_condition(self):
        task = parse_task("(Task 9)\n(Report (SSIDs) (Every 30 Seconds))")
        (report,) = task.reports
        assert report.condition is None
        assert report.interval_ms == 30_000.0
        assert task.accept is None
        assert task.expires is None

    def test_multiple_reports(self):
        task = parse_task(
            "(Task 2)\n"
            "(Report (location) (Every 2 Minutes))\n"
            "(Report (SSIDs) (Every 10 Minutes))"
        )
        assert len(task.reports) == 2
        assert task.experiment_id == "anonytl-2"

    def test_missing_task_id(self):
        with pytest.raises(AnonyTLSemanticError):
            parse_task("(Report (location) (Every 1 Minute))")

    def test_missing_report(self):
        with pytest.raises(AnonyTLSemanticError):
            parse_task("(Task 1)")

    def test_unsupported_field(self):
        with pytest.raises(AnonyTLSemanticError):
            parse_task("(Task 1)\n(Report (heartbeat) (Every 1 Minute))")

    def test_bad_schedule(self):
        with pytest.raises(AnonyTLSemanticError):
            parse_task("(Task 1)\n(Report (location) (Every 0 Minutes))")
        with pytest.raises(AnonyTLSemanticError):
            parse_task("(Task 1)\n(Report (location) (Every 5 Fortnights))")

    def test_degenerate_polygon(self):
        with pytest.raises(AnonyTLSemanticError):
            parse_task(
                "(Task 1)\n(Report (location) (Every 1 Minute)"
                " (In location (Polygon (Point 1 1) (Point 2 2))))"
            )

    def test_unsupported_condition_subject(self):
        with pytest.raises(AnonyTLSemanticError):
            parse_task(
                "(Task 1)\n(Report (location) (Every 1 Minute)"
                " (In battery (Polygon (Point 1 1) (Point 2 2) (Point 3 0))))"
            )
