"""Regression tests for float-precision behaviour at large simulated times.

A 24-day simulation reaches t ≈ 2×10⁹ ms, where the representable float
step is ~2.4×10⁻⁷ ms.  Re-arming a timer by a residual delay smaller
than that step would freeze simulated time in an infinite same-instant
loop — which is exactly what the CPU's sleep check once did at
t ≈ 1.07×10⁹ ms (day 12.4 of the Table 4 run).
"""

import pytest

from repro.device.cpu import Cpu, CpuConfig
from repro.device.power import PowerRail
from repro.sim import DAY, Kernel


def test_cpu_sleep_check_terminates_at_large_times():
    """The original bug: _maybe_sleep rescheduling itself by a residual
    delay that rounds to zero time advance."""
    kernel = Kernel()
    # Jump deep into a long simulation.
    kernel.run_until(12 * DAY)
    rail = PowerRail(kernel)
    cpu = Cpu(kernel, rail, CpuConfig(awake_hold_ms=1100.0))
    # Activity with a timestamp whose float residue used to trigger the
    # same-instant loop.
    cpu.note_activity()
    executed = kernel.run(max_events=10_000)
    assert executed < 10_000, "sleep check looped without advancing time"
    assert not cpu.awake


def test_repeated_wake_sleep_cycles_at_large_times():
    kernel = Kernel()
    kernel.run_until(20 * DAY)
    rail = PowerRail(kernel)
    cpu = Cpu(kernel, rail, CpuConfig(awake_hold_ms=1100.0))
    fired = []
    for i in range(50):
        cpu.set_alarm(i * 10_000.0 + 5_000.0, fired.append, i)
    executed = kernel.run(max_events=100_000)
    assert executed < 100_000
    assert len(fired) == 50
    assert not cpu.awake


def test_kernel_handles_tiny_delays_without_stalling():
    kernel = Kernel()
    kernel.run_until(15 * DAY)
    ticks = []

    def tick(n):
        ticks.append(n)
        if n < 100:
            # A delay below float resolution at this magnitude: the event
            # fires at the same representable instant, but the chain is
            # finite, so the kernel must simply burn through it.
            kernel.schedule(1e-9, tick, n + 1)

    kernel.schedule(0.0, tick, 0)
    kernel.run()
    assert len(ticks) == 101
