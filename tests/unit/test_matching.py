"""Unit tests for Table 4's match/partial scoring."""

import pytest

from repro.analysis.clustering import Cluster
from repro.analysis.matching import (
    MATCH_EXACT,
    MATCH_MISSING,
    MATCH_PARTIAL,
    data_reduction_percent,
    match_clusters,
)
from repro.sim import MINUTE

HOME = {"h1": 0.9, "h2": 0.7}
OFFICE = {"o1": 0.8, "o2": 0.6}


def cluster(entry_min, exit_min, rep, samples=10):
    return Cluster(entry_min * MINUTE, exit_min * MINUTE, samples, rep)


def test_exact_match():
    truth = [cluster(0, 100, HOME)]
    collected = [cluster(1, 99, HOME)]
    report = match_clusters(truth, collected)
    assert report.results[0].kind == MATCH_EXACT
    assert report.match_percent == 100.0
    assert report.partial_percent == 100.0


def test_truncated_cluster_is_partial():
    """The 'later start time' signature from Section 5.3."""
    truth = [cluster(0, 100, HOME)]
    collected = [cluster(40, 100, HOME)]  # first half lost to a restart
    report = match_clusters(truth, collected)
    assert report.results[0].kind == MATCH_PARTIAL
    assert report.match_percent == 0.0
    assert report.partial_percent == 100.0


def test_missing_cluster():
    truth = [cluster(0, 100, HOME)]
    report = match_clusters(truth, [])
    assert report.results[0].kind == MATCH_MISSING
    assert report.partial_percent == 0.0


def test_different_place_does_not_match():
    truth = [cluster(0, 100, HOME)]
    collected = [cluster(0, 100, OFFICE)]
    report = match_clusters(truth, collected)
    assert report.results[0].kind == MATCH_MISSING


def test_non_overlapping_interval_does_not_match():
    truth = [cluster(0, 100, HOME)]
    collected = [cluster(200, 300, HOME)]
    report = match_clusters(truth, collected)
    assert report.results[0].kind == MATCH_MISSING


def test_collected_cluster_consumed_once():
    truth = [cluster(0, 50, HOME), cluster(60, 100, HOME)]
    collected = [cluster(0, 50, HOME)]
    report = match_clusters(truth, collected)
    kinds = [r.kind for r in report.results]
    assert kinds.count(MATCH_EXACT) == 1
    assert kinds.count(MATCH_MISSING) == 1


def test_best_overlap_wins():
    truth = [cluster(0, 100, HOME)]
    collected = [cluster(90, 200, HOME), cluster(2, 98, HOME)]
    report = match_clusters(truth, collected)
    assert report.results[0].kind == MATCH_EXACT
    assert report.results[0].collected.entry_ms == 2 * MINUTE


def test_aggregate_percentages():
    truth = [cluster(0, 50, HOME), cluster(60, 100, HOME), cluster(110, 150, OFFICE)]
    collected = [cluster(0, 50, HOME), cluster(80, 100, HOME)]
    report = match_clusters(truth, collected)
    assert report.total == 3
    assert report.exact == 1
    assert report.partial_or_exact == 2
    assert report.match_percent == pytest.approx(100.0 / 3)
    assert report.partial_percent == pytest.approx(200.0 / 3)


def test_empty_truth():
    report = match_clusters([], [])
    assert report.match_percent == 0.0


def test_data_reduction():
    assert data_reduction_percent(1000, 17) == pytest.approx(98.3)
    assert data_reduction_percent(0, 0) == 0.0
