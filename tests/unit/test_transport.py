"""Unit tests for device and wired transports."""

import pytest

from repro.device import Phone
from repro.net.transport import DeviceTransport, TransportError, WiredTransport
from repro.net.xmpp import XmppServer
from repro.sim import Kernel, SECOND


def make_pair():
    kernel = Kernel()
    server = XmppServer(kernel, latency_ms=10.0)
    phone = Phone(kernel)
    device = DeviceTransport(kernel, server, "dev@x", phone)
    wired = WiredTransport(kernel, server, "pc@x")
    server.add_roster_pair("dev@x", "pc@x")
    return kernel, server, phone, device, wired


def test_device_connects_with_handshake_energy():
    kernel, server, phone, device, wired = make_pair()
    wired.start()
    device.start()
    assert not device.connected
    kernel.run_until(30 * SECOND)
    assert device.connected
    assert phone.modem.bytes_tx >= device.handshake_tx_bytes
    assert device.connect_count == 1


def test_send_requires_connection():
    kernel, server, phone, device, wired = make_pair()
    with pytest.raises(TransportError):
        device.send("pc@x", {"x": 1})


def test_device_to_wired_roundtrip():
    kernel, server, phone, device, wired = make_pair()
    wired.start()
    device.start()
    kernel.run_until(30 * SECOND)
    got = []
    wired.on_stanza.append(lambda from_jid, st: got.append((from_jid, st)))
    device.send("pc@x", {"kind": "data", "n": 1})
    kernel.run_until(kernel.now + 30 * SECOND)
    assert got and got[0][0] == "dev@x"
    assert got[0][1]["n"] == 1


def test_wired_to_device_wakes_cpu():
    kernel, server, phone, device, wired = make_pair()
    wired.start()
    device.start()
    kernel.run_until(30 * SECOND)
    got = []
    device.on_stanza.append(lambda from_jid, st: got.append(st))
    kernel.run_until(60 * SECOND)
    assert not phone.cpu.awake
    wakes_before = phone.cpu.wake_count
    wired.send("dev@x", {"kind": "data", "cmd": "hello"})
    kernel.run_until(kernel.now + 30 * SECOND)
    assert got and got[0]["cmd"] == "hello"
    assert phone.cpu.wake_count == wakes_before + 1


def test_interface_switch_triggers_reconnect():
    kernel, server, phone, device, wired = make_pair()
    wired.start()
    device.start()
    kernel.run_until(30 * SECOND)
    assert device.connected
    first_session = device._session
    phone.set_wifi_connected(True)  # switch cellular -> wifi
    assert not device.connected  # old session bound to cellular
    kernel.run_until(kernel.now + 30 * SECOND)
    assert device.connected
    assert device._session is not first_session
    assert device._session_interface == "wifi"


def test_stanza_into_stale_session_is_lost_then_offline():
    kernel, server, phone, device, wired = make_pair()
    wired.start()
    device.start()
    kernel.run_until(30 * SECOND)
    # Interface dies entirely: no reconnect possible.
    phone.set_cell_coverage(False)
    wired.send("dev@x", {"kind": "data", "n": 1})
    kernel.run_until(kernel.now + 5 * SECOND)
    assert server.stanzas_lost == 1
    # Second stanza goes to offline storage (server learned of the death).
    wired.send("dev@x", {"kind": "data", "n": 2})
    kernel.run_until(kernel.now + 5 * SECOND)
    assert server.offline_count("dev@x") == 1
    # Coverage back: device reconnects, offline stanza arrives.
    got = []
    device.on_stanza.append(lambda f, st: got.append(st.get("n")))
    phone.set_cell_coverage(True)
    kernel.run_until(kernel.now + 60 * SECOND)
    assert got == [2]


def test_reboot_reconnects_after_boot():
    kernel, server, phone, device, wired = make_pair()
    wired.start()
    device.start()
    kernel.run_until(30 * SECOND)
    phone.reboot(downtime_ms=20 * SECOND)
    assert not device.connected
    kernel.run_until(kernel.now + 60 * SECOND)
    assert device.connected
    assert device.connect_count == 2


def test_send_failure_counted_when_interface_dies_midflight():
    kernel, server, phone, device, wired = make_pair()
    wired.start()
    device.start()
    kernel.run_until(30 * SECOND)
    results = []
    device.send("pc@x", {"kind": "data", "n": 1}, on_complete=results.append)
    phone.set_cell_coverage(False)  # kills the in-flight transfer
    kernel.run_until(kernel.now + 10 * SECOND)
    assert results == [False]
    assert device.send_failures == 1


def test_wired_transport_always_connected():
    kernel, server, phone, device, wired = make_pair()
    wired.start()
    assert wired.connected
    results = []
    # Roster pair exists, device offline -> offline storage, send still ok.
    wired.send("dev@x", {"kind": "data"}, on_complete=results.append)
    kernel.run()
    assert results == [True]
