"""Unit tests for participation records and reward functions."""

import pytest

from repro.core.participation import (
    ParticipationRecord,
    ParticipationTracker,
    default_reward,
)
from repro.net.xmpp import XmppServer
from repro.sim import HOUR, Kernel, MINUTE


def test_default_reward_monotonic():
    assert default_reward(10.0, 5.0, 100) > default_reward(1.0, 5.0, 100)
    assert default_reward(10.0, 5.0, 100) > default_reward(10.0, 1.0, 100)
    assert default_reward(0.0, 0.0, 0) == 0.0


def test_record_activity_capping():
    record = ParticipationRecord("d@x")
    record.note_activity(0.0, idle_cap_ms=10_000.0)
    record.note_activity(5_000.0, idle_cap_ms=10_000.0)   # 5 s credited
    record.note_activity(100_000.0, idle_cap_ms=10_000.0) # capped at 10 s
    assert record.online_ms == 15_000.0
    # Snapshot adds at most the cap for the trailing interval.
    assert record.snapshot_online_ms(10**9, 10_000.0) == 25_000.0


def test_tracker_custom_device_filter_and_reward():
    kernel = Kernel()
    server = XmppServer(kernel)
    tracker = ParticipationTracker(
        kernel,
        server,
        is_device=lambda jid: jid.endswith("@phones"),
        reward=lambda hours, mb, stanzas: stanzas * 2.0,
    )
    for jid in ("a@phones", "pc@lab"):
        server.register(jid)
    server.add_roster_pair("a@phones", "pc@lab")
    server.connect("pc@lab", lambda st: None)
    server.connect("a@phones", lambda st: None)
    server.submit("a@phones", "pc@lab", {"kind": "data", "n": 1})
    server.submit("pc@lab", "a@phones", {"kind": "data", "n": 2})
    kernel.run()
    assert "pc@lab" not in tracker.records
    record = tracker.records["a@phones"]
    assert record.stanzas == 1
    assert tracker.reward_for("a@phones") == 2.0


def test_unknown_jid_zero():
    kernel = Kernel()
    tracker = ParticipationTracker(kernel, XmppServer(kernel))
    assert tracker.online_hours("ghost") == 0.0
    assert tracker.reward_for("ghost") == 0.0


def test_report_ranks_by_reward():
    kernel = Kernel()
    server = XmppServer(kernel)
    tracker = ParticipationTracker(kernel, server)
    for jid in ("device-1@pogo", "device-2@pogo", "hub@pogo"):
        server.register(jid)
    server.add_roster_pair("device-1@pogo", "hub@pogo")
    server.add_roster_pair("device-2@pogo", "hub@pogo")
    server.connect("hub@pogo", lambda st: None)
    for _ in range(5):
        server.submit("device-2@pogo", "hub@pogo", {"kind": "data", "blob": "x" * 500})
    server.submit("device-1@pogo", "hub@pogo", {"kind": "data"})
    kernel.run()
    report = tracker.report()
    lines = report.splitlines()
    assert lines[1].startswith("device-2@pogo")  # bigger contributor first
