"""Unit tests for the battery model."""

import pytest

from repro.device.battery import Battery, BatteryConfig
from repro.device.power import PowerRail
from repro.sim import Kernel


def make_battery(capacity_j=100.0, initial=1.0):
    kernel = Kernel()
    rail = PowerRail(kernel)
    battery = Battery(kernel, rail, BatteryConfig(capacity_j=capacity_j), initial_level=initial)
    return kernel, rail, battery


def test_level_drains_with_energy():
    kernel, rail, battery = make_battery(capacity_j=100.0)
    rail.set_draw("load", 1.0)  # 1 W
    kernel.run_until(50_000.0)  # 50 s -> 50 J
    assert battery.level == pytest.approx(0.5)
    assert battery.drained_joules == pytest.approx(50.0)


def test_level_clamped_at_zero():
    kernel, rail, battery = make_battery(capacity_j=10.0)
    rail.set_draw("load", 1.0)
    kernel.run_until(60_000.0)
    assert battery.level == 0.0
    assert battery.depleted


def test_depleted_callback_fires_once():
    kernel, rail, battery = make_battery(capacity_j=5.0)
    events = []
    battery.on_depleted.append(lambda: events.append(kernel.now))
    rail.set_draw("load", 1.0)
    kernel.run_until(10_000.0)
    battery.check_depleted()
    battery.check_depleted()
    assert len(events) == 1


def test_recharge_restores_level():
    kernel, rail, battery = make_battery(capacity_j=100.0)
    rail.set_draw("load", 1.0)
    kernel.run_until(80_000.0)
    battery.recharge(1.0)
    assert battery.level == pytest.approx(1.0)
    kernel.run_until(90_000.0)
    assert battery.level == pytest.approx(0.9)


def test_invalid_levels_rejected():
    kernel = Kernel()
    rail = PowerRail(kernel)
    with pytest.raises(ValueError):
        Battery(kernel, rail, initial_level=1.5)
    battery = Battery(kernel, rail)
    with pytest.raises(ValueError):
        battery.recharge(-0.1)


def test_voltage_decreases_with_discharge():
    kernel, rail, battery = make_battery(capacity_j=100.0)
    v_full = battery.open_circuit_voltage()
    rail.set_draw("load", 1.0)
    kernel.run_until(70_000.0)
    v_low = battery.open_circuit_voltage()
    assert v_full == pytest.approx(4.20)
    assert v_low < v_full
    assert v_low >= 3.40


def test_voltage_sags_under_load():
    kernel, rail, battery = make_battery(capacity_j=10_000.0)
    unloaded = battery.voltage()
    rail.set_draw("load", 2.0)
    loaded = battery.voltage()
    assert loaded < unloaded


def test_reading_shape():
    _, _, battery = make_battery()
    reading = battery.reading()
    assert set(reading) == {"voltage", "level", "drained_j"}
    assert reading["level"] == 1.0
