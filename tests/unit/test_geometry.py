"""Unit tests for planar geometry and coordinate conversion."""

import pytest

from repro.world.geometry import (
    BASE_LATITUDE,
    BASE_LONGITUDE,
    Point,
    Polygon,
    from_latlon,
    to_latlon,
)


def test_distance_and_lerp():
    a = Point(0.0, 0.0)
    b = Point(3.0, 4.0)
    assert a.distance_to(b) == pytest.approx(5.0)
    mid = a.lerp(b, 0.5)
    assert (mid.x, mid.y) == (1.5, 2.0)
    assert a.lerp(b, 0.0) == a
    assert a.lerp(b, 1.0) == b


def test_offset():
    p = Point(1.0, 2.0).offset(-1.0, 3.0)
    assert (p.x, p.y) == (0.0, 5.0)


def test_polygon_requires_three_vertices():
    with pytest.raises(ValueError):
        Polygon([Point(0, 0), Point(1, 1)])


def test_polygon_contains_basic():
    square = Polygon.from_tuples([(0, 0), (10, 0), (10, 10), (0, 10)])
    assert square.contains(Point(5, 5))
    assert not square.contains(Point(15, 5))
    assert not square.contains(Point(-1, -1))


def test_polygon_boundary_counts_as_inside():
    square = Polygon.from_tuples([(0, 0), (10, 0), (10, 10), (0, 10)])
    assert square.contains(Point(0, 5))
    assert square.contains(Point(10, 10))
    assert square.contains(Point(5, 0))


def test_polygon_concave():
    # A "C" shape: the notch is outside.
    shape = Polygon.from_tuples(
        [(0, 0), (10, 0), (10, 3), (3, 3), (3, 7), (10, 7), (10, 10), (0, 10)]
    )
    assert shape.contains(Point(1, 5))
    assert not shape.contains(Point(8, 5))  # inside the notch
    assert shape.contains(Point(8, 1))


def test_polygon_paper_triangle():
    """Listing 1/2's polygon: (1,1), (2,2), (3,0)."""
    triangle = Polygon.from_tuples([(1, 1), (2, 2), (3, 0)])
    assert triangle.contains(triangle.centroid())
    assert not triangle.contains(Point(0, 0))


def test_bounding_box_and_centroid():
    square = Polygon.from_tuples([(0, 0), (10, 0), (10, 10), (0, 10)])
    lo, hi = square.bounding_box()
    assert (lo.x, lo.y, hi.x, hi.y) == (0, 0, 10, 10)
    c = square.centroid()
    assert (c.x, c.y) == (5.0, 5.0)


def test_latlon_roundtrip():
    p = Point(1234.0, -567.0)
    lat, lon = to_latlon(p)
    back = from_latlon(lat, lon)
    assert back.x == pytest.approx(p.x, abs=0.01)
    assert back.y == pytest.approx(p.y, abs=0.01)


def test_latlon_origin_is_base():
    lat, lon = to_latlon(Point(0.0, 0.0))
    assert lat == BASE_LATITUDE
    assert lon == BASE_LONGITUDE


def test_north_increases_latitude():
    lat_north, _ = to_latlon(Point(0.0, 1000.0))
    assert lat_north > BASE_LATITUDE
