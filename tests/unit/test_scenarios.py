"""Unit tests for the scenario engine's declarative layer.

Spec validation, compilation to a plain ShardSpec, the pure derivations
(attendance, contention, carrier assignment, campaign targeting), the
preset catalog, and the generative city builder.  Everything here is
fast — no simulation runs; the conformance suite in
``tests/integration/test_scenario_conformance.py`` covers execution.
"""

import dataclasses

import pytest

from repro.fleet.partition import device_jid
from repro.scenarios import (
    CAMPAIGN_KINDS,
    LONG_PRESETS,
    PRESETS,
    CampaignSpec,
    ScenarioError,
    ScenarioSpec,
    SurgeSpec,
    VenueSpec,
    attends,
    build_preset,
    carrier_for,
    contends,
    preset_names,
)
from repro.scenarios.workload import campaign_targets
from repro.world.city import build_city, build_citizen_world


def _spec(**overrides):
    base = dict(
        name="unit",
        seed=3,
        devices=4,
        hours=2.0,
        carriers=("KPN", "Vodafone"),
        city_places=32,
        venues=(VenueSpec(name="plaza", category="generic"),),
        surges=(
            SurgeSpec(
                name="rush", venue="plaza", start_h=0.5, end_h=1.0,
                attendance=0.8, contention=0.5,
            ),
        ),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecValidation:
    def test_valid_spec_passes(self):
        _spec().validate()

    @pytest.mark.parametrize(
        "overrides, message",
        [
            ({"name": ""}, "needs a name"),
            ({"devices": 0}, "at least one device"),
            ({"hours": 0.0}, "positive"),
            ({"carriers": ()}, "at least one carrier"),
            ({"carriers": ("Sprint",)}, "unknown carrier"),
            ({"city_places": 0}, "at least one place"),
            ({"campaigns": (CampaignSpec("selfie-cam"),)}, "unknown campaign kind"),
            ({"campaigns": (CampaignSpec("noise-map", subset="prime"),)},
             "unknown campaign subset"),
            ({"campaigns": (CampaignSpec("anonytl", carrier="Sprint"),)},
             "unknown\n carrier".replace("\n ", " ")),
        ],
    )
    def test_bad_fields_are_rejected(self, overrides, message):
        with pytest.raises(ScenarioError, match=message):
            _spec(**overrides).validate()

    def test_surge_must_reference_a_known_venue(self):
        with pytest.raises(ScenarioError, match="unknown venue"):
            _spec(
                surges=(SurgeSpec(name="x", venue="ghost", start_h=0.1, end_h=0.2),)
            ).validate()

    def test_surge_window_must_fit_in_the_run(self):
        with pytest.raises(ScenarioError, match="window"):
            _spec(
                surges=(SurgeSpec(name="x", venue="plaza", start_h=1.0, end_h=3.0),)
            ).validate()
        with pytest.raises(ScenarioError, match="window"):
            _spec(
                surges=(SurgeSpec(name="x", venue="plaza", start_h=1.0, end_h=1.0),)
            ).validate()

    def test_surge_probabilities_are_bounded(self):
        with pytest.raises(ScenarioError, match="attendance"):
            _spec(
                surges=(SurgeSpec(name="x", venue="plaza", start_h=0.1,
                                  end_h=0.2, attendance=1.5),)
            ).validate()
        with pytest.raises(ScenarioError, match="contention"):
            _spec(
                surges=(SurgeSpec(name="x", venue="plaza", start_h=0.1,
                                  end_h=0.2, contention=-0.1),)
            ).validate()

    def test_duplicate_names_are_rejected(self):
        with pytest.raises(ScenarioError, match="venue names"):
            _spec(
                venues=(VenueSpec(name="a"), VenueSpec(name="a")),
                surges=(),
            ).validate()
        surge = SurgeSpec(name="s", venue="plaza", start_h=0.1, end_h=0.2)
        with pytest.raises(ScenarioError, match="surge names"):
            _spec(surges=(surge, surge)).validate()
        with pytest.raises(ScenarioError, match="campaign kinds"):
            _spec(
                campaigns=(CampaignSpec("noise-map"), CampaignSpec("noise-map"))
            ).validate()


class TestCompile:
    def test_compiles_to_pinned_global_jids(self):
        root = _spec().compile()
        assert root.shard_id == "scenario-unit"
        assert root.seed == 3
        assert root.collectors == ("scenario",)
        assert [d.jid for d in root.devices] == [device_jid(i) for i in range(4)]

    def test_carriers_round_robin_across_global_indices(self):
        root = _spec().compile()
        assert [d.carrier for d in root.devices] == [
            "KPN", "Vodafone", "KPN", "Vodafone",
        ]
        for i in range(4):
            assert carrier_for(_spec(), i) == root.devices[i].carrier

    def test_compile_validates_first(self):
        with pytest.raises(ScenarioError):
            _spec(devices=0).compile()


class TestPureDerivations:
    def test_attendance_is_a_pure_function_of_seed_surge_jid(self):
        spec = _spec()
        surge = spec.surges[0]
        first = [attends(spec.seed, surge, device_jid(i)) for i in range(8)]
        again = [attends(spec.seed, surge, device_jid(i)) for i in range(8)]
        assert first == again
        # A different seed must be able to change the draw somewhere.
        other = [attends(spec.seed + 1, surge, device_jid(i)) for i in range(8)]
        assert first != other or True  # never raises; coin flips may collide

    def test_contention_implies_attendance(self):
        spec = _spec()
        surge = dataclasses.replace(spec.surges[0], contention=1.0)
        for i in range(32):
            jid = device_jid(i)
            if contends(spec.seed, surge, jid):
                assert attends(spec.seed, surge, jid)

    def test_zero_attendance_means_nobody_comes(self):
        surge = SurgeSpec(name="ghost-town", venue="plaza", start_h=0.1,
                          end_h=0.2, attendance=0.0, contention=1.0)
        for i in range(16):
            assert not attends(3, surge, device_jid(i))
            assert not contends(3, surge, device_jid(i))


class TestCampaignTargets:
    def test_all_subset_targets_everyone_sorted(self):
        spec = _spec(devices=5)
        jids = [device_jid(i) for i in range(5)]
        assert campaign_targets(CampaignSpec("noise-map"), spec, jids) == sorted(jids)

    def test_even_and_odd_partition_by_global_index(self):
        spec = _spec(devices=5)
        jids = [device_jid(i) for i in range(5)]
        even = campaign_targets(CampaignSpec("noise-map", subset="even"), spec, jids)
        odd = campaign_targets(CampaignSpec("noise-map", subset="odd"), spec, jids)
        assert even == sorted(device_jid(i) for i in (0, 2, 4))
        assert odd == sorted(device_jid(i) for i in (1, 3))
        assert sorted(even + odd) == sorted(jids)

    def test_anonytl_carrier_filter_follows_round_robin(self):
        spec = _spec(devices=6, carriers=("KPN", "Vodafone"))
        jids = [device_jid(i) for i in range(6)]
        targets = campaign_targets(
            CampaignSpec("anonytl", carrier="Vodafone"), spec, jids
        )
        assert targets == sorted(device_jid(i) for i in (1, 3, 5))


class TestPresets:
    def test_catalog_has_the_required_presets(self):
        names = preset_names()
        for required in (
            "commuter-surge", "stadium-evening", "contact-tracing",
            "noise-map-campaign",
        ):
            assert required in names
        assert set(LONG_PRESETS) <= set(names)

    def test_every_preset_validates_and_compiles(self):
        for name in preset_names():
            spec = build_preset(name)
            spec.validate()
            root = spec.compile()
            assert len(root.devices) == spec.devices

    def test_scale_shrinks_devices_and_hours(self):
        full = build_preset("commuter-surge")
        quarter = build_preset("commuter-surge", scale=0.25)
        assert quarter.devices < full.devices
        assert quarter.hours < full.hours
        assert quarter.devices >= 2
        quarter.validate()

    def test_unknown_preset_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown scenario preset"):
            build_preset("atlantis")

    def test_nonpositive_scale_is_rejected(self):
        with pytest.raises(ValueError):
            build_preset("commuter-surge", scale=0.0)

    def test_campaign_kinds_used_by_presets_are_known(self):
        for name in PRESETS:
            for campaign in build_preset(name).campaigns:
                assert campaign.kind in CAMPAIGN_KINDS


class TestCityBuilder:
    def test_city_is_deterministic_for_a_seed(self):
        venues = (VenueSpec(name="stadium", category="stadium"),)
        a = build_city(7, 40, venues)
        b = build_city(7, 40, venues)
        assert a.sites == b.sites
        assert sorted(a.venues) == sorted(b.venues)
        assert a.n_places == b.n_places

    def test_venues_are_shared_places(self):
        city = build_city(7, 40, (VenueSpec(name="arena", category="stadium"),))
        place = city.venues["arena"]
        assert place.name == "venue/arena"
        assert place.access_points  # venue APs exist for scan realism

    def test_citizen_world_is_deterministic_and_jid_scoped(self):
        city = build_city(7, 40, ())
        w1, s1 = build_citizen_world(device_jid(0), 7, city, days=1)
        w2, s2 = build_citizen_world(device_jid(0), 7, city, days=1)
        w3, _ = build_citizen_world(device_jid(1), 7, city, days=1)
        assert s1 == s2
        assert s1["places"] > 0 and s1["segments"] > 0
        # Different citizens sample different routines from the same city.
        assert w1.timeline.segments[0].start_ms == w2.timeline.segments[0].start_ms
        assert w1.places["home"][0].center != w3.places["home"][0].center

    def test_surge_attendance_splices_the_timeline(self):
        from repro.sim.kernel import HOUR

        city = build_city(7, 40, (VenueSpec(name="arena", category="stadium"),))
        surge = SurgeSpec(name="match", venue="arena", start_h=10.0, end_h=12.0)
        _, plain = build_citizen_world(device_jid(0), 7, city, days=1)
        world, spliced = build_citizen_world(
            device_jid(0), 7, city, days=1,
            surges=[(surge, 10.0 * HOUR, 12.0 * HOUR)],
        )
        assert spliced["splices"] == 1
        assert plain["splices"] == 0
        assert "venue" in world.places
