"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def test_quickstart(capsys):
    assert main(["--seed", "3", "quickstart", "--devices", "2", "--hours", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "readings from 2 devices" in out
    assert "device-1@pogo" in out


def test_tail_trace(capsys):
    assert main(["tail-trace"]) == 0
    out = capsys.readouterr().out
    assert "tail b->d 59.5 s" in out
    assert "█" in out  # the ASCII trace rendered


def test_roguefinder(capsys):
    assert main(["--seed", "21", "roguefinder", "--hours", "2"]) == 0
    out = capsys.readouterr().out
    assert "geofenced scans" in out


def test_anonytl_task_file(tmp_path, capsys):
    task_file = tmp_path / "task.atl"
    task_file.write_text("(Task 5)\n(Report (SSIDs) (Every 10 Minutes))\n")
    assert main(["anonytl", str(task_file), "--hours", "1"]) == 0
    out = capsys.readouterr().out
    assert "task 5" in out
    assert "reports on 'anonytl-reports'" in out


def test_localization_short(capsys):
    assert main(["--seed", "11", "localization", "--days", "1"]) == 0
    out = capsys.readouterr().out
    assert "dwell sessions" in out


def test_metrics(capsys):
    assert main(["--seed", "3", "metrics", "--devices", "2", "--hours", "1"]) == 0
    out = capsys.readouterr().out
    assert "broker.publishes" in out
    assert "transport.stanzas_sent" in out
    # The simulated hour must actually move the counters.
    for line in out.splitlines():
        if line.startswith("broker.publishes"):
            assert int(line.split()[-1].replace(",", "")) > 0


def test_metrics_json(capsys):
    import json

    assert main(["--seed", "3", "metrics", "--devices", "2", "--hours", "0.5",
                 "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["broker.publishes"] > 0
    assert snapshot["node.batch_payloads"]["count"] > 0


def test_trace(capsys):
    assert main(["--seed", "3", "trace", "--devices", "2", "--hours", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "per-hop latency:" in out
    assert "buffer.dwell" in out
    assert "deliver.collector" in out
    assert "per-message energy attribution" in out
    assert "reconciliation delta" in out


def test_trace_json_and_export(tmp_path, capsys):
    import json

    path = tmp_path / "spans.jsonl"
    assert main(["--seed", "3", "trace", "--devices", "2", "--hours", "0.5",
                 "--json", "--export", str(path)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["devices"] == 2
    assert report["spans"]["recorded"] > 0
    assert "publish" in report["hops"]
    assert report["energy"]["reconciliation_delta"] < 0.01

    lines = path.read_text().splitlines()
    assert len(lines) == report["spans"]["in_ring"]
    first = json.loads(lines[0])
    assert set(first) == {"span", "trace", "parent", "hop", "start_ms",
                          "end_ms", "attrs"}


def test_metrics_output_file_redirects_the_report(tmp_path, capsys):
    path = tmp_path / "metrics.txt"
    assert main(["--seed", "3", "metrics", "--devices", "2", "--hours", "0.5",
                 "--output", str(path)]) == 0
    assert capsys.readouterr().out == ""  # redirected, nothing on stdout
    text = path.read_text(encoding="utf-8")
    assert "metrics after 0.5 h with 2 device(s)" in text
    assert "broker.publishes" in text


def test_trace_output_file(tmp_path, capsys):
    import json

    path = tmp_path / "trace.json"
    assert main(["--seed", "3", "trace", "--devices", "2", "--hours", "0.5",
                 "--json", "--output", str(path)]) == 0
    assert capsys.readouterr().out == ""
    report = json.loads(path.read_text(encoding="utf-8"))
    assert report["devices"] == 2


def test_fleet_telemetry_and_prom_exports(tmp_path, capsys):
    import json

    timeline = tmp_path / "timeline.jsonl"
    prom = tmp_path / "snapshot.prom"
    assert main(["--seed", "5", "fleet", "--devices", "4", "--shards", "2",
                 "--hours", "0.25", "--in-process",
                 "--telemetry", str(timeline), "--prom", str(prom)]) == 0
    out = capsys.readouterr().out
    assert "health:" in out
    assert "telemetry timeline ->" in out
    records = [json.loads(line) for line in
               timeline.read_text(encoding="utf-8").splitlines()]
    assert records[-1]["kind"] == "totals"
    assert '"wall"' not in timeline.read_text(encoding="utf-8")
    assert "# TYPE pogo_events_executed counter" in prom.read_text(
        encoding="utf-8")


def test_fleet_latency_flag_changes_physics_and_rejects_junk(capsys):
    assert main(["--seed", "5", "fleet", "--devices", "2", "--shards", "2",
                 "--hours", "0.1", "--in-process", "--latency-ms", "40",
                 "--json"]) == 0
    forty = capsys.readouterr().out
    assert main(["--seed", "5", "fleet", "--devices", "2", "--shards", "2",
                 "--hours", "0.1", "--in-process", "--json"]) == 0
    eighty = capsys.readouterr().out
    assert forty != eighty  # latency is simulated physics, not a knob

    rc = main(["fleet", "--devices", "2", "--shards", "2", "--hours", "0.1",
               "--in-process", "--latency-ms", "0"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "latency_ms" in captured.err


def test_top_runs_and_prints_health(capsys):
    assert main(["--seed", "5", "top", "--devices", "4", "--shards", "2",
                 "--hours", "0.25", "--in-process"]) == 0
    captured = capsys.readouterr()
    assert "health:" in captured.out
    assert "repro top" in captured.err  # the live view writes to stderr


def test_fleet_worker_crash_prints_one_line_and_exits_1(capsys, monkeypatch):
    import repro.fleet.coordinator as coordinator
    from repro.fleet.worker import WORKLOADS, WorkerCrashed

    # Route the CLI's fixed battery-monitor workload to the crash canary
    # so the in-process fleet dies during setup.
    monkeypatch.setitem(
        WORKLOADS, "battery-monitor", WORKLOADS["crash-canary"]
    )
    rc = main(["fleet", "--devices", "4", "--shards", "2",
               "--hours", "0.1", "--in-process"])
    captured = capsys.readouterr()
    assert rc == 1
    err = captured.err.strip()
    assert err.splitlines() == [
        "fleet: worker fleet/0 crashed: RuntimeError: crash canary tripped"
    ]
    assert "Traceback" not in captured.err


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
