"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def test_quickstart(capsys):
    assert main(["--seed", "3", "quickstart", "--devices", "2", "--hours", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "readings from 2 devices" in out
    assert "device-1@pogo" in out


def test_tail_trace(capsys):
    assert main(["tail-trace"]) == 0
    out = capsys.readouterr().out
    assert "tail b->d 59.5 s" in out
    assert "█" in out  # the ASCII trace rendered


def test_roguefinder(capsys):
    assert main(["--seed", "21", "roguefinder", "--hours", "2"]) == 0
    out = capsys.readouterr().out
    assert "geofenced scans" in out


def test_anonytl_task_file(tmp_path, capsys):
    task_file = tmp_path / "task.atl"
    task_file.write_text("(Task 5)\n(Report (SSIDs) (Every 10 Minutes))\n")
    assert main(["anonytl", str(task_file), "--hours", "1"]) == 0
    out = capsys.readouterr().out
    assert "task 5" in out
    assert "reports on 'anonytl-reports'" in out


def test_localization_short(capsys):
    assert main(["--seed", "11", "localization", "--days", "1"]) == 0
    out = capsys.readouterr().out
    assert "dwell sessions" in out


def test_metrics(capsys):
    assert main(["--seed", "3", "metrics", "--devices", "2", "--hours", "1"]) == 0
    out = capsys.readouterr().out
    assert "broker.publishes" in out
    assert "transport.stanzas_sent" in out
    # The simulated hour must actually move the counters.
    for line in out.splitlines():
        if line.startswith("broker.publishes"):
            assert int(line.split()[-1].replace(",", "")) > 0


def test_metrics_json(capsys):
    import json

    assert main(["--seed", "3", "metrics", "--devices", "2", "--hours", "0.5",
                 "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["broker.publishes"] > 0
    assert snapshot["node.batch_payloads"]["count"] > 0


def test_trace(capsys):
    assert main(["--seed", "3", "trace", "--devices", "2", "--hours", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "per-hop latency:" in out
    assert "buffer.dwell" in out
    assert "deliver.collector" in out
    assert "per-message energy attribution" in out
    assert "reconciliation delta" in out


def test_trace_json_and_export(tmp_path, capsys):
    import json

    path = tmp_path / "spans.jsonl"
    assert main(["--seed", "3", "trace", "--devices", "2", "--hours", "0.5",
                 "--json", "--export", str(path)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["devices"] == 2
    assert report["spans"]["recorded"] > 0
    assert "publish" in report["hops"]
    assert report["energy"]["reconciliation_delta"] < 0.01

    lines = path.read_text().splitlines()
    assert len(lines) == report["spans"]["in_ring"]
    first = json.loads(lines[0])
    assert set(first) == {"span", "trace", "parent", "hop", "start_ms",
                          "end_ms", "attrs"}


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
