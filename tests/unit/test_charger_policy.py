"""Unit tests for charging state and the charger-delay policy."""

import pytest

from repro.core.scheduler import PogoScheduler
from repro.core.tailsync import ChargerPolicy
from repro.device import Phone
from repro.sim import DAY, HOUR, Kernel, MINUTE, RandomStreams
from repro.world.environment import ChargingRoutine


class FakeController:
    def __init__(self, kernel, phone):
        self.kernel = kernel
        self.phone = phone
        self.scheduler = PogoScheduler(kernel, phone.cpu)
        self.flushes = []

    def flush(self, reason):
        self.flushes.append((self.kernel.now, reason))


def make_setup():
    kernel = Kernel()
    phone = Phone(kernel)
    controller = FakeController(kernel, phone)
    return kernel, phone, controller


class TestBatteryCharging:
    def test_charging_events_fire_once_per_change(self):
        kernel, phone, _ = make_setup()
        events = []
        phone.battery.on_charging_changed.append(events.append)
        phone.battery.set_charging(True)
        phone.battery.set_charging(True)
        phone.battery.set_charging(False)
        assert events == [True, False]

    def test_unplug_tops_up_charge(self):
        kernel, phone, _ = make_setup()
        phone.rail.set_draw("load", 2.0)
        kernel.run_until(1 * HOUR)
        assert phone.battery.level < 0.9
        phone.battery.set_charging(True)
        phone.battery.set_charging(False)
        assert phone.battery.level == pytest.approx(1.0)


class TestChargerPolicy:
    def test_flushes_on_plug_in(self):
        kernel, phone, controller = make_setup()
        policy = ChargerPolicy()
        policy.bind(controller)
        policy.start()
        kernel.run_until(1 * HOUR)
        assert controller.flushes == []
        phone.battery.set_charging(True)
        assert controller.flushes[-1][1] == "charger-plugged"

    def test_drains_periodically_while_plugged(self):
        kernel, phone, controller = make_setup()
        policy = ChargerPolicy(drain_interval_ms=30 * MINUTE)
        policy.bind(controller)
        policy.start()
        phone.battery.set_charging(True)
        kernel.run_until(2 * HOUR)
        drains = [r for _, r in controller.flushes if r == "charger-drain"]
        assert len(drains) == 4
        phone.battery.set_charging(False)
        count = len(controller.flushes)
        kernel.run_until(6 * HOUR)
        assert len(controller.flushes) == count  # stops when unplugged

    def test_reconnect_does_not_flush_unless_charging(self):
        kernel, phone, controller = make_setup()
        policy = ChargerPolicy()
        policy.bind(controller)
        policy.start()
        policy.on_connected()
        assert controller.flushes == []
        phone.battery.set_charging(True)
        controller.flushes.clear()
        policy.on_connected()
        assert controller.flushes[-1][1] == "connected-charging"

    def test_stop_detaches_listener(self):
        kernel, phone, controller = make_setup()
        policy = ChargerPolicy()
        policy.bind(controller)
        policy.start()
        policy.stop()
        phone.battery.set_charging(True)
        assert controller.flushes == []


class TestChargingRoutine:
    def test_nightly_cycle(self):
        kernel = Kernel()
        phone = Phone(kernel)
        rng = RandomStreams(9).stream("charging")
        ChargingRoutine(kernel, phone, rng, days=3).start()
        transitions = []
        phone.battery.on_charging_changed.append(
            lambda charging: transitions.append((kernel.now / HOUR, charging))
        )
        kernel.run_until(3 * DAY)
        plugs = [t for t, c in transitions if c]
        unplugs = [t for t, c in transitions if not c]
        assert len(plugs) == 3
        assert len(unplugs) >= 2
        # Plugged in during the late evening, unplugged in the morning.
        for t in plugs:
            assert 20.0 < t % 24 or t % 24 < 2.0
        for t in unplugs:
            assert 5.0 < t % 24 < 10.0
