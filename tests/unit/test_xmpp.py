"""Unit tests for the XMPP-like switchboard."""

import pytest

from repro.net.xmpp import RoutingError, XmppServer
from repro.sim import Kernel


def make_server():
    kernel = Kernel()
    server = XmppServer(kernel, latency_ms=10.0)
    return kernel, server


def connect_simple(server, jid, inbox):
    return server.connect(jid, inbox.append)


def test_routing_requires_registration_and_roster():
    kernel, server = make_server()
    server.register("a@x")
    with pytest.raises(RoutingError):
        server.submit("a@x", "b@x", {"hi": 1})
    server.register("b@x")
    with pytest.raises(RoutingError):
        server.submit("a@x", "b@x", {"hi": 1})  # no roster pair
    server.add_roster_pair("a@x", "b@x")
    inbox = []
    connect_simple(server, "b@x", inbox)
    server.submit("a@x", "b@x", {"hi": 1})
    kernel.run()
    assert len(inbox) == 1


def test_stanza_stamped_with_sender():
    kernel, server = make_server()
    for jid in ("a@x", "b@x"):
        server.register(jid)
    server.add_roster_pair("a@x", "b@x")
    inbox = []
    connect_simple(server, "b@x", inbox)
    server.submit("a@x", "b@x", {"hi": 1})
    kernel.run()
    assert inbox[0]["_from"] == "a@x"
    assert inbox[0]["hi"] == 1


def test_offline_storage_and_drain_on_connect():
    kernel, server = make_server()
    for jid in ("a@x", "b@x"):
        server.register(jid)
    server.add_roster_pair("a@x", "b@x")
    server.submit("a@x", "b@x", {"n": 1})
    server.submit("a@x", "b@x", {"n": 2})
    kernel.run()
    assert server.offline_count("b@x") == 2
    inbox = []
    connect_simple(server, "b@x", inbox)
    kernel.run()
    assert [m["n"] for m in inbox] == [1, 2]
    assert server.offline_count("b@x") == 0


def test_reconnect_replaces_session():
    kernel, server = make_server()
    server.register("a@x")
    first_inbox, second_inbox = [], []
    first = connect_simple(server, "a@x", first_inbox)
    second = connect_simple(server, "a@x", second_inbox)
    assert not first.alive
    assert server.session_of("a@x") is second


def test_graceful_disconnect_stores_offline():
    kernel, server = make_server()
    for jid in ("a@x", "b@x"):
        server.register(jid)
    server.add_roster_pair("a@x", "b@x")
    inbox = []
    session = connect_simple(server, "b@x", inbox)
    server.disconnect(session)
    server.submit("a@x", "b@x", {"n": 1})
    kernel.run()
    assert inbox == []
    assert server.offline_count("b@x") == 1


def test_physical_rx_failure_loses_stanza_and_kills_session():
    """The stale-TCP loss window of Section 4.6."""
    kernel, server = make_server()
    for jid in ("a@x", "b@x"):
        server.register(jid)
    server.add_roster_pair("a@x", "b@x")
    inbox = []

    def broken_physical_rx(size, complete):
        complete(False)

    server.connect("b@x", inbox.append, physical_rx=broken_physical_rx)
    server.submit("a@x", "b@x", {"n": 1})
    kernel.run()
    assert inbox == []
    assert server.stanzas_lost == 1
    # The failure revealed the dead session: the next stanza goes offline.
    server.submit("a@x", "b@x", {"n": 2})
    kernel.run()
    assert server.offline_count("b@x") == 1


def test_physical_rx_success_delivers_and_costs_nothing_extra():
    kernel, server = make_server()
    for jid in ("a@x", "b@x"):
        server.register(jid)
    server.add_roster_pair("a@x", "b@x")
    inbox = []
    sizes = []

    def physical_rx(size, complete):
        sizes.append(size)
        complete(True)

    server.connect("b@x", inbox.append, physical_rx=physical_rx)
    server.submit("a@x", "b@x", {"payload": "x" * 100})
    kernel.run()
    assert len(inbox) == 1
    assert sizes[0] > 100


def test_presence_notifies_connected_roster_peers():
    kernel, server = make_server()
    for jid in ("collector@x", "device@x"):
        server.register(jid)
    server.add_roster_pair("collector@x", "device@x")
    collector_inbox = []
    connect_simple(server, "collector@x", collector_inbox)
    connect_simple(server, "device@x", [])
    kernel.run()
    presence = [m for m in collector_inbox if m.get("kind") == "presence"]
    assert len(presence) == 1
    assert presence[0]["jid"] == "device@x"
    assert presence[0]["available"] is True


def test_roster_removal_blocks_routing():
    kernel, server = make_server()
    for jid in ("a@x", "b@x"):
        server.register(jid)
    server.add_roster_pair("a@x", "b@x")
    server.remove_roster_pair("a@x", "b@x")
    with pytest.raises(RoutingError):
        server.submit("a@x", "b@x", {})
