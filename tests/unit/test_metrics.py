"""Unit tests for the kernel metrics plane."""

from repro.sim.kernel import Kernel
from repro.sim.metrics import DEFAULT_BUCKETS, Counter, Histogram, MetricsRegistry
from repro.sim.trace import TraceRecorder


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------


def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42


def test_histogram_buckets_and_stats():
    histogram = Histogram("h", bounds=(10.0, 100.0))
    for value in (1, 10, 11, 100, 1000):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.total == 1122
    assert histogram.min == 1
    assert histogram.max == 1000
    assert histogram.mean == 1122 / 5
    # bisect_left: values equal to a bound land in that bound's bucket.
    assert [count for _, count in histogram.buckets()] == [2, 2, 1]


def test_registry_create_or_get():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h") is registry.histogram("h")
    assert registry.histogram("h").bounds == DEFAULT_BUCKETS


def test_snapshot_sorted_and_gauges_pulled_lazily():
    registry = MetricsRegistry()
    registry.counter("z.count").inc(3)
    pulls = []

    def gauge():
        pulls.append(True)
        return 7.0

    registry.gauge("a.gauge", gauge)
    assert pulls == []  # registering costs nothing
    snap = registry.snapshot()
    assert snap == {"z.count": 3, "a.gauge": 7.0}
    assert pulls == [True]


def test_nonzero_filters_untouched_metrics():
    registry = MetricsRegistry()
    registry.counter("touched").inc()
    registry.counter("untouched")
    registry.histogram("empty")
    registry.histogram("used").observe(5)
    moved = registry.nonzero()
    assert "touched" in moved and "used" in moved
    assert "untouched" not in moved and "empty" not in moved


def test_report_is_deterministic_text():
    registry = MetricsRegistry()
    registry.counter("b").inc(2)
    registry.counter("a").inc(1)
    first = registry.report()
    second = registry.report()
    assert first == second
    lines = first.splitlines()
    assert lines[1].startswith("a") and lines[2].startswith("b")


# ---------------------------------------------------------------------------
# Kernel integration and trace bridge
# ---------------------------------------------------------------------------


def test_kernel_owns_a_registry_with_event_gauges():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    snap = kernel.metrics.snapshot()
    assert snap["kernel.events"] == kernel.events_executed == 1


def test_two_kernels_do_not_share_metrics():
    a, b = Kernel(), Kernel()
    a.metrics.counter("x").inc()
    assert b.metrics.counter("x").value == 0


def test_record_snapshot_writes_one_trace_event():
    registry = MetricsRegistry()
    registry.counter("broker.publishes").inc(5)
    trace = TraceRecorder()
    registry.record_snapshot(trace, time=1234.0)
    event = trace.last("metrics", "snapshot")
    assert event is not None
    assert event.time == 1234.0
    assert event.data["broker.publishes"] == 5


def test_disable_swaps_counters_to_noops():
    from repro.sim.metrics import Counter, MetricsRegistry, NullCounter

    registry = MetricsRegistry()
    counter = registry.counter("pre.bound")
    counter.inc(5)
    registry.disable()
    # The pre-bound object components hold becomes the no-op class.
    assert type(counter) is NullCounter
    counter.inc(100)
    assert counter.value == 5  # frozen, still readable
    # Metrics created while disabled are born as no-ops.
    late = registry.counter("late")
    late.inc()
    assert late.value == 0
    registry.enable()
    assert type(counter) is Counter
    counter.inc()
    assert counter.value == 6


def test_disable_swaps_histograms_to_noops():
    from repro.sim.metrics import Histogram, MetricsRegistry, NullHistogram

    registry = MetricsRegistry()
    histogram = registry.histogram("sizes")
    histogram.observe(10.0)
    registry.disable()
    assert type(histogram) is NullHistogram
    histogram.observe(1e9)
    assert histogram.count == 1
    assert histogram.max == 10.0
    registry.enable()
    histogram.observe(20.0)
    assert histogram.count == 2


def test_disabled_registry_snapshot_reports_frozen_values():
    from repro.sim.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.disable()
    registry.counter("a").inc(999)
    assert registry.snapshot()["a"] == 3
