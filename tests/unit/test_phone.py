"""Unit tests for the composed phone: interfaces, lifecycle, apps."""

import pytest

from repro.device import (
    INTERFACE_CELLULAR,
    INTERFACE_WIFI,
    ChattyApp,
    ChattyAppConfig,
    EmailApp,
    EmailConfig,
    Phone,
    PhoneOffline,
)
from repro.sim import Kernel, MINUTE, RandomStreams


def test_wifi_preferred_over_cellular():
    kernel = Kernel()
    phone = Phone(kernel)
    assert phone.active_interface() == INTERFACE_CELLULAR
    phone.set_wifi_connected(True)
    assert phone.active_interface() == INTERFACE_WIFI
    phone.set_wifi_connected(False)
    assert phone.active_interface() == INTERFACE_CELLULAR


def test_no_interface_when_all_down():
    kernel = Kernel()
    phone = Phone(kernel)
    phone.set_cell_coverage(False)
    assert phone.active_interface() is None
    with pytest.raises(PhoneOffline):
        phone.transfer(tx_bytes=10)


def test_interface_change_listeners_fire_once_per_change():
    kernel = Kernel()
    phone = Phone(kernel)
    changes = []
    phone.on_interface_change.append(changes.append)
    phone.set_wifi_connected(True)
    phone.set_wifi_connected(True)
    phone.set_cell_coverage(False)  # wifi still preferred: no change
    phone.set_wifi_connected(False)  # now nothing
    assert changes == [INTERFACE_WIFI, None]


def test_transfer_routes_to_active_interface():
    kernel = Kernel()
    phone = Phone(kernel)
    phone.transfer(tx_bytes=100)
    kernel.run()
    assert phone.modem.bytes_tx == 100
    phone.set_wifi_connected(True)
    phone.transfer(tx_bytes=200)
    kernel.run()
    assert phone.wifi.bytes_tx == 200
    assert phone.modem.bytes_tx == 100


def test_reboot_cycle_fires_listeners_and_restores_radios():
    kernel = Kernel()
    phone = Phone(kernel)
    phone.set_wifi_connected(True)
    events = []
    phone.on_shutdown.append(lambda: events.append("down"))
    phone.on_boot.append(lambda: events.append("up"))
    phone.reboot(downtime_ms=5000.0)
    assert not phone.alive
    assert phone.active_interface() is None
    kernel.run_until(10_000.0)
    assert phone.alive
    assert events == ["down", "up"]
    # Wi-Fi association desired before the reboot is restored.
    assert phone.active_interface() == INTERFACE_WIFI
    assert phone.reboot_count == 1


def test_reboot_while_dead_is_noop():
    kernel = Kernel()
    phone = Phone(kernel)
    phone.reboot(downtime_ms=5000.0)
    phone.reboot(downtime_ms=5000.0)
    assert phone.reboot_count == 1


def test_email_app_checks_on_interval():
    kernel = Kernel()
    phone = Phone(kernel)
    app = EmailApp(phone, EmailConfig(interval_ms=5 * MINUTE))
    app.start()
    kernel.run_until(31 * MINUTE)
    assert app.check_count == 6
    assert phone.modem.rampup_count == 6
    assert phone.cpu.wake_locks_held == 0  # all released


def test_email_app_survives_offline_checks():
    kernel = Kernel()
    phone = Phone(kernel)
    phone.set_cell_coverage(False)
    app = EmailApp(phone, EmailConfig(interval_ms=5 * MINUTE))
    app.start()
    kernel.run_until(16 * MINUTE)
    assert app.check_count == 0
    assert app.failed_checks == 3
    assert phone.cpu.wake_locks_held == 0


def test_email_app_stop():
    kernel = Kernel()
    phone = Phone(kernel)
    app = EmailApp(phone, EmailConfig(interval_ms=MINUTE))
    app.start()
    kernel.run_until(3 * MINUTE + 30_000.0)
    app.stop()
    count = app.check_count
    kernel.run_until(10 * MINUTE)
    assert app.check_count == count


def test_chatty_app_generates_randomized_traffic():
    kernel = Kernel()
    phone = Phone(kernel)
    rng = RandomStreams(5).stream("im")
    app = ChattyApp(phone, rng, ChattyAppConfig(mean_interval_ms=2 * MINUTE))
    app.start()
    kernel.run_until(60 * MINUTE)
    assert app.exchange_count > 5
    assert phone.cpu.wake_locks_held == 0
    app.stop()


def test_energy_accounting_exposed():
    kernel = Kernel()
    phone = Phone(kernel)
    kernel.run_until(10_000.0)
    assert phone.energy_joules > 0.0
