"""Unit tests for tail detection and transmission policies."""

import pytest

from repro.core.scheduler import PogoScheduler
from repro.core.tailsync import (
    ImmediatePolicy,
    PeriodicPolicy,
    SynchronizedPolicy,
    TailDetector,
)
from repro.device import EmailApp, EmailConfig, Phone
from repro.sim import HOUR, Kernel, MINUTE, SECOND


class FakeController:
    """Minimal policy controller: records flushes."""

    def __init__(self, kernel, phone):
        self.kernel = kernel
        self.phone = phone
        self.scheduler = PogoScheduler(kernel, phone.cpu)
        self.flushes = []

    def flush(self, reason):
        self.flushes.append((self.kernel.now, reason))


def make_setup():
    kernel = Kernel()
    phone = Phone(kernel)
    controller = FakeController(kernel, phone)
    return kernel, phone, controller


def test_detector_fires_on_foreign_traffic():
    kernel, phone, _ = make_setup()
    detector = TailDetector(phone)
    fired = []
    detector.on_activity.append(lambda: fired.append(kernel.now))
    detector.start()
    app = EmailApp(phone, EmailConfig(interval_ms=5 * MINUTE))
    app.start()
    kernel.run_until(6 * MINUTE)
    assert len(fired) >= 1
    # Detection happens within ~1 poll of the transfer start (5 min +
    # ramp-up), far inside the 6 s DCH tail.
    assert fired[0] <= 5 * MINUTE + phone.modem.profile.ramp_ms + 1.5 * SECOND
    assert detector.detections >= 1


def test_detector_never_wakes_the_cpu():
    """The Thread.sleep trick: with no other traffic, the detector's
    polling is frozen and the CPU sleeps indefinitely."""
    kernel, phone, _ = make_setup()
    detector = TailDetector(phone)
    detector.start()
    kernel.run_until(30 * MINUTE)
    assert not phone.cpu.awake
    assert phone.cpu.wake_count == 0
    # Polls only happened during the initial awake window (~1 s).
    assert detector.polls <= 3


def test_detector_stop():
    kernel, phone, _ = make_setup()
    detector = TailDetector(phone)
    detector.start()
    detector.stop()
    app = EmailApp(phone, EmailConfig(interval_ms=MINUTE))
    app.start()
    kernel.run_until(5 * MINUTE)
    assert detector.detections == 0


def test_synchronized_policy_flushes_on_detection():
    kernel, phone, controller = make_setup()
    detector = TailDetector(phone)
    policy = SynchronizedPolicy(detector, max_delay_ms=None)
    policy.bind(controller)
    policy.start()
    app = EmailApp(phone, EmailConfig(interval_ms=5 * MINUTE))
    app.start()
    kernel.run_until(11 * MINUTE)
    reasons = {reason for _, reason in controller.flushes}
    assert "tail-sync" in reasons
    assert policy.sync_flushes >= 2


def test_synchronized_policy_fallback_interval():
    kernel, phone, controller = make_setup()
    detector = TailDetector(phone)
    policy = SynchronizedPolicy(detector, max_delay_ms=1 * HOUR)
    policy.bind(controller)
    policy.start()
    kernel.run_until(2.5 * HOUR)  # silence: no other apps
    fallbacks = [r for _, r in controller.flushes if r == "fallback-interval"]
    assert len(fallbacks) == 2


def test_synchronized_policy_wifi_prompt():
    kernel, phone, controller = make_setup()
    phone.set_wifi_connected(True)
    detector = TailDetector(phone)
    policy = SynchronizedPolicy(detector, max_delay_ms=None)
    policy.bind(controller)
    policy.start()
    policy.on_enqueue()
    assert controller.flushes[-1][1] == "wifi-prompt"
    # On cellular, enqueue does not flush.
    phone.set_wifi_connected(False)
    count = len(controller.flushes)
    policy.on_enqueue()
    assert len(controller.flushes) == count


def test_policy_on_connected_flushes():
    kernel, phone, controller = make_setup()
    policy = SynchronizedPolicy(TailDetector(phone), max_delay_ms=None)
    policy.bind(controller)
    policy.on_connected()
    assert controller.flushes[-1][1] == "connected"


def test_periodic_policy():
    kernel, phone, controller = make_setup()
    policy = PeriodicPolicy(interval_ms=10 * MINUTE)
    policy.bind(controller)
    policy.start()
    kernel.run_until(35 * MINUTE)
    periodic = [t for t, r in controller.flushes if r == "periodic"]
    assert len(periodic) == 3
    policy.stop()
    kernel.run_until(2 * HOUR)
    assert len([r for _, r in controller.flushes if r == "periodic"]) == 3


def test_immediate_policy():
    kernel, phone, controller = make_setup()
    policy = ImmediatePolicy()
    policy.bind(controller)
    policy.start()
    policy.on_enqueue()
    policy.on_enqueue()
    assert [r for _, r in controller.flushes] == ["immediate", "immediate"]


def test_synchronized_policy_stop_detaches():
    kernel, phone, controller = make_setup()
    detector = TailDetector(phone)
    policy = SynchronizedPolicy(detector, max_delay_ms=1 * HOUR)
    policy.bind(controller)
    policy.start()
    policy.stop()
    assert not detector.running
    kernel.run_until(3 * HOUR)
    assert controller.flushes == []
