"""Unit tests for the publish/subscribe broker."""

import pytest

from repro.core.broker import (
    SUB_ADDED,
    SUB_RELEASED,
    SUB_REMOVED,
    SUB_RENEWED,
    Broker,
)
from repro.core.messages import MessageError


def test_publish_reaches_subscribers():
    broker = Broker()
    got = []
    broker.subscribe("ch", got.append)
    delivered = broker.publish("ch", {"n": 1})
    assert delivered == 1
    assert got == [{"n": 1}]


def test_publish_without_subscribers_is_fine():
    broker = Broker()
    assert broker.publish("nobody", {"n": 1}) == 0


def test_subscribers_share_an_immutable_view():
    """Deliveries are one shared frozen view: mutation raises instead of
    silently diverging between subscribers; ``copy()`` is the escape hatch."""
    broker = Broker()
    first, second = [], []
    broker.subscribe("ch", first.append)
    broker.subscribe("ch", second.append)
    broker.publish("ch", {"list": [1]})
    with pytest.raises(MessageError):
        first[0]["list"].append(2)
    with pytest.raises(MessageError):
        first[0]["extra"] = True
    assert second[0]["list"] == [1]
    mutable = first[0].copy()
    mutable["extra"] = True
    assert "extra" not in second[0]


def test_release_and_renew():
    broker = Broker()
    got = []
    sub = broker.subscribe("ch", got.append)
    sub.release()
    broker.publish("ch", {"n": 1})
    assert got == []
    sub.renew()
    broker.publish("ch", {"n": 2})
    assert got == [{"n": 2}]


def test_release_renew_idempotent():
    """Table 1: "these methods have no effect when the subscription is
    inactive or active respectively"."""
    broker = Broker()
    changes = []
    broker.watch_all(lambda ch, sub, change: changes.append(change))
    sub = broker.subscribe("ch", lambda m: None)
    sub.release()
    sub.release()
    sub.renew()
    sub.renew()
    assert changes == [SUB_ADDED, SUB_RELEASED, SUB_RENEWED]


def test_removed_subscription_cannot_be_revived():
    broker = Broker()
    got = []
    sub = broker.subscribe("ch", got.append)
    sub.remove()
    sub.renew()
    broker.publish("ch", {"n": 1})
    assert got == []
    assert not broker.has_subscribers("ch")


def test_parameters_stored_and_queryable():
    broker = Broker()
    sub = broker.subscribe("locations", lambda m: None, {"provider": "GPS", "interval": 60000})
    assert sub.parameter("provider") == "GPS"
    assert sub.parameter("missing", "default") == "default"
    assert broker.subscriptions("locations")[0].parameters["interval"] == 60000


def test_invalid_parameters_rejected():
    broker = Broker()
    with pytest.raises(MessageError):
        broker.subscribe("ch", lambda m: None, {"bad": object()})


def test_invalid_channel_rejected():
    broker = Broker()
    with pytest.raises(ValueError):
        broker.subscribe("", lambda m: None)
    with pytest.raises(ValueError):
        broker.subscribe(None, lambda m: None)


def test_channel_watchers_see_changes():
    broker = Broker()
    events = []
    broker.watch_channel("wifi-scan", lambda ch, sub, change: events.append((ch, change)))
    sub = broker.subscribe("wifi-scan", lambda m: None)
    broker.subscribe("other", lambda m: None)  # not watched
    sub.release()
    sub.remove()
    assert events == [
        ("wifi-scan", SUB_ADDED),
        ("wifi-scan", SUB_RELEASED),
        ("wifi-scan", SUB_REMOVED),
    ]


def test_has_subscribers_respects_active_state():
    """The sensor duty-cycling primitive (Section 4.3)."""
    broker = Broker()
    sub = broker.subscribe("wifi-scan", lambda m: None)
    assert broker.has_subscribers("wifi-scan")
    sub.release()
    assert not broker.has_subscribers("wifi-scan")
    sub.renew()
    assert broker.has_subscribers("wifi-scan")


def test_remove_owned_by():
    broker = Broker()
    broker.subscribe("a", lambda m: None, owner="script:x")
    broker.subscribe("b", lambda m: None, owner="script:x")
    keep = broker.subscribe("a", lambda m: None, owner="script:y")
    removed = broker.remove_owned_by("script:x")
    assert removed == 2
    assert broker.all_subscriptions() == [keep]


def test_channels_listing():
    broker = Broker()
    broker.subscribe("b", lambda m: None)
    broker.subscribe("a", lambda m: None)
    assert broker.channels() == ["a", "b"]


def test_delivery_counters():
    broker = Broker()
    sub = broker.subscribe("ch", lambda m: None)
    broker.publish("ch", 1)
    broker.publish("ch", 2)
    assert sub.delivery_count == 2
    assert broker.publish_count == 2
    assert broker.delivery_count == 2


def test_custom_deliver_hook():
    queue = []
    broker = Broker(deliver=lambda sub, msg: queue.append((sub.channel, msg)))
    broker.subscribe("ch", lambda m: pytest.fail("handler must not run directly"))
    broker.publish("ch", {"n": 1})
    assert queue == [("ch", {"n": 1})]


def test_unsubscribe_during_publish_is_safe():
    broker = Broker()
    got = []
    subs = []

    def handler_that_removes(message):
        got.append(message)
        subs[0].remove()

    subs.append(broker.subscribe("ch", handler_that_removes))
    broker.subscribe("ch", got.append)
    broker.publish("ch", 1)
    broker.publish("ch", 2)
    assert got == [1, 1, 2]
