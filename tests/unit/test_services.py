"""Unit tests for collector-side services (geolocation bridge)."""

import pytest

from repro.core.multibroker import CollectorContext
from repro.core.node import CollectorNode
from repro.core.services import GEO_LOOKUP_CHANNEL, GEO_RESULT_CHANNEL, GeolocationBridge
from repro.net.xmpp import XmppServer
from repro.sim import Kernel
from repro.world.geolocation import GeolocationService
from repro.world.geometry import Point
from repro.world.places import AccessPoint


def make_context_with_bridge(aps=()):
    kernel = Kernel()
    server = XmppServer(kernel)
    node = CollectorNode(kernel, server, "pc@x")
    context = CollectorContext(node, "exp")
    service = GeolocationService(aps)
    bridge = GeolocationBridge(service)
    bridge.attach_context(context)
    return kernel, context, bridge


def ap(bssid, x, y):
    return AccessPoint(bssid=bssid, ssid="n", position=Point(x, y))


def test_lookup_round_trip():
    kernel, context, bridge = make_context_with_bridge([ap("aa:aa:aa:aa:aa:aa", 10.0, 20.0)])
    results = []
    context.broker.subscribe(GEO_RESULT_CHANNEL, results.append, owner="script:collect")
    context.broker.publish(GEO_LOOKUP_CHANNEL, {"id": 7, "vector": {"aa:aa:aa:aa:aa:aa": 0.9}})
    assert len(results) == 1
    assert results[0]["id"] == 7
    fix = results[0]["fix"]
    assert fix is not None
    assert fix["matched"] == 1
    assert abs(fix["lat"] - 52.0) < 0.1


def test_unknown_aps_give_null_fix():
    kernel, context, bridge = make_context_with_bridge()
    results = []
    context.broker.subscribe(GEO_RESULT_CHANNEL, results.append, owner="script:collect")
    context.broker.publish(GEO_LOOKUP_CHANNEL, {"id": 1, "vector": {"ff:ff:ff:ff:ff:fe": 1.0}})
    assert results[0]["fix"] is None
    assert bridge.queries == 1


def test_bridge_subscription_is_local_plumbing():
    """The service's subscription must never be announced to devices."""
    kernel, context, bridge = make_context_with_bridge()
    sent = []
    context.node.send_to = lambda peer, payload: sent.append(payload)
    context.attach_device("d@x")
    sub_ops = [p for p in sent if str(p.get("op", "")).startswith("sub_")]
    assert sub_ops == []


def test_empty_vector_query():
    kernel, context, bridge = make_context_with_bridge()
    results = []
    context.broker.subscribe(GEO_RESULT_CHANNEL, results.append, owner="script:collect")
    context.broker.publish(GEO_LOOKUP_CHANNEL, {"id": 2})
    assert results[0]["fix"] is None
