"""Unit tests for named, seeded random streams."""

from repro.sim import RandomStreams, derive_seed


def test_same_seed_same_stream_reproduces():
    a = RandomStreams(42).stream("mobility")
    b = RandomStreams(42).stream("mobility")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RandomStreams(42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_adding_consumers_does_not_perturb_existing_streams():
    lonely = RandomStreams(7)
    draws_without = [lonely.stream("x").random() for _ in range(5)]

    crowded = RandomStreams(7)
    crowded.stream("newcomer").random()
    draws_with = [crowded.stream("x").random() for _ in range(5)]
    assert draws_without == draws_with


def test_stream_is_cached():
    streams = RandomStreams(1)
    assert streams.stream("s") is streams.stream("s")


def test_contains():
    streams = RandomStreams(1)
    assert "s" not in streams
    streams.stream("s")
    assert "s" in streams


def test_fork_is_deterministic_and_independent():
    a = RandomStreams(3).fork("user1")
    b = RandomStreams(3).fork("user1")
    c = RandomStreams(3).fork("user2")
    assert a.stream("x").random() == b.stream("x").random()
    assert a.seed != c.seed


def test_derive_seed_distributes_adjacent_inputs():
    seeds = {derive_seed(i, "n") for i in range(100)}
    assert len(seeds) == 100
    seeds_by_name = {derive_seed(0, f"n{i}") for i in range(100)}
    assert len(seeds_by_name) == 100
