"""Unit tests for places and access-point generation."""

import random

from repro.world.geometry import Point
from repro.world.places import (
    AccessPoint,
    PlaceFactory,
    all_access_points,
    is_locally_administered,
    make_bssid,
)


def test_bssid_format():
    rng = random.Random(1)
    bssid = make_bssid(rng)
    parts = bssid.split(":")
    assert len(parts) == 6
    assert all(len(p) == 2 for p in parts)
    int(parts[0], 16)  # parses as hex


def test_locally_administered_bit():
    rng = random.Random(2)
    assert is_locally_administered(make_bssid(rng, locally_administered=True))
    assert not is_locally_administered(make_bssid(rng, locally_administered=False))


def test_bssid_never_multicast():
    rng = random.Random(3)
    for _ in range(50):
        first = int(make_bssid(rng).split(":")[0], 16)
        assert first & 0x01 == 0


def test_factory_place_has_category_appropriate_aps():
    factory = PlaceFactory(random.Random(4))
    office = factory.make_place("office", Point(0, 0), category="office")
    lo, hi = PlaceFactory.AP_COUNT_RANGES["office"]
    assert lo <= len(office.access_points) <= hi
    assert office.has_wifi_internet
    assert office.internet_aps()


def test_generic_place_has_no_internet_by_default():
    factory = PlaceFactory(random.Random(5))
    cafe = factory.make_place("cafe", Point(0, 0), category="cafe")
    assert not cafe.has_wifi_internet


def test_factory_determinism():
    a = PlaceFactory(random.Random(6)).make_place("p", Point(0, 0), category="home")
    b = PlaceFactory(random.Random(6)).make_place("p", Point(0, 0), category="home")
    assert [ap.bssid for ap in a.access_points] == [ap.bssid for ap in b.access_points]


def test_aps_scatter_near_center():
    factory = PlaceFactory(random.Random(7))
    place = factory.make_place("home", Point(100, 100), category="home")
    for ap in place.access_points:
        assert place.center.distance_to(ap.position) < 250.0


def test_street_ap_near_position():
    factory = PlaceFactory(random.Random(8))
    ap = factory.make_street_ap(Point(50, 50))
    assert Point(50, 50).distance_to(ap.position) < 400.0


def test_all_access_points_flattens():
    factory = PlaceFactory(random.Random(9))
    places = [
        factory.make_place("a", Point(0, 0), category="home"),
        factory.make_place("b", Point(10, 10), category="cafe"),
    ]
    flat = all_access_points(places)
    assert len(flat) == sum(len(p.access_points) for p in places)


def test_internet_ap_never_locally_administered():
    for seed in range(20):
        factory = PlaceFactory(random.Random(seed))
        place = factory.make_place("h", Point(0, 0), category="home")
        for ap in place.internet_aps():
            assert not ap.locally_administered
