"""Unit tests for the chaos impairment primitives and the monitor's senses.

Each impairment is exercised in isolation against a bare XMPP
switchboard, asserting three things per primitive: the wire-level effect
(dropped / doubled / late / overtaken), the ``chaos.*`` metrics counter,
and the ``chaos.impair`` span annotation carrying the action and link.
"""

import pytest

from repro.chaos import ChaosEngine, ChaosInterceptor, Impairment, stanza_trace_ids
from repro.chaos.invariants import InvariantMonitor, _SchedulerWitness
from repro.core.envelope import Envelope
from repro.core.middleware import PogoSimulation
from repro.net.xmpp import XmppServer
from repro.sim import Kernel, RandomStreams


def make_pair(latency_ms=10.0):
    """A switchboard with a connected a->b pair and a chaos interceptor."""
    kernel = Kernel()
    server = XmppServer(kernel, latency_ms=latency_ms)
    for jid in ("a@x", "b@x"):
        server.register(jid)
    server.add_roster_pair("a@x", "b@x")
    inbox = []
    server.connect("b@x", inbox.append)
    interceptor = ChaosInterceptor(kernel, RandomStreams(7).stream("chaos/impairments"))
    server.interceptor = interceptor
    return kernel, server, interceptor, inbox


def impair_spans(kernel, action=None):
    spans = kernel.spans.spans(hop="chaos.impair")
    if action is None:
        return spans
    return [s for s in spans if s.attrs.get("action") == action]


def chaos_count(kernel, name):
    return kernel.metrics.counter(f"chaos.{name}").value


# ---------------------------------------------------------------------------
# Impairment primitives
# ---------------------------------------------------------------------------


def test_passthrough_without_rules_counts_passed():
    kernel, server, interceptor, inbox = make_pair()
    server.submit("a@x", "b@x", {"n": 1})
    kernel.run()
    assert [m["n"] for m in inbox] == [1]
    assert chaos_count(kernel, "passed") == 1
    assert chaos_count(kernel, "dropped") == 0
    assert impair_spans(kernel) == []


def test_drop_loses_the_stanza_and_annotates():
    kernel, server, interceptor, inbox = make_pair()
    interceptor.add_rule("a@x", "b@x", Impairment(drop=1.0))
    server.submit("a@x", "b@x", {"n": 1})
    kernel.run()
    assert inbox == []
    assert chaos_count(kernel, "dropped") == 1
    (span,) = impair_spans(kernel, "drop")
    assert span.attrs["link"] == "a@x->b@x"


def test_duplicate_delivers_twice():
    kernel, server, interceptor, inbox = make_pair()
    interceptor.add_rule("a@x", "b@x", Impairment(dup=1.0))
    server.submit("a@x", "b@x", {"n": 1})
    kernel.run()
    assert [m["n"] for m in inbox] == [1, 1]
    assert chaos_count(kernel, "duplicated") == 1
    assert len(impair_spans(kernel, "dup")) == 1


def test_delay_adds_latency_within_bounds():
    kernel, server, interceptor, inbox = make_pair(latency_ms=10.0)
    interceptor.add_rule("a@x", "b@x", Impairment(delay_ms=(100.0, 100.0)))
    server.submit("a@x", "b@x", {"n": 1})
    kernel.run_until(105.0)
    assert inbox == []  # base latency alone would have delivered at 10ms
    kernel.run_until(120.0)
    assert [m["n"] for m in inbox] == [1]
    assert chaos_count(kernel, "delayed") == 1
    (span,) = impair_spans(kernel, "delay")
    assert span.attrs["extra_ms"] == 100.0
    assert kernel.metrics.histogram("chaos.extra_latency_ms").count == 1


def test_reorder_holds_a_stanza_past_later_traffic():
    kernel, server, interceptor, inbox = make_pair()
    interceptor.add_rule("a@x", "b@x", Impairment(reorder=1.0, hold_ms=(500.0, 500.0)))
    server.submit("a@x", "b@x", {"n": 1})
    interceptor.clear_rules()  # second stanza travels clean
    server.submit("a@x", "b@x", {"n": 2})
    kernel.run()
    assert [m["n"] for m in inbox] == [2, 1]
    assert chaos_count(kernel, "reordered") == 1
    assert len(impair_spans(kernel, "reorder")) == 1


def test_partition_blocks_both_directions_until_healed():
    kernel, server, interceptor, inbox = make_pair()
    inbox_a = []
    server.connect("a@x", inbox_a.append)
    kernel.run()  # let a's presence land before the island forms
    data = lambda box: [m["n"] for m in box if "n" in m]
    interceptor.start_partition({"b@x"})
    server.submit("a@x", "b@x", {"n": 1})
    server.submit("b@x", "a@x", {"n": 2})
    kernel.run()
    assert data(inbox) == [] and data(inbox_a) == []
    assert chaos_count(kernel, "partition_dropped") == 2
    interceptor.end_partition({"b@x"})
    server.submit("a@x", "b@x", {"n": 3})
    kernel.run()
    assert data(inbox) == [3]


def test_first_matching_rule_wins_over_wildcard():
    kernel, server, interceptor, inbox = make_pair()
    interceptor.add_rule("a@x", "b@x", Impairment())  # clean, specific
    interceptor.add_rule("*", "*", Impairment(drop=1.0))
    server.submit("a@x", "b@x", {"n": 1})
    kernel.run()
    assert [m["n"] for m in inbox] == [1]
    assert chaos_count(kernel, "dropped") == 0


def test_impairment_rejects_bad_probability():
    with pytest.raises(ValueError):
        Impairment(drop=1.5)


def test_span_carries_trace_id_of_riding_envelope():
    kernel, server, interceptor, inbox = make_pair()
    interceptor.add_rule("a@x", "b@x", Impairment(drop=1.0))
    envelope = Envelope.wrap({"v": 3.7})
    envelope.trace_id = 0xBEEF
    stanza = {
        "kind": "env", "seq": 1, "base": 1, "ack": 0,
        "payload": {"op": "batch", "items": [
            {"op": "pub", "channel": "battery", "msg": envelope},
        ]},
    }
    server.submit("a@x", "b@x", stanza)
    kernel.run()
    (span,) = impair_spans(kernel, "drop")
    assert span.trace_id == 0xBEEF
    assert stanza_trace_ids(stanza) == [0xBEEF]


def test_stanza_trace_ids_ignores_control_traffic():
    assert stanza_trace_ids({"kind": "ack", "ack": 4}) == []
    assert stanza_trace_ids({"kind": "env", "seq": 1, "payload": {"op": "sub_add"}}) == []


# ---------------------------------------------------------------------------
# Server restart + transport recovery
# ---------------------------------------------------------------------------


def test_server_restart_kills_sessions_but_keeps_offline_storage():
    kernel, server, interceptor, inbox = make_pair()
    server.submit("a@x", "b@x", {"n": 1})
    kernel.run()
    assert len(inbox) == 1
    disconnected = server.restart()
    assert "b@x" in disconnected and server.restarts == 1
    server.submit("a@x", "b@x", {"n": 2})
    kernel.run()
    assert len(inbox) == 1  # not delivered: b's session died
    assert server.offline_count("b@x") == 1  # ...but stored, like Openfire's DB
    server.connect("b@x", inbox.append)
    kernel.run()
    assert [m["n"] for m in inbox] == [1, 2]


def test_engine_restart_reconnects_every_transport():
    sim = PogoSimulation(seed=3)
    collector = sim.add_collector("ops")
    device = sim.add_device()
    engine = ChaosEngine(sim)
    sim.start()
    sim.run(minutes=1)
    assert collector.node.transport.connected and device.node.transport.connected
    engine.server_restart(sim.kernel.now + 1_000.0)
    sim.run(minutes=1)
    assert sim.server.restarts == 1
    assert sim.kernel.metrics.counter("chaos.server_restarts").value == 1
    assert collector.node.transport.reconnects >= 1
    assert collector.node.transport.connected
    assert device.node.transport.connected


# ---------------------------------------------------------------------------
# The monitor's senses (violations must actually fire)
# ---------------------------------------------------------------------------


def make_monitored_sim():
    sim = PogoSimulation(seed=5)
    sim.add_collector("ops")
    sim.add_device()
    monitor = InvariantMonitor(sim)
    return sim, monitor


def test_scheduler_witness_flags_overlapping_serial_tasks():
    sim, monitor = make_monitored_sim()
    witness = _SchedulerWitness(monitor, "s")
    witness.task_started(None, "script-1")
    witness.task_started(None, "script-1")  # would mean two threads in one script
    assert any(v.invariant == "scheduler-serialization" for v in monitor.violations)


def test_scheduler_witness_accepts_sequential_tasks():
    sim, monitor = make_monitored_sim()
    witness = _SchedulerWitness(monitor, "s")
    for _ in range(3):
        witness.task_started(None, "script-1")
        witness.task_finished(None, "script-1")
    assert monitor.violations == []


def test_buffer_conservation_violation_detected():
    sim, monitor = make_monitored_sim()
    device = next(iter(sim.devices.values()))
    device.node.buffer.enqueued += 1  # forge a book-keeping hole
    sim.run(minutes=1)  # periodic check fires at 30s
    assert any(v.invariant == "buffer-conservation" for v in monitor.violations)


def test_energy_ledger_checked_at_finish():
    sim, monitor = make_monitored_sim()
    sim.start()
    sim.run(minutes=2)
    violations = monitor.finish()
    assert not any(v.invariant == "energy-reconciliation" for v in violations)
