"""Unit tests for energy-trace segmentation (Figure 3 analysis)."""

import pytest

from repro.analysis.energy import (
    percent_increase,
    segment_tail_from_series,
    segment_tail_from_state_trace,
    series_energy_joules,
)
from repro.device import KPN, Modem, PowerMeter, PowerRail
from repro.sim import Kernel, TraceRecorder
from repro.sim.trace import TimeSeries


def run_single_transmission(profile=KPN):
    kernel = Kernel()
    rail = PowerRail(kernel, track_history=True)
    trace = TraceRecorder(lambda: kernel.now)
    modem = Modem(kernel, rail, profile, trace=trace)
    meter = PowerMeter(kernel, rail, interval_ms=50.0)
    meter.start()
    kernel.schedule(5000.0, modem.transfer, 2048, 20480, 1000.0, None, "email")
    total = 5000.0 + profile.ramp_ms + 1000.0 + profile.dch_tail_ms + profile.fach_tail_ms
    kernel.run_until(total + 5000.0)
    meter.stop()
    return kernel, rail, trace, modem, meter


def test_series_energy_matches_rail():
    kernel, rail, trace, modem, meter = run_single_transmission()
    exact = rail.energy_joules
    sampled = meter.energy_joules()
    assert sampled == pytest.approx(exact, rel=0.02)


def test_segmentation_from_state_trace_matches_profile():
    kernel, rail, trace, modem, meter = run_single_transmission()
    seg = segment_tail_from_state_trace(trace, modem.name, KPN)
    assert seg is not None
    assert seg.a_ramp_start_ms == pytest.approx(5000.0)
    assert seg.b_transfer_end_ms == pytest.approx(5000.0 + KPN.ramp_ms + 1000.0)
    assert seg.dch_tail_ms == pytest.approx(KPN.dch_tail_ms)
    assert seg.fach_tail_ms == pytest.approx(KPN.fach_tail_ms)
    # Figure 3's tail: b -> d ≈ 59.5 s on KPN.
    assert seg.tail_duration_ms == pytest.approx(59_500.0)


def test_segmentation_from_series_agrees_with_state_trace():
    kernel, rail, trace, modem, meter = run_single_transmission()
    from_states = segment_tail_from_state_trace(trace, modem.name, KPN)
    from_series = segment_tail_from_series(meter.samples, KPN)
    assert from_series is not None
    tolerance = 2 * meter.interval_ms
    assert from_series.a_ramp_start_ms == pytest.approx(from_states.a_ramp_start_ms, abs=tolerance)
    assert from_series.c_dch_end_ms == pytest.approx(from_states.c_dch_end_ms, abs=tolerance)
    assert from_series.d_fach_end_ms == pytest.approx(from_states.d_fach_end_ms, abs=tolerance)
    assert from_series.tail_energy_j == pytest.approx(from_states.tail_energy_j, rel=0.05)


def test_tail_energy_dominates_transfer_energy():
    """The premise of Section 4.7: the tail dwarfs the payload."""
    kernel, rail, trace, modem, meter = run_single_transmission()
    seg = segment_tail_from_state_trace(trace, modem.name, KPN)
    assert seg.tail_energy_j > 5 * seg.transfer_energy_j


def test_segmentation_none_without_transmission():
    series = TimeSeries()
    for t in range(100):
        series.append(t * 100.0, KPN.idle_w)
    assert segment_tail_from_series(series, KPN) is None


def test_series_energy_window():
    series = TimeSeries()
    series.append(0.0, 1.0)
    series.append(1000.0, 1.0)
    series.append(2000.0, 1.0)
    assert series_energy_joules(series) == pytest.approx(2.0)
    assert series_energy_joules(series, 0.0, 1000.0) == pytest.approx(1.0)


def test_percent_increase():
    assert percent_increase(277.59, 288.76) == pytest.approx(4.02, abs=0.05)
    assert percent_increase(0.0, 10.0) == 0.0
