"""Unit tests for the simulated geolocation service."""

import pytest

from repro.world.geolocation import GeolocationService
from repro.world.geometry import Point, from_latlon
from repro.world.places import AccessPoint


def ap(bssid, x, y):
    return AccessPoint(bssid=bssid, ssid="net", position=Point(x, y))


def test_locate_unknown_returns_none():
    service = GeolocationService()
    assert service.locate({"aa:bb:cc:dd:ee:ff": 1.0}) is None
    assert service.miss_count == 1


def test_locate_single_ap_is_its_position():
    service = GeolocationService([ap("00:11:22:33:44:55", 100.0, 200.0)])
    fix = service.locate({"00:11:22:33:44:55": 0.8})
    assert fix is not None
    point = from_latlon(fix.latitude, fix.longitude)
    assert point.distance_to(Point(100.0, 200.0)) < 1.0
    assert fix.matched_aps == 1


def test_weighted_centroid_pulls_toward_strong_ap():
    service = GeolocationService([ap("aa:aa:aa:aa:aa:aa", 0.0, 0.0), ap("bb:bb:bb:bb:bb:bb", 100.0, 0.0)])
    fix = service.locate({"aa:aa:aa:aa:aa:aa": 0.9, "bb:bb:bb:bb:bb:bb": 0.1})
    point = from_latlon(fix.latitude, fix.longitude)
    assert point.x < 50.0


def test_unknown_aps_ignored_in_mixed_query():
    service = GeolocationService([ap("aa:aa:aa:aa:aa:aa", 10.0, 10.0)])
    fix = service.locate({"aa:aa:aa:aa:aa:aa": 0.5, "ff:ff:ff:ff:ff:fe": 0.9})
    assert fix.matched_aps == 1


def test_accuracy_improves_with_more_aps():
    aps = [ap(f"00:00:00:00:00:{i:02x}", float(i), 0.0) for i in range(5)]
    service = GeolocationService(aps)
    one = service.locate({aps[0].bssid: 1.0})
    many = service.locate({a.bssid: 1.0 for a in aps})
    assert many.accuracy_m < one.accuracy_m


def test_locate_bssids_unweighted():
    service = GeolocationService([ap("aa:aa:aa:aa:aa:aa", 5.0, 5.0)])
    fix = service.locate_bssids(["aa:aa:aa:aa:aa:aa"])
    assert fix is not None


def test_registry_introspection():
    service = GeolocationService()
    assert len(service) == 0
    service.register(ap("aa:aa:aa:aa:aa:aa", 0, 0))
    assert service.knows("aa:aa:aa:aa:aa:aa")
    assert len(service) == 1
