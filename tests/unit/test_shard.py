"""Unit tests for the Shard abstraction: specs, pickling, the
cross-shard boundary, and the epoch-barrier hooks."""

import pickle

import pytest

from repro.apps import battery_monitor
from repro.bench import DEFAULT_FLEETS, parse_fleets, resolve_fleets
from repro.core.middleware import PogoSimulation
from repro.core.shard import DeviceSpec, Shard, ShardSpec
from repro.net.xmpp import RoutingError
from repro.sim.kernel import MINUTE


def _spec(devices=2, **overrides):
    fields = dict(
        seed=11,
        collectors=("lab",),
        devices=tuple(DeviceSpec(with_email_app=True) for _ in range(devices)),
    )
    fields.update(overrides)
    return ShardSpec(**fields)


def _deploy(shard):
    collector = shard.collectors[sorted(shard.collectors)[0]]
    jids = sorted(shard.devices)
    shard.start()
    shard.assign(collector, [shard.devices[j] for j in jids])
    collector.node.deploy(battery_monitor.build_experiment(), jids)
    return collector


class TestShardSpec:
    def test_spec_is_picklable_and_hashable(self):
        spec = _spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_spec_builds_roster(self):
        shard = Shard(_spec(devices=3))
        assert len(shard.devices) == 3
        assert len(shard.collectors) == 1
        assert sorted(shard.collectors)[0] == "lab@pogo"

    def test_spec_overrides_keyword_defaults(self):
        shard = Shard(_spec(), seed=999)
        assert shard.seed == 11  # the spec wins

    def test_facade_signature_unchanged(self):
        sim = PogoSimulation(seed=3, record_trace=True, spans=False, metrics=False)
        assert isinstance(sim, Shard)
        assert sim.trace is not None
        assert sim.seed == 3


class TestSnapshotRestore:
    def test_fresh_shard_round_trips(self):
        shard = Shard(_spec())
        clone = Shard.restore(shard.snapshot())
        assert sorted(clone.devices) == sorted(shard.devices)

    def test_mid_run_round_trip_is_byte_deterministic(self):
        shard = Shard(_spec())
        _deploy(shard)
        shard.run(minutes=7)
        clone = Shard.restore(shard.snapshot())
        shard.run(minutes=13)
        clone.run(minutes=13)
        assert clone.fleet_report_json() == shard.fleet_report_json()

    def test_restore_rejects_non_shard_blobs(self):
        with pytest.raises(TypeError):
            Shard.restore(pickle.dumps({"not": "a shard"}))

    def test_extras_survive_snapshot(self):
        shard = Shard(_spec())
        shard.extras["campaign"] = {"phase": 1}
        clone = Shard.restore(shard.snapshot())
        assert clone.extras["campaign"] == {"phase": 1}


class TestCrossShardBoundary:
    def test_unknown_jid_raises_when_boundary_closed(self):
        shard = Shard(_spec())
        shard.start()
        shard.run(minutes=1)
        with pytest.raises(RoutingError):
            shard.server.submit("lab@pogo", "nobody@elsewhere", {"type": "ping"})

    def test_egress_queues_remote_stanzas(self):
        shard = Shard(_spec())
        shard.open_boundary()
        shard.start()
        shard.run(minutes=1)
        shard.server.submit("lab@pogo", "device-1@other", {"type": "ping"})
        pending = shard.pending_cross_shard()
        assert len(pending) == 1
        handoff = pending[0]
        assert (handoff.from_jid, handoff.to_jid) == ("lab@pogo", "device-1@other")
        assert handoff.submit_ms == shard.kernel.now
        assert handoff.seq == 1
        assert handoff.stanza["type"] == "ping"
        assert handoff.stanza["_from"] == "lab@pogo"
        # The queue drains on read.
        assert shard.pending_cross_shard() == []
        assert shard.server.stanzas_egressed == 1

    def test_ingress_delivers_to_local_account(self):
        # b hosts one more device than a, so b's last JID is unknown to
        # a — the realistic partitioned-roster shape for PR 7.
        a = Shard(_spec(devices=2, shard_id="a"))
        b = Shard(_spec(devices=3, shard_id="b"))
        a.open_boundary()
        b.open_boundary()
        a.start()
        b.start()
        a.run(minutes=1)
        b.run(minutes=1)
        # a's collector addresses a JID only b hosts; the stanza crosses
        # via the egress queue and lands through b's normal routing.
        target = sorted(b.devices)[-1]
        a.server.submit("lab@pogo", target, {"kind": "ack", "ack": 0})
        handoffs = a.pending_cross_shard()
        assert b.ingress(handoffs) == 1
        before = b.server.stanzas_routed
        b.run(minutes=1)
        assert b.server.stanzas_routed == before + 1

    def test_ingress_rejects_jid_not_hosted_here(self):
        b = Shard(_spec())
        b.start()
        with pytest.raises(RoutingError):
            b.ingress([("x@a", "nobody@b", {"type": "ping"})])

    def test_run_until_epoch_returns_handoffs(self):
        shard = Shard(_spec())
        shard.open_boundary()
        shard.start()
        shard.run(minutes=1)
        shard.server.submit("lab@pogo", "peer@other", {"type": "ping"})
        handoffs = shard.run_until_epoch(shard.kernel.now + 5 * MINUTE)
        assert [h.to_jid for h in handoffs] == ["peer@other"]
        assert shard.kernel.now >= 6 * MINUTE


class TestTwoShardsOneProcess:
    def test_interleaved_shards_match_solo_runs(self):
        """Two seeded shards stepped in lockstep in one process must each
        be byte-identical to the same shard run alone — the no-global-
        state guarantee at the unit level."""
        solo = Shard(_spec())
        _deploy(solo)
        solo.run(minutes=30)
        expected = solo.fleet_report_json()

        left = Shard(_spec())
        right = Shard(_spec(seed=12))
        _deploy(left)
        _deploy(right)
        for _ in range(30):
            left.run(minutes=1)
            right.run(minutes=1)
        assert left.fleet_report_json() == expected
        assert right.fleet_report_json() != expected  # different seed really differs


class TestBenchFleetParsing:
    def test_parse_accepts_lists_and_whitespace(self):
        assert parse_fleets("5, 50,500") == [5, 50, 500]
        assert parse_fleets("7") == [7]

    def test_parse_accepts_sharded_tokens(self):
        assert parse_fleets("5,5000x4") == [5, (5000, 4)]
        assert parse_fleets("500x1") == [(500, 1)]

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError, match="--fleets"):
            parse_fleets("5,abc")
        with pytest.raises(ValueError, match="positive"):
            parse_fleets("5,-1")
        with pytest.raises(ValueError, match="no fleet sizes"):
            parse_fleets(",,")
        with pytest.raises(ValueError, match="NxK"):
            parse_fleets("5000x")
        with pytest.raises(ValueError, match="positive"):
            parse_fleets("5000x0")

    def test_resolve_prefers_flag_then_env(self):
        assert resolve_fleets("9", env={"REPRO_BENCH_FLEETS": "3"}) == [9]
        assert resolve_fleets(None, env={"REPRO_BENCH_FLEETS": "3,4"}) == [3, 4]
        assert resolve_fleets(None, env={"REPRO_BENCH_FLEET": "25"}) == [25]
        assert resolve_fleets(None, env={}) == list(DEFAULT_FLEETS)

    def test_resolve_reports_bad_env_instead_of_ignoring(self):
        with pytest.raises(ValueError, match="REPRO_BENCH_FLEET"):
            resolve_fleets(None, env={"REPRO_BENCH_FLEET": "many"})


class TestParallelRate:
    def test_normal_rate(self):
        from repro.bench import parallel_rate

        assert parallel_rate(1000, 2.0) == 500.0

    def test_zero_and_subresolution_critical_path_yield_none(self):
        # A degenerate run must emit null, not a divide-by-~0 absurdity.
        from repro.bench import parallel_rate

        assert parallel_rate(1000, 0.0) is None
        assert parallel_rate(1000, 1e-9) is None
        assert parallel_rate(0, 0.0) is None
        assert parallel_rate(1000, None) is None

    def test_exactly_at_min_critical_path_is_a_real_rate(self):
        # The cutoff is strictly-below: a path of exactly
        # MIN_CRITICAL_PATH_S still divides.
        from repro.bench import MIN_CRITICAL_PATH_S, parallel_rate

        assert parallel_rate(10, MIN_CRITICAL_PATH_S) == round(
            10 / MIN_CRITICAL_PATH_S, 1
        )
        assert parallel_rate(10, MIN_CRITICAL_PATH_S * 0.999) is None

    def test_null_rate_renders_in_report(self):
        from repro.bench import render_report

        report = {
            "workload": "battery-monitor",
            "seed": 0,
            "config": {"spans": False, "metrics": False},
            "fleets": [{
                "devices": 0, "shards": 2, "events": 0, "wall_s": 0.001,
                "wall_s_mean": 0.001, "events_per_s": 0.0, "speedup": 0.0,
                "critical_path_s": 0.0, "events_per_s_parallel": None,
            }],
            "determinism": {"report_sha256": "0" * 64},
        }
        text = render_report(report)
        assert "parallel rate n/a" in text


class TestScenarioBenchRows:
    _ROW = {
        "scenario": "commuter-surge", "devices": 6, "hours": 2.75,
        "events": 11751, "violations": 0, "report_sha256": "a" * 64,
        "wall_s": 0.5,
    }

    def test_structural_view_keeps_rows_but_strips_wall_time(self):
        from repro.bench import structural_view

        view = structural_view({
            "schema": "bench_kernel/1", "fleets": [],
            "scenarios": [dict(self._ROW)],
        })
        (row,) = view["scenarios"]
        assert "wall_s" not in row
        assert row["events"] == 11751
        assert row["report_sha256"] == "a" * 64

    def test_scenario_rows_render_in_the_text_report(self):
        from repro.bench import render_report

        report = {
            "workload": "w", "seed": 0,
            "config": {"spans": False, "metrics": False},
            "fleets": [],
            "scenarios": [dict(self._ROW)],
            "determinism": {},
        }
        text = render_report(report)
        assert "scenario presets" in text
        assert "commuter-surge" in text
