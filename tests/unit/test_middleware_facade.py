"""Unit tests for the PogoSimulation facade."""

import pytest

from repro.core.middleware import PogoSimulation
from repro.core.tailsync import PeriodicPolicy
from repro.device.radio import T_MOBILE
from repro.sim import HOUR, MINUTE
from repro.world.mobility import UserProfile
from repro.world.rssi import PropagationModel


def test_add_device_enrolls_with_admin():
    sim = PogoSimulation(seed=1)
    device = sim.add_device()
    assert device.jid in sim.admin.devices
    assert sim.server.registered(device.jid)


def test_add_collector_enrolls_researcher():
    sim = PogoSimulation(seed=1)
    collector = sim.add_collector("alice")
    assert collector.jid == "alice@pogo"
    assert collector.jid in sim.admin.researchers


def test_carrier_override():
    sim = PogoSimulation(seed=1)
    device = sim.add_device(carrier=T_MOBILE)
    assert device.phone.modem.profile.name == "T-Mobile"


def test_policy_override():
    sim = PogoSimulation(seed=1)
    device = sim.add_device(policy=PeriodicPolicy(interval_ms=HOUR))
    assert device.node.policy.name == "periodic"


def test_world_wiring_installs_sources():
    sim = PogoSimulation(seed=1)
    device = sim.add_device(world_days=1)
    assert device.user_world is not None
    assert device.phone.wifi.scan_source is not None
    location = device.node.sensor_manager.sensors["locations"]
    assert location.position_source is not None


def test_device_without_world_has_no_scan_source():
    sim = PogoSimulation(seed=1)
    device = sim.add_device()
    assert device.user_world is None
    assert device.phone.wifi.scan_source is None


def test_custom_propagation_and_profile():
    sim = PogoSimulation(seed=1)
    harsh = PropagationModel(sigma_db=8.0)
    device = sim.add_device(
        world_days=1,
        user_profile=UserProfile(name="u", lifestyle="mobile"),
        propagation=harsh,
    )
    assert device.user_world.propagation.sigma_db == 8.0


def test_run_requires_positive_duration():
    sim = PogoSimulation(seed=1)
    with pytest.raises(ValueError):
        sim.run()
    with pytest.raises(ValueError):
        sim.run(hours=0)


def test_run_accumulates_durations():
    sim = PogoSimulation(seed=1)
    sim.start()
    sim.run(hours=1, duration_ms=30 * MINUTE)
    assert sim.kernel.now == 1.5 * HOUR


def test_start_is_idempotent():
    sim = PogoSimulation(seed=1)
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.start()
    sim.run(hours=0.2)
    # Email app started exactly once: checks every 5 min, ~2 so far.
    assert device.email_app().check_count <= 3


def test_email_app_helper():
    sim = PogoSimulation(seed=1)
    with_app = sim.add_device(with_email_app=True)
    without_app = sim.add_device()
    assert with_app.email_app() is not None
    assert without_app.email_app() is None


def test_record_trace_flag():
    sim = PogoSimulation(seed=1, record_trace=True)
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.run(hours=0.2)
    assert sim.trace is not None
    assert len(sim.trace) > 0
    plain = PogoSimulation(seed=1)
    assert plain.trace is None
