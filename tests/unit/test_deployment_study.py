"""Unit tests for the Table 4 deployment-study harness."""

import dataclasses

import pytest

from repro.apps.deployment_study import (
    DBSCAN_PARAMS,
    DEFAULT_SESSIONS,
    PAPER_TABLE4,
    SessionSpec,
    format_table,
    run_session,
)
from repro.sim import DAY


def test_default_sessions_mirror_paper_rows():
    names = [spec.name for spec in DEFAULT_SESSIONS]
    assert names == list(PAPER_TABLE4)


def test_session_characteristics_match_narrative():
    by_name = {spec.name: spec for spec in DEFAULT_SESSIONS}
    assert by_name["user2a"].trip_abroad_days is not None  # trip abroad
    assert by_name["user3"].cell_outage_days is not None  # 3G problems
    assert by_name["user3"].lifestyle == "mobile"  # 1282 locations
    assert not by_name["user7"].has_mobile_data  # Wi-Fi offload only
    assert by_name["user2a"].days + by_name["user2b"].days < 24  # phone swap


@pytest.fixture(scope="module")
def short_session_result():
    spec = SessionSpec("mini", days=4, update_days=(1,), reboot_rate_per_day=0.3)
    return run_session(spec, seed=77)


def test_session_result_shape(short_session_result):
    result = short_session_result
    assert result.scans == pytest.approx(4 * 24 * 60, rel=0.02)
    assert result.raw_bytes > 100 * result.scans  # scans are a few 100 B
    assert result.locations > 5
    assert result.truth_clusters >= result.locations * 0.9
    assert 0.0 <= result.match_percent <= result.partial_percent <= 100.0


def test_row_rendering(short_session_result):
    row = short_session_result.row()
    assert "mini" in row
    assert "%" in row


def test_format_table_totals(short_session_result):
    table = format_table([short_session_result])
    assert "data reduction" in table
    assert "mini" in table


def test_session_determinism():
    spec = SessionSpec("det", days=3, update_days=(), reboot_rate_per_day=0.0)
    a = run_session(spec, seed=5)
    b = run_session(spec, seed=5)
    assert a.scans == b.scans
    assert a.locations == b.locations
    assert a.match_percent == b.match_percent


def test_no_disruptions_means_near_perfect_match():
    spec = SessionSpec("clean", days=3, update_days=(), reboot_rate_per_day=0.0)
    result = run_session(spec, seed=6)
    # Only the final in-flight cluster can be missing.
    assert result.partial_percent >= 90.0
    assert result.expired_messages == 0


def test_script_updates_reduce_exact_matches():
    base = SessionSpec("ctl", days=4, update_days=(), reboot_rate_per_day=0.0)
    disrupted = dataclasses.replace(base, name="upd", update_days=(1, 2, 3))
    clean = run_session(base, seed=8)
    updated = run_session(disrupted, seed=8)
    assert updated.match_percent <= clean.match_percent
