"""Unit tests for the Table 2 SLOC counter."""

import pytest

from repro.analysis.sloc import count_scripts, count_sloc


def test_python_counting():
    source = (
        "# a comment\n"
        "\n"
        "x = 1\n"
        "def f():\n"
        "    return x  # trailing comments still count as code\n"
    )
    count = count_sloc(source)
    assert count.sloc == 3
    assert count.comment == 1
    assert count.blank == 1
    assert count.total == 5
    assert count.size_bytes == len(source.encode())


def test_python_docstrings_counted_as_comments():
    source = '"""Module\ndocstring spanning\nlines."""\nx = 1\n'
    count = count_sloc(source)
    assert count.comment == 3
    assert count.sloc == 1


def test_python_single_line_docstring():
    source = '"""One line."""\nx = 1\n'
    count = count_sloc(source)
    assert count.comment == 1
    assert count.sloc == 1


def test_javascript_counting():
    source = (
        "// RogueFinder\n"
        "var x = 1;\n"
        "/* block\n"
        "   comment */\n"
        "\n"
        "publish(x);\n"
    )
    count = count_sloc(source, language="javascript")
    assert count.sloc == 2
    assert count.comment == 3
    assert count.blank == 1


def test_javascript_single_line_block():
    source = "/* inline */\ncode();\n"
    count = count_sloc(source, language="javascript")
    assert count.comment == 1
    assert count.sloc == 1


def test_unknown_language_rejected():
    with pytest.raises(ValueError):
        count_sloc("x", language="cobol")


def test_empty_source():
    count = count_sloc("")
    assert count.sloc == 0
    assert count.total == 0


def test_count_scripts_includes_total_row():
    rows = count_scripts({"b": "x = 1\n", "a": "y = 2\nz = 3\n"})
    names = [name for name, _ in rows]
    assert names == ["a", "b", "total"]
    total = rows[-1][1]
    assert total.sloc == 3
    assert total.size_bytes == len("x = 1\n") + len("y = 2\nz = 3\n")


def test_counts_are_consistent():
    source = "# c\n\nx=1\n"
    c = count_sloc(source)
    assert c.sloc + c.blank + c.comment == c.total
