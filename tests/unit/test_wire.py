"""Unit tests for the batched binary handoff codec (repro.fleet.wire)."""

import json
import math
import pickle

import pytest

from repro.core.envelope import Envelope, Stanza, canonical_json, freeze_message
from repro.core.shard import Handoff
from repro.fleet.wire import MAGIC, WireError, decode_batch, encode_batch


class _Weird:
    """Unpicklable-by-JSON stanza stand-in (module-level: pickle needs it)."""

    def __eq__(self, other):
        return isinstance(other, _Weird)


def _env(payload, trace_id=0, origin_ms=0.0, hop_span=0):
    envelope = Envelope(freeze_message(payload))
    envelope.trace_id = trace_id
    envelope.origin_ms = origin_ms
    envelope.hop_span = hop_span
    return envelope


class TestRoundTrip:
    def test_empty_batch(self):
        frame = encode_batch([])
        assert frame[:3] == MAGIC
        assert decode_batch(frame) == []

    def test_plain_stanza_batch(self):
        batch = [
            Handoff(12.5, 1, "device-1@pogo", "fleet@pogo",
                    Stanza({"kind": "message", "body": "hi", "n": 3})),
            Handoff(12.5, 2, "device-2@pogo", "fleet@pogo",
                    Stanza({"kind": "message", "body": "yo", "n": 4})),
        ]
        out = decode_batch(encode_batch(batch))
        assert out == batch
        assert all(isinstance(h.stanza, Stanza) for h in out)

    def test_submit_ms_none_round_trips(self):
        batch = [Handoff(None, 0, "a@pogo", "b@pogo", {"kind": "presence"})]
        out = decode_batch(encode_batch(batch))
        assert out[0].submit_ms is None
        assert out == batch

    def test_plain_dict_stays_plain(self):
        batch = [Handoff(1.0, 1, "a@pogo", "b@pogo", {"kind": "iq", "x": 1})]
        (out,) = decode_batch(encode_batch(batch))
        assert type(out.stanza) is dict
        assert out.stanza == batch[0].stanza

    def test_jids_are_interned_once(self):
        batch = [
            Handoff(float(i), i, "sender@pogo", "receiver@pogo",
                    {"kind": "message", "i": i})
            for i in range(50)
        ]
        frame = encode_batch(batch)
        assert decode_batch(frame) == batch
        # Interning + compression: far below one JID copy per record.
        naive = sum(len("sender@pogo") + len("receiver@pogo") for _ in batch)
        assert len(frame) < naive

    def test_decoded_stanza_json_cache_is_seeded(self):
        stanza = Stanza({"kind": "message", "body": "cached"})
        expected = canonical_json(stanza)
        (out,) = decode_batch(
            encode_batch([Handoff(5.0, 1, "a@pogo", "b@pogo", stanza)])
        )
        # Receiver must not re-serialize: the cache holds the wire text.
        assert out.stanza._json == expected


class TestEnvelopeSidecar:
    def test_envelope_position_and_trace_fields_survive(self):
        envelope = _env({"temp": 21.5}, trace_id=0xDEADBEEF,
                        origin_ms=123.25, hop_span=7)
        stanza = Stanza({"kind": "message", "payload": envelope})
        (out,) = decode_batch(
            encode_batch([Handoff(9.0, 3, "a@pogo", "b@pogo", stanza)])
        )
        got = out.stanza["payload"]
        assert isinstance(got, Envelope)
        assert got.trace_id == 0xDEADBEEF
        assert got.origin_ms == 123.25
        assert got.hop_span == 7
        assert got.payload == {"temp": 21.5}

    def test_envelope_nested_in_list_survives(self):
        stanza = {
            "kind": "batch",
            "items": [
                {"e": _env({"a": 1}, trace_id=1)},
                {"e": _env({"b": 2}, trace_id=2)},
            ],
        }
        (out,) = decode_batch(
            encode_batch([Handoff(1.0, 1, "a@pogo", "b@pogo", stanza)])
        )
        first = out.stanza["items"][0]["e"]
        second = out.stanza["items"][1]["e"]
        assert isinstance(first, Envelope) and first.trace_id == 1
        assert isinstance(second, Envelope) and second.trace_id == 2
        assert first.payload == {"a": 1}

    def test_envelope_payload_containers_come_back_plain(self):
        # Same contract as the pickle path it replaces: frozen payload
        # containers decode as plain dicts/lists.
        envelope = _env({"readings": [1, 2, 3], "meta": {"x": "y"}})
        stanza = Stanza({"kind": "message", "payload": envelope})
        (out,) = decode_batch(
            encode_batch([Handoff(0.5, 1, "a@pogo", "b@pogo", stanza)])
        )
        payload = out.stanza["payload"].payload
        assert payload == {"readings": [1, 2, 3], "meta": {"x": "y"}}


class TestPickleFallback:
    def test_tuple_leaf_falls_back_to_pickle(self):
        stanza = {"kind": "odd", "pair": (1, 2)}
        (out,) = decode_batch(
            encode_batch([Handoff(1.0, 1, "a@pogo", "b@pogo", stanza)])
        )
        assert out.stanza == stanza
        assert out.stanza["pair"] == (1, 2)  # tuple preserved, not a list

    def test_non_string_key_falls_back_to_pickle(self):
        stanza = {"kind": "odd", 3: "three"}
        (out,) = decode_batch(
            encode_batch([Handoff(1.0, 1, "a@pogo", "b@pogo", stanza)])
        )
        assert out.stanza == stanza

    def test_non_dict_stanza_falls_back_to_pickle(self):
        (out,) = decode_batch(
            encode_batch([Handoff(1.0, 1, "a@pogo", "b@pogo", _Weird())])
        )
        assert out.stanza == _Weird()

    def test_mixed_batch_keeps_per_record_fidelity(self):
        batch = [
            Handoff(1.0, 1, "a@pogo", "b@pogo",
                    Stanza({"kind": "message", "n": 1})),
            Handoff(2.0, 2, "a@pogo", "b@pogo", {"kind": "odd", "t": (1,)}),
        ]
        out = decode_batch(encode_batch(batch))
        assert out == batch
        assert isinstance(out[0].stanza, Stanza)
        assert out[1].stanza["t"] == (1,)


class TestFrameValidation:
    def test_bad_magic_is_rejected(self):
        with pytest.raises(WireError, match="magic"):
            decode_batch(b"XXX\x00\x00\x00\x00\x00")

    def test_trailing_bytes_are_rejected(self):
        frame = encode_batch(
            [Handoff(1.0, 1, "a@pogo", "b@pogo", {"kind": "message"})]
        )
        assert frame[3] == 0  # small frame: stored raw, safe to append to
        with pytest.raises(WireError, match="trailing"):
            decode_batch(frame + b"junk")

    def test_decompressed_length_mismatch_is_rejected(self):
        big = [
            Handoff(float(i), i, "a@pogo", "b@pogo",
                    {"kind": "message", "body": "x" * 50})
            for i in range(10)
        ]
        frame = bytearray(encode_batch(big))
        assert frame[3] == 1  # compressed
        frame[4:8] = (9999).to_bytes(4, "little")
        with pytest.raises(WireError, match="decompressed"):
            decode_batch(bytes(frame))

    def test_large_batch_compresses(self):
        big = [
            Handoff(float(i), i, f"device-{i}@pogo", "fleet@pogo",
                    Stanza({"kind": "message", "body": "battery=77%", "i": i}))
            for i in range(200)
        ]
        frame = encode_batch(big)
        assert frame[3] == 1
        assert decode_batch(frame) == big
        pickled = sum(
            len(pickle.dumps(h, protocol=pickle.HIGHEST_PROTOCOL)) for h in big
        )
        assert len(frame) * 5 <= pickled  # the ISSUE's ≥5x reduction floor

    def test_nan_survives_structurally(self):
        (out,) = decode_batch(
            encode_batch([Handoff(1.0, 1, "a@pogo", "b@pogo",
                                  {"kind": "m", "v": math.nan})])
        )
        assert math.isnan(out.stanza["v"])
