"""Unit tests for the microphone sensor."""

import pytest

from repro.core.context import DeviceContext
from repro.core.node import DeviceNode
from repro.device import Phone
from repro.net.xmpp import XmppServer
from repro.sensors.microphone import AMBIENT_DB, MicrophoneSensor, ambient_db_for
from repro.sim import Kernel, MINUTE, RandomStreams, SECOND


def make_device():
    kernel = Kernel()
    phone = Phone(kernel, "dev@x")
    node = DeviceNode(kernel, phone, XmppServer(kernel), "dev@x")
    context = DeviceContext(node, "exp", "pc@x")
    node.contexts["exp"] = context
    node.sensor_manager.on_context_added(context)
    return kernel, phone, node, context


def test_ambient_db_for_categories():
    assert ambient_db_for(None) == AMBIENT_DB["street"]
    assert ambient_db_for("office") == AMBIENT_DB["office"]
    assert ambient_db_for("unknown-category") == AMBIENT_DB["generic"]
    assert ambient_db_for("cafe") > ambient_db_for("home")


def test_sampling_publishes_levels():
    kernel, phone, node, context = make_device()
    sensor = MicrophoneSensor(phone, rng=RandomStreams(1).stream("mic"))
    sensor.level_source = lambda: 55.0
    node.sensor_manager.register(sensor)
    got = []
    context.broker.subscribe("audio", got.append, {"interval": 30 * SECOND})
    kernel.run_until(5 * MINUTE)
    assert len(got) >= 9
    for reading in got:
        assert sensor.floor_db <= reading["db"] <= sensor.ceiling_db
        assert reading["peak_db"] >= reading["db"]


def test_levels_clipped_to_microphone_range():
    kernel, phone, node, context = make_device()
    sensor = MicrophoneSensor(phone)
    sensor.level_source = lambda: 140.0  # jet engine
    node.sensor_manager.register(sensor)
    got = []
    context.broker.subscribe("audio", got.append, {"interval": 30 * SECOND})
    kernel.run_until(MINUTE)
    assert got[0]["db"] == sensor.ceiling_db


def test_power_draw_follows_demand():
    kernel, phone, node, context = make_device()
    sensor = MicrophoneSensor(phone)
    node.sensor_manager.register(sensor)
    assert phone.rail.draw_of("microphone") == 0.0
    sub = context.broker.subscribe("audio", lambda m: None)
    assert phone.rail.draw_of("microphone") == pytest.approx(sensor.active_power_w)
    sub.remove()
    assert phone.rail.draw_of("microphone") == 0.0


def test_privacy_block_covers_audio():
    """The most privacy-sensitive channel honours the owner's block."""
    kernel, phone, node, context = make_device()
    sensor = MicrophoneSensor(phone)
    node.sensor_manager.register(sensor)
    node.privacy.block("audio")
    context.broker.subscribe("audio", lambda m: None)
    assert not sensor.enabled
    assert phone.rail.draw_of("microphone") == 0.0


def test_no_source_defaults_quiet():
    kernel, phone, node, context = make_device()
    sensor = MicrophoneSensor(phone)
    node.sensor_manager.register(sensor)
    got = []
    context.broker.subscribe("audio", got.append, {"interval": 30 * SECOND})
    kernel.run_until(MINUTE)
    assert got and got[0]["db"] == 40.0
