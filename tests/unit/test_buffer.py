"""Unit tests for the store-and-forward buffer and its backends."""

import pytest

from repro.core.buffer import (
    DEFAULT_MAX_AGE_MS,
    InMemoryStore,
    MessageBuffer,
    SqliteStore,
)
from repro.sim import HOUR, Kernel


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        return InMemoryStore()
    return SqliteStore(":memory:")


def test_enqueue_and_peek(store):
    kernel = Kernel()
    buffer = MessageBuffer(kernel, store)
    buffer.enqueue("collector@x", {"op": "pub", "n": 1})
    buffer.enqueue("collector@x", {"op": "pub", "n": 2})
    buffer.enqueue("other@x", {"op": "pub", "n": 3})
    batches = buffer.peek_batches()
    assert [dest for dest, _ in batches] == ["collector@x", "other@x"]
    assert [m.payload["n"] for m in batches[0][1]] == [1, 2]
    assert len(buffer) == 3


def test_mark_sent_removes(store):
    kernel = Kernel()
    buffer = MessageBuffer(kernel, store)
    buffer.enqueue("a", {"n": 1})
    buffer.enqueue("a", {"n": 2})
    (dest, messages), = buffer.peek_batches()
    buffer.mark_sent(messages)
    assert buffer.empty
    assert buffer.drained == 2


def test_expiry_drops_old_messages(store):
    """The 24-hour purge that lost user 2a's trip data (Section 5.3)."""
    kernel = Kernel()
    buffer = MessageBuffer(kernel, store, max_age_ms=DEFAULT_MAX_AGE_MS)
    buffer.enqueue("a", {"n": "old"})
    kernel.run_until(25 * HOUR)
    buffer.enqueue("a", {"n": "fresh"})
    dropped = buffer.purge_expired()
    assert dropped == 1
    assert buffer.expired == 1
    (dest, messages), = buffer.peek_batches()
    assert [m.payload["n"] for m in messages] == ["fresh"]


def test_peek_purges_implicitly(store):
    kernel = Kernel()
    buffer = MessageBuffer(kernel, store, max_age_ms=1000.0)
    buffer.enqueue("a", {"n": 1})
    kernel.run_until(2000.0)
    assert buffer.peek_batches() == []
    assert buffer.expired == 1


def test_backends_behave_identically():
    kernel_a, kernel_b = Kernel(), Kernel()
    mem = MessageBuffer(kernel_a, InMemoryStore(), max_age_ms=10_000.0)
    sql = MessageBuffer(kernel_b, SqliteStore(":memory:"), max_age_ms=10_000.0)
    for buffer, kernel in ((mem, kernel_a), (sql, kernel_b)):
        buffer.enqueue("x", {"n": 1})
        kernel.run_until(20_000.0)
        buffer.enqueue("x", {"n": 2})
    assert [
        [m.payload for m in msgs] for _, msgs in mem.peek_batches()
    ] == [[m.payload for m in msgs] for _, msgs in sql.peek_batches()]
    assert mem.expired == sql.expired == 1


def test_sqlite_persistence_across_reopen(tmp_path):
    path = str(tmp_path / "outbox.db")
    kernel = Kernel()
    buffer = MessageBuffer(kernel, SqliteStore(path))
    buffer.enqueue("a", {"n": 1})
    buffer.store.close()
    # "to ensure that no messages are lost should a device reboot"
    reopened = MessageBuffer(kernel, SqliteStore(path))
    (dest, messages), = reopened.peek_batches()
    assert messages[0].payload == {"n": 1}


def test_counters(store):
    kernel = Kernel()
    buffer = MessageBuffer(kernel, store)
    for n in range(4):
        buffer.enqueue("a", {"n": n})
    assert buffer.enqueued == 4
