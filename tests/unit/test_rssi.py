"""Unit tests for the RSSI propagation model and normalization."""

import random

import pytest

from repro.world.rssi import (
    NORMALIZE_CEIL_DBM,
    NORMALIZE_FLOOR_DBM,
    PropagationModel,
    denormalize_rssi,
    normalize_rssi,
)


def test_mean_rssi_decays_with_distance():
    model = PropagationModel()
    assert model.mean_rssi(1.0) > model.mean_rssi(10.0) > model.mean_rssi(100.0)
    # Below the reference distance, clamp to 1 m.
    assert model.mean_rssi(0.1) == model.mean_rssi(1.0)


def test_sample_rssi_none_beyond_range():
    model = PropagationModel(sigma_db=0.0, dropout_probability=0.0)
    rng = random.Random(1)
    far = model.max_range_m() * 3
    assert model.sample_rssi(far, rng) is None


def test_sample_rssi_close_always_visible_without_dropout():
    model = PropagationModel(dropout_probability=0.0)
    rng = random.Random(1)
    for _ in range(100):
        assert model.sample_rssi(5.0, rng) is not None


def test_dropout_probability():
    model = PropagationModel(dropout_probability=0.5, sigma_db=0.0)
    rng = random.Random(7)
    seen = sum(1 for _ in range(1000) if model.sample_rssi(2.0, rng) is not None)
    assert 400 < seen < 600


def test_rssi_clipped_at_minus_25():
    model = PropagationModel(reference_dbm=-10.0, sigma_db=0.0, dropout_probability=0.0)
    rng = random.Random(1)
    assert model.sample_rssi(1.0, rng) == -25.0


def test_normalize_paper_anchors():
    """0 and 1 correspond to -100 dBm and -55 dBm (Section 4.1)."""
    assert normalize_rssi(NORMALIZE_FLOOR_DBM) == 0.0
    assert normalize_rssi(NORMALIZE_CEIL_DBM) == 1.0
    assert normalize_rssi(-77.5) == pytest.approx(0.5)


def test_normalize_clips():
    assert normalize_rssi(-120.0) == 0.0
    assert normalize_rssi(-30.0) == 1.0


def test_denormalize_inverse():
    for value in (0.0, 0.25, 0.5, 1.0):
        assert normalize_rssi(denormalize_rssi(value)) == pytest.approx(value)


def test_max_range_reasonable_for_wifi():
    r = PropagationModel().max_range_m()
    assert 50.0 < r < 500.0
