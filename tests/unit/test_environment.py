"""Unit tests for the user world: scan generation and connectivity."""

import pytest

from repro.device import Phone
from repro.sim import DAY, HOUR, Kernel, MINUTE, RandomStreams
from repro.world.environment import ConnectivityDriver, build_user_world
from repro.world.mobility import DWELL, TRAVEL, UserProfile


def make_world(seed=1, days=2, **kwargs):
    return build_user_world("u", RandomStreams(seed), days=days, **kwargs)


def test_scans_at_same_place_are_similar():
    world = make_world()
    # 3 AM: at home.
    a = {r.bssid for r in world.scan(3 * HOUR)}
    b = {r.bssid for r in world.scan(3 * HOUR + MINUTE)}
    assert a and b
    overlap = len(a & b) / max(len(a | b), 1)
    assert overlap > 0.4


def test_scans_at_different_places_are_disjoint():
    world = make_world()
    home = {r.bssid for r in world.scan(3 * HOUR)}
    office = {r.bssid for r in world.scan(11 * HOUR)}
    assert home
    assert office
    assert not (home & office)


def test_scan_readings_sorted_by_strength():
    world = make_world()
    readings = world.scan(3 * HOUR)
    values = [r.rssi_dbm for r in readings]
    assert values == sorted(values, reverse=True)


def test_travel_scans_contain_transients():
    world = make_world()
    travels = [s for s in world.timeline.segments if s.kind == TRAVEL]
    assert travels
    travel = travels[0]
    mid = (travel.start_ms + travel.end_ms) / 2
    # Two scans during the same travel never share street APs (they are
    # generated fresh each time) — this is the noise DBSCAN must reject.
    a = {r.bssid for r in world.scan(mid)}
    b = {r.bssid for r in world.scan(mid)}
    # Possibly both empty in a radio desert; at least they don't blow up.
    assert isinstance(a, set) and isinstance(b, set)


def test_position_jitters_within_place():
    world = make_world()
    place = world.current_place(3 * HOUR)
    assert place is not None
    for _ in range(20):
        p = world.position(3 * HOUR)
        assert place.center.distance_to(p) < place.radius * 5


def test_wifi_internet_at_home_not_in_transit():
    world = make_world()
    assert world.wifi_internet_available(3 * HOUR)  # home
    travels = [s for s in world.timeline.segments if s.kind == TRAVEL]
    mid = (travels[0].start_ms + travels[0].end_ms) / 2
    assert not world.wifi_internet_available(mid)


def test_scan_reading_message_shape():
    world = make_world()
    readings = world.scan(3 * HOUR)
    message = readings[0].to_message()
    assert set(message) == {"bssid", "ssid", "rssi"}


def test_connectivity_driver_applies_wifi_at_boundaries():
    kernel = Kernel()
    world = make_world(days=1)
    phone = Phone(kernel)
    ConnectivityDriver(kernel, world, phone).start()
    assert phone.wifi.connected  # starts at home
    # Find the first travel segment and check wifi drops there.
    travel = next(s for s in world.timeline.segments if s.kind == TRAVEL)
    kernel.run_until(travel.start_ms + 2.0)
    assert not phone.wifi.connected


def test_mobile_profile_world():
    world = make_world(profile=UserProfile(name="u", lifestyle="mobile"), days=2)
    dwells = world.timeline.dwells(10 * MINUTE)
    assert len(dwells) >= 10


def test_world_determinism():
    a = make_world(seed=5)
    b = make_world(seed=5)
    ra = [(r.bssid, r.rssi_dbm) for r in a.scan(3 * HOUR)]
    rb = [(r.bssid, r.rssi_dbm) for r in b.scan(3 * HOUR)]
    assert ra == rb
