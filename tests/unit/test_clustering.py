"""Unit tests for the windowed DBSCAN clustering (Section 4.1)."""

import pytest

from repro.analysis.clustering import (
    Cluster,
    WindowedDBSCAN,
    cluster_stream,
    clustering_script_core,
    cosine_coefficient,
    mean_vector,
    nearest_to_mean,
)


def vec(**kwargs):
    return {k: float(v) for k, v in kwargs.items()}


class TestCosineCoefficient:
    def test_identical_vectors(self):
        v = vec(a=0.5, b=0.8)
        assert cosine_coefficient(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_coefficient(vec(a=1), vec(b=1)) == 0.0

    def test_empty_vectors(self):
        assert cosine_coefficient({}, vec(a=1)) == 0.0
        assert cosine_coefficient({}, {}) == 0.0

    def test_symmetry(self):
        a, b = vec(x=0.3, y=0.9), vec(x=0.7, z=0.2)
        assert cosine_coefficient(a, b) == pytest.approx(cosine_coefficient(b, a))

    def test_scale_invariance(self):
        a = vec(x=0.2, y=0.4)
        b = {k: v * 2 for k, v in a.items()}
        assert cosine_coefficient(a, b) == pytest.approx(1.0)

    def test_partial_overlap_between_zero_and_one(self):
        sim = cosine_coefficient(vec(a=1, b=1), vec(b=1, c=1))
        assert 0.0 < sim < 1.0


class TestMeanAndRepresentative:
    def test_mean_vector(self):
        mean = mean_vector([vec(a=1.0), vec(a=0.0, b=1.0)])
        assert mean == {"a": 0.5, "b": 0.5}

    def test_mean_empty(self):
        assert mean_vector([]) == {}

    def test_nearest_to_mean_picks_central_sample(self):
        vectors = [vec(a=1.0, b=0.9), vec(a=0.9, b=1.0), vec(z=1.0)]
        assert nearest_to_mean(vectors) in (0, 1)


def place_vector(rng, base, noise=0.03):
    """A noisy sample of a place's AP signature."""
    return {k: max(0.0, min(1.0, v + rng.uniform(-noise, noise))) for k, v in base.items()}


def make_trace(rng, segments):
    """segments: list of (base_vector_or_None, count) -> (t, vec) stream."""
    t = 0.0
    samples = []
    for base, count in segments:
        for _ in range(count):
            if base is None:
                # travel noise: unique APs every scan
                samples.append((t, {f"street-{rng.random()}": rng.uniform(0.1, 0.4)}))
            else:
                samples.append((t, place_vector(rng, base)))
            t += 60_000.0
    return samples


@pytest.fixture
def rng():
    import random

    return random.Random(42)


HOME = {"h1": 0.9, "h2": 0.7, "h3": 0.5, "h4": 0.3}
OFFICE = {"o1": 0.8, "o2": 0.8, "o3": 0.4, "o4": 0.6, "o5": 0.2}


def test_two_dwells_give_two_clusters(rng):
    samples = make_trace(rng, [(HOME, 60), (None, 10), (OFFICE, 120), (None, 5)])
    clusters = cluster_stream(samples)
    assert len(clusters) == 2
    first, second = clusters
    assert first.samples >= 55
    assert second.samples >= 115
    # Representatives identify the places.
    assert cosine_coefficient(first.representative, HOME) > 0.95
    assert cosine_coefficient(second.representative, OFFICE) > 0.95


def test_entry_exit_timestamps_bracket_dwell(rng):
    samples = make_trace(rng, [(HOME, 30), (None, 10)])
    clusters = cluster_stream(samples)
    assert len(clusters) == 1
    c = clusters[0]
    assert c.entry_ms <= 5 * 60_000.0  # entry near the start
    assert 25 * 60_000.0 <= c.exit_ms <= 30 * 60_000.0
    assert c.duration_ms > 0


def test_travel_noise_produces_no_clusters(rng):
    samples = make_trace(rng, [(None, 100)])
    assert cluster_stream(samples) == []


def test_short_visit_below_min_pts_rejected(rng):
    samples = make_trace(rng, [(None, 10), (HOME, 3), (None, 10)])
    assert cluster_stream(samples, min_pts=5) == []


def test_flush_closes_open_cluster(rng):
    """The interruption signature of Section 5.3: a stream ending
    mid-dwell still yields the (truncated) cluster."""
    samples = make_trace(rng, [(HOME, 40)])
    clusters = cluster_stream(samples)  # cluster_stream flushes
    assert len(clusters) == 1


def test_on_cluster_callback(rng):
    dbscan = WindowedDBSCAN()
    emitted = []
    dbscan.on_cluster = emitted.append
    for t, v in make_trace(rng, [(HOME, 20), (None, 5)]):
        dbscan.add(t, v)
    assert len(emitted) == 1
    assert emitted[0] is dbscan.closed[0]


def test_window_bounds_memory(rng):
    dbscan = WindowedDBSCAN(window=60)
    for t, v in make_trace(rng, [(HOME, 200)]):
        dbscan.add(t, v)
    assert len(dbscan.window) == 60


def test_returning_to_same_place_gives_separate_sessions(rng):
    """"these are not unique locations, but rather sessions"."""
    samples = make_trace(rng, [(HOME, 30), (OFFICE, 30), (HOME, 30), (None, 5)])
    clusters = cluster_stream(samples)
    assert len(clusters) == 3


def test_state_restore_roundtrip(rng):
    """freeze/thaw: restoring mid-dwell loses nothing."""
    trace = make_trace(rng, [(HOME, 40), (None, 10), (OFFICE, 40), (None, 5)])
    split = 60  # mid-office
    continuous = WindowedDBSCAN()
    for t, v in trace:
        continuous.add(t, v)
    continuous.flush()

    first = WindowedDBSCAN()
    for t, v in trace[:split]:
        first.add(t, v)
    state = first.state()
    resumed = WindowedDBSCAN()
    resumed.restore(state)
    resumed.closed = list(first.closed)
    for t, v in trace[split:]:
        resumed.add(t, v)
    resumed.flush()
    assert len(resumed.closed) == len(continuous.closed)
    assert [c["entry"] for c in resumed.closed] == [c["entry"] for c in continuous.closed]


def test_restore_empty_state_is_noop():
    dbscan = WindowedDBSCAN()
    dbscan.restore(None)
    dbscan.restore({})
    assert dbscan.samples_seen == 0


def test_interruption_without_freeze_truncates_cluster(rng):
    """What the paper observed: restart mid-cluster -> later start time."""
    trace = make_trace(rng, [(HOME, 60), (None, 10)])
    interrupted = WindowedDBSCAN()
    for t, v in trace[:30]:
        interrupted.add(t, v)
    # Restart with no state: the first half is gone.
    fresh = WindowedDBSCAN()
    for t, v in trace[30:]:
        fresh.add(t, v)
    fresh.flush()
    assert len(fresh.closed) == 1
    full = cluster_stream(trace)
    assert fresh.closed[0]["entry"] > full[0].entry_ms


def test_script_core_is_selfcontained_python():
    """The embedded script source must exec under restricted builtins."""
    source = clustering_script_core()
    namespace = {"__builtins__": {"len": len, "sum": sum, "enumerate": enumerate,
                                  "float": float, "max": max, "min": min,
                                  "dict": dict, "list": list, "reversed": reversed,
                                  "__build_class__": __build_class__, "__name__": "s"}}
    exec(compile(source, "<core>", "exec"), namespace)
    assert "WindowedDBSCAN" in namespace
    dbscan = namespace["WindowedDBSCAN"](0.55, 5, 60)
    dbscan.add(0.0, {"a": 1.0})
    assert dbscan.samples_seen == 1


def test_cluster_from_message():
    c = Cluster.from_message({"entry": 1.0, "exit": 5.0, "samples": 4, "representative": {"a": 0.5}})
    assert c.duration_ms == 4.0
    assert c.representative == {"a": 0.5}
