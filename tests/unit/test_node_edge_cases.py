"""Unit tests for node-level edge cases and protocol robustness."""

import pytest

from repro.core.deployment import (
    OP_TEARDOWN,
    attach_op,
    deploy_op,
    pub_op,
    teardown_op,
    undeploy_op,
)
from repro.core.node import CollectorNode, DeviceNode
from repro.device import Phone
from repro.net.xmpp import XmppServer
from repro.sim import HOUR, Kernel, MINUTE, SECOND


def make_pair():
    kernel = Kernel()
    server = XmppServer(kernel, latency_ms=10.0)
    phone = Phone(kernel, "dev@x")
    device = DeviceNode(kernel, phone, server, "dev@x")
    collector = CollectorNode(kernel, server, "pc@x")
    server.add_roster_pair("dev@x", "pc@x")
    collector.start()
    device.start()
    kernel.run_until(30 * SECOND)
    return kernel, server, phone, device, collector


def test_unknown_op_ignored():
    kernel, server, phone, device, collector = make_pair()
    collector.send_to("dev@x", {"op": "mystery", "ctx": "exp"})
    kernel.run_until(kernel.now + 30 * SECOND)
    assert device.contexts == {}  # nothing blew up, nothing created


def test_pub_for_unknown_context_ignored():
    kernel, server, phone, device, collector = make_pair()
    collector.send_to("dev@x", pub_op("ghost", "ch", {"x": 1}))
    kernel.run_until(kernel.now + 30 * SECOND)
    assert "ghost" not in device.contexts


def test_undeploy_and_teardown():
    kernel, server, phone, device, collector = make_pair()
    collector.send_to("dev@x", deploy_op("exp", "s", "x = 1\n"))
    kernel.run_until(kernel.now + 30 * SECOND)
    assert "s" in device.contexts["exp"].scripts
    collector.send_to("dev@x", undeploy_op("exp", "s"))
    kernel.run_until(kernel.now + 30 * SECOND)
    assert device.contexts["exp"].scripts == {}
    collector.send_to("dev@x", teardown_op("exp"))
    kernel.run_until(kernel.now + 30 * SECOND)
    assert "exp" not in device.contexts


def test_undeploy_unknown_script_is_harmless():
    kernel, server, phone, device, collector = make_pair()
    collector.send_to("dev@x", attach_op("exp"))
    collector.send_to("dev@x", undeploy_op("exp", "never-deployed"))
    kernel.run_until(kernel.now + 30 * SECOND)
    assert device.contexts["exp"].scripts == {}


def test_flush_with_empty_buffer_is_cheap_noop():
    kernel, server, phone, device, collector = make_pair()
    sent_before = device.transport.stanzas_sent
    assert device.flush("manual") == 0
    kernel.run_until(kernel.now + 5 * SECOND)
    assert device.transport.stanzas_sent == sent_before


def test_flush_while_disconnected_returns_zero():
    kernel, server, phone, device, collector = make_pair()
    device.send_to("pc@x", {"op": "pub", "ctx": "x", "channel": "c", "msg": 1})
    phone.set_cell_coverage(False)
    assert device.flush("manual") == 0
    assert len(device.buffer) == 1


def test_send_while_suspended_dropped():
    kernel, server, phone, device, collector = make_pair()
    phone.reboot(downtime_ms=1 * MINUTE)
    assert device._suspended
    device.send_to("pc@x", {"op": "noise"})
    assert len(device.buffer) == 0
    kernel.run_until(kernel.now + 5 * MINUTE)
    assert not device._suspended


def test_deploy_creates_context_exactly_once():
    kernel, server, phone, device, collector = make_pair()
    created = []
    device.on_context_added.append(created.append)
    collector.send_to("dev@x", attach_op("exp"))
    collector.send_to("dev@x", deploy_op("exp", "a", "x = 1\n"))
    collector.send_to("dev@x", deploy_op("exp", "b", "y = 2\n"))
    kernel.run_until(kernel.now + 30 * SECOND)
    assert len(created) == 1
    assert set(device.contexts["exp"].scripts) == {"a", "b"}


def test_script_error_on_deploy_does_not_kill_node():
    kernel, server, phone, device, collector = make_pair()
    collector.send_to("dev@x", deploy_op("exp", "broken", "raise ValueError('x')\n"))
    collector.send_to("dev@x", deploy_op("exp", "fine", "x = 1\n"))
    kernel.run_until(kernel.now + 30 * SECOND)
    context = device.contexts["exp"]
    # Both scripts deployed; the broken one recorded its failure.
    assert context.scripts["fine"].namespace["x"] == 1
    assert context.scripts["broken"].errors


def test_node_stop_is_clean():
    kernel, server, phone, device, collector = make_pair()
    collector.send_to("dev@x", deploy_op("exp", "s", "subscribe('ch', lambda m: None)\n"))
    kernel.run_until(kernel.now + 30 * SECOND)
    device.stop()
    assert not device.detector.running
    assert device.scheduler.stopped
    assert not device.contexts["exp"].broker.has_subscribers("ch")
