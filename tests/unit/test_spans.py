"""Unit tests for lifecycle spans, the flight recorder and the energy ledger."""

import pytest

from repro.core.envelope import Envelope
from repro.device.power import PowerRail
from repro.device.radio import KPN, Modem
from repro.sim.kernel import Kernel
from repro.sim.spans import (
    EnergyLedger,
    Span,
    SpanRecorder,
    render_span_tree,
    span_tree,
    spans_to_jsonl_lines,
)


# ---------------------------------------------------------------------------
# SpanRecorder: ids, ring, kill switch, histograms
# ---------------------------------------------------------------------------


class TestSpanRecorder:
    def test_record_and_query(self):
        recorder = SpanRecorder(clock=lambda: 42.0)
        hop = recorder.hop("buffer.dwell")
        span_id = hop.record(7, 3, 10.0, 50.0, {"bytes": 99})
        assert span_id == 1
        assert len(recorder) == 1
        (span,) = recorder.spans()
        assert span.hop == "buffer.dwell"
        assert span.trace_id == 7
        assert span.parent_id == 3
        assert span.duration_ms == 40.0
        assert recorder.spans(hop="other") == []
        assert recorder.spans(trace_id=7) == [span]
        assert recorder.now() == 42.0

    def test_ring_evicts_and_counts_dropped(self):
        recorder = SpanRecorder(max_spans=3)
        hop = recorder.hop("publish")
        for i in range(5):
            hop.record(i + 1, 0, float(i), float(i))
        assert len(recorder) == 3
        assert recorder.recorded == 5
        assert recorder.dropped == 2
        # Oldest first, most recent window kept.
        assert [s.trace_id for s in recorder.spans()] == [3, 4, 5]
        # Histograms aggregate the whole run, not just the ring.
        assert recorder.hop_histogram("publish").count == 5

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder(max_spans=0)

    def test_kill_switch(self):
        recorder = SpanRecorder(clock=lambda: 0.0)
        hop = recorder.hop("publish")
        recorder.disable()
        assert hop.record(1, 0, 0.0, 0.0) == 0
        assert recorder.tag(Envelope.wrap({"a": 1})) == 0
        assert len(recorder) == 0
        assert recorder.recorded == 0
        recorder.enable()
        assert hop.record(1, 0, 0.0, 0.0) == 1

    def test_tag_is_idempotent_and_monotonic(self):
        recorder = SpanRecorder()
        first = Envelope.wrap({"a": 1})
        second = Envelope.wrap({"b": 2})
        assert recorder.tag(first) == 1
        assert recorder.tag(first) == 1  # forwarded hop keeps its id
        assert first.trace_id == 1
        assert recorder.tag(second) == 2

    def test_hop_handles_are_cached(self):
        recorder = SpanRecorder()
        assert recorder.hop("x") is recorder.hop("x")
        assert recorder.hop_names() == ["x"]

    def test_latency_reports(self):
        recorder = SpanRecorder()
        recorder.hop("a").record(1, 0, 0.0, 10.0)
        recorder.hop("a").record(2, 0, 0.0, 30.0)
        recorder.hop("empty")  # zero-count hops are omitted
        table = recorder.latency_table()
        assert "a" in table and "empty" not in table
        snapshot = recorder.latency_snapshot()
        assert snapshot == {
            "a": {"count": 2, "mean_ms": 20.0, "min_ms": 10.0, "max_ms": 30.0}
        }

    def test_trace_ids_skip_node_scoped_spans(self):
        recorder = SpanRecorder()
        recorder.hop("node.flush").record(0, 0, 0.0, 0.0)
        recorder.hop("publish").record(recorder.tag(Envelope.wrap({})), 0, 0.0, 0.0)
        assert recorder.trace_ids() == [1]


# ---------------------------------------------------------------------------
# Span trees and serialization
# ---------------------------------------------------------------------------


def make_chain(recorder):
    """publish -> fanout -> dwell for trace 1, plus an unrelated trace."""
    root = recorder.hop("publish").record(1, 0, 0.0, 0.0, {"channel": "battery"})
    fanout = recorder.hop("broker.fanout").record(1, root, 0.0, 0.0)
    recorder.hop("buffer.dwell").record(1, fanout, 0.0, 500.0)
    recorder.hop("publish").record(2, 0, 5.0, 5.0)
    return root, fanout


class TestSpanTree:
    def test_tree_depths_follow_parent_links(self):
        recorder = SpanRecorder()
        make_chain(recorder)
        rows = span_tree(recorder.spans(), 1)
        assert [(depth, span.hop) for depth, span in rows] == [
            (0, "publish"),
            (1, "broker.fanout"),
            (2, "buffer.dwell"),
        ]

    def test_missing_parent_becomes_root(self):
        recorder = SpanRecorder()
        recorder.hop("buffer.dwell").record(1, 999, 0.0, 10.0)
        rows = span_tree(recorder.spans(), 1)
        assert rows[0][0] == 0

    def test_render(self):
        recorder = SpanRecorder()
        make_chain(recorder)
        text = render_span_tree(recorder.spans(), 1)
        assert text.startswith("trace #1")
        assert "channel=battery" in text
        assert "buffer.dwell" in text
        assert render_span_tree([], 9).endswith("no spans in the flight recorder")

    def test_dict_roundtrip(self):
        span = Span(4, 2, 1, "xmpp.route", 1.25, 9.5, {"to": "x@pogo"})
        clone = Span.from_dict(span.to_dict())
        assert clone.to_dict() == span.to_dict()
        assert clone.duration_ms == span.duration_ms

    def test_jsonl_lines_are_deterministic(self):
        recorder = SpanRecorder()
        make_chain(recorder)
        lines = spans_to_jsonl_lines(recorder.spans())
        assert len(lines) == 4
        assert all(line.startswith('{"attrs":') for line in lines)


# ---------------------------------------------------------------------------
# EnergyLedger: episodes, triggers, attribution, reconciliation
# ---------------------------------------------------------------------------


def make_radio():
    """A bare modem as the rail's only component: the rail's integral and
    the ledger's total must then agree exactly."""
    kernel = Kernel()
    rail = PowerRail(kernel)
    modem = Modem(kernel, rail, KPN)
    ledger = EnergyLedger(kernel, modem)
    return kernel, rail, modem, ledger


def run_to_idle(kernel, modem, limit_ms=200_000.0):
    kernel.run_until(kernel.now + limit_ms)
    assert modem.state == "idle"


class TestEnergyLedger:
    def test_external_episode_is_unattributed(self):
        kernel, rail, modem, ledger = make_radio()
        modem.transfer(tx_bytes=5_000, label="email")
        run_to_idle(kernel, modem)
        ledger.finalize()
        assert ledger.episodes_closed == 1
        assert ledger.episodes_by_trigger["external"] == 1
        assert ledger.attributed_j == 0.0
        assert ledger.unattributed_j > 0.0
        # Exact piecewise-constant accounting: the ledger's total is the
        # rail's integral (the modem is the only component on the rail).
        assert ledger.total_j == pytest.approx(rail.energy_joules, rel=1e-9)
        assert ledger.reconciliation_delta() == 0.0

    def test_flush_triggered_episode_charges_pogo_in_full(self):
        kernel, rail, modem, ledger = make_radio()
        # Pogo flushes from idle: mark first, then the transfer ramps the
        # radio (the order DeviceNode.flush uses).
        ledger.on_flush(flush_span=11, riders=[(1, 400)], interface="3g",
                        radio_state=modem.state)
        modem.transfer(tx_bytes=400, label="pogo-flush")
        run_to_idle(kernel, modem)
        ledger.finalize()
        assert ledger.episodes_by_trigger["flush"] == 1
        # Self-initiated: ramp + transfer + both tails all belong to Pogo.
        assert ledger.attributed_j == pytest.approx(ledger.active_j)
        assert ledger.unattributed_j == pytest.approx(0.0)
        assert ledger.piggybacked_messages == 0
        (entry,) = ledger.recent
        assert entry.trace_id == 1
        assert entry.flush_span == 11
        assert not entry.piggybacked
        assert ledger.total_j == pytest.approx(rail.energy_joules, rel=1e-9)

    def test_piggybacked_flush_pays_only_marginal_transfer(self):
        kernel, rail, modem, ledger = make_radio()
        # The e-mail app wakes the radio...
        modem.transfer(tx_bytes=20_000, label="email")
        kernel.run_until(kernel.now + 3_000.0)
        assert modem.state == "dch"
        # ...and Pogo piggybacks while the channel is hot.
        ledger.on_flush(flush_span=22, riders=[(1, 400)], interface="3g",
                        radio_state=modem.state)
        modem.transfer(tx_bytes=400, label="pogo-flush")
        run_to_idle(kernel, modem)
        ledger.finalize()
        assert ledger.episodes_by_trigger["external"] == 1
        # Marginal cost only: the KPN minimum transfer slot at DCH power.
        expected = KPN.dch_w * KPN.min_transfer_ms / 1000.0
        assert ledger.attributed_j == pytest.approx(expected)
        assert ledger.piggybacked_messages == 1
        assert ledger.attributed_j < ledger.active_j
        assert ledger.total_j == pytest.approx(rail.energy_joules, rel=1e-9)
        assert ledger.reconciliation_delta() == 0.0

    def test_proration_by_bytes_and_control_share(self):
        kernel, rail, modem, ledger = make_radio()
        # One flush carrying a traced message (300 B), another traced
        # message (100 B) and an untraced control payload (100 B).
        ledger.on_flush(
            flush_span=5,
            riders=[(1, 300), (2, 100), (0, 100)],
            interface="3g",
            radio_state=modem.state,
        )
        modem.transfer(tx_bytes=500, label="pogo-flush")
        run_to_idle(kernel, modem)
        ledger.finalize()
        total = ledger.active_j
        # Shares split by wire bytes: 300/500, 100/500 to messages, the
        # control rider's 100/500 lands in control_j.
        assert ledger.attributed_j == pytest.approx(total * 400 / 500)
        assert ledger.control_j == pytest.approx(total * 100 / 500)
        assert ledger.messages_attributed == 2
        entries = list(ledger.recent)
        assert entries[0].joules == pytest.approx(3 * entries[1].joules)
        assert ledger.reconciliation_delta() == 0.0

    def test_settle_flush_clears_stale_marker(self):
        kernel, rail, modem, ledger = make_radio()
        # A flush whose transfer never reached the modem (link failure).
        ledger.on_flush(flush_span=9, riders=[(1, 400)], interface="3g",
                        radio_state=modem.state)
        ledger.settle_flush()
        # A later, unrelated wake-up must not inherit the trigger or riders.
        modem.transfer(tx_bytes=5_000, label="email")
        run_to_idle(kernel, modem)
        ledger.finalize()
        assert ledger.episodes_by_trigger["external"] == 1
        assert ledger.episodes_by_trigger["flush"] == 0
        assert ledger.attributed_j == 0.0

    def test_wifi_flush_costs_no_modem_energy(self):
        kernel, rail, modem, ledger = make_radio()
        ledger.on_flush(flush_span=3, riders=[(1, 750)], interface="wifi",
                        radio_state=modem.state)
        ledger.finalize()
        assert ledger.wifi_bytes == 750
        assert ledger.active_j == 0.0
        assert ledger.messages_attributed == 0

    def test_finalize_closes_open_episode(self):
        kernel, rail, modem, ledger = make_radio()
        modem.transfer(tx_bytes=1_000, label="email")
        kernel.run_until(kernel.now + 4_000.0)  # mid-tail, episode open
        assert modem.state == "dch"
        ledger.finalize()
        assert ledger.episodes_closed == 1
        assert ledger.total_j == pytest.approx(rail.energy_joules, rel=1e-9)

    def test_snapshot_shape(self):
        kernel, rail, modem, ledger = make_radio()
        modem.transfer(tx_bytes=1_000)
        run_to_idle(kernel, modem)
        ledger.finalize()
        snapshot = ledger.snapshot()
        assert snapshot["episodes"] == 1
        assert snapshot["total_j"] == pytest.approx(
            snapshot["active_j"] + snapshot["idle_j"]
        )


def test_disable_swaps_hop_handles_to_noops():
    from repro.sim.spans import HopHandle, NullHopHandle, SpanRecorder

    recorder = SpanRecorder(clock=lambda: 0.0)
    hop = recorder.hop("transport.send")
    span = hop.record(1, 0, 0.0, 1.0)
    assert span != 0
    recorder.disable()
    # Pre-bound handles become the no-op class: record returns 0 with no
    # attribute-chain branching.
    assert type(hop) is NullHopHandle
    assert hop.record(1, 0, 0.0, 1.0) == 0
    # Hops created while disabled are born as no-ops.
    late = recorder.hop("late.hop")
    assert type(late) is NullHopHandle
    recorder.enable()
    assert type(hop) is HopHandle
    assert type(late) is HopHandle
    assert hop.record(1, span, 1.0, 2.0) != 0


def test_middleware_kill_switches_disable_both_planes():
    from repro.core.middleware import PogoSimulation
    from repro.sim.metrics import NullCounter
    from repro.sim.spans import NullHopHandle

    sim = PogoSimulation(seed=1, spans=False, metrics=False)
    device = sim.add_device()
    sim.start()
    sim.run(minutes=5)
    assert not sim.kernel.spans.enabled
    assert not sim.kernel.metrics.enabled
    assert sim.kernel.spans.recorded == 0
    # Every pre-bound counter and hop handle is the no-op class.
    assert all(
        type(c) is NullCounter for c in sim.kernel.metrics._counters.values()
    )
    assert all(
        type(h) is NullHopHandle for h in sim.kernel.spans._hops.values()
    )
    assert device.phone.energy_joules > 0  # the simulation itself ran
