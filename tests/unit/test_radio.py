"""Unit tests for the 3G modem RRC state machine."""

import pytest

from repro.device.power import PowerRail
from repro.device.radio import (
    CARRIERS,
    DCH,
    FACH,
    IDLE,
    KPN,
    OFF,
    RAMP,
    T_MOBILE,
    VODAFONE,
    CarrierProfile,
    Modem,
    RadioUnavailable,
)
from repro.sim import Kernel, TraceRecorder


def make_modem(profile=KPN, **kwargs):
    kernel = Kernel()
    rail = PowerRail(kernel)
    trace = TraceRecorder(lambda: kernel.now)
    modem = Modem(kernel, rail, profile, trace=trace, **kwargs)
    return kernel, rail, modem


def state_sequence(modem_trace):
    return [(e.data["old"], e.data["new"]) for e in modem_trace.filter(kind="state")]


def test_full_transmission_cycle_states_and_timing():
    kernel, _, modem = make_modem()
    done = []
    modem.transfer(tx_bytes=1000, on_complete=done.append, label="t")
    kernel.run_until(1.0)
    assert modem.state == RAMP
    kernel.run_until(KPN.ramp_ms + 1.0)
    assert modem.state == DCH
    # Transfer takes min_transfer_ms; completion then arms the DCH tail.
    kernel.run_until(KPN.ramp_ms + KPN.min_transfer_ms + 1.0)
    assert done == [True]
    transfer_end = KPN.ramp_ms + KPN.min_transfer_ms
    kernel.run_until(transfer_end + KPN.dch_tail_ms + 1.0)
    assert modem.state == FACH
    kernel.run_until(transfer_end + KPN.dch_tail_ms + KPN.fach_tail_ms + 1.0)
    assert modem.state == IDLE


def test_tail_timings_match_figure3_on_kpn():
    """Figure 3: ~6 s DCH tail, ~53.5 s FACH tail."""
    assert KPN.dch_tail_ms == pytest.approx(6000.0)
    assert KPN.fach_tail_ms == pytest.approx(53500.0)
    # KPN has by far the longest tail of the three carriers (Table 3).
    assert KPN.fach_tail_ms > VODAFONE.fach_tail_ms > T_MOBILE.fach_tail_ms


def test_transfer_duration_scales_with_bytes():
    kernel, _, modem = make_modem()
    done = []
    big = int(KPN.uplink_bytes_per_s * 2)  # 2 s of uplink
    modem.transfer(tx_bytes=big, on_complete=lambda ok: done.append(kernel.now))
    kernel.run()
    assert done[0] == pytest.approx(KPN.ramp_ms + 2000.0)


def test_duration_hint_dominates_small_payload():
    kernel, _, modem = make_modem()
    done = []
    modem.transfer(tx_bytes=10, duration_hint_ms=1500.0, on_complete=lambda ok: done.append(kernel.now))
    kernel.run()
    assert done[0] == pytest.approx(KPN.ramp_ms + 1500.0)


def test_queued_transfers_share_one_rampup():
    kernel, _, modem = make_modem()
    completions = []
    modem.transfer(tx_bytes=100, on_complete=lambda ok: completions.append("a"))
    modem.transfer(tx_bytes=100, on_complete=lambda ok: completions.append("b"))
    kernel.run()
    assert completions == ["a", "b"]
    assert modem.rampup_count == 1
    assert modem.transfer_count == 2


def test_transfer_during_dch_tail_needs_no_rampup():
    kernel, _, modem = make_modem()
    modem.transfer(tx_bytes=100)
    kernel.run_until(KPN.ramp_ms + KPN.min_transfer_ms + 1000.0)  # in DCH tail
    assert modem.state == DCH
    modem.transfer(tx_bytes=100)
    kernel.run()
    assert modem.rampup_count == 1


def test_transfer_during_fach_promotes_quickly():
    kernel, _, modem = make_modem()
    modem.transfer(tx_bytes=100)
    transfer_end = KPN.ramp_ms + KPN.min_transfer_ms
    kernel.run_until(transfer_end + KPN.dch_tail_ms + 2000.0)  # in FACH
    assert modem.state == FACH
    started = kernel.now
    done = []
    modem.transfer(tx_bytes=100, on_complete=lambda ok: done.append(kernel.now))
    kernel.run_until(started + 10_000.0)
    assert done[0] == pytest.approx(started + KPN.fach_to_dch_ms + KPN.min_transfer_ms)
    assert modem.rampup_count == 1  # promotion is not a cold ramp-up


def test_byte_counters_accumulate():
    kernel, _, modem = make_modem()
    modem.transfer(tx_bytes=500, rx_bytes=1500)
    kernel.run()
    assert modem.bytes_tx == 500
    assert modem.bytes_rx == 1500
    assert modem.total_bytes == 2000


def test_unavailable_when_data_disabled():
    kernel, _, modem = make_modem()
    modem.set_data_enabled(False)
    assert not modem.available
    with pytest.raises(RadioUnavailable):
        modem.transfer(tx_bytes=10)


def test_coverage_loss_fails_inflight_and_queued_jobs():
    kernel, _, modem = make_modem()
    results = []
    modem.transfer(tx_bytes=100, on_complete=results.append)
    modem.transfer(tx_bytes=100, on_complete=results.append)
    kernel.run_until(KPN.ramp_ms + 50.0)  # first job in flight
    modem.set_coverage(False)
    kernel.run_until(kernel.now + 10_000.0)
    assert results == [False, False]
    assert not modem.available


def test_power_off_and_on():
    kernel, rail, modem = make_modem()
    modem.power_off()
    assert modem.state == OFF
    assert rail.draw_of(modem.name) == 0.0
    modem.power_on()
    assert modem.state == IDLE
    assert rail.draw_of(modem.name) == pytest.approx(KPN.idle_w)


def test_energy_of_single_transmission_matches_state_dwell_times():
    kernel, rail, modem = make_modem()
    modem.transfer(tx_bytes=100)
    total_ms = KPN.ramp_ms + KPN.min_transfer_ms + KPN.dch_tail_ms + KPN.fach_tail_ms
    kernel.run_until(total_ms + 1000.0)
    expected = (
        KPN.ramp_ms * KPN.ramp_w
        + (KPN.min_transfer_ms + KPN.dch_tail_ms) * KPN.dch_w
        + KPN.fach_tail_ms * KPN.fach_w
        + (1000.0) * KPN.idle_w
    ) / 1000.0
    assert rail.energy_joules == pytest.approx(expected, rel=1e-6)


def test_paging_blips_only_in_idle():
    kernel, rail, modem = make_modem(simulate_paging=True)
    watts_seen = set()
    original = rail.set_draw

    kernel.run_until(3 * KPN.paging_period_ms)
    # During a blip the draw exceeds idle.
    assert modem.state == IDLE
    # Run up to just inside a blip window.
    kernel.run_until(kernel.now + KPN.paging_period_ms + KPN.paging_duration_ms / 2)
    # Whether or not we land exactly in a blip, the machinery must not
    # leave residual draw once a transfer starts.
    modem.transfer(tx_bytes=10)
    kernel.run_until(kernel.now + 10.0)
    assert rail.draw_of(modem.name) == pytest.approx(KPN.ramp_w)


def test_carrier_registry_and_overrides():
    assert set(CARRIERS) == {"KPN", "T-Mobile", "Vodafone"}
    custom = KPN.with_overrides(dch_tail_ms=1234.0)
    assert custom.dch_tail_ms == 1234.0
    assert custom.name == "KPN"
    assert KPN.dch_tail_ms == 6000.0  # original untouched


def test_state_change_listeners():
    kernel, _, modem = make_modem()
    changes = []
    modem.on_state_change.append(lambda old, new: changes.append((old, new)))
    modem.transfer(tx_bytes=10)
    kernel.run()
    assert changes[0] == (IDLE, RAMP)
    assert (RAMP, DCH) in changes
    assert changes[-1] == (FACH, IDLE)
