"""Integration: tail sync against a realistic mix of background apps.

Section 4.7: "there are typically many applications already present on a
mobile phone that periodically trigger a 3G tail" — e-mail, instant
messaging, turn-based games.  With several apps generating irregular
traffic, Pogo's delivery latency drops (more piggyback opportunities)
while it still causes no radio sessions of its own.
"""

import pytest

from repro.apps import battery_monitor
from repro.core.middleware import PogoSimulation
from repro.device.apps import ChattyApp, ChattyAppConfig
from repro.sim import HOUR, MINUTE


def run_with_apps(app_mix, seed=17, hours=4):
    sim = PogoSimulation(seed=seed)
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app="email" in app_mix)
    if "im" in app_mix:
        device.apps.append(
            ChattyApp(
                device.phone,
                sim.streams.stream("im"),
                ChattyAppConfig(mean_interval_ms=8 * MINUTE),
                name="im",
            )
        )
    if "game" in app_mix:
        device.apps.append(
            ChattyApp(
                device.phone,
                sim.streams.stream("game"),
                ChattyAppConfig(mean_interval_ms=25 * MINUTE, rx_bytes=6_000),
                name="game",
            )
        )
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])

    arrivals = []
    context.broker.subscribe(
        "battery",
        lambda msg: arrivals.append((sim.kernel.now, msg["timestamp"])),
        owner="local:probe",
    )
    sim.run(hours=hours)
    latencies = [(a - t) / MINUTE for a, t in arrivals]
    foreign_sessions = sum(
        getattr(app, "check_count", 0) + getattr(app, "exchange_count", 0)
        for app in device.apps
    )
    return {
        "device": device,
        "delivered": len(arrivals),
        "mean_latency_min": sum(latencies) / len(latencies) if latencies else None,
        "rampups": device.phone.modem.rampup_count,
        "foreign_sessions": foreign_sessions,
    }


def test_more_background_apps_means_lower_latency():
    email_only = run_with_apps({"email"})
    rich = run_with_apps({"email", "im", "game"})
    assert rich["delivered"] >= email_only["delivered"] - 10
    assert rich["mean_latency_min"] < email_only["mean_latency_min"]


def test_pogo_adds_no_rampups_even_with_chatty_mix():
    rich = run_with_apps({"email", "im", "game"})
    # Every ramp-up is attributable to an app session or the initial
    # handshake — none to Pogo's own flushes.
    assert rich["rampups"] <= rich["foreign_sessions"] + 3


def test_im_only_mix_still_delivers():
    im_only = run_with_apps({"im"})
    assert im_only["delivered"] > 150
    assert im_only["mean_latency_min"] < 15.0
