"""Golden-master determinism: seeded artifacts are byte-identical.

The kernel hot-path work (native repeating timers, tombstone compaction,
the subscription index, cached stanza serialization, no-op span/metric
lanes) is only admissible if it is *behaviour-preserving*: for a fixed
seed, the chaos reports and the trace export must not move by a single
byte.  The files in ``tests/golden/`` were captured before the
optimisations landed; these tests regenerate them in-process and compare
bytes.

When a legitimate behaviour change lands (a new invariant, a protocol
fix), regenerate the goldens explicitly and say so in the commit::

    python -m repro --seed 7 chaos --scenario flaky-3g --report \
        tests/golden/chaos_flaky3g_seed7.json
    python -m repro --seed 7 chaos --scenario reorder-storm --report \
        tests/golden/chaos_reorder_seed7.json
    python -m repro --seed 7 trace --devices 3 --hours 0.5 --export \
        tests/golden/trace_seed7_d3_h05.jsonl
"""

import pathlib

import pytest

from repro import chaos as _chaos

GOLDEN = pathlib.Path(__file__).parent.parent / "golden"


@pytest.mark.parametrize(
    "scenario, filename",
    [
        ("flaky-3g", "chaos_flaky3g_seed7.json"),
        ("reorder-storm", "chaos_reorder_seed7.json"),
    ],
)
def test_chaos_report_matches_golden_master(scenario, filename):
    report = _chaos.run_scenario(scenario, seed=7)
    produced = _chaos.report_json(report).encode("utf-8")
    expected = (GOLDEN / filename).read_bytes()
    assert produced == expected, (
        f"chaos report for {scenario!r} (seed 7) diverged from the golden "
        f"master {filename} — a kernel/broker/transport change altered "
        "behaviour, not just speed"
    )


def test_trace_export_matches_golden_master(tmp_path):
    from repro.analysis.export import spans_to_jsonl
    from repro.apps import battery_monitor
    from repro.core.middleware import PogoSimulation

    sim = PogoSimulation(seed=7)
    collector = sim.add_collector("cli")
    devices = [sim.add_device(with_email_app=True) for _ in range(3)]
    sim.start()
    sim.assign(collector, devices)
    collector.node.deploy(battery_monitor.build_experiment(), [d.jid for d in devices])
    sim.run(hours=0.5)

    out = tmp_path / "spans.jsonl"
    spans_to_jsonl(sim.kernel.spans, str(out))
    expected = (GOLDEN / "trace_seed7_d3_h05.jsonl").read_bytes()
    assert out.read_bytes() == expected, (
        "trace JSONL export (seed 7, 3 devices, 0.5 h) diverged from the "
        "golden master — the optimized hot path changed observable events"
    )
