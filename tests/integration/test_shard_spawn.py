"""Spawn-method multiprocessing smoke: a ShardSpec pickled into a fresh
interpreter must reproduce the in-process run byte for byte.

``spawn`` (not ``fork``) is the interesting start method: the worker
imports the package from scratch and rebuilds the shard purely from the
pickled spec, so any hidden dependence on parent-process module state
shows up as a byte diff.  This is the same check CI's spawn-smoke job
gates on with the Table 3 battery-monitor hour.
"""

from repro.core.shard import (
    DeviceSpec,
    ShardSpec,
    run_battery_monitor_hour,
    run_spec_in_subprocess,
)

SPEC = ShardSpec(
    shard_id="spawn-smoke",
    seed=7,
    collectors=("spawn",),
    devices=tuple(DeviceSpec(with_email_app=True) for _ in range(5)),
)


def test_spawned_shard_matches_in_process_run():
    local = run_battery_monitor_hour(SPEC, hours=1.0)
    remote = run_spec_in_subprocess(SPEC, hours=1.0)
    assert remote["report"] == local["report"]
    assert remote["trace_jsonl"] == local["trace_jsonl"]
    # Sanity: the artifacts are non-trivial, not vacuously equal.
    assert '"events_executed"' in local["report"]
    assert local["trace_jsonl"].count("\n") > 100
