"""Integration: the full localization application (Section 4.1).

scan → clustering on the device, collect + geolocation on the collector,
with the world model generating the Wi-Fi environment.
"""

import pytest

from repro.analysis.clustering import Cluster, cluster_stream
from repro.analysis.matching import match_clusters
from repro.apps import localization
from repro.sim import DAY, HOUR, MINUTE
from repro.world.places import is_locally_administered
from repro.world.rssi import normalize_rssi

from .conftest import install_geolocation


def offline_truth(device, duration_ms, interval_ms=60_000.0):
    """Ground truth: cluster an uninterrupted scan trace offline.

    Uses an independent scan stream (different RNG draws than the
    on-device scans), so agreement is about *places*, not scan identity.
    """
    samples = []
    t = 0.0
    while t < duration_ms:
        vector = {
            r.bssid: normalize_rssi(r.rssi_dbm)
            for r in device.user_world.scan(t)
            if not is_locally_administered(r.bssid)
        }
        samples.append((t, vector))
        t += interval_ms
    return cluster_stream(samples)


def test_localization_end_to_end_one_day(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    install_geolocation(collector, device)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(localization.build_experiment(), [device.jid])
    sim.run(days=1)

    host = context.scripts["collect"]
    database = host.namespace["database"]
    assert host.errors == []
    assert database, "no clusters collected"

    # Every stored cluster is geolocated and tagged with its device.
    located = [c for c in database if c["place"] is not None]
    assert len(located) >= 0.8 * len(database)
    assert all(c["_device"] == device.jid for c in database)

    # Cluster stream is plausible: ordered, non-overlapping, >= min_pts.
    entries = [c["entry"] for c in database]
    assert entries == sorted(entries)
    assert all(c["samples"] >= 5 for c in database)
    assert all(c["exit"] > c["entry"] for c in database)

    # The collected clusters track the user's real dwells: compare with
    # an offline clustering of a fresh scan stream over the same world.
    truth = offline_truth(device, 1 * DAY)
    collected = [Cluster.from_message(c) for c in database]
    report = match_clusters(truth, collected)
    assert report.partial_percent >= 60.0


def test_localization_geolocations_near_actual_places(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    install_geolocation(collector, device)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(localization.build_experiment(), [device.jid])
    sim.run(hours=10)  # covers the overnight home dwell + morning

    from repro.world.geometry import from_latlon

    database = context.scripts["collect"].namespace["database"]
    assert database
    home = device.user_world.places["home"][0]
    first = database[0]
    assert first["place"] is not None
    resolved = from_latlon(first["place"]["lat"], first["place"]["lon"])
    # The overnight cluster resolves near the user's home.
    assert home.center.distance_to(resolved) < 200.0


def test_data_reduction_vs_raw_scans(sim):
    """Section 5.3: on-line clustering cuts transferred bytes by ~98%."""
    from repro.core.messages import message_size_bytes

    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    install_geolocation(collector, device)

    raw_bytes = [0]
    scan_script_host = {}

    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(localization.build_experiment(), [device.jid])
    sim.run(days=1)

    # Raw cost: what shipping every sanitized scan would have taken.
    dctx = device.node.contexts[localization.EXPERIMENT_ID]
    clustering_host = dctx.scripts["clustering"]
    samples_seen = clustering_host.namespace["dbscan"].samples_seen
    assert samples_seen > 1000
    database = context.scripts["collect"].namespace["database"]
    cluster_bytes = sum(message_size_bytes(c) for c in database)
    # A sanitized scan is a few hundred bytes; be conservative (150 B).
    assert cluster_bytes < 0.1 * samples_seen * 150
