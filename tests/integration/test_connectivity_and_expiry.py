"""Integration: interface switching, message loss recovery, 24 h expiry.

The Section 4.6 behaviours: reconnection on interface change, end-to-end
acks repairing stale-session loss, buffering while offline, and the
24-hour purge that cost users 2a and 3 their data.
"""

import pytest

from repro.apps import battery_monitor
from repro.sim import DAY, HOUR, MINUTE


def collected(context):
    return context.scripts["collect"].namespace["readings"]


def test_interface_switches_do_not_lose_or_duplicate_data(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    # Toggle Wi-Fi on/off every 20 minutes for three hours.
    for i in range(9):
        sim.kernel.schedule((i + 1) * 20 * MINUTE, device.phone.set_wifi_connected, i % 2 == 0)
    sim.run(hours=3.5)

    readings = collected(context)
    timestamps = [r["timestamp"] for r in readings]
    # No duplicates (end-to-end dedup by sequence number).
    assert len(timestamps) == len(set(timestamps))
    # Nearly all of ~210 samples arrived despite the churn.
    assert len(readings) >= 190
    # The device did reconnect across interfaces.
    assert device.node.transport.connect_count >= 5


def test_offline_period_buffers_then_drains(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=0.5)
    before_offline = len(collected(context))

    device.phone.set_cell_coverage(False)
    sim.run(hours=2)
    during = len(collected(context))
    assert during <= before_offline + 6  # nothing new beyond in-flight
    assert len(device.node.buffer) > 100  # samples piling up on-device

    device.phone.set_cell_coverage(True)
    sim.run(hours=0.5)
    after = len(collected(context))
    # The backlog arrived: ~3 hours of samples total.
    assert after >= 170
    timestamps = [r["timestamp"] for r in collected(context)]
    assert len(timestamps) == len(set(timestamps))


def test_24h_expiry_purges_old_messages(sim):
    """User 2a's failure mode: offline > 24 h -> older messages dropped."""
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=1)
    device.phone.set_data_enabled(False)  # roaming off
    sim.run(days=2)
    device.phone.set_data_enabled(True)
    sim.run(hours=1)

    assert device.node.buffer.expired > 1000  # a full day+ was purged
    readings = collected(context)
    times_h = sorted(r["timestamp"] / HOUR for r in readings)
    # There is a gap: samples from the first offline day never arrived.
    gaps = [b - a for a, b in zip(times_h, times_h[1:])]
    assert max(gaps) > 20.0
    # But the last 24 h of the offline window did arrive after reconnect.
    recent = [t for t in times_h if 26.0 <= t <= 49.0]
    assert len(recent) > 1000


def test_no_expiry_when_connected(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(days=2)
    assert device.node.buffer.expired == 0
