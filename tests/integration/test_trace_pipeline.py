"""End-to-end lifecycle tracing: causal chains, energy books, determinism.

A seeded fleet runs the battery-telemetry experiment with tracing on (the
default), then the span stream is checked for the properties the tracer
exists to provide: every hop kind fires, each delivered message's spans
form one connected causal chain from ``publish`` to ``deliver.collector``,
the per-device energy ledgers reconcile against the integrated episode
energy, and two identical seeded runs export byte-identical JSONL.
"""

import pytest

from repro.analysis.export import spans_to_jsonl
from repro.apps import battery_monitor
from repro.core.middleware import PogoSimulation
from repro.sim.spans import span_tree


def run_fleet(seed=5, devices=3, hours=1.0, spans=True):
    sim = PogoSimulation(seed=seed, spans=spans)
    collector = sim.add_collector("lab")
    fleet = [sim.add_device(with_email_app=True) for _ in range(devices)]
    sim.start()
    sim.assign(collector, fleet)
    collector.node.deploy(
        battery_monitor.build_experiment(), [d.jid for d in fleet]
    )
    sim.run(hours=hours)
    return sim, fleet


#: Every hop kind the battery pipeline must touch on a cellular fleet.
EXPECTED_HOPS = {
    "publish",
    "broker.fanout",
    "buffer.enqueue",
    "buffer.dwell",
    "tailsync.decision",
    "node.flush",
    "transport.send",
    "xmpp.route",
    "deliver.collector",
    "scheduler.task",
    "script.call",
}


def test_all_hop_kinds_recorded():
    sim, _ = run_fleet()
    recorder = sim.kernel.spans
    fired = {name for name in recorder.hop_names()
             if recorder.hop_histogram(name).count > 0}
    assert EXPECTED_HOPS <= fired
    assert recorder.recorded == len(recorder) + recorder.dropped
    assert sim.kernel.metrics.snapshot()["spans.recorded"] == recorder.recorded


def test_delivered_messages_have_connected_causal_chains():
    sim, _ = run_fleet()
    recorder = sim.kernel.spans
    delivered = recorder.spans(hop="deliver.collector")
    assert len(delivered) > 0
    all_spans = recorder.spans()
    checked = 0
    for deliver in delivered[-20:]:
        rows = span_tree(all_spans, deliver.trace_id)
        hops = {span.hop: depth for depth, span in rows}
        if "publish" not in hops:
            continue  # early spans may have been evicted from the ring
        checked += 1
        # One connected chain: publish is the root, delivery the deepest.
        assert hops["publish"] == 0
        assert hops["deliver.collector"] == max(depth for depth, _ in rows)
        order = [span.hop for _, span in rows]
        assert order.index("publish") < order.index("buffer.enqueue")
        assert order.index("buffer.enqueue") < order.index("buffer.dwell")
        assert order.index("buffer.dwell") < order.index("deliver.collector")
        # The e2e span runs from the origin publish to delivery.
        assert deliver.start_ms == rows[0][1].start_ms
        assert deliver.end_ms >= deliver.start_ms
    assert checked > 0


def test_flush_decisions_link_radio_side_spans():
    sim, _ = run_fleet()
    recorder = sim.kernel.spans
    decisions = {s.span_id for s in recorder.spans(hop="tailsync.decision")}
    flushes = recorder.spans(hop="node.flush")
    assert flushes and decisions
    assert any(f.parent_id in decisions for f in flushes)
    flush_ids = {f.span_id for f in flushes}
    sends = recorder.spans(hop="transport.send")
    assert sends
    assert any(s.parent_id in flush_ids for s in sends)
    # Dwell spans name the flush that drained them.
    dwells = recorder.spans(hop="buffer.dwell")
    assert dwells
    assert any(d.attrs["flush_span"] in flush_ids for d in dwells)


def test_energy_ledgers_reconcile_within_one_percent():
    sim, fleet = run_fleet()
    attributed = 0.0
    messages = 0
    for device in fleet:
        ledger = device.node.energy
        ledger.finalize()
        assert ledger.reconciliation_delta() < 0.01
        # The ledger's modem total equals its parts by construction; the
        # stronger check is per-episode: nothing went missing.
        parts = ledger.attributed_j + ledger.control_j + ledger.unattributed_j
        assert parts == pytest.approx(ledger.active_j, rel=1e-9)
        attributed += ledger.attributed_j
        messages += ledger.messages_attributed
    assert messages > 0
    assert attributed > 0.0


def test_kill_switch_records_nothing():
    sim, _ = run_fleet(spans=False)
    recorder = sim.kernel.spans
    assert recorder.recorded == 0
    assert len(recorder) == 0
    assert recorder.trace_ids() == []


def test_span_export_determinism():
    """Two identical seeded runs export byte-identical JSONL (CI pins this)."""
    first, _ = run_fleet(seed=11, devices=2, hours=0.5)
    second, _ = run_fleet(seed=11, devices=2, hours=0.5)
    text_a = spans_to_jsonl(first.kernel.spans)
    text_b = spans_to_jsonl(second.kernel.spans)
    assert text_a == text_b
    assert text_a.count("\n") == len(first.kernel.spans)
    # And a different fleet genuinely changes the stream (the check is
    # not vacuous).
    third, _ = run_fleet(seed=11, devices=3, hours=0.5)
    assert spans_to_jsonl(third.kernel.spans) != text_a
