"""Integration: the RogueFinder application (Section 5.1, Listing 2).

The device script toggles its Wi-Fi scan subscription with the user's
location, so scans are reported only inside the target polygon — and the
Wi-Fi scanning sensor is actually *off* outside it (the energy argument
for subscription release/renew).
"""

import pytest

from repro.apps import roguefinder
from repro.sim import HOUR, MINUTE
from repro.world.geometry import Point, to_latlon


def polygon_around(center: Point, half_size_m: float):
    corners = [
        center.offset(-half_size_m, -half_size_m),
        center.offset(half_size_m, -half_size_m),
        center.offset(half_size_m, half_size_m),
        center.offset(-half_size_m, half_size_m),
    ]
    return [to_latlon(p) for p in corners]


def test_roguefinder_reports_only_inside_polygon(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])

    # Geofence the user's office; overnight (home) must yield nothing.
    office = device.user_world.places["office"][0]
    experiment = roguefinder.build_experiment(polygon_around(office.center, 150.0))
    context = collector.node.deploy(experiment, [device.jid])

    sensor = device.node.sensor_manager.sensors["wifi-scan"]
    sim.run(hours=3)  # 3 AM: at home, outside the fence
    assert not sensor.enabled
    scans_at_home = len(context.scripts["collect"].namespace["scans"])
    assert scans_at_home == 0

    sim.run(hours=9)  # noon: at the office
    assert device.user_world.current_place(sim.kernel.now) is office
    assert sensor.enabled
    sim.run(hours=1)
    scans_at_office = len(context.scripts["collect"].namespace["scans"])
    assert scans_at_office > 30

    # Office BSSIDs actually appear in the reports.
    office_bssids = {ap.bssid for ap in office.access_points}
    reported_bssids = {
        ap["bssid"]
        for scan in context.scripts["collect"].namespace["scans"]
        for ap in scan["aps"]
    }
    assert reported_bssids & office_bssids


def test_roguefinder_device_script_has_no_errors(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    office = device.user_world.places["office"][0]
    experiment = roguefinder.build_experiment(polygon_around(office.center, 150.0))
    collector.node.deploy(experiment, [device.jid])
    sim.run(hours=14)
    dctx = device.node.contexts[roguefinder.EXPERIMENT_ID]
    assert dctx.scripts["roguefinder"].errors == []


def test_location_sensor_runs_for_roguefinder(sim):
    """The geofence needs location updates even outside the polygon."""
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    office = device.user_world.places["office"][0]
    experiment = roguefinder.build_experiment(polygon_around(office.center, 150.0))
    collector.node.deploy(experiment, [device.jid])
    sim.run(hours=1)
    location = device.node.sensor_manager.sensors["locations"]
    assert location.enabled
    assert location.fix_count > 20
