"""Integration: the community noise-mapping application."""

import pytest

from repro.apps import noise_map
from repro.sensors.microphone import AMBIENT_DB
from repro.sim import HOUR, MINUTE
from repro.world.geometry import to_latlon


def test_fleet_builds_a_noise_map(sim):
    collector = sim.add_collector("alice")
    devices = [sim.add_device(world_days=1, with_email_app=True) for _ in range(2)]
    sim.start()
    sim.assign(collector, devices)
    context = collector.node.deploy(
        noise_map.build_experiment(), [d.jid for d in devices]
    )
    sim.run(hours=14)

    host = context.scripts["collect"]
    assert host.errors == []
    city_map = host.namespace["noise_map"]
    assert len(city_map) >= 3  # several grid cells covered

    # Cell statistics are consistent dBA values.
    for key, cell in city_map.items():
        lat_str, lon_str = key.split(",")
        float(lat_str), float(lon_str)  # keys parse as coordinates
        assert cell["n"] >= 1
        mean = cell["sum"] / cell["n"]
        assert 30.0 <= mean <= cell["max"] + 1e-6 <= 95.0

    # Both devices contributed somewhere.
    contributors = {d for cell in city_map.values() for d in cell["devices"]}
    assert contributors == {d.jid for d in devices}


def test_map_reflects_place_loudness(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(noise_map.build_experiment(), [device.jid])
    sim.run(hours=14)

    city_map = context.scripts["collect"].namespace["noise_map"]
    assert city_map

    def cell_for(place):
        lat, lon = to_latlon(place.center)
        best, best_d = None, None
        for key, cell in city_map.items():
            klat, klon = (float(x) for x in key.split(","))
            d = (klat - lat) ** 2 + (klon - lon) ** 2
            if best_d is None or d < best_d:
                best, best_d = cell, d
        return best

    home = device.user_world.places["home"][0]
    office = device.user_world.places["office"][0]
    home_cell = cell_for(home)
    office_cell = cell_for(office)
    home_mean = home_cell["sum"] / home_cell["n"]
    office_mean = office_cell["sum"] / office_cell["n"]
    # Offices are louder than homes in the ambient model.
    assert AMBIENT_DB["office"] > AMBIENT_DB["home"]
    assert office_mean > home_mean


def test_digests_are_compact(sim):
    """On-device aggregation: digests, not raw audio samples."""
    from repro.core.messages import message_size_bytes

    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(noise_map.build_experiment(), [device.jid])
    sim.run(hours=6)
    digests = context.scripts["collect"].namespace["digests"]
    assert digests
    # 6 h of 30 s samples = 720 readings; a handful of digests instead.
    assert len(digests) <= 6 * 4 + 2
    total_bytes = sum(message_size_bytes(d) for d in digests)
    assert total_bytes < 720 * 60  # far below raw-shipping cost


def test_microphone_duty_cycles_with_experiment(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    sensor = device.node.sensor_manager.sensors["audio"]
    assert not sensor.enabled
    context = collector.node.deploy(noise_map.build_experiment(), [device.jid])
    sim.run(hours=1)
    assert sensor.enabled
    assert device.phone.rail.draw_of("microphone") > 0.0
    context.detach_device(device.jid)
    sim.run(hours=0.2)
    assert not sensor.enabled
    assert device.phone.rail.draw_of("microphone") == 0.0
