"""Integration: reboots, script updates, and freeze/thaw recovery.

Section 5.3's failure modes and the fix the paper shipped afterwards.
"""

import pytest

from repro.apps import battery_monitor, localization
from repro.sim import HOUR, MINUTE

from .conftest import install_geolocation


def test_reboot_resumes_collection(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=0.5)
    before = len(context.scripts["collect"].namespace["readings"])
    assert before > 20

    device.phone.reboot()
    sim.run(hours=1)
    after = len(context.scripts["collect"].namespace["readings"])
    # Collection resumed: roughly a full hour of additional samples.
    assert after - before > 40
    # The battery sensor was re-activated after the collector re-synced
    # its subscriptions on the device's presence.
    assert device.node.sensor_manager.sensors["battery"].enabled


def test_reboot_loses_unfrozen_cluster_state(sim):
    """Without freeze/thaw, a reboot mid-dwell truncates the cluster."""
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    install_geolocation(collector, device)
    sim.start()
    sim.assign(collector, [device])
    experiment = localization.build_experiment(with_freeze=False)
    context = collector.node.deploy(experiment, [device.jid])
    # Overnight dwell at home: reboot at 3 AM, well inside the cluster.
    sim.run(hours=3)
    device.phone.reboot()
    sim.run(hours=9)  # past the end of the overnight dwell (~9.3 h)
    database = context.scripts["collect"].namespace["database"]
    assert database
    # The first reported cluster starts *after* the reboot: the earlier
    # half of the night was lost with the script state.
    assert database[0]["entry"] > 3 * HOUR


def test_freeze_thaw_preserves_cluster_across_reboot(sim):
    """With the post-deployment fix, the same reboot loses nothing."""
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    install_geolocation(collector, device)
    sim.start()
    sim.assign(collector, [device])
    experiment = localization.build_experiment(with_freeze=True)
    context = collector.node.deploy(experiment, [device.jid])
    sim.run(hours=3)
    device.phone.reboot()
    sim.run(hours=9)  # past the end of the overnight dwell (~9.3 h)
    database = context.scripts["collect"].namespace["database"]
    assert database
    # Entry time is from the beginning of the night despite the reboot.
    assert database[0]["entry"] < 1 * HOUR


def test_script_update_reloads_fleet_and_preserves_frozen_state(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    install_geolocation(collector, device)
    sim.start()
    sim.assign(collector, [device])
    experiment = localization.build_experiment(with_freeze=True)
    context = collector.node.deploy(experiment, [device.jid])
    sim.run(hours=2)

    dctx = device.node.contexts[localization.EXPERIMENT_ID]
    assert dctx.scripts["clustering"].load_count == 1
    # Researcher pushes a new (identical) version mid-run.
    collector.node.push_script(
        localization.EXPERIMENT_ID,
        "clustering",
        localization.build_clustering_script(with_freeze=True),
    )
    sim.run(hours=10)  # past the end of the overnight dwell (~9.3 h)
    assert dctx.scripts["clustering"].load_count == 2
    database = context.scripts["collect"].namespace["database"]
    assert database
    # Frozen state carried the overnight cluster through the update.
    assert database[0]["entry"] < 1 * HOUR


def test_undeploy_stops_script_and_sensor(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=0.2)
    assert device.node.sensor_manager.sensors["battery"].enabled
    # Tear the whole experiment down on the device.
    context.detach_device(device.jid)
    sim.run(hours=0.2)
    assert localization.EXPERIMENT_ID not in device.node.contexts
    assert not device.node.sensor_manager.sensors["battery"].enabled
