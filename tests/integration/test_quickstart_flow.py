"""Integration: the battery-monitoring experiment (Table 3's workload).

A collector subscribing to ``battery`` activates the sensor on every
device; readings are buffered on-device and ride the e-mail app's radio
sessions in batches of ~5 (one e-mail check per 5 samples).
"""

import pytest

from repro.apps import battery_monitor
from repro.sim import HOUR, MINUTE


def test_battery_collection_batches_on_email_tails(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=1)

    host = context.scripts["collect"]
    readings = host.namespace["readings"]
    assert host.errors == []
    # ~60 samples, minus the final in-flight batch.
    assert 50 <= len(readings) <= 60
    # All tagged with the device identity.
    assert all(r["_device"] == device.jid for r in readings)
    # Batched: roughly one batch per e-mail check (12/h) plus the initial
    # connection flush, far fewer than one transmission per sample.
    assert device.node.batches_sent <= 16
    assert device.node.payloads_sent >= 55
    # Pogo generated (almost) no ramp-ups of its own: the e-mail app's
    # 12 checks plus the initial handshake account for everything.
    email_app = device.email_app()
    assert device.phone.modem.rampup_count <= email_app.check_count + 3


def test_sensor_turns_off_when_collector_stops_listening(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=0.2)
    sensor = device.node.sensor_manager.sensors["battery"]
    assert sensor.enabled

    # The collector script releases its subscription remotely.
    host = context.scripts["collect"]
    subscription = None
    for sub in context.broker.all_subscriptions():
        if sub.channel == "battery":
            subscription = sub
    subscription.release()
    sim.run(hours=0.2)
    assert not sensor.enabled
    count = sensor.sample_count

    # Renew: sensor comes back remotely too.
    subscription.renew()
    sim.run(hours=0.2)
    assert sensor.enabled
    assert sensor.sample_count > count


def test_multiple_devices_fan_in(sim):
    collector = sim.add_collector("alice")
    devices = [sim.add_device(with_email_app=True) for _ in range(3)]
    sim.start()
    sim.assign(collector, devices)
    context = collector.node.deploy(
        battery_monitor.build_experiment(), [d.jid for d in devices]
    )
    sim.run(hours=1)
    readings = context.scripts["collect"].namespace["readings"]
    origins = {r["_device"] for r in readings}
    assert origins == {d.jid for d in devices}
