"""Telemetry plane end to end: determinism, conservation, no-perturbation.

The plane's three contracts, exercised through real fleet runs:

* **Byte determinism** — two same-seed telemetry runs export identical
  timeline JSONL, and the spawned form matches the in-process form.
* **Conservation** — the additive totals of a K-shard timeline equal the
  solo run's totals exactly (same partitioning argument as the merged
  report).
* **No perturbation** — a telemetry-armed run produces the same merged
  report and trace as a dark run of the same seed; sampling is pull-only.
"""

import pytest

from repro.fleet import run_fleet
from repro.obs.timeline import aggregate_totals, timeline_to_jsonl


@pytest.fixture(scope="module")
def runs():
    kwargs = dict(seed=7, hours=0.5)
    return {
        "spawned": run_fleet(6, 3, processes=True, telemetry=True, **kwargs),
        "inproc": run_fleet(6, 3, processes=False, telemetry=True, **kwargs),
        "again": run_fleet(6, 3, processes=False, telemetry=True, **kwargs),
        "solo": run_fleet(6, 1, processes=False, telemetry=True, **kwargs),
        "dark": run_fleet(6, 3, processes=False, **kwargs),
    }


def test_same_seed_timelines_are_byte_identical(runs):
    a = timeline_to_jsonl(runs["inproc"].timeline)
    b = timeline_to_jsonl(runs["again"].timeline)
    assert a != ""
    assert a == b


def test_spawned_timeline_matches_in_process(runs):
    assert timeline_to_jsonl(runs["spawned"].timeline) == timeline_to_jsonl(
        runs["inproc"].timeline
    )


def test_fleet_totals_equal_solo_totals(runs):
    fleet = aggregate_totals(runs["spawned"].timeline)
    solo = aggregate_totals(runs["solo"].timeline)
    assert fleet.pop("shards") == 3
    assert solo.pop("shards") == 1
    assert fleet == solo


def test_telemetry_never_perturbs_the_simulation(runs):
    assert runs["inproc"].report_json == runs["dark"].report_json
    assert runs["inproc"].trace_jsonl == runs["dark"].trace_jsonl
    assert runs["inproc"].barriers == runs["dark"].barriers
    assert runs["inproc"].handoffs == runs["dark"].handoffs
    assert runs["dark"].timeline is None
    assert runs["dark"].health is None


def test_timeline_agrees_with_the_merged_report(runs):
    totals = aggregate_totals(runs["spawned"].timeline)
    report = runs["spawned"].report
    assert totals["events"] == report["events_executed"]
    for key, value in report["server"].items():
        assert totals["server"][key] == value


def test_wall_sections_exist_outside_deterministic_export(runs):
    samples = runs["spawned"].timeline.last_samples()
    assert len(samples) == 3
    for sample in samples:
        wall = sample["wall"]
        assert wall["cpu_s"] >= 0.0
        assert wall["stall_s"] >= 0.0
    health = runs["spawned"].health
    assert health["barriers"] == runs["spawned"].barriers
    assert set(health["shards"]) == {s["shard"] for s in samples}
