"""Integration: the activity-detection application."""

import pytest

from repro.apps import activity_monitor
from repro.sim import HOUR, MINUTE
from repro.world.mobility import TRAVEL


def test_transitions_track_real_movement(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(activity_monitor.build_experiment(), [device.jid])
    # Cover the morning commute (travel) and office arrival.
    sim.run(hours=12)

    transitions = context.scripts["collect"].namespace["transitions"]
    assert transitions, "no transitions detected"
    # Alternating still/moving states, starting from still (overnight).
    states = [t["to"] for t in transitions]
    assert states[0] == "moving"
    for a, b in zip(transitions, transitions[1:]):
        assert a["to"] != b["to"]

    # Transitions bracket the real travel segments (within hysteresis).
    travels = [
        s for s in device.user_world.timeline.segments
        if s.kind == TRAVEL and s.end_ms < 12 * HOUR
    ]
    moving_starts = [t["at"] for t in transitions if t["to"] == "moving"]
    assert len(moving_starts) >= len(travels) / 2

    # The accel sensor duty-cycles on demand.
    sensor = device.node.sensor_manager.sensors["accel"]
    assert sensor.enabled
    assert sensor.sample_count > 1000

    # Data reduction: thousands of windows, a handful of transitions.
    assert len(transitions) < sensor.sample_count / 50

    host = device.node.contexts[activity_monitor.EXPERIMENT_ID].scripts["classifier"]
    assert host.errors == []


def test_hysteresis_debounces(sim):
    """With hysteresis 1 (no debounce) the classifier flaps more."""
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    flappy = activity_monitor.build_experiment(hysteresis_windows=1)
    context = collector.node.deploy(flappy, [device.jid])
    sim.run(hours=12)
    flappy_count = len(context.scripts["collect"].namespace["transitions"])

    sim2 = type(sim)(seed=1234)
    collector2 = sim2.add_collector("alice")
    device2 = sim2.add_device(world_days=1, with_email_app=True)
    sim2.start()
    sim2.assign(collector2, [device2])
    steady = activity_monitor.build_experiment(hysteresis_windows=4)
    context2 = collector2.node.deploy(steady, [device2.jid])
    sim2.run(hours=12)
    steady_count = len(context2.scripts["collect"].namespace["transitions"])
    assert flappy_count >= steady_count
