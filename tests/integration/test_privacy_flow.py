"""Integration: user privacy controls end to end (Sections 3.2/3.3).

"we allow users to select the types of information they wish to share
... these settings can be changed at any time."  Blocking a channel must
stop the data flow to the collector *and* power the sensor down, even
while an experiment is actively subscribed.
"""

import pytest

from repro.apps import battery_monitor
from repro.sim import HOUR, MINUTE


def readings(context):
    return context.scripts["collect"].namespace["readings"]


def test_blocking_channel_mid_experiment_stops_flow_and_sensor(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=0.5)
    sensor = device.node.sensor_manager.sensors["battery"]
    assert sensor.enabled
    flowing = len(readings(context))
    assert flowing > 20

    # The owner revokes sharing from the phone's UI.
    device.node.privacy.block("battery")
    assert not sensor.enabled
    sim.run(hours=1)
    # Nothing new beyond what was already buffered/in flight.
    assert len(readings(context)) <= flowing + 6

    # The owner re-enables sharing; flow resumes without redeployment.
    device.node.privacy.allow("battery")
    assert sensor.enabled
    before = len(readings(context))
    sim.run(hours=0.5)
    assert len(readings(context)) > before + 20


def test_privacy_is_per_device(sim):
    collector = sim.add_collector("alice")
    open_device = sim.add_device(with_email_app=True)
    private_device = sim.add_device(with_email_app=True)
    private_device.node.privacy.block("battery")
    sim.start()
    sim.assign(collector, [open_device, private_device])
    context = collector.node.deploy(
        battery_monitor.build_experiment(), [open_device.jid, private_device.jid]
    )
    sim.run(hours=1)
    origins = {r["_device"] for r in readings(context)}
    assert open_device.jid in origins
    assert private_device.jid not in origins
    # The blocked phone never even sampled: privacy saves its battery.
    assert private_device.node.sensor_manager.sensors["battery"].sample_count == 0


def test_blocking_one_channel_leaves_others_flowing(sim):
    from repro.core.deployment import Experiment

    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    experiment = Experiment(
        "two-channels",
        collector_scripts={
            "collect": (
                "battery = []\n"
                "scans = []\n"
                "subscribe('battery', lambda m: battery.append(m), {'interval': 60000})\n"
                "subscribe('wifi-scan', lambda m: scans.append(m), {'interval': 60000})\n"
            )
        },
    )
    context = collector.node.deploy(experiment, [device.jid])
    device.node.privacy.block("wifi-scan")
    sim.run(hours=1)
    host = context.scripts["collect"]
    assert len(host.namespace["battery"]) > 20
    assert host.namespace["scans"] == []
