"""Integration: AnonyTL tasks compiled and deployed on Pogo.

The paper's Section 5.1 comparison, executed: Listing 1's RogueFinder
task runs against the same simulated world as the handwritten Listing 2
script — and exhibits AnonySense's semantics (reports gated by the
polygon, but sensors never duty-cycled).
"""

import pytest

from repro.anonytl import compile_task, deploy_task, parse_task
from repro.core.middleware import PogoSimulation
from repro.sim import HOUR, MINUTE
from repro.world.geometry import Point, to_latlon


def office_task(device, task_id=25043, expires=None, accept=""):
    office = device.user_world.places["office"][0]
    vertices = [
        to_latlon(office.center.offset(dx, dy))
        for dx, dy in ((-150, -150), (150, -150), (150, 150), (-150, 150))
    ]
    polygon = " ".join(f"(Point {lon} {lat})" for lat, lon in vertices)
    expires_form = f"(Expires {expires})" if expires is not None else ""
    return (
        f"(Task {task_id}) {expires_form}\n"
        f"{accept}\n"
        f"(Report (location SSIDs) (Every 1 Minute)\n"
        f"  (In location (Polygon {polygon})))"
    )


def test_task_reports_only_inside_polygon(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    task = parse_task(office_task(device))
    context = collector.node.deploy(compile_task(task), [device.jid])

    sim.run(hours=3)  # 3 AM: at home
    reports = context.scripts["collect"].namespace["reports"]
    assert reports == []
    # AnonySense semantics: the Wi-Fi sensor is *on* anyway.
    assert device.node.sensor_manager.sensors["wifi-scan"].enabled

    sim.run(hours=9)  # noon: in the office
    reports = context.scripts["collect"].namespace["reports"]
    assert len(reports) > 30
    assert reports[0]["task"] == task.task_id
    assert reports[0]["SSIDs"]
    assert "lat" in reports[0]["location"]

    # No script errors on the device.
    dctx = device.node.contexts[task.experiment_id]
    assert dctx.scripts["task"].errors == []


def test_accept_predicate_selects_devices(sim):
    collector = sim.add_collector("alice")
    professor = sim.add_device(with_email_app=True)
    student = sim.add_device(with_email_app=True)
    sim.admin.devices[professor.jid].attributes["carrier"] = "professor"
    sim.admin.devices[student.jid].attributes["carrier"] = "student"
    sim.start()

    task = parse_task(
        "(Task 7)\n(Accept (= @carrier 'professor'))\n"
        "(Report (SSIDs) (Every 1 Minute))"
    )
    context, accepted = deploy_task(collector.node, sim.admin, task)
    assert accepted == [professor.jid]
    sim.run(hours=0.5)
    assert task.experiment_id in professor.node.contexts
    assert task.experiment_id not in student.node.contexts


def test_expiry_tears_task_down(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    task = parse_task(
        "(Task 8) (Expires 3600)\n(Report (SSIDs) (Every 1 Minute))"
    )
    context, accepted = deploy_task(collector.node, sim.admin, task, now_unix_s=0.0)
    sim.run(hours=0.5)
    assert task.experiment_id in device.node.contexts
    sensor = device.node.sensor_manager.sensors["wifi-scan"]
    assert sensor.enabled
    sim.run(hours=1)  # expiry at t = 1 h
    assert task.experiment_id not in collector.node.contexts
    sim.run(hours=0.2)
    assert task.experiment_id not in device.node.contexts
    assert not sensor.enabled


def test_unconditional_report_streams_everywhere(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    task = parse_task("(Task 11)\n(Report (location) (Every 5 Minutes))")
    context = collector.node.deploy(compile_task(task), [device.jid])
    sim.run(hours=2)
    reports = context.scripts["collect"].namespace["reports"]
    assert len(reports) >= 20
    assert all("SSIDs" not in r for r in reports)
