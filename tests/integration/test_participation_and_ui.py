"""Integration: participation tracking (Section 3.3) and the owner UI."""

import pytest

from repro.apps import battery_monitor
from repro.core.deployment import Experiment
from repro.core.participation import ParticipationTracker
from repro.core.middleware import PogoSimulation
from repro.sim import HOUR, MINUTE


def test_participation_tracks_online_time_and_traffic():
    sim = PogoSimulation(seed=41)
    tracker = ParticipationTracker(sim.kernel, sim.server)
    collector = sim.add_collector("alice")
    active = sim.add_device(with_email_app=True)
    offline = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [active, offline])
    collector.node.deploy(battery_monitor.build_experiment(), [active.jid, offline.jid])
    sim.run(hours=0.5)
    # The second phone loses all connectivity halfway through.
    offline.phone.set_cell_coverage(False)
    sim.run(hours=1.5)

    active_hours = tracker.online_hours(active.jid)
    offline_hours = tracker.online_hours(offline.jid)
    assert active_hours == pytest.approx(2.0, abs=0.1)
    assert offline_hours < 0.8

    active_record = tracker.records[active.jid]
    assert active_record.stanzas > 10
    assert active_record.bytes > 1000

    # Rewards rank the contributing device first.
    assert tracker.reward_for(active.jid) > tracker.reward_for(offline.jid) >= 0.0


def test_participation_report_is_pseudonymous():
    sim = PogoSimulation(seed=42)
    tracker = ParticipationTracker(sim.kernel, sim.server)
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=1)
    report = tracker.report()
    assert device.jid in report
    assert "alice" not in report  # researchers are not listed
    assert "reward" in report


def test_researcher_traffic_not_counted():
    sim = PogoSimulation(seed=43)
    tracker = ParticipationTracker(sim.kernel, sim.server)
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=0.5)
    assert collector.jid not in tracker.records


NON_AUTOSTART = """
setDescription('opt-in diagnostics')
setAutoStart(False)

ticks = []

def tick():
    ticks.append(1)
    setTimeout(tick, 60 * 1000)

def start():
    tick()
"""


def test_ui_lists_scripts_and_starts_non_autostart(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    experiment = Experiment("diag", device_scripts={"diagnostics": NON_AUTOSTART})
    collector.node.deploy(experiment, [device.jid])
    sim.run(hours=0.2)

    (row,) = device.node.script_status()
    assert row["experiment"] == "diag"
    assert row["description"] == "opt-in diagnostics"
    assert row["autostart"] is False
    host = device.node.contexts["diag"].scripts["diagnostics"]
    assert host.namespace["ticks"] == []  # not started

    # The owner taps "start" in the UI.
    device.node.start_script("diag", "diagnostics")
    sim.run(hours=0.2)
    assert len(host.namespace["ticks"]) >= 10

    # And stops it again.
    device.node.stop_script("diag", "diagnostics")
    count = len(host.namespace["ticks"])
    sim.run(hours=0.2)
    assert len(host.namespace["ticks"]) == count
