"""Integration: device sharing and experiment isolation (Section 3.1).

"researchers share devices between them and multiple sensing applications
run concurrently on each device" — contexts sandbox the experiments, and
the sensor manager serves the union of their demand.
"""

import pytest

from repro.apps import battery_monitor
from repro.core.deployment import Experiment
from repro.sim import HOUR, MINUTE

PUBLISHER = """
counter = [0]

def tick():
    counter[0] += 1
    publish('heartbeat', {'n': counter[0]})
    setTimeout(tick, 60 * 1000)

def start():
    tick()
"""

EAVESDROPPER = """
overheard = []
subscribe('heartbeat', lambda m: overheard.append(m))
"""


def test_two_experiments_isolated_on_one_device(sim):
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])

    exp_a = Experiment("exp-a", device_scripts={"publisher": PUBLISHER})
    exp_b = Experiment("exp-b", device_scripts={"eavesdropper": EAVESDROPPER})
    collector.node.deploy(exp_a, [device.jid])
    collector.node.deploy(exp_b, [device.jid])
    sim.run(hours=1)

    ctx_a = device.node.contexts["exp-a"]
    ctx_b = device.node.contexts["exp-b"]
    # The publisher ran...
    assert ctx_a.scripts["publisher"].namespace["counter"][0] >= 50
    # ...but the other experiment's script heard nothing: contexts are
    # sandboxes ("scripts can only communicate within the same
    # experiment", Section 4.2).
    assert ctx_b.scripts["eavesdropper"].namespace["overheard"] == []


def test_two_researchers_share_one_device(sim):
    alice = sim.add_collector("alice")
    bob = sim.add_collector("bob")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(alice, [device])
    sim.assign(bob, [device])

    ctx_alice = alice.node.deploy(battery_monitor.build_experiment(), [device.jid])
    bob_exp = Experiment(
        "bob-battery",
        collector_scripts={"collect": battery_monitor.build_collect_script(interval_ms=120_000)},
    )
    ctx_bob = bob.node.deploy(bob_exp, [device.jid])
    sim.run(hours=1)

    alice_readings = ctx_alice.scripts["collect"].namespace["readings"]
    bob_readings = ctx_bob.scripts["collect"].namespace["readings"]
    # Both researchers receive data from the shared device.
    assert len(alice_readings) >= 50
    assert len(bob_readings) >= 25
    # One battery sensor served both subscriptions at the highest rate.
    sensor = device.node.sensor_manager.sensors["battery"]
    assert sensor.interval_ms == 60_000.0


def test_device_pool_request_and_deploy(sim):
    """The administrator's brokering workflow end to end."""
    collector = sim.add_collector("alice")
    devices = [sim.add_device(with_email_app=True) for _ in range(5)]
    sim.start()
    chosen = sim.admin.request_devices(collector.jid, 3)
    assert len(chosen) == 3
    context = collector.node.deploy(battery_monitor.build_experiment(), chosen)
    sim.run(hours=0.5)
    readings = context.scripts["collect"].namespace["readings"]
    assert {r["_device"] for r in readings} == set(chosen)
