"""Golden-gated conformance suite for the scenario engine.

Every preset must satisfy three guarantees, and this module is the gate:

* **Byte determinism** — two seeded runs serialize the canonical report
  to identical bytes;
* **Clean under the monitor** — zero invariant violations on every
  preset at every scale;
* **Placement independence** — the sharded run's report is byte-identical
  to the solo run's.

Two presets are additionally pinned against golden masters in
``tests/golden/``.  When a legitimate behaviour change lands, regenerate
them explicitly and say so in the commit::

    python -m repro scenarios --preset commuter-surge --scale 0.25 \
        --report tests/golden/scenario_commuter_surge_seed7.json
    python -m repro scenarios --preset contact-tracing --scale 0.25 \
        --report tests/golden/scenario_contact_tracing_seed7.json

Day-length presets (``metro-day``) run only with
``REPRO_SCENARIO_LONG=1`` so tier-1 stays fast.
"""

import os
import pathlib

import pytest

from repro.scenarios import (
    LONG_PRESETS,
    build_preset,
    preset_names,
    run_scenario_spec,
)

pytestmark = pytest.mark.scenario

GOLDEN = pathlib.Path(__file__).parent.parent / "golden"
SCALE = 0.25
SHORT_PRESETS = [name for name in preset_names() if name not in LONG_PRESETS]


def _run(name, **kwargs):
    return run_scenario_spec(build_preset(name, scale=SCALE), **kwargs)


class TestPresetConformance:
    @pytest.mark.parametrize("name", SHORT_PRESETS)
    def test_two_runs_are_byte_identical_and_violation_free(self, name):
        first = _run(name)
        second = _run(name)
        assert first.report_json == second.report_json
        assert first.report["invariants"]["violation_count"] == 0
        assert first.report["invariants"]["violations"] == []

    @pytest.mark.parametrize("name", SHORT_PRESETS)
    def test_sharded_report_matches_solo(self, name):
        solo = _run(name)
        sharded = _run(name, shards=2, processes=False)
        assert sharded.report_json == solo.report_json

    def test_campaigns_actually_collected_data(self):
        report = _run("contact-tracing").report
        assert report["campaigns"]["battery-monitor"]["readings"] > 0
        assert report["campaigns"]["contact-tracing"]["beacons"] > 0
        report = _run("noise-map-campaign").report
        assert report["campaigns"]["noise-map"]["cells"] > 0

    def test_surge_rows_are_populated(self):
        report = _run("stadium-evening").report
        assert report["surges"]
        for row in report["surges"]:
            assert 0 <= row["contended"] <= row["attendees"] <= report["devices"]


class TestGoldenMasters:
    @pytest.mark.parametrize(
        "name, golden",
        [
            ("commuter-surge", "scenario_commuter_surge_seed7.json"),
            ("contact-tracing", "scenario_contact_tracing_seed7.json"),
        ],
    )
    def test_report_matches_committed_golden(self, name, golden):
        expected = (GOLDEN / golden).read_text(encoding="utf-8")
        assert _run(name).report_json == expected


class TestTelemetryAndChaosComposition:
    def test_telemetry_never_perturbs_the_report(self):
        plain = _run("contact-tracing")
        sampled = _run("contact-tracing", telemetry=True)
        assert sampled.report_json == plain.report_json
        assert sampled.fleet.timeline is not None
        assert sampled.fleet.timeline.frames
        # The scenario monitor is attached, so samples carry its verdict.
        last = sampled.fleet.timeline.last_samples()
        assert any(sample.get("invariants") is not None for sample in last)

    def test_chaos_engine_composes_with_a_scenario_spec(self, chaos_run):
        from repro.chaos import report_json

        spec = build_preset("contact-tracing", scale=SCALE)
        first = chaos_run("flaky-3g", spec=spec)
        second = chaos_run("flaky-3g", spec=spec)
        assert report_json(first) == report_json(second)
        assert first["workload"] == spec.name
        assert first["devices"] == spec.devices
        assert first["violation_count"] == 0

    def test_legacy_chaos_report_has_no_workload_key(self, chaos_run):
        report = chaos_run("flaky-3g")
        assert "workload" not in report


@pytest.mark.skipif(
    not os.environ.get("REPRO_SCENARIO_LONG"),
    reason="day-length preset; set REPRO_SCENARIO_LONG=1 to run",
)
class TestDayLengthPresets:
    @pytest.mark.parametrize("name", sorted(LONG_PRESETS))
    def test_day_length_preset_conforms(self, name):
        first = run_scenario_spec(build_preset(name, scale=SCALE))
        second = run_scenario_spec(build_preset(name, scale=SCALE))
        assert first.report_json == second.report_json
        assert first.report["invariants"]["violation_count"] == 0
        sharded = run_scenario_spec(
            build_preset(name, scale=SCALE), shards=4, processes=False
        )
        assert sharded.report_json == first.report_json
