"""Integration: collector→device publishing (the reverse direction).

Section 4.2's broker synchronization is symmetric: device scripts can
subscribe to channels the *collector* publishes on, so researchers can
steer running experiments without redeploying — e.g. retune a sampling
parameter fleet-wide.  The multi broker forwards a collector publish
only to devices whose synchronized table shows interest.
"""

import pytest

from repro.core.deployment import Experiment
from repro.sim import HOUR, MINUTE

DEVICE_SCRIPT = """
setDescription('steerable sampler')

config = {'divisor': 1}
counter = [0]
kept = []


def handle_battery(msg):
    counter[0] += 1
    if counter[0] % config['divisor'] == 0:
        kept.append(msg)
        publish('kept-readings', msg)


def handle_command(msg):
    config['divisor'] = msg['divisor']


subscribe('battery', handle_battery, {'interval': 60 * 1000})
subscribe('sampler-config', handle_command)
"""

COLLECT_SCRIPT = """
received = []
subscribe('kept-readings', lambda m: received.append(m))
"""


def deploy(sim, n_devices=2):
    collector = sim.add_collector("alice")
    devices = [sim.add_device(with_email_app=True) for _ in range(n_devices)]
    sim.start()
    sim.assign(collector, devices)
    experiment = Experiment(
        "steerable",
        device_scripts={"sampler": DEVICE_SCRIPT},
        collector_scripts={"collect": COLLECT_SCRIPT},
    )
    context = collector.node.deploy(experiment, [d.jid for d in devices])
    return collector, devices, context


def test_collector_publish_steers_device_scripts(sim):
    collector, devices, context = deploy(sim)
    sim.run(hours=1)
    received_before = len(context.scripts["collect"].namespace["received"])
    assert received_before > 80  # 2 devices × ~55 (divisor 1)

    # Researcher throttles the fleet to every 5th reading, live.
    context.publish_from_script(None, "sampler-config", {"divisor": 5})
    sim.run(hours=1)
    received_after = len(context.scripts["collect"].namespace["received"])
    delta = received_after - received_before
    # ~2 devices × 60 samples / 5 ≈ 24 (±batching slack).
    assert delta < 40

    # The command really reached the device scripts.
    for device in devices:
        host = device.node.contexts["steerable"].scripts["sampler"]
        assert host.namespace["config"]["divisor"] == 5
        assert host.errors == []


def test_command_fans_out_only_to_interested_devices(sim):
    collector, devices, context = deploy(sim)
    # Add a device WITHOUT the sampler script (different experiment mix).
    bystander = sim.add_device(with_email_app=True)
    sim.assign(collector, [bystander])
    other = Experiment("other", collector_scripts={"c": "x = 1\n"})
    collector.node.deploy(other, [bystander.jid])
    sim.run(hours=0.5)

    context.publish_from_script(None, "sampler-config", {"divisor": 2})
    sim.run(hours=0.1)
    # The two subscribed devices received and applied the command...
    for device in devices:
        host = device.node.contexts["steerable"].scripts["sampler"]
        assert host.namespace["config"]["divisor"] == 2
    # ...while the bystander is not part of the experiment at all: no
    # context, and the multi broker's fan-out set never included it.
    assert "steerable" not in bystander.node.contexts
    assert bystander.jid not in context.links


def test_command_survives_device_reboot(sim):
    collector, devices, context = deploy(sim, n_devices=1)
    device = devices[0]
    sim.run(hours=0.5)
    device.phone.reboot()
    sim.run(hours=0.5)
    # After the reboot + presence re-sync, commands still arrive.
    context.publish_from_script(None, "sampler-config", {"divisor": 7})
    sim.run(hours=0.2)
    host = device.node.contexts["steerable"].scripts["sampler"]
    assert host.namespace["config"]["divisor"] == 7
