"""Cross-instance isolation and snapshot determinism, end to end.

Two regression families the Shard refactor must hold forever:

* **Interleaved isolation** — two seeded simulations stepped in lockstep
  inside one process each produce byte-identical artifacts to the same
  simulation run alone.  Any module-level mutable state (id counters,
  interned caches, swapped classes) breaks this immediately.
* **Snapshot determinism** — a chaos campaign pickled and restored at
  the midpoint of its fault window finishes with a byte-identical chaos
  report and span trace to an uninterrupted run.
"""

from repro.analysis.export import spans_to_jsonl
from repro.apps import battery_monitor
from repro.chaos.scenarios import report_json, run_scenario
from repro.core.middleware import PogoSimulation


def _build(seed, devices=3):
    sim = PogoSimulation(seed=seed)
    collector = sim.add_collector("iso")
    fleet = [sim.add_device(with_email_app=True) for _ in range(devices)]
    sim.start()
    sim.assign(collector, fleet)
    collector.node.deploy(battery_monitor.build_experiment(), [d.jid for d in fleet])
    return sim


def _artifacts(sim):
    return sim.fleet_report_json(), spans_to_jsonl(sim.kernel.spans) or ""


class TestInterleavedIsolation:
    def test_two_interleaved_sims_match_solo_runs(self):
        solo7 = _build(7)
        solo7.run(minutes=45)
        expected7 = _artifacts(solo7)
        solo8 = _build(8)
        solo8.run(minutes=45)
        expected8 = _artifacts(solo8)

        # Same two fleets, built and stepped strictly interleaved in the
        # same process.
        a = _build(7)
        b = _build(8)
        for _ in range(45):
            a.run(minutes=1)
            b.run(minutes=1)
        assert _artifacts(a) == expected7
        assert _artifacts(b) == expected8

    def test_interleaved_construction_does_not_leak(self):
        # Construction itself interleaved too: enrollment counters,
        # session ids and stream derivations must all be per-shard.
        a = PogoSimulation(seed=7)
        b = PogoSimulation(seed=7)
        ca, cb = a.add_collector("iso"), b.add_collector("iso")
        fa = [a.add_device(with_email_app=True) for _ in range(2)]
        fb = [b.add_device(with_email_app=True) for _ in range(2)]
        for sim, c, f in ((a, ca, fa), (b, cb, fb)):
            sim.start()
            sim.assign(c, f)
            c.node.deploy(battery_monitor.build_experiment(), [d.jid for d in f])
        a.run(minutes=30)
        b.run(minutes=30)
        assert _artifacts(a) == _artifacts(b)


class TestChaosSnapshotDeterminism:
    def test_midpoint_snapshot_restores_byte_identical_campaign(self):
        plain_art, snap_art = {}, {}
        plain = run_scenario("flaky-3g", seed=7, minutes=6, artifacts=plain_art)
        snapped = run_scenario(
            "flaky-3g", seed=7, minutes=6, snapshot_midpoint=True,
            artifacts=snap_art,
        )
        assert report_json(snapped) == report_json(plain)
        assert (
            spans_to_jsonl(snap_art["sim"].kernel.spans)
            == spans_to_jsonl(plain_art["sim"].kernel.spans)
        )

    def test_midpoint_snapshot_with_churn_streams(self):
        # Churn draws from per-device named streams and schedules
        # disruption plans — the random-state-heavy path.
        plain = run_scenario("churn", seed=11, minutes=6)
        snapped = run_scenario("churn", seed=11, minutes=6, snapshot_midpoint=True)
        assert report_json(snapped) == report_json(plain)
