"""Fleet coordinator determinism across real worker processes.

The tentpole claim, end to end: one battery-monitor fleet partitioned
across spawned worker processes produces a merged report byte-identical
to the single-shard run, and the spawned form is byte-identical to the
in-process form of the same coordinator (so the property suite, which
runs in-process for speed, covers the process path too).
"""

import pytest

from repro.fleet import run_fleet


@pytest.fixture(scope="module")
def runs():
    kwargs = dict(seed=7, hours=0.5)
    return {
        "spawned": run_fleet(6, 3, processes=True, **kwargs),
        "inproc": run_fleet(6, 3, processes=False, **kwargs),
        "noring": run_fleet(6, 3, processes=True, shm_ring_bytes=0, **kwargs),
        "solo": run_fleet(6, 1, processes=False, **kwargs),
    }


def test_spawned_merged_report_matches_single_shard(runs):
    assert runs["spawned"].report_json == runs["solo"].report_json
    assert '"events_executed"' in runs["solo"].report_json


def test_spawned_and_in_process_coordination_are_byte_identical(runs):
    assert runs["spawned"].report_json == runs["inproc"].report_json
    assert runs["spawned"].trace_jsonl == runs["inproc"].trace_jsonl
    assert runs["spawned"].barriers == runs["inproc"].barriers
    assert runs["spawned"].handoffs == runs["inproc"].handoffs


def test_cross_shard_traffic_actually_crossed(runs):
    # The equality above would be vacuous if the partition never
    # exchanged anything.
    assert runs["spawned"].handoffs > 0
    assert runs["spawned"].shards == 3
    assert runs["spawned"].trace_jsonl.count("\n") > 50


def test_wire_frames_and_shm_ring_change_no_bytes(runs):
    # The binary handoff frames and the shared-memory result stream are
    # transport only: with the ring disabled (inline pipe fallback) the
    # merged artifacts are byte-identical, and the wire frames crossing
    # the pipes are accounted and far smaller than per-stanza pickles.
    assert runs["noring"].report_json == runs["spawned"].report_json
    assert runs["noring"].trace_jsonl == runs["spawned"].trace_jsonl
    assert runs["noring"].barriers == runs["spawned"].barriers
    assert runs["spawned"].handoff_bytes > 0
    assert runs["inproc"].handoff_bytes == 0  # nothing crosses a pipe


def test_500x4_seed7_merged_report_matches_solo():
    # The PR's acceptance run at reduced duration: the canonical
    # 500-device, 4-shard, seed-7 fleet merged byte-identically to the
    # single-shard reference (the CI fleet-dataplane job runs the full
    # hour via the CLI with cmp).
    kwargs = dict(seed=7, hours=0.05)
    sharded = run_fleet(500, 4, processes=True, **kwargs)
    solo = run_fleet(500, 1, processes=False, **kwargs)
    assert sharded.report_json == solo.report_json
    assert sharded.handoffs > 0


def test_merged_counters_are_conserved(runs):
    merged = runs["spawned"].report
    parts = runs["spawned"].shard_reports
    assert merged["events_executed"] == sum(
        part["events_executed"] for part in parts
    )
    for key in merged["server"]:
        assert merged["server"][key] == sum(
            part["server"][key] for part in parts
        )
