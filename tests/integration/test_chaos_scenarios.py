"""Integration: chaos scenarios end to end.

Two claims, both load-bearing for the chaos subsystem's credibility:

1. On the *current* middleware, every preset campaign ends with zero
   invariant violations — the pipeline's guarantees survive drops,
   duplication, reordering, partitions, server bounces and churn.
2. The monitor is not a rubber stamp: a deliberately broken middleware
   (retransmission skipped, an unacked envelope forgotten) is caught,
   and the report names the offending envelopes' trace ids.
"""

import pytest

from repro.chaos import SCENARIOS, run_scenario


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_preset_holds_all_invariants(name, chaos_run):
    report = chaos_run(name)
    assert report["violations"] == [], "\n".join(
        str(v) for v in report["violations"]
    )
    # The campaign must actually have done something (faults or traffic
    # shaping), and the workload must have produced data despite it.
    assert sum(report["chaos"].values()) > 0
    assert report["pipeline"]["readings"] > 0


def test_faults_actually_bite_at_default_scale():
    """At full preset length the flaky link really loses stanzas and the
    reliable layer really recovers them (delivered despite drops)."""
    report = run_scenario("flaky-3g", seed=7)
    assert report["chaos"]["chaos.dropped"] > 0
    assert report["pipeline"]["delivered"] > 0
    assert report["violations"] == []


def test_skip_retransmit_bug_is_caught_with_trace_ids(chaos_run):
    report = chaos_run("flaky-3g", inject_bug="skip-retransmit", minutes=12.0, devices=3)
    assert report["violation_count"] > 0
    quiescence = [v for v in report["violations"] if v["invariant"] == "quiescence"]
    assert quiescence, report["violations"]
    assert any(v["trace_ids"] for v in quiescence), (
        "the report must name the stuck envelopes' trace ids"
    )


def test_forget_unacked_bug_is_caught(chaos_run):
    report = chaos_run("flaky-3g", inject_bug="forget-unacked", minutes=12.0, devices=3)
    assert report["violation_count"] > 0
    kinds = {v["invariant"] for v in report["violations"]}
    assert kinds & {"envelope-conservation", "quiescence"}, report["violations"]


def test_unknown_scenario_and_bug_rejected():
    with pytest.raises(ValueError):
        run_scenario("no-such-scenario")
    with pytest.raises(ValueError):
        run_scenario("flaky-3g", minutes=1.0, devices=1, inject_bug="no-such-bug")
