"""Shared fixtures for integration tests."""

import pytest

from repro.core.middleware import PogoSimulation
from repro.core.services import GeolocationBridge
from repro.world.geolocation import GeolocationService


@pytest.fixture
def sim():
    return PogoSimulation(seed=1234)


def install_geolocation(collector, device):
    """Register every AP of a device's world with a geolocation bridge."""
    service = GeolocationService()
    for group in device.user_world.places.values():
        for place in group:
            service.register_all(place.access_points)
    collector.node.add_service(GeolocationBridge(service))
    return service
