"""Integration: the whole simulation is reproducible.

Same seed → same world, same scans, same clusters, same energy — across
repeated runs in one process.  This guards against the classic sources of
sneaky nondeterminism: process-global id counters, set iteration order,
and shared RNG streams.
"""

import pytest

from repro.apps import localization
from repro.chaos import report_json, run_scenario
from repro.core.middleware import PogoSimulation
from repro.sim import HOUR


def run_once(seed):
    sim = PogoSimulation(seed=seed)
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(localization.build_experiment(), [device.jid])
    sim.run(hours=20)
    dctx = device.node.contexts[localization.EXPERIMENT_ID]
    dbscan = dctx.scripts["clustering"].namespace["dbscan"]
    return {
        "clusters": [(c["entry"], c["exit"], c["samples"]) for c in dbscan.closed],
        "energy": round(device.phone.energy_joules, 6),
        "events": sim.kernel.events_executed,
        "rampups": device.phone.modem.rampup_count,
        "jid": device.jid,
    }


def test_same_seed_reproduces_everything():
    first = run_once(99)
    second = run_once(99)
    assert first == second
    assert first["clusters"], "run produced no clusters to compare"


def test_different_seeds_differ():
    assert run_once(99)["clusters"] != run_once(100)["clusters"]


def test_freeze_variant_matches_plain_when_uninterrupted():
    """freeze/thaw is pure checkpointing: absent interruptions it must
    not change the algorithm's output at all."""

    def clusters(with_freeze):
        sim = PogoSimulation(seed=7)
        collector = sim.add_collector("alice")
        device = sim.add_device(world_days=1, with_email_app=True)
        sim.start()
        sim.assign(collector, [device])
        collector.node.deploy(
            localization.build_experiment(with_freeze=with_freeze), [device.jid]
        )
        sim.run(hours=20)
        dctx = device.node.contexts[localization.EXPERIMENT_ID]
        dbscan = dctx.scripts["clustering"].namespace["dbscan"]
        return [(c["entry"], c["exit"], c["samples"]) for c in dbscan.closed]

    assert clusters(False) == clusters(True)


def test_chaos_scenario_replays_byte_identically():
    """Same scenario + seed → byte-identical invariant report.  This is
    the property that makes a failing chaos run shippable as two small
    numbers (scenario, seed) instead of a flake."""
    first = report_json(run_scenario("mixed", seed=42, minutes=8.0, devices=2))
    second = report_json(run_scenario("mixed", seed=42, minutes=8.0, devices=2))
    assert first == second


def test_chaos_reports_differ_across_seeds():
    a = run_scenario("flaky-3g", seed=1, minutes=6.0, devices=2)
    b = run_scenario("flaky-3g", seed=2, minutes=6.0, devices=2)
    assert a["chaos"] != b["chaos"]
