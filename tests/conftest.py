"""Repo-wide fixtures: the chaos harness.

``chaos_run`` runs a named chaos scenario with small, test-friendly
defaults and returns its deterministic report; tests override any knob
by keyword (``chaos_run("flaky-3g", seed=11, inject_bug=...)``).

The same harness drives the scenario-engine composition: pass a
:class:`~repro.scenarios.spec.ScenarioSpec` via ``spec=`` and the chaos
fleet is replaced by that scenario's compiled shard, so chaos and
scenario integration tests share one entry point.  ``devices`` defaults
only on the legacy path — with a spec the device count is the spec's.
"""

import pytest

from repro.chaos import run_scenario


@pytest.fixture
def chaos_run():
    def run(name, spec=None, **kwargs):
        kwargs.setdefault("seed", 7)
        kwargs.setdefault("minutes", 6.0)
        if spec is None:
            kwargs.setdefault("devices", 2)
        return run_scenario(name, spec=spec, **kwargs)

    return run
