"""Repo-wide fixtures: the chaos harness.

``chaos_run`` runs a named chaos scenario with small, test-friendly
defaults and returns its deterministic report; tests override any knob
by keyword (``chaos_run("flaky-3g", seed=11, inject_bug=...)``).
"""

import pytest

from repro.chaos import run_scenario


@pytest.fixture
def chaos_run():
    def run(name, **kwargs):
        kwargs.setdefault("seed", 7)
        kwargs.setdefault("minutes", 6.0)
        kwargs.setdefault("devices", 2)
        return run_scenario(name, **kwargs)

    return run
