"""Property-based tests for the clustering pipeline (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.clustering import (
    WindowedDBSCAN,
    cluster_stream,
    cosine_coefficient,
    mean_vector,
    nearest_to_mean,
)

bssids = st.text(alphabet="0123456789abcdef:", min_size=2, max_size=17)
vectors = st.dictionaries(bssids, st.floats(0.01, 1.0), min_size=0, max_size=8)
nonempty_vectors = st.dictionaries(bssids, st.floats(0.01, 1.0), min_size=1, max_size=8)


@given(vectors, vectors)
@settings(max_examples=300)
def test_cosine_bounded_and_symmetric(a, b):
    sim = cosine_coefficient(a, b)
    assert 0.0 <= sim <= 1.0 + 1e-9
    # Symmetric up to float summation order.
    assert math.isclose(sim, cosine_coefficient(b, a), rel_tol=1e-9, abs_tol=1e-12)


@given(nonempty_vectors)
@settings(max_examples=200)
def test_cosine_self_similarity_is_one(v):
    assert math.isclose(cosine_coefficient(v, v), 1.0, rel_tol=1e-9)


@given(nonempty_vectors, st.floats(0.1, 10.0))
@settings(max_examples=200)
def test_cosine_scale_invariant(v, scale):
    scaled = {k: val * scale for k, val in v.items()}
    assert math.isclose(
        cosine_coefficient(v, scaled), 1.0, rel_tol=1e-9
    )


@given(st.lists(nonempty_vectors, min_size=1, max_size=10))
@settings(max_examples=200)
def test_mean_vector_bounds(vs):
    mean = mean_vector(vs)
    for key, value in mean.items():
        per_key = [v.get(key, 0.0) for v in vs]
        assert min(per_key) - 1e-9 <= value <= max(per_key) + 1e-9


@given(st.lists(nonempty_vectors, min_size=1, max_size=10))
@settings(max_examples=200)
def test_nearest_to_mean_valid_index(vs):
    index = nearest_to_mean(vs)
    assert 0 <= index < len(vs)


@st.composite
def scan_traces(draw):
    """A random walk between a handful of synthetic 'places'."""
    place_count = draw(st.integers(1, 4))
    places = []
    for p in range(place_count):
        keys = [f"p{p}-ap{i}" for i in range(draw(st.integers(2, 6)))]
        places.append({k: draw(st.floats(0.2, 1.0)) for k in keys})
    samples = []
    t = 0.0
    for _ in range(draw(st.integers(1, 8))):
        place = places[draw(st.integers(0, place_count - 1))]
        for _ in range(draw(st.integers(1, 40))):
            noisy = {
                k: max(0.01, min(1.0, v + draw(st.floats(-0.05, 0.05))))
                for k, v in place.items()
            }
            samples.append((t, noisy))
            t += 60_000.0
        # Some travel noise between places.
        for i in range(draw(st.integers(0, 5))):
            samples.append((t, {f"street-{t}-{i}": 0.3}))
            t += 60_000.0
    return samples


@given(scan_traces())
@settings(max_examples=60, deadline=None)
def test_cluster_invariants(samples):
    clusters = cluster_stream(samples, min_pts=5, window=60)
    previous_exit = -1.0
    for cluster in clusters:
        # Temporal sanity.
        assert cluster.entry_ms <= cluster.exit_ms
        assert cluster.samples >= 5
        # Clusters are emitted in order and never overlap.
        assert cluster.entry_ms >= previous_exit - 1e-9
        previous_exit = cluster.exit_ms
        # The representative is a plausible scan vector.
        assert cluster.representative
        for value in cluster.representative.values():
            assert 0.0 <= value <= 1.0


@given(scan_traces(), st.integers(1, 100))
@settings(max_examples=40, deadline=None)
def test_freeze_restore_equals_uninterrupted(samples, split_raw):
    """Splitting the stream at any point and carrying state across via
    state()/restore() yields exactly the uninterrupted result."""
    split = split_raw % (len(samples) + 1)
    continuous = WindowedDBSCAN()
    for t, v in samples:
        continuous.add(t, v)
    continuous.flush()

    first = WindowedDBSCAN()
    for t, v in samples[:split]:
        first.add(t, v)
    second = WindowedDBSCAN()
    second.restore(first.state())
    closed = list(first.closed)
    second.on_cluster = closed.append
    for t, v in samples[split:]:
        second.add(t, v)
    second.flush()

    assert [c["entry"] for c in closed] == [c["entry"] for c in continuous.closed]
    assert [c["exit"] for c in closed] == [c["exit"] for c in continuous.closed]
