"""Property-based tests for messages, acks and the kernel (hypothesis)."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import copy_message, from_json, message_size_bytes, to_json
from repro.net.acks import ReliableLink
from repro.sim import Kernel

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
json_trees = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


@given(json_trees)
@settings(max_examples=300)
def test_json_roundtrip_equals_copy(tree):
    assert from_json(to_json(tree)) == copy_message(tree)


@given(json_trees)
@settings(max_examples=300)
def test_size_matches_encoding(tree):
    assert message_size_bytes(tree) == len(to_json(tree).encode("utf-8"))


@given(json_trees)
@settings(max_examples=200)
def test_copy_isolation(tree):
    clone = copy_message(tree)
    assert json.dumps(clone, sort_keys=True) == json.dumps(
        copy_message(tree), sort_keys=True
    )


# ---------------------------------------------------------------------------
# Reliable link under arbitrary loss
# ---------------------------------------------------------------------------


@given(
    st.lists(st.booleans(), min_size=1, max_size=40),  # per-send: delivered?
)
@settings(max_examples=150, deadline=None)
def test_acks_recover_any_loss_pattern(delivery_pattern):
    """Whatever subset of first transmissions is lost, periodic resends
    deliver everything exactly once, in order."""
    kernel = Kernel()
    delivered = []
    drop_next = {"flag": False}

    def send_a_to_b(stanza):
        if not drop_next["flag"]:
            kernel.schedule(1.0, b.on_raw, stanza)

    def send_b_to_a(stanza):
        kernel.schedule(1.0, a.on_raw, stanza)

    def ack_from_b():
        ack = b.make_ack()
        if ack is not None:
            send_b_to_a(ack)

    a = ReliableLink(kernel, "b", send_a_to_b, lambda p: None, lambda: None)
    b = ReliableLink(kernel, "a", send_b_to_a, delivered.append, ack_from_b)

    for n, deliver_first_try in enumerate(delivery_pattern):
        drop_next["flag"] = not deliver_first_try
        a.send({"n": n})
        kernel.run_until(kernel.now + 10.0)
    drop_next["flag"] = False

    # Drive resends until quiescent.
    for _ in range(len(delivery_pattern) + 2):
        kernel.run_until(kernel.now + 60_000.0)
        a.resend_unacked()
    kernel.run_until(kernel.now + 10_000.0)

    assert [m["n"] for m in delivered] == list(range(len(delivery_pattern)))
    assert a.unacked_count == 0


# ---------------------------------------------------------------------------
# Kernel ordering
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=50))
@settings(max_examples=200)
def test_kernel_fires_in_time_order_regardless_of_insertion(delays):
    kernel = Kernel()
    fired = []
    for delay in delays:
        kernel.schedule(delay, lambda d=delay: fired.append(d))
    kernel.run()
    assert fired == sorted(fired)
    assert kernel.events_executed == len(delays)
