"""Property-based tests: ReliableLink under chaos-shaped schedules.

The chaos engine's whole premise is that drop/dup/reorder schedules at
the wire level never break the reliable layer's contract.  These
properties state that contract directly and let hypothesis hunt for a
schedule that breaks it:

* exactly-once, in-order delivery for any per-transmission fate drawn
  from {deliver, drop, duplicate, hold-for-reordering};
* cumulative acks emitted by a receiver never regress;
* abandoning expired envelopes advances ``base`` so the receiver skips
  the gap and the tail of the stream still delivers in order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.acks import LinkObserver, ReliableLink
from repro.sim import Kernel

DELIVER, DROP, DUP, HOLD = range(4)

#: A fate for each (re)transmission the wire carries.
fates = st.lists(
    st.sampled_from([DELIVER, DROP, DUP, HOLD]), min_size=1, max_size=60
)


class AckTap(LinkObserver):
    """Records every cumulative ack a link emits."""

    def __init__(self):
        self.emitted = []

    def on_ack_emitted(self, link, ack):
        self.emitted.append(ack)


class ChaosWire:
    """A one-directional wire applying a fate schedule per transmission.

    Held stanzas are released after later traffic (the reordering case);
    once the schedule is exhausted, the wire turns perfect so the
    resend machinery can finish the job — chaos then heal, exactly like
    a scenario's settle phase.
    """

    def __init__(self, schedule):
        self.kernel = Kernel()
        self.schedule = list(schedule)
        self.cursor = 0
        self.delivered = []
        self.sender = ReliableLink(
            self.kernel, "rx", self._carry, lambda payload: None,
        )
        self.receiver = ReliableLink(
            self.kernel, "tx", self._carry_back, self.delivered.append,
            request_ack_send=self._send_ack,
        )
        self.receiver_tap = AckTap()
        self.receiver.observer = self.receiver_tap

    def _fate(self):
        if self.cursor >= len(self.schedule):
            return DELIVER
        fate = self.schedule[self.cursor]
        self.cursor += 1
        return fate

    def _carry(self, stanza):
        fate = self._fate()
        if fate == DROP:
            return
        self.kernel.schedule(1.0, self.receiver.on_raw, stanza)
        if fate == DUP:
            self.kernel.schedule(1.0, self.receiver.on_raw, stanza)
        elif fate == HOLD:
            # A second copy arriving much later: the receiver must treat
            # the overtaken copy as a duplicate, never redeliver.
            self.kernel.schedule(5_000.0, self.receiver.on_raw, stanza)

    def _carry_back(self, stanza):
        self.kernel.schedule(1.0, self.sender.on_raw, stanza)

    def _send_ack(self):
        ack = self.receiver.make_ack()
        if ack is not None:
            self._carry_back(ack)

    def run(self, ms=10.0):
        self.kernel.run_until(self.kernel.now + ms)

    def settle(self, rounds=6):
        for _ in range(rounds):
            self.run(40_000.0)
            self.sender.resend_unacked()
            self.run(10_000.0)


@given(fates, st.integers(1, 20))
@settings(max_examples=150, deadline=None)
def test_exactly_once_in_order_under_any_schedule(schedule, n):
    wire = ChaosWire(schedule)
    for i in range(n):
        wire.sender.send({"n": i})
        wire.run(5.0)
    wire.settle()
    assert [m["n"] for m in wire.delivered] == list(range(n))
    assert wire.sender.unacked_count == 0


@given(fates, st.integers(1, 20))
@settings(max_examples=150, deadline=None)
def test_cumulative_acks_never_regress(schedule, n):
    wire = ChaosWire(schedule)
    for i in range(n):
        wire.sender.send({"n": i})
        wire.run(5.0)
    wire.settle()
    emitted = wire.receiver_tap.emitted
    assert emitted == sorted(emitted)
    assert emitted[-1] == n


@given(
    st.integers(1, 8),   # envelopes lost then abandoned
    st.integers(1, 12),  # envelopes sent after the gap
)
@settings(max_examples=100, deadline=None)
def test_abandoned_gap_advances_base_and_tail_delivers(lost, after):
    wire = ChaosWire([DROP] * lost)
    for i in range(lost):
        wire.sender.send({"n": i})
        wire.run(5.0)
    assert wire.delivered == []
    # Age the unacked envelopes past the expiry: the sender abandons
    # them and advances base, exactly like the 24-hour purge.
    wire.run(100_000.0)
    abandoned = wire.sender.resend_unacked(max_age_ms=50_000.0)
    assert abandoned == 0 and wire.sender.unacked_count == 0
    for i in range(lost, lost + after):
        wire.sender.send({"n": i})
        wire.run(5.0)
    wire.settle()
    # The receiver skipped the abandoned gap and delivered the tail in order.
    assert [m["n"] for m in wire.delivered] == list(range(lost, lost + after))
    assert wire.sender.unacked_count == 0
    emitted = wire.receiver_tap.emitted
    assert emitted == sorted(emitted)
