"""Property tests: ANY valid ScenarioSpec conforms, not just the presets.

Hypothesis draws small random specs (devices, duration, carriers, a
surge with random attendance/contention, a random campaign mix) and
asserts the conformance triple on each: byte-identical replay, zero
invariant violations, and sharded ≡ solo.  Runs are kept tiny (2–4
devices, minutes not hours) so the whole module stays tier-1 fast.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.scenarios import (
    CampaignSpec,
    ScenarioSpec,
    SurgeSpec,
    VenueSpec,
    run_scenario_spec,
)

pytestmark = pytest.mark.scenario

_carriers = st.sampled_from([("KPN",), ("T-Mobile",), ("KPN", "Vodafone")])

_campaigns = st.sampled_from([
    (CampaignSpec("battery-monitor"),),
    (CampaignSpec("noise-map"),),
    (CampaignSpec("battery-monitor"), CampaignSpec("contact-tracing")),
    (CampaignSpec("battery-monitor", subset="even"),
     CampaignSpec("anonytl", carrier="KPN")),
])


@st.composite
def specs(draw):
    hours = draw(st.floats(min_value=0.2, max_value=0.5))
    surges = ()
    if draw(st.booleans()):
        start = draw(st.floats(min_value=0.0, max_value=hours * 0.4))
        end = draw(st.floats(min_value=start + 0.05, max_value=hours))
        surges = (
            SurgeSpec(
                name="surge",
                venue="spot",
                start_h=start,
                end_h=end,
                attendance=draw(st.floats(min_value=0.0, max_value=1.0)),
                contention=draw(st.floats(min_value=0.0, max_value=1.0)),
                flaps=draw(st.integers(min_value=1, max_value=3)),
            ),
        )
    return ScenarioSpec(
        name="prop",
        seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        devices=draw(st.integers(min_value=2, max_value=4)),
        hours=hours,
        carriers=draw(_carriers),
        city_places=draw(st.integers(min_value=8, max_value=24)),
        venues=(VenueSpec(name="spot", category="generic", radius_m=60.0,
                          ap_count=6),),
        surges=surges,
        campaigns=draw(_campaigns),
    )


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=specs())
def test_any_valid_spec_conforms(spec):
    spec.validate()
    first = run_scenario_spec(spec)
    second = run_scenario_spec(spec)
    assert first.report_json == second.report_json
    assert first.report["invariants"]["violation_count"] == 0
    sharded = run_scenario_spec(spec, shards=2, processes=False)
    assert sharded.report_json == first.report_json
