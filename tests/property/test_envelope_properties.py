"""Property-based tests: the envelope pipeline is observably equivalent
to the seed's legacy validate+copy+dumps path (hypothesis).

The legacy reference implementations are replicated inline, so these
properties keep holding even as the production code evolves: for every
generated message tree, the envelope's canonical JSON, wire size and
delivered shape must match what the seed's per-hop walks produced — and
subscriber-side mutation must never leak between deliveries.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.broker import Broker
from repro.core.envelope import Envelope, MessageError, canonical_json
from repro.core.messages import copy_message, message_size_bytes, to_json

# ---------------------------------------------------------------------------
# Message-tree strategy
# ---------------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

#: JSON-able message trees, tuples included (they normalize to lists).
messages = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


def legacy_to_json(value):
    """The seed's serializer: a plain key-sorted compact json.dumps."""
    return json.dumps(value, separators=(",", ":"), sort_keys=True, ensure_ascii=False)


def legacy_copy(value):
    """The seed's per-subscriber deep copy (tuples became lists)."""
    if isinstance(value, dict):
        return {key: legacy_copy(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [legacy_copy(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@given(messages)
@settings(max_examples=300, deadline=None)
def test_envelope_json_matches_legacy_serialization(tree):
    env = Envelope.wrap(tree)
    assert env.json == legacy_to_json(tree)
    # And the cached text round-trips to the normalized (tuple-free) tree.
    assert json.loads(env.json) == legacy_copy(tree)


@given(messages)
@settings(max_examples=300, deadline=None)
def test_wire_size_matches_legacy_accounting(tree):
    env = Envelope.wrap(tree)
    legacy_size = len(legacy_to_json(tree).encode("utf-8"))
    assert env.wire_size == legacy_size
    assert message_size_bytes(env) == legacy_size
    assert message_size_bytes(tree) == legacy_size


@given(messages)
@settings(max_examples=300, deadline=None)
def test_stanza_splicing_matches_whole_tree_serialization(tree):
    """A reliable-link style stanza embedding the envelope serializes to
    exactly what serializing the raw stanza would have produced."""
    env = Envelope.wrap(tree)
    stanza = {"kind": "env", "seq": 3, "payload": env}
    raw = {"kind": "env", "seq": 3, "payload": legacy_copy(tree)}
    assert canonical_json(stanza) == legacy_to_json(raw)
    assert to_json(stanza) == legacy_to_json(raw)


@given(messages)
@settings(max_examples=200, deadline=None)
def test_broker_delivery_equivalent_to_legacy_copy_path(tree):
    """Two subscribers observe exactly what the legacy copy path gave
    them, and the delivered view equals the envelope payload."""
    broker = Broker()
    first, second = [], []
    broker.subscribe("ch", first.append)
    broker.subscribe("ch", second.append)
    broker.publish("ch", tree)
    expected = legacy_copy(tree)
    assert first[0] == expected
    assert second[0] == expected
    assert first[0] is second[0]  # one shared frozen view, no copies


@given(
    st.dictionaries(st.text(max_size=8), messages, min_size=1, max_size=4),
    st.text(max_size=8),
)
@settings(max_examples=200, deadline=None)
def test_subscriber_mutation_never_leaks(tree, key):
    """However a handler tries to mutate its delivery, either the attempt
    raises or it worked on a copy — the other subscriber's view and the
    wire representation are unchanged."""
    broker = Broker()
    first, second = [], []
    broker.subscribe("ch", first.append)
    broker.subscribe("ch", second.append)
    broker.publish("ch", tree)
    wire_before = to_json(second[0])

    try:
        first[0][key] = "tampered"
    except MessageError:
        pass
    mutable = copy_message(first[0])
    mutable[key] = "tampered"

    assert to_json(second[0]) == wire_before
    assert second[0] == legacy_copy(tree)
