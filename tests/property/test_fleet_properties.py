"""Property-based tests for the fleet coordinator (hypothesis).

The coordinator's whole correctness claim: for ANY partition shape,
epoch length, seed, and duration, the K-way merged fleet report is
byte-identical to the same fleet run in a single shard.  The workers
run in-process here (same barrier protocol as the spawned form, no
fork cost), so hypothesis can afford real simulation runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shard import Handoff
from repro.fleet import run_fleet

# Keep the fleets small and the clock short: each example is a full
# discrete-event simulation, twice.
fleet_shapes = st.tuples(
    st.integers(min_value=1, max_value=6),          # devices
    st.integers(min_value=2, max_value=4),          # shards
    st.integers(min_value=0, max_value=999),        # seed
    st.sampled_from([0.05, 0.1, 0.2]),              # hours
    st.sampled_from([None, 5.0, 40.0, 79.0, 80.0]),  # epoch_ms
)


@given(fleet_shapes)
@settings(max_examples=12, deadline=None)
def test_merged_report_matches_single_shard(shape):
    devices, shards, seed, hours, epoch_ms = shape
    sharded = run_fleet(
        devices, shards, seed=seed, hours=hours, epoch_ms=epoch_ms,
        processes=False,
    )
    solo = run_fleet(devices, 1, seed=seed, hours=hours, processes=False)
    assert sharded.report_json == solo.report_json
    # The merged trace is deterministic for a layout (span ids are
    # per-shard, so it is not line-identical to the solo trace), and it
    # loses no routed stanza: every xmpp.route line of the solo run has
    # a counterpart.
    again = run_fleet(
        devices, shards, seed=seed, hours=hours, epoch_ms=epoch_ms,
        processes=False,
    )
    assert again.trace_jsonl == sharded.trace_jsonl
    assert sharded.trace_jsonl.count('"hop":"xmpp.route"') == solo.trace_jsonl.count(
        '"hop":"xmpp.route"'
    )


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=8, deadline=None)
def test_shard_count_never_changes_the_bytes(devices, seed):
    """More shards than devices, equal, fewer — all the same bytes."""
    reports = {
        run_fleet(
            devices, shards, seed=seed, hours=0.05, processes=False
        ).report_json
        for shards in (1, 2, devices + 1)
    }
    assert len(reports) == 1


# ---------------------------------------------------------------------------
# Wire codec: decode(encode(batch)) == batch for arbitrary batches
# ---------------------------------------------------------------------------

_jids = st.from_regex(r"[a-z][a-z0-9-]{0,12}@pogo", fullmatch=True)

# JSON-faithful message trees (string keys, scalar leaves) — what
# freeze_message admits into envelope payloads and what stanza wrappers
# normally look like.  NaN/inf excluded: NaN compares unequal to itself
# by design (documented), infinities are rejected by canonical JSON.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)
_trees = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)


def _stanzas():
    from repro.core.envelope import Envelope, Stanza, freeze_message

    def build(tree, envelope_fields):
        stanza = {"kind": "message", "body": tree}
        if envelope_fields is not None:
            trace_id, origin_ms, hop_span = envelope_fields
            envelope = Envelope(freeze_message({"v": 1}))
            envelope.trace_id = trace_id
            envelope.origin_ms = origin_ms
            envelope.hop_span = hop_span
            stanza["payload"] = envelope
        return Stanza(stanza)

    return st.builds(
        build,
        _trees,
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=0, max_value=2**64 - 1),
                st.floats(min_value=0, max_value=1e12, allow_nan=False),
                st.integers(min_value=0, max_value=2**64 - 1),
            ),
        ),
    )


_handoffs = st.builds(
    Handoff,
    st.one_of(st.none(), st.floats(min_value=0, max_value=1e10, allow_nan=False)),
    st.integers(min_value=0, max_value=2**32 - 1),
    _jids,
    _jids,
    _stanzas(),
)


@given(st.lists(_handoffs, max_size=12))
@settings(max_examples=200, deadline=None)
def test_wire_codec_round_trips_arbitrary_batches(batch):
    from repro.core.envelope import Envelope, Stanza
    from repro.fleet.wire import decode_batch, encode_batch

    out = decode_batch(encode_batch(batch))
    assert out == batch
    for original, decoded in zip(batch, out):
        assert isinstance(decoded.stanza, Stanza) == isinstance(
            original.stanza, Stanza
        )
        if "payload" in original.stanza:
            got, want = decoded.stanza["payload"], original.stanza["payload"]
            assert isinstance(got, Envelope)
            assert got.trace_id == want.trace_id
            assert got.origin_ms == want.origin_ms
            assert got.hop_span == want.hop_span
