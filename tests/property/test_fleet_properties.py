"""Property-based tests for the fleet coordinator (hypothesis).

The coordinator's whole correctness claim: for ANY partition shape,
epoch length, seed, and duration, the K-way merged fleet report is
byte-identical to the same fleet run in a single shard.  The workers
run in-process here (same barrier protocol as the spawned form, no
fork cost), so hypothesis can afford real simulation runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import run_fleet

# Keep the fleets small and the clock short: each example is a full
# discrete-event simulation, twice.
fleet_shapes = st.tuples(
    st.integers(min_value=1, max_value=6),          # devices
    st.integers(min_value=2, max_value=4),          # shards
    st.integers(min_value=0, max_value=999),        # seed
    st.sampled_from([0.05, 0.1, 0.2]),              # hours
    st.sampled_from([None, 5.0, 40.0, 79.0, 80.0]),  # epoch_ms
)


@given(fleet_shapes)
@settings(max_examples=12, deadline=None)
def test_merged_report_matches_single_shard(shape):
    devices, shards, seed, hours, epoch_ms = shape
    sharded = run_fleet(
        devices, shards, seed=seed, hours=hours, epoch_ms=epoch_ms,
        processes=False,
    )
    solo = run_fleet(devices, 1, seed=seed, hours=hours, processes=False)
    assert sharded.report_json == solo.report_json
    # The merged trace is deterministic for a layout (span ids are
    # per-shard, so it is not line-identical to the solo trace), and it
    # loses no routed stanza: every xmpp.route line of the solo run has
    # a counterpart.
    again = run_fleet(
        devices, shards, seed=seed, hours=hours, epoch_ms=epoch_ms,
        processes=False,
    )
    assert again.trace_jsonl == sharded.trace_jsonl
    assert sharded.trace_jsonl.count('"hop":"xmpp.route"') == solo.trace_jsonl.count(
        '"hop":"xmpp.route"'
    )


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=999),
)
@settings(max_examples=8, deadline=None)
def test_shard_count_never_changes_the_bytes(devices, seed):
    """More shards than devices, equal, fewer — all the same bytes."""
    reports = {
        run_fleet(
            devices, shards, seed=seed, hours=0.05, processes=False
        ).report_json
        for shards in (1, 2, devices + 1)
    }
    assert len(reports) == 1
