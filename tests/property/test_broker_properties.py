"""Property-based tests for the broker (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.broker import Broker

CHANNELS = ("wifi-scan", "battery", "locations", "clusters")

#: An operation is (kind, channel) where kind selects subscribe / publish
#: / release / renew / remove applied to a round-robin subscription.
operations = st.lists(
    st.tuples(
        st.sampled_from(["subscribe", "publish", "release", "renew", "remove"]),
        st.sampled_from(CHANNELS),
    ),
    max_size=60,
)


@given(operations)
@settings(max_examples=200, deadline=None)
def test_broker_delivery_invariants(ops):
    """Whatever the op sequence: deliveries go only to live, active
    subscriptions on the published channel, and counters reconcile."""
    broker = Broker()
    subs = []
    received = {}  # sub.id -> list of (channel, message)
    expected_deliveries = 0

    for kind, channel in ops:
        if kind == "subscribe":
            def make_handler(box):
                return lambda message: box.append(message)

            box = []
            sub = broker.subscribe(channel, make_handler(box))
            received[sub.id] = box
            subs.append(sub)
        elif kind == "publish":
            active = [
                s for s in broker.subscriptions(channel)
            ]
            delivered = broker.publish(channel, {"via": channel})
            assert delivered == len(active)
            expected_deliveries += delivered
        elif subs:
            target = subs[len(ops) % len(subs)]
            if kind == "release":
                target.release()
            elif kind == "renew":
                target.renew()
            else:
                target.remove()

    assert broker.delivery_count == expected_deliveries
    assert sum(len(box) for box in received.values()) == expected_deliveries
    # Removed subscriptions are gone from every channel listing.
    for sub in subs:
        if sub.removed:
            assert sub not in broker.subscriptions(sub.channel, active_only=False)


@given(st.lists(st.sampled_from(["release", "renew"]), max_size=30))
@settings(max_examples=100, deadline=None)
def test_release_renew_sequences_end_in_consistent_state(sequence):
    broker = Broker()
    sub = broker.subscribe("ch", lambda m: None)
    for op in sequence:
        getattr(sub, op)()
    # Active iff the last state-changing op was renew (or none at all).
    expected = True
    for op in sequence:
        expected = op == "renew"
    if sequence:
        assert sub.active == expected
    assert broker.has_subscribers("ch") == sub.active
