"""Property-based tests for the kernel's optimized event queue.

The kernel's hot-path machinery — tuple heap, lazy tombstones with
threshold compaction, native in-place re-arming repeating timers — must
be *observationally identical* to the naive implementation it replaced:
a plain sorted queue where repeating timers are closures that re-schedule
themselves and cancellation removes the entry eagerly.  These tests run
random schedules against both and demand the same firing log, then pin
the three properties the optimisations are most likely to break:
same-instant FIFO order, cancellation exactness, and drift-free
repeating deadlines.
"""

import heapq
import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.kernel as kernel_mod
from repro.sim.kernel import Kernel


class NaiveKernel:
    """The reference model: correct by obviousness, fast by accident.

    * repeating timers are closures that re-schedule themselves with a
      fresh entry (consuming a sequence number immediately before the
      callback runs, like the optimized in-place re-arm);
    * cancellation removes the entry from the queue eagerly (rebuild and
      re-heapify — no tombstones, no counters);
    * no compaction, no live-event bookkeeping.
    """

    def __init__(self):
        self.now = 0.0
        self._queue = []
        self._seq = itertools.count()
        self.log = []

    def schedule(self, delay, callback):
        entry = [self.now + delay, next(self._seq), callback, False]
        heapq.heappush(self._queue, entry)
        return entry

    def schedule_repeating(self, interval, callback, initial_delay=None):
        first = interval if initial_delay is None else initial_delay
        entry_box = {}

        def tick():
            # Re-schedule before the callback, like the kernel re-arms.
            nxt = [entry_box["e"][0] + interval, next(self._seq), tick, False]
            entry_box["e"] = nxt
            heapq.heappush(self._queue, nxt)
            callback()

        entry = [self.now + first, next(self._seq), tick, False]
        entry_box["e"] = entry
        heapq.heappush(self._queue, entry)
        return entry_box

    def cancel(self, entry):
        if isinstance(entry, dict):  # repeating handle
            entry = entry["e"]
        entry[3] = True
        self._queue = [e for e in self._queue if not e[3]]
        heapq.heapify(self._queue)

    def run_until(self, horizon):
        while self._queue and self._queue[0][0] <= horizon:
            time, _, callback, cancelled = heapq.heappop(self._queue)
            assert not cancelled  # eager removal: never in the queue
            self.now = time
            callback()
        self.now = max(self.now, horizon)


#: One instruction for both kernels.  Times are multiples of 0.5 ms from
#: a small pool so same-instant collisions are common (the FIFO case).
def _delay():
    return st.integers(min_value=0, max_value=20).map(lambda n: n * 0.5)


instructions = st.lists(
    st.one_of(
        st.tuples(st.just("once"), _delay()),
        st.tuples(st.just("repeat"), _delay().filter(lambda d: d > 0)),
        # Cancel the k-th created timer at a given instant (via a
        # scheduled event, so mid-run tombstones accumulate).
        st.tuples(st.just("cancel"), _delay(), st.integers(0, 30)),
    ),
    max_size=30,
)


@given(instructions, st.integers(1, 4))
@settings(max_examples=150, deadline=None)
def test_optimized_kernel_matches_naive_reference(program, threshold):
    """Same program -> byte-identical firing logs, at any compaction
    threshold (including pathological ones that compact constantly)."""
    original = kernel_mod.COMPACT_MIN_TOMBSTONES
    kernel_mod.COMPACT_MIN_TOMBSTONES = threshold
    try:
        fast = Kernel()
        naive = NaiveKernel()
        fast_log, naive_log = [], []
        fast_handles, naive_handles = [], []

        for index, op in enumerate(program):
            if op[0] == "once":
                _, delay = op
                fast_handles.append(
                    fast.schedule(delay, lambda i=index: fast_log.append((fast.now, i)))
                )
                naive_handles.append(
                    naive.schedule(delay, lambda i=index: naive_log.append((naive.now, i)))
                )
            elif op[0] == "repeat":
                _, interval = op
                fast_handles.append(
                    fast.schedule_repeating(
                        interval, lambda i=index: fast_log.append((fast.now, i))
                    )
                )
                naive_handles.append(
                    naive.schedule_repeating(
                        interval, lambda i=index: naive_log.append((naive.now, i))
                    )
                )
            else:
                _, delay, target = op
                fast_handles.append(
                    fast.schedule(
                        delay,
                        lambda t=target: fast_handles[t % len(fast_handles)].cancel(),
                    )
                )
                naive_handles.append(
                    naive.schedule(
                        delay,
                        lambda t=target: naive.cancel(naive_handles[t % len(naive_handles)]),
                    )
                )

        # Both lists grow in lockstep (one entry per instruction), so the
        # cancel lambdas target the same index space on each side.
        assert len(fast_handles) == len(naive_handles)

        fast.run_until(30.0)
        naive.run_until(30.0)
        assert fast_log == naive_log
    finally:
        kernel_mod.COMPACT_MIN_TOMBSTONES = original


@given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
@settings(max_examples=150, deadline=None)
def test_same_instant_events_fire_in_scheduling_order(delays):
    """All events at one instant fire in the order they were scheduled,
    regardless of how many other instants interleave."""
    kernel = Kernel()
    log = []
    for index, delay in enumerate(delays):
        kernel.schedule(float(delay), lambda i=index: log.append(i))
    kernel.run()
    expected = [i for _, i in sorted((delays[i], i) for i in range(len(delays)))]
    assert log == expected


@given(
    st.lists(st.integers(0, 100), min_size=1, max_size=40, unique=True),
    st.sets(st.integers(0, 39)),
)
@settings(max_examples=150, deadline=None)
def test_cancellation_is_exact(delays, cancel_indices):
    """Cancelled events never fire, everything else always fires, and the
    live/tombstone books balance before and after compaction."""
    original = kernel_mod.COMPACT_MIN_TOMBSTONES
    kernel_mod.COMPACT_MIN_TOMBSTONES = 2
    try:
        kernel = Kernel()
        fired = []
        handles = [
            kernel.schedule(float(delay), lambda i=index: fired.append(i))
            for index, delay in enumerate(delays)
        ]
        doomed = {i for i in cancel_indices if i < len(handles)}
        for index in doomed:
            assert handles[index].cancel() is True
        assert kernel.pending_events == len(handles) - len(doomed)
        kernel.run()
        assert sorted(fired) == sorted(set(range(len(handles))) - doomed)
        assert kernel.pending_events == 0
    finally:
        kernel_mod.COMPACT_MIN_TOMBSTONES = original


@given(
    st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
    st.integers(1, 50),
)
@settings(max_examples=150, deadline=None)
def test_repeating_timers_are_drift_free(interval, ticks):
    """The k-th fire lands exactly at the accumulated deadline
    ``t_{k} = t_{k-1} + interval`` — re-arming never reads ``now`` and
    never loses or gains a floating-point ulp versus the reference chain."""
    kernel = Kernel()
    times = []
    handle = kernel.schedule_repeating(interval, lambda: times.append(kernel.now))
    kernel.run(max_events=ticks)
    expected, deadline = [], 0.0
    for _ in range(ticks):
        deadline = deadline + interval
        expected.append(deadline)
    assert times == expected
    assert handle.pending  # still armed for the next tick
    handle.cancel()
    kernel.run()
    assert times == expected  # cancellation stopped the chain
