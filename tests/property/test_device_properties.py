"""Property-based tests for the device substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.power import PowerRail
from repro.device.radio import CARRIERS, IDLE, KPN, Modem
from repro.device.cpu import Cpu, CpuConfig
from repro.sim import Kernel


# ---------------------------------------------------------------------------
# Radio: energy accounting is exactly dwell-time × state power
# ---------------------------------------------------------------------------

transfer_schedules = st.lists(
    st.tuples(
        st.floats(0.0, 120_000.0),   # gap before this transfer
        st.integers(1, 200_000),     # tx bytes
        st.integers(0, 500_000),     # rx bytes
    ),
    min_size=1,
    max_size=8,
)


@given(transfer_schedules, st.sampled_from(sorted(CARRIERS)))
@settings(max_examples=80, deadline=None)
def test_radio_energy_equals_state_dwell_integral(schedule, carrier_name):
    profile = CARRIERS[carrier_name]
    kernel = Kernel()
    rail = PowerRail(kernel)
    modem = Modem(kernel, rail, profile)

    # Track state dwell times through the listener interface.
    dwell = {}
    state_since = {"state": modem.state, "at": kernel.now}

    def on_change(old, new):
        dwell[old] = dwell.get(old, 0.0) + kernel.now - state_since["at"]
        state_since["state"] = new
        state_since["at"] = kernel.now

    modem.on_state_change.append(on_change)

    t = 0.0
    completions = []
    for gap, tx, rx in schedule:
        t += gap
        kernel.schedule_at(
            t, lambda tx=tx, rx=rx: modem.transfer(tx, rx, on_complete=completions.append)
        )
    kernel.run()
    # Let all tails expire, then settle the final dwell.
    kernel.run_until(kernel.now + profile.dch_tail_ms + profile.fach_tail_ms + 1000.0)
    dwell[state_since["state"]] = (
        dwell.get(state_since["state"], 0.0) + kernel.now - state_since["at"]
    )

    watts = {"idle": profile.idle_w, "ramp": profile.ramp_w,
             "dch": profile.dch_w, "fach": profile.fach_w, "off": 0.0}
    expected = sum(dwell.get(s, 0.0) * w for s, w in watts.items()) / 1000.0
    assert abs(rail.energy_joules - expected) < 1e-6 * max(1.0, expected)

    # Every transfer completed successfully and the modem wound down.
    assert completions == [True] * len(schedule)
    assert modem.state == IDLE
    assert not modem.transferring


@given(transfer_schedules)
@settings(max_examples=60, deadline=None)
def test_radio_byte_counters_are_exact(schedule):
    kernel = Kernel()
    modem = Modem(kernel, PowerRail(kernel), KPN)
    t = 0.0
    for gap, tx, rx in schedule:
        t += gap
        kernel.schedule_at(t, lambda tx=tx, rx=rx: modem.transfer(tx, rx))
    kernel.run()
    assert modem.bytes_tx == sum(tx for _, tx, _ in schedule)
    assert modem.bytes_rx == sum(rx for _, _, rx in schedule)
    assert modem.transfer_count == len(schedule)


# ---------------------------------------------------------------------------
# CPU: wake-lock balance implies eventual sleep; alarms always fire
# ---------------------------------------------------------------------------

alarm_plans = st.lists(st.floats(1.0, 300_000.0), min_size=1, max_size=20)


@given(alarm_plans)
@settings(max_examples=80, deadline=None)
def test_cpu_sleeps_after_any_alarm_schedule(delays):
    kernel = Kernel()
    cpu = Cpu(kernel, PowerRail(kernel), CpuConfig(awake_hold_ms=1100.0))
    fired = []
    for delay in delays:
        cpu.set_alarm(delay, fired.append, delay)
    kernel.run()
    kernel.run_until(kernel.now + 10_000.0)
    assert sorted(fired) == sorted(delays)
    assert not cpu.awake
    assert cpu.wake_locks_held == 0


@given(
    st.lists(
        st.tuples(st.floats(0.0, 10_000.0), st.sampled_from(["a", "b", "c"])),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=80, deadline=None)
def test_balanced_wake_locks_always_release(plan):
    """Acquire/release pairs in any interleaving leave zero locks held."""
    kernel = Kernel()
    cpu = Cpu(kernel, PowerRail(kernel), CpuConfig(awake_hold_ms=500.0))
    for at, tag in plan:
        kernel.schedule_at(at, cpu.acquire_wake_lock, tag)
        kernel.schedule_at(at + 100.0, cpu.release_wake_lock, tag)
    kernel.run()
    kernel.run_until(kernel.now + 5_000.0)
    assert cpu.wake_locks_held == 0
    assert not cpu.awake
