"""Property-based tests for the AnonyTL front-end (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonytl.compiler import compile_task, generate_device_script
from repro.anonytl.parser import parse_forms, tokenize
from repro.anonytl.tasks import parse_task

symbols = st.text(alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ=", min_size=1, max_size=8)
atoms = st.one_of(
    st.integers(-10**6, 10**6),
    symbols,
    symbols.map(lambda s: f"@{s.strip('=') or 'attr'}"),
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz ", max_size=10).map(lambda s: f"'{s}'"),
)


@st.composite
def sexprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(atoms)
    children = draw(st.lists(sexprs(depth=depth + 1), max_size=4))
    return children


def unparse(form) -> str:
    if isinstance(form, list):
        return "(" + " ".join(unparse(child) for child in form) + ")"
    return str(form)


@given(st.lists(sexprs(), min_size=1, max_size=4))
@settings(max_examples=200, deadline=None)
def test_parser_roundtrips_arbitrary_sexprs(forms):
    """unparse(parse(text)) == unparse of the original structure."""
    text = "\n".join(unparse(form) for form in forms)
    parsed = parse_forms(text)
    assert len(parsed) == len(forms)
    # Re-unparse through the parsed representation and parse again: the
    # result must be a fixpoint.
    def render(form):
        if isinstance(form, list):
            return "(" + " ".join(render(c) for c in form) + ")"
        if isinstance(form, str) and not hasattr(form, "name"):
            # parsed strings lost their quotes; re-quote for re-parse
            return f"'{form}'"
        return str(form)

    second = parse_forms("\n".join(render(f) for f in parsed))
    assert [render(a) for a in parsed] == [render(b) for b in second]


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_generated_tasks_always_compile(data):
    """Any semantically valid task compiles to a valid Pogo experiment."""
    task_id = data.draw(st.integers(1, 10**6))
    interval = data.draw(st.integers(1, 120))
    unit = data.draw(st.sampled_from(["Seconds", "Minutes", "Hours"]))
    fields = data.draw(
        st.lists(st.sampled_from(["location", "SSIDs"]), min_size=1, max_size=2, unique=True)
    )
    with_polygon = data.draw(st.booleans())
    polygon = ""
    if with_polygon:
        n = data.draw(st.integers(3, 6))
        points = " ".join(
            f"(Point {data.draw(st.floats(-180, 180)):.4f} {data.draw(st.floats(-85, 85)):.4f})"
            for _ in range(n)
        )
        polygon = f" (In location (Polygon {points}))"
    text = (
        f"(Task {task_id})\n"
        f"(Report ({' '.join(fields)}) (Every {interval} {unit}){polygon})"
    )
    task = parse_task(text)
    assert task.task_id == task_id
    experiment = compile_task(task)
    experiment.validate()  # compiles as Python source
    script = generate_device_script(task)
    # The script subscribes to every channel it needs.
    if "SSIDs" in fields:
        assert "subscribe('wifi-scan'" in script
    if "location" in fields or with_polygon:
        assert "subscribe('locations'" in script
