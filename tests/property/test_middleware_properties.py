"""Property-based tests for middleware components (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffer import InMemoryStore, MessageBuffer, SqliteStore
from repro.core.scheduler import PogoScheduler, SimpleScheduler
from repro.device.cpu import Cpu, CpuConfig
from repro.device.power import PowerRail
from repro.sim import Kernel


# ---------------------------------------------------------------------------
# Scheduler: per-key FIFO order under arbitrary submission interleavings
# ---------------------------------------------------------------------------

submissions = st.lists(
    st.tuples(
        st.floats(0.0, 5_000.0),              # submission time
        st.sampled_from(["s1", "s2", None]),  # serial key (None = free pool)
    ),
    min_size=1,
    max_size=30,
)


@given(submissions, st.booleans())
@settings(max_examples=100, deadline=None)
def test_scheduler_preserves_per_key_order(plan, use_pogo):
    kernel = Kernel()
    if use_pogo:
        cpu = Cpu(kernel, PowerRail(kernel), CpuConfig())
        scheduler = PogoScheduler(kernel, cpu)
    else:
        scheduler = SimpleScheduler(kernel)

    executed = []
    for index, (at, key) in enumerate(plan):
        kernel.schedule_at(
            at,
            lambda i=index, k=key: scheduler.submit(
                lambda i=i, k=k: executed.append((k, i)), serial_key=k
            ),
        )
    kernel.run()
    kernel.run_until(kernel.now + 10_000.0)

    assert len(executed) == len(plan)
    # Within each serial key, tasks ran in submission order.  (Same-time
    # submissions are ordered by kernel FIFO, which follows list order.)
    for key in ("s1", "s2"):
        ran = [i for k, i in executed if k == key]
        submitted = sorted(
            (at, i) for i, (at, k) in enumerate(plan) if k == key
        )
        assert ran == [i for _, i in submitted]


@given(submissions)
@settings(max_examples=60, deadline=None)
def test_pogo_scheduler_releases_all_wake_locks(plan):
    kernel = Kernel()
    cpu = Cpu(kernel, PowerRail(kernel), CpuConfig(awake_hold_ms=300.0))
    scheduler = PogoScheduler(kernel, cpu)
    for at, key in plan:
        kernel.schedule_at(at, scheduler.submit, (lambda: None), )
    kernel.run()
    kernel.run_until(kernel.now + 5_000.0)
    assert cpu.wake_locks_held == 0
    assert not cpu.awake


# ---------------------------------------------------------------------------
# Buffer: expiry semantics for arbitrary enqueue schedules
# ---------------------------------------------------------------------------

enqueue_plans = st.lists(st.floats(0.0, 100_000.0), min_size=1, max_size=25)


@given(enqueue_plans, st.floats(1_000.0, 50_000.0), st.floats(0.0, 200_000.0))
@settings(max_examples=100, deadline=None)
def test_buffer_expiry_is_exactly_age_based(times, max_age, check_at):
    kernel = Kernel()
    buffer = MessageBuffer(kernel, InMemoryStore(), max_age_ms=max_age)
    for index, at in enumerate(sorted(times)):
        kernel.schedule_at(at, buffer.enqueue, "peer", {"n": index})
    kernel.run()
    kernel.run_until(max(kernel.now, check_at))
    buffer.purge_expired()
    cutoff = kernel.now - max_age
    expected_alive = sum(1 for at in times if at >= cutoff)
    assert len(buffer) == expected_alive
    assert buffer.expired == len(times) - expected_alive


@given(enqueue_plans)
@settings(max_examples=40, deadline=None)
def test_buffer_backends_agree(times):
    results = []
    for store in (InMemoryStore(), SqliteStore(":memory:")):
        kernel = Kernel()
        buffer = MessageBuffer(kernel, store, max_age_ms=30_000.0)
        for index, at in enumerate(sorted(times)):
            kernel.schedule_at(at, buffer.enqueue, "peer", {"n": index})
        kernel.run()
        kernel.run_until(kernel.now + 10_000.0)
        batches = buffer.peek_batches()
        results.append(
            [
                (dest, [m.payload["n"] for m in messages])
                for dest, messages in batches
            ]
        )
    assert results[0] == results[1]
