#!/usr/bin/env python
"""Quickstart: collect battery readings from a small simulated fleet.

This is the smallest complete Pogo experiment:

1. build a simulated testbed (XMPP switchboard + admin),
2. enroll three phones and one researcher,
3. deploy a collector-side script that subscribes to the ``battery``
   channel — the subscription propagates to every device and switches
   their battery sensors on (Section 4.2 of the paper),
4. run one simulated hour and print what arrived.

Run:  python examples/quickstart.py
"""

from repro import Experiment, PogoSimulation

COLLECT_SCRIPT = """
setDescription('Fleet-wide battery monitor')

readings = []


def handle(msg):
    readings.append(msg)
    log('battery reading from', msg['_device'])


subscribe('battery', handle, {'interval': 60 * 1000})
"""


def main() -> None:
    sim = PogoSimulation(seed=7)
    researcher = sim.add_collector("alice")
    phones = [sim.add_device(with_email_app=True) for _ in range(3)]

    sim.start()
    sim.assign(researcher, phones)

    experiment = Experiment(
        experiment_id="quickstart",
        description="Battery telemetry quickstart",
        collector_scripts={"collect": COLLECT_SCRIPT},
    )
    context = researcher.node.deploy(experiment, [p.jid for p in phones])

    sim.run(hours=1)

    readings = context.scripts["collect"].namespace["readings"]
    print(f"collected {len(readings)} battery readings from {len(phones)} phones\n")
    per_device = {}
    for reading in readings:
        per_device.setdefault(reading["_device"], []).append(reading)
    for jid, device_readings in sorted(per_device.items()):
        last = device_readings[-1]
        print(
            f"  {jid}: {len(device_readings):3d} readings, "
            f"last voltage {last['voltage']:.3f} V, level {last['level']*100:.1f}%"
        )

    print("\nhow the data travelled (per device):")
    for phone in phones:
        node = phone.node
        print(
            f"  {phone.jid}: {node.payloads_sent} payloads in {node.batches_sent} batches; "
            f"radio ramp-ups {phone.phone.modem.rampup_count} "
            f"(e-mail checks {phone.email_app().check_count}) — "
            f"energy {phone.phone.energy_joules:.1f} J"
        )
    print(
        "\nPogo batched its reports into other apps' radio sessions, so the\n"
        "number of ramp-ups tracks the e-mail schedule, not the sample count."
    )


if __name__ == "__main__":
    main()
