#!/usr/bin/env python
"""Run an AnonyTL task (the paper's Section 5.1 baseline) on Pogo.

Parses a task in AnonySense's Lisp-like DSL (Listing 1's format), selects
devices by its Accept predicate, compiles it to a Pogo experiment, and
deploys it.  Shows both sides of the paper's trade-off: six lines of DSL
get the job done, but the generated code cannot duty-cycle the scanner
the way the handwritten Listing 2 script does.

Run:  python examples/anonytl_task.py
"""

from repro import PogoSimulation
from repro.anonytl import deploy_task, parse_task
from repro.sim.kernel import HOUR
from repro.world.geometry import to_latlon


def main() -> None:
    sim = PogoSimulation(seed=21)
    researcher = sim.add_collector("alice")
    professor_phone = sim.add_device(world_days=1, with_email_app=True)
    student_phone = sim.add_device(world_days=1, with_email_app=True)
    sim.admin.devices[professor_phone.jid].attributes["carrier"] = "professor"
    sim.admin.devices[student_phone.jid].attributes["carrier"] = "student"

    office = professor_phone.user_world.places["office"][0]
    points = " ".join(
        f"(Point {lon} {lat})"
        for lat, lon in (
            to_latlon(office.center.offset(dx, dy))
            for dx, dy in ((-150, -150), (150, -150), (150, 150), (-150, 150))
        )
    )
    task_text = (
        "(Task 25043) (Expires 72000)\n"
        "(Accept (= @carrier 'professor'))\n"
        "(Report (location SSIDs) (Every 1 Minute)\n"
        f"  (In location (Polygon {points})))"
    )
    print("task source:\n")
    print(task_text)

    sim.start()
    task = parse_task(task_text)
    context, accepted = deploy_task(researcher.node, sim.admin, task)
    print(f"\naccepted devices: {accepted}  (student's phone was not eligible)")

    for hour in (3, 12, 20):
        sim.kernel.run_until(hour * HOUR)
        reports = context.scripts["collect"].namespace["reports"]
        place = professor_phone.user_world.current_place(sim.kernel.now)
        where = place.name.split("/")[-1] if place else "(travelling)"
        print(f"hour {hour:2d}: user at {where:<10} reports so far: {len(reports)}")

    # Expiry fired at t = 20 h: the task is gone from the device.
    sim.kernel.run_until(21 * HOUR)
    print(
        f"\nafter expiry: task context on device: "
        f"{task.experiment_id in professor_phone.node.contexts}"
    )
    scans = professor_phone.node.sensor_manager.sensors["wifi-scan"].completed_scans
    print(f"Wi-Fi scans performed all day (DSL cannot duty-cycle): {scans}")


if __name__ == "__main__":
    main()
