#!/usr/bin/env python
"""Reproduce the 3G tail-energy behaviour (Figure 3 + Table 3's shape).

Simulates a Galaxy Nexus class phone checking e-mail every five minutes,
with and without Pogo reporting battery samples, on each of the paper's
three Dutch carriers.  Prints:

* a Figure 3 style segmentation of a single transmission (ramp-up at a,
  transfer end at b, DCH→FACH at c, FACH→idle at d), and
* a Table 3 style comparison of hourly energy with/without Pogo.

Run:  python examples/tail_energy.py
"""

from repro import Experiment, PogoSimulation
from repro.analysis.energy import percent_increase, segment_tail_from_state_trace
from repro.apps import battery_monitor
from repro.device.radio import CARRIERS, KPN
from repro.sim.kernel import HOUR, MINUTE

WARMUP = 10 * MINUTE


def run_hour(carrier, with_pogo: bool) -> float:
    """One measured hour (after warm-up); returns joules drawn."""
    sim = PogoSimulation(seed=3, carrier=carrier, record_trace=True)
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    if with_pogo:
        collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(duration_ms=WARMUP)
    device.phone.rail.reset_energy()
    sim.run(hours=1)
    return device.phone.rail.energy_joules


def figure3() -> None:
    sim = PogoSimulation(seed=3, carrier=KPN, record_trace=True)
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.run(duration_ms=7 * MINUTE)  # one e-mail check at t=5 min
    # Segment the e-mail transmission, not the connection handshake.
    seg = segment_tail_from_state_trace(
        sim.trace, device.phone.modem.name, KPN, after_ms=4 * MINUTE
    )
    print("Figure 3 — one e-mail check on KPN (times relative to ramp start):")
    print(f"  a  ramp-up starts   {0.0:7.1f} s   (ramp {KPN.ramp_ms/1000:.1f} s @ {KPN.ramp_w:.2f} W)")
    b = (seg.b_transfer_end_ms - seg.a_ramp_start_ms) / 1000
    c = (seg.c_dch_end_ms - seg.a_ramp_start_ms) / 1000
    d = (seg.d_fach_end_ms - seg.a_ramp_start_ms) / 1000
    print(f"  b  transfer ends    {b:7.1f} s")
    print(f"  c  DCH tail ends    {c:7.1f} s   ({seg.dch_tail_ms/1000:.1f} s @ {KPN.dch_w:.2f} W)")
    print(f"  d  FACH tail ends   {d:7.1f} s   ({seg.fach_tail_ms/1000:.1f} s @ {KPN.fach_w:.2f} W)")
    print(
        f"  tail (b→d): {seg.tail_duration_ms/1000:.1f} s, "
        f"{seg.tail_energy_j:.2f} J — vs {seg.transfer_energy_j:.2f} J for the transfer itself\n"
    )


def table3() -> None:
    print("Table 3 — hourly energy, e-mail every 5 min, Pogo sampling battery 1/min:")
    print(f"  {'Carrier':<10} {'Without Pogo':>13} {'With Pogo':>11} {'Increase':>9}")
    for name, carrier in CARRIERS.items():
        base = run_hour(carrier, with_pogo=False)
        with_pogo = run_hour(carrier, with_pogo=True)
        print(
            f"  {name:<10} {base:>11.2f} J {with_pogo:>9.2f} J "
            f"{percent_increase(base, with_pogo):>8.2f}%"
        )
    print(
        "\nPogo rides the e-mail app's radio sessions, so its sensing adds\n"
        "only single-digit-percent overhead despite reporting every minute."
    )


if __name__ == "__main__":
    figure3()
    table3()
