#!/usr/bin/env python
"""The Section 4.1 localization application, end to end.

Deploys the three-script pipeline of the paper's Figure 1 onto a
simulated phone carried through three days of synthetic life:

* ``scan`` (device)        — Wi-Fi scans @ 1/min, sanitized + normalized
* ``clustering`` (device)  — sliding-window DBSCAN closes dwell clusters
* ``collect`` (collector)  — geolocates each cluster, stores it

Prints the discovered places with entry/exit times and the data-volume
reduction achieved by clustering on the device (the paper reports 98.3 %
over its 24-day deployment).

Run:  python examples/localization.py
"""

from repro import PogoSimulation
from repro.apps import localization
from repro.core.messages import message_size_bytes
from repro.core.services import GeolocationBridge
from repro.sim.kernel import DAY, HOUR
from repro.world.geolocation import GeolocationService
from repro.world.geometry import from_latlon

DAYS = 3


def main() -> None:
    sim = PogoSimulation(seed=11)
    researcher = sim.add_collector("alice")
    phone = sim.add_device(world_days=DAYS, with_email_app=True)

    # The collector's geolocation service knows the world's APs (the
    # stand-in for Google's geolocation API).
    service = GeolocationService()
    for group in phone.user_world.places.values():
        for place in group:
            service.register_all(place.access_points)
    researcher.node.add_service(GeolocationBridge(service))

    sim.start()
    sim.assign(researcher, [phone])
    context = researcher.node.deploy(
        localization.build_experiment(with_freeze=True), [phone.jid]
    )
    sim.run(days=DAYS)

    database = context.scripts["collect"].namespace["database"]
    print(f"discovered {len(database)} dwell sessions over {DAYS} simulated days\n")

    place_names = {}
    for group in phone.user_world.places.values():
        for place in group:
            place_names[place.name] = place

    for cluster in database:
        entry_h = cluster["entry"] / HOUR
        exit_h = cluster["exit"] / HOUR
        where = "unresolved"
        if cluster["place"] is not None:
            resolved = from_latlon(cluster["place"]["lat"], cluster["place"]["lon"])
            nearest = min(
                place_names.values(), key=lambda p: p.center.distance_to(resolved)
            )
            where = f"{nearest.name.split('/')[-1]:<14} (±{cluster['place']['accuracy']:.0f} m)"
        print(
            f"  day {int(entry_h // 24)}  "
            f"{entry_h % 24:5.2f}h → {exit_h % 24:5.2f}h  "
            f"({cluster['samples']:4d} scans)  {where}"
        )

    # Data reduction: what raw scan shipping would have cost vs clusters.
    device_ctx = phone.node.contexts[localization.EXPERIMENT_ID]
    dbscan = device_ctx.scripts["clustering"].namespace["dbscan"]
    cluster_bytes = sum(message_size_bytes(c) for c in database)
    approx_scan_bytes = 300  # a sanitized scan message is a few hundred B
    raw_bytes = dbscan.samples_seen * approx_scan_bytes
    print(
        f"\nscans processed on-device: {dbscan.samples_seen}"
        f"  (≈{raw_bytes / 1e6:.1f} MB if shipped raw)"
    )
    print(
        f"cluster bytes actually sent: {cluster_bytes / 1e3:.1f} kB"
        f"  → reduction {(1 - cluster_bytes / raw_bytes) * 100:.1f}%"
    )
    print(f"phone energy over {DAYS} days: {phone.phone.energy_joules:.0f} J")


if __name__ == "__main__":
    main()
