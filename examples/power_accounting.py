#!/usr/bin/env python
"""Per-script power modelling (the paper's Section 6 future work).

"In the future we would like to implement power modelling to estimate
the resource consumption of individual scripts."  This example runs two
experiments side by side on one phone — the localization pipeline and a
fleet battery monitor — and prints the estimator's per-script breakdown:
who woke the CPU, who burned the Wi-Fi radio, who transmitted what.

Run:  python examples/power_accounting.py
"""

from repro import PogoSimulation
from repro.apps import battery_monitor, localization
from repro.core.power_model import ScriptPowerModel
from repro.core.services import GeolocationBridge
from repro.world.geolocation import GeolocationService

HOURS = 6


def main() -> None:
    sim = PogoSimulation(seed=13)
    researcher = sim.add_collector("alice")
    phone = sim.add_device(world_days=1, with_email_app=True)

    service = GeolocationService()
    for group in phone.user_world.places.values():
        for place in group:
            service.register_all(place.access_points)
    researcher.node.add_service(GeolocationBridge(service))

    sim.start()
    sim.assign(researcher, [phone])
    # Two experiments sharing one device (Section 3.1's many-to-many).
    researcher.node.deploy(localization.build_experiment(), [phone.jid])
    researcher.node.deploy(battery_monitor.build_experiment(), [phone.jid])
    sim.run(hours=HOURS)

    model = ScriptPowerModel(phone.node)
    print(f"per-script resource estimate after {HOURS} simulated hours:\n")
    print(model.report())
    print(
        "\nThe Wi-Fi scanning demanded by the localization 'scan' script"
        "\ndominates; the battery monitor's cost is almost entirely the"
        "\nonce-a-minute CPU wakeups, attributed to its collector."
    )


if __name__ == "__main__":
    main()
