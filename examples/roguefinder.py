#!/usr/bin/env python
"""The RogueFinder application (Section 5.1, Listing 2).

Geofences the simulated user's office: Wi-Fi scans are reported only
while the user is inside the polygon, and the Wi-Fi scanning sensor is
actually *off* everywhere else (subscription release/renew — the
behaviour the paper contrasts with AnonyTL's declarative `In` construct).

Run:  python examples/roguefinder.py
"""

from repro import PogoSimulation
from repro.apps import roguefinder
from repro.sim.kernel import HOUR
from repro.world.geometry import Point, to_latlon


def polygon_around(center: Point, half_size_m: float):
    return [
        to_latlon(center.offset(dx, dy))
        for dx, dy in (
            (-half_size_m, -half_size_m),
            (half_size_m, -half_size_m),
            (half_size_m, half_size_m),
            (-half_size_m, half_size_m),
        )
    ]


def main() -> None:
    sim = PogoSimulation(seed=21)
    researcher = sim.add_collector("alice")
    phone = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(researcher, [phone])

    office = phone.user_world.places["office"][0]
    experiment = roguefinder.build_experiment(polygon_around(office.center, 150.0))
    context = researcher.node.deploy(experiment, [phone.jid])

    sensor = phone.node.sensor_manager.sensors["wifi-scan"]
    print("hour  user place           scanning  scans reported")
    for hour in range(1, 25):
        sim.run(hours=1)
        place = phone.user_world.current_place(sim.kernel.now)
        place_name = place.name.split("/")[-1] if place else "(travelling)"
        scans = len(context.scripts["collect"].namespace["scans"])
        print(f"{hour:4d}  {place_name:<20} {str(sensor.enabled):<9} {scans:5d}")

    reports = context.scripts["collect"].namespace["scans"]
    office_bssids = {ap.bssid for ap in office.access_points}
    seen = {ap["bssid"] for scan in reports for ap in scan["aps"]}
    print(
        f"\n{len(reports)} scans reported in total; "
        f"{len(seen & office_bssids)}/{len(office_bssids)} office APs observed."
    )
    print("Scanning ran only inside the geofence — zero scans overnight at home.")


if __name__ == "__main__":
    main()
