"""Ablation — what transmission synchronization actually buys.

Section 4.7 motivates the mechanism: "periodically transfering small
packets of information could easily cause this [tail] overhead to
dominate the overall energy consumption", and names the alternatives:
"flush the transmit buffer at long intervals (i.e. once per hour), or
simply delay transfer until the phone is plugged into the charger" (the
SystemSens/LiveLab approach, Section 2).  The paper only reports the
synchronized numbers (Table 3); this ablation runs the same workload for
a simulated day under every policy and quantifies the whole trade space:

* **immediate** — one send per sample keeps the modem out of idle
  essentially forever: energy explodes;
* **periodic (de-phased 5 min)** — every flush that misses the e-mail
  window pays its own ramp-up + tail;
* **periodic (1 h)** — cheap, but average delivery latency ~30 min;
* **charger-delay** — its transmissions run on mains power, yet the
  battery cost ends up at the synchronized level anyway (the sampling
  wakeups dominate) while latency balloons to *hours*;
* **synchronized** — charger-class battery cost at minutes of latency.

(A 5-min periodic timer that happens to be *in phase* with the 5-min
e-mail schedule performs like the synchronized policy — included to show
tail-sync is the general, phase-independent way to get that alignment.)
"""

import pytest

from repro.analysis.energy import percent_increase
from repro.apps import battery_monitor
from repro.core.middleware import PogoSimulation
from repro.core.tailsync import (
    ChargerPolicy,
    ImmediatePolicy,
    PeriodicPolicy,
    SynchronizedPolicy,
)
from repro.device.radio import KPN
from repro.sim.kernel import HOUR, MINUTE
from repro.world.environment import ChargingRoutine

WARMUP_MS = 10 * MINUTE
MEASURED_HOURS = 24


def make_policy(policy_name):
    if policy_name in ("baseline", "synchronized"):
        return None  # node default (synchronized); baseline deploys nothing
    if policy_name == "immediate":
        return ImmediatePolicy()
    if policy_name == "periodic-5min-aligned":
        return PeriodicPolicy(interval_ms=5 * MINUTE)
    if policy_name == "periodic-5min":
        # De-phased: lands squarely between e-mail checks.
        return PeriodicPolicy(interval_ms=5 * MINUTE, offset_ms=2.5 * MINUTE)
    if policy_name == "periodic-1h":
        return PeriodicPolicy(interval_ms=1 * HOUR, offset_ms=30 * MINUTE)
    if policy_name == "charger":
        return ChargerPolicy()
    raise ValueError(policy_name)


def run_policy(policy_name):
    sim = PogoSimulation(seed=3, carrier=KPN)
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True, policy=make_policy(policy_name))
    ChargingRoutine(
        sim.kernel, device.phone, sim.streams.stream("charging"), days=2
    ).start()
    sim.start()
    sim.assign(collector, [device])

    arrivals = []
    if policy_name != "baseline":
        context = collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
        # Instrumentation: record (arrival sim-time, sample timestamp).
        context.broker.subscribe(
            "battery",
            lambda msg: arrivals.append((sim.kernel.now, msg["timestamp"])),
            owner="local:probe",
        )
    sim.run(duration_ms=WARMUP_MS)
    device.phone.rail.reset_energy()
    battery_before = device.phone.battery.discharge_joules
    rampups_before = device.phone.modem.rampup_count
    active_before = device.phone.modem.active_track.total_duration(sim.kernel.now)
    arrivals.clear()
    sim.run(hours=MEASURED_HOURS)
    active_ms = (
        device.phone.modem.active_track.total_duration(sim.kernel.now) - active_before
    )
    latencies_min = [(arrived - stamped) / MINUTE for arrived, stamped in arrivals]
    return {
        "energy_per_hour": device.phone.rail.energy_joules / MEASURED_HOURS,
        "battery_per_hour": (device.phone.battery.discharge_joules - battery_before) / MEASURED_HOURS,
        "rampups_per_hour": (device.phone.modem.rampup_count - rampups_before) / MEASURED_HOURS,
        "radio_active_pct": 100.0 * active_ms / (MEASURED_HOURS * HOUR),
        "delivered": len(arrivals),
        "mean_latency_min": sum(latencies_min) / len(latencies_min) if latencies_min else 0.0,
    }


POLICIES = (
    "baseline",
    "synchronized",
    "periodic-5min-aligned",
    "periodic-5min",
    "periodic-1h",
    "charger",
    "immediate",
)


def run_all():
    return {name: run_policy(name) for name in POLICIES}


def render(results) -> str:
    base = results["baseline"]["energy_per_hour"]
    lines = [
        f"Ablation — transmission policy trade-offs (KPN, {MEASURED_HOURS} h measured)",
        "",
        f"{'Policy':<22} {'J/hour':>8} {'overhead':>9} {'battery J/h':>11} {'radio on':>9} {'mean latency':>13}",
    ]
    battery_base = results["baseline"]["battery_per_hour"]
    for name, stats in results.items():
        latency = f"{stats['mean_latency_min']:.1f} min" if name != "baseline" else "—"
        lines.append(
            f"{name:<22} {stats['energy_per_hour']:>8.2f} "
            f"{percent_increase(base, stats['energy_per_hour']):>8.2f}% "
            f"{stats['battery_per_hour']:>11.2f} "
            f"{stats['radio_active_pct']:>8.1f}% {latency:>13}"
        )
    return "\n".join(lines)


def test_ablation_transmission_policies(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("ablation_tailsync", render(results))

    base = results["baseline"]["energy_per_hour"]
    sync = results["synchronized"]
    dephased = results["periodic-5min"]
    hourly = results["periodic-1h"]
    charger = results["charger"]
    immediate = results["immediate"]

    # Everyone delivers (nearly) a day's worth of samples; the buffered
    # policies hold up to one interval/charge cycle at the horizon.
    expected = MEASURED_HOURS * 60
    for name, stats in results.items():
        if name != "baseline":
            assert stats["delivered"] >= 0.55 * expected, name

    # Synchronized: single-digit-percent overhead at minutes of latency.
    assert percent_increase(base, sync["energy_per_hour"]) < 10.0
    assert sync["mean_latency_min"] < 6.0

    # De-phased periodic flushing pays its own tails: materially more
    # energy than synchronized at the same latency class.
    assert dephased["energy_per_hour"] > sync["energy_per_hour"] * 1.15

    # Hourly flushing is in synchronized's energy class but an order of
    # magnitude worse in latency.
    assert abs(hourly["energy_per_hour"] - sync["energy_per_hour"]) < 0.10 * base
    assert hourly["mean_latency_min"] > 5 * sync["mean_latency_min"]

    # Charger delay: radio work happens on mains power, so its battery
    # cost sits in the synchronized class — but latency is hours.  This
    # is the punchline: tail-sync buys charger-grade battery life at
    # minutes of latency.
    assert abs(charger["battery_per_hour"] - sync["battery_per_hour"]) < 0.02 * base
    assert charger["mean_latency_min"] > 60.0

    # Immediate sending keeps the modem effectively always-on.
    assert immediate["energy_per_hour"] > 3.0 * base
    assert immediate["radio_active_pct"] > 90.0
    # Synchronized adds no radio sessions beyond the e-mail app's own.
    assert sync["rampups_per_hour"] <= results["baseline"]["rampups_per_hour"] + 1
