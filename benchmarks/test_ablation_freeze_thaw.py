"""Ablation — freeze/thaw vs data quality under interruptions.

Section 5.3: clusters were lost or truncated when "the clustering
algorithm [was] interrupted half-way through building a cluster, losing
its program state ... We have since added the freeze and thaw methods to
preserve application state across clean application restarts which will
help reduce the problem."

This ablation runs the same (heavily disrupted) localization session
with and without the clustering script persisting its state, and
measures Table 4's match/partial columns for both.  Expected shape:
freeze/thaw recovers most exact matches that interruptions had degraded
to partial.
"""

import dataclasses

import pytest

from repro.apps.deployment_study import DEFAULT_SESSIONS, run_session

#: A short but brutally disrupted session: a reboot roughly every day
#: and three script pushes in eight days.
DISRUPTED = dataclasses.replace(
    DEFAULT_SESSIONS[8],  # user8's profile
    name="ablation",
    days=8,
    reboot_rate_per_day=1.0,
    update_days=(1, 3, 6),
)


def run_both():
    without = run_session(DISRUPTED, seed=4242, with_freeze=False)
    with_freeze = run_session(DISRUPTED, seed=4242, with_freeze=True)
    return without, with_freeze


def render(without, with_freeze) -> str:
    lines = [
        "Ablation — freeze/thaw under ~1 reboot/day + 3 script pushes (8 days)",
        "",
        f"{'Variant':<16} {'Locations':>9} {'Match':>7} {'Partial':>8} {'Truth':>6}",
        f"{'without freeze':<16} {without.locations:>9} {without.match_percent:>6.1f}% "
        f"{without.partial_percent:>7.1f}% {without.truth_clusters:>6}",
        f"{'with freeze':<16} {with_freeze.locations:>9} {with_freeze.match_percent:>6.1f}% "
        f"{with_freeze.partial_percent:>7.1f}% {with_freeze.truth_clusters:>6}",
    ]
    return "\n".join(lines)


def test_ablation_freeze_thaw(benchmark, report):
    without, with_freeze = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report("ablation_freeze_thaw", render(without, with_freeze))

    # Identical world and disruptions: ground truth agrees.
    assert with_freeze.scans == without.scans

    # freeze/thaw improves exact matches under interruption...
    assert with_freeze.match_percent > without.match_percent
    # ...and the gap is material (the paper added the feature for this).
    assert with_freeze.match_percent - without.match_percent >= 3.0
    # Partial coverage is high for both (interruptions truncate, they
    # rarely destroy whole clusters outright).
    assert without.partial_percent > 80.0
    assert with_freeze.partial_percent >= without.partial_percent - 1.0
