"""Figure 3 — tail energy of a 3G transmission on KPN.

Paper: the modem ramps up at *a*, finishes transmitting at *b*, stays in
high-power DCH for ~6 s until *c*, then in medium-power FACH for another
~53.5 s until *d*; b→d (≈59.5 s) is the transmission's tail.  Small
spikes before a and after d are the idle paging duty cycle.

This benchmark recreates the trace: one e-mail check on the KPN profile
with the rail sampled like the paper's shunt+ADC rig, segmented both
from the sampled power series and from the exact modem state trace.
"""

import pytest

from repro.analysis.energy import (
    segment_tail_from_series,
    segment_tail_from_state_trace,
    series_energy_joules,
)
from repro.analysis.plotting import render_series
from repro.core.middleware import PogoSimulation
from repro.device.power import PowerMeter
from repro.device.radio import KPN
from repro.sim.kernel import MINUTE, SECOND

#: Segment the e-mail check at t = 5 min (not the connection handshake
#: near t = 0, which produces a structurally identical tail).
EMAIL_CHECK_AFTER_MS = 4 * MINUTE


def run_trace():
    sim = PogoSimulation(seed=3, carrier=KPN, record_trace=True)
    device = sim.add_device(with_email_app=True, simulate_paging=True,
                            track_power_history=True)
    meter = PowerMeter(sim.kernel, device.phone.rail, interval_ms=20.0)
    meter.start()
    sim.start()
    sim.run(duration_ms=7 * MINUTE)  # one e-mail check fires at t = 5 min
    meter.stop()
    from_series = segment_tail_from_series(
        meter.samples, KPN, search_from_ms=EMAIL_CHECK_AFTER_MS
    )
    from_states = segment_tail_from_state_trace(
        sim.trace, device.phone.modem.name, KPN, after_ms=EMAIL_CHECK_AFTER_MS
    )
    return meter, from_series, from_states


def render(meter, seg) -> str:
    rel = lambda t: (t - seg.a_ramp_start_ms) / 1000.0
    lines = [
        "Figure 3 — tail energy of one transmission (KPN profile)",
        "",
        f"  a (ramp-up starts) {rel(seg.a_ramp_start_ms):7.2f} s",
        f"  b (transfer ends)  {rel(seg.b_transfer_end_ms):7.2f} s",
        f"  c (DCH -> FACH)    {rel(seg.c_dch_end_ms):7.2f} s    DCH tail {seg.dch_tail_ms/1000:.1f} s  ({seg.dch_tail_energy_j:.2f} J)",
        f"  d (FACH -> idle)   {rel(seg.d_fach_end_ms):7.2f} s    FACH tail {seg.fach_tail_ms/1000:.1f} s  ({seg.fach_tail_energy_j:.2f} J)",
        "",
        f"  tail b->d: {seg.tail_duration_ms/1000:.1f} s (paper: ~59.5 s), energy {seg.tail_energy_j:.2f} J",
        f"  transfer itself: {seg.transfer_energy_j:.2f} J, ramp-up: {seg.ramp_energy_j:.2f} J",
        f"  peak rail power: {meter.samples.max():.2f} W",
        "",
        render_series(
            meter.samples,
            start_ms=seg.a_ramp_start_ms - 20 * SECOND,
            end_ms=seg.d_fach_end_ms + 20 * SECOND,
            height=8,
            annotations=[
                (seg.a_ramp_start_ms, "a"),
                (seg.b_transfer_end_ms, "b"),
                (seg.c_dch_end_ms, "c"),
                (seg.d_fach_end_ms, "d"),
            ],
        ),
    ]
    return "\n".join(lines)


def test_figure3_tail_segmentation(benchmark, report):
    meter, from_series, from_states = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    assert from_series is not None and from_states is not None
    report("figure3_tail_trace", render(meter, from_states))

    # The paper's annotated timings: ~6 s DCH, ~53.5 s FACH, b→d ≈ 59.5 s.
    assert from_states.dch_tail_ms == pytest.approx(6000.0, rel=0.05)
    assert from_states.fach_tail_ms == pytest.approx(53500.0, rel=0.05)
    assert from_states.tail_duration_ms == pytest.approx(59500.0, rel=0.05)

    # Reading the sampled power trace (as one would the paper's scope
    # shot) agrees with ground truth to within the sampling resolution.
    assert from_series.c_dch_end_ms == pytest.approx(from_states.c_dch_end_ms, abs=100.0)
    assert from_series.d_fach_end_ms == pytest.approx(from_states.d_fach_end_ms, abs=100.0)

    # The core premise of Section 4.7: tail energy dwarfs the payload's.
    assert from_states.tail_energy_j > 5.0 * from_states.transfer_energy_j

    # Power levels are ordered DCH > ramp > FACH > idle, as in the figure.
    profile = KPN
    assert profile.dch_w > profile.ramp_w > profile.fach_w > profile.idle_w
