"""Performance: the fleet data plane — wire frames vs per-stanza pickle.

The data-plane overhaul's headline claim: batching a barrier's handoffs
into one struct-packed, zlib-compressed frame cuts the bytes crossing
the worker pipes by well over 5x against the per-``Handoff`` pickle
stream it replaced.  This benchmark captures the real traffic of a
spawned fleet (via ``FleetResult.handoff_bytes``), re-prices the same
handoffs the old way (one ``pickle.dumps`` per record, the pre-PR wire
format), and asserts the reduction floor.

Also recorded: the barrier count the adaptive horizon produced and the
coordinator overhead (``wall - critical path``) — trend data for the
report file, not gated.
"""

import pickle

from repro.fleet import run_fleet
from repro.fleet.wire import decode_batch, encode_batch


def _pickle_cost(handoffs):
    """Bytes the pre-PR plane paid: one pickle per handoff, each way."""
    return sum(
        len(pickle.dumps(h, protocol=pickle.HIGHEST_PROTOCOL))
        for h in handoffs
    )


def test_perf_wire_vs_pickle_bytes(report):
    # A spawned fleet big enough for real cross-shard traffic but small
    # enough for CI.  handoff_bytes counts every frame both directions.
    result = run_fleet(60, 4, seed=9, hours=0.35, processes=True,
                       barrier_timeout_s=300.0)
    assert result.handoffs > 100, "fleet too quiet to measure"

    # Re-price the same logical traffic the old way.  Reconstruct a
    # representative batch stream by re-running in-process and capturing
    # per-barrier outboxes via the codec itself: encode/decode is
    # identity, so decoding each worker's frames would yield the same
    # handoffs; instead we simply re-run solo-captured handoffs.
    # Cheaper and exact: one frame round-trip per synthetic batch.
    inproc = run_fleet(60, 4, seed=9, hours=0.35, processes=False)
    assert inproc.handoffs == result.handoffs

    # Capture actual handoff objects by instrumenting a fresh run.
    captured = []
    from repro.fleet import coordinator as coord

    original = coord._handoff_sort_key

    def spy(handoff):
        captured.append(handoff)
        return original(handoff)

    coord._handoff_sort_key = spy
    try:
        run_fleet(60, 4, seed=9, hours=0.35, processes=False)
    finally:
        coord._handoff_sort_key = original

    assert len(captured) == result.handoffs
    pickled = _pickle_cost(captured)
    wire = len(encode_batch(captured))
    assert decode_batch(encode_batch(captured)) == captured

    ratio_measured = pickled / max(1, result.handoff_bytes)
    lines = [
        "Fleet data plane — wire frames vs per-stanza pickle "
        "(60 devices x 4 shards, 0.35 h, seed 9)",
        "",
        f"  handoffs exchanged        {result.handoffs:>12,}",
        f"  barriers                  {result.barriers:>12,}",
        f"  pickle bytes (pre-PR)     {pickled:>12,}",
        f"  wire bytes on the pipes   {result.handoff_bytes:>12,}",
        f"  reduction                 {ratio_measured:>11.1f}x",
        f"  one-frame whole-run batch {wire:>12,} B",
        f"  coordinator overhead      {result.wall_s - result.critical_path_s:>12.2f} s"
        f"  (wall {result.wall_s:.2f} - critical path "
        f"{result.critical_path_s:.2f})",
    ]
    report("perf_dataplane", "\n".join(lines))

    # The ISSUE's floor: ≥5x fewer bytes on the pipe.  Measured ~20-25x
    # on CPython 3.11 + stock zlib; 5x leaves room for zlib variants.
    assert result.handoff_bytes * 5 <= pickled, (
        f"wire framing saved only {ratio_measured:.1f}x over pickle "
        f"({result.handoff_bytes} vs {pickled} bytes)"
    )
