"""Figure 4 — Pogo's transmissions align with the e-mail app's wakeups.

Paper: "Pogo running alongside an e-mail application that periodically
checks for new mail.  The horizontal blocks show when the CPU, e-mail
app, and Pogo are active."  The CPU sleeps in between; Pogo's 1 Hz poll
(a sleep-frozen ``Thread.sleep`` loop) resumes only when the e-mail
app's alarm wakes the CPU, detects the byte counters moving and pushes
the buffered batch out inside the same radio session.

This benchmark reconstructs the three activity tracks and asserts the
alignment properties:

* every Pogo flush that transmitted data overlaps an e-mail activity
  block (within the radio session), so Pogo causes no ramp-ups of its
  own;
* the CPU is asleep for the overwhelming majority of the hour;
* the tail detector itself never wakes the CPU.
"""

import pytest

from repro.analysis.plotting import render_tracks
from repro.apps import battery_monitor
from repro.core.middleware import PogoSimulation
from repro.sim.kernel import MINUTE, SECOND
from repro.sim.trace import Interval


def run_timeline():
    sim = PogoSimulation(seed=5, record_trace=True)
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(battery_monitor.build_experiment(), [device.jid])

    flush_times = []
    original_flush = device.node.flush

    def traced_flush(reason="manual"):
        sent = original_flush(reason)
        if sent:
            flush_times.append((sim.kernel.now, reason, sent))
        return sent

    device.node.flush = traced_flush
    sim.run(duration_ms=10 * MINUTE)  # warm-up: connect, first syncs
    measure_start = sim.kernel.now
    baseline_wakes = device.phone.cpu.wake_count
    flush_times.clear()
    sim.run(hours=1)
    end = sim.kernel.now
    return {
        "device": device,
        "measure_start": measure_start,
        "end": end,
        "flushes": list(flush_times),
        "cpu_track": device.phone.cpu.awake_track.closed_intervals(end),
        "email_track": device.email_app().activity_track.closed_intervals(end),
        "radio_track": device.phone.modem.active_track.closed_intervals(end),
        "wakes": device.phone.cpu.wake_count - baseline_wakes,
    }


def in_window(intervals, start, end):
    # Strict at the right edge: a block opening exactly at the horizon
    # belongs to the next (unmeasured) interval.
    return [i for i in intervals if i.end >= start and i.start < end]


def render(data) -> str:
    start, end = data["measure_start"], data["end"]
    minutes = lambda t: (t - start) / MINUTE
    lines = [
        "Figure 4 — activity alignment over one measured hour",
        "",
        "  e-mail checks (block start → end)   Pogo flush inside the session",
    ]
    email_blocks = in_window(data["email_track"], start, end)
    for block in email_blocks:
        matching = [
            f for f in data["flushes"] if block.start - SECOND <= f[0] <= block.end + 30 * SECOND
        ]
        mark = f"flush @ {minutes(matching[0][0]):6.2f} min ({matching[0][2]} payloads)" if matching else "—"
        lines.append(
            f"  {minutes(block.start):6.2f} → {minutes(block.end):6.2f} min"
            f"        {mark}"
        )
    cpu = in_window(data["cpu_track"], start, end)
    awake = sum(i.duration for i in cpu)
    lines.append("")
    lines.append(
        f"  CPU awake {awake / SECOND:.1f} s of {(end-start)/SECOND:.0f} s "
        f"({100*awake/(end-start):.1f}%), {data['wakes']} wakeups"
    )
    lines.append(f"  Pogo flushes with data: {len(data['flushes'])}")
    # A 16-minute zoom, Figure 4 style (three e-mail checks).
    zoom_start, zoom_end = start, start + 16 * MINUTE
    pogo_blocks = [
        Interval(t - 500.0, t + 500.0) for t, _r, _s in data["flushes"]
    ]
    lines.append("")
    lines.append("  first 16 minutes (blocks = active):")
    lines.append(
        render_tracks(
            [
                ("CPU", data["cpu_track"]),
                ("e-mail", data["email_track"]),
                ("radio", data["radio_track"]),
                ("Pogo tx", pogo_blocks),
            ],
            zoom_start,
            zoom_end,
            width=64,
        )
    )
    return "\n".join(lines)


def test_figure4_transmission_alignment(benchmark, report):
    data = benchmark.pedantic(run_timeline, rounds=1, iterations=1)
    report("figure4_timeline", render(data))

    start, end = data["measure_start"], data["end"]
    email_blocks = in_window(data["email_track"], start, end)
    radio_blocks = in_window(data["radio_track"], start, end)
    flushes = data["flushes"]

    assert len(email_blocks) == 12  # every 5 minutes for an hour
    assert len(flushes) >= 10

    # Every data-carrying flush lands inside a radio session that an
    # e-mail check opened (the block plus its detection latency).
    for time, reason, _sent in flushes:
        assert any(
            block.start <= time <= block.end + 5 * SECOND for block in email_blocks
        ), f"flush at {time} ({reason}) not aligned with any e-mail check"

    # The radio never ramped up for Pogo alone: one active episode per
    # e-mail check (plus nothing else).
    assert len(radio_blocks) <= len(email_blocks) + 1

    # The CPU slept almost all hour.
    awake = sum(i.duration for i in in_window(data["cpu_track"], start, end))
    assert awake < 0.05 * (end - start)

    # Wakeups: one per e-mail check + one per battery sample (1/min).
    assert data["wakes"] <= 12 + 60 + 5
