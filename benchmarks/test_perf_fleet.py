"""Performance: fleet scaling — 5, 50 and 500 devices for one hour.

The ROADMAP's fleet-scale goal is that the simulator remains usable as
the fleet grows by two orders of magnitude: event throughput should stay
roughly flat (per-event cost is what the kernel optimisations bought),
and a 500-device simulated hour must complete comfortably within a CI
budget (< 60 s), or the deployment-scale studies become untouchable.

Rows are measured with :func:`repro.bench.run_fleet`, the same harness
behind ``python -m repro bench``, in the production configuration
(spans/metrics off).  Event counts per fleet size are deterministic and
double as a regression check: an "optimisation" that perturbs the
simulation would move them.

``REPRO_BENCH_FLEETS`` (comma-separated) overrides the fleet sizes.
"""

import os

import pytest

from repro.bench import BENCH_SEED, run_fleet
from repro.sim.kernel import HOUR

FLEETS = [
    int(part)
    for part in os.environ.get("REPRO_BENCH_FLEETS", "5,50,500").split(",")
    if part
]


def test_perf_fleet_scaling(report):
    sim_s = 1 * HOUR / 1000.0
    rows = []
    for devices in FLEETS:
        rows.append(run_fleet(devices, seed=BENCH_SEED, repeats=3 if devices <= 50 else 1))

    lines = [
        "Fleet scaling — 1 simulated hour of the Table 3 workload, "
        "production config (spans/metrics off)",
        "",
        f"  {'devices':>8} {'events':>10} {'wall (s)':>10} {'events/s':>12} {'speedup':>12}",
    ]
    for row in rows:
        lines.append(
            f"  {row['devices']:>8} {row['events']:>10,} {row['wall_s']:>10.3f} "
            f"{row['events_per_s']:>12,.0f} {row['speedup']:>11,.0f}x"
        )
    report("perf_fleet", "\n".join(lines))

    by_devices = {row["devices"]: row for row in rows}

    # Work scales with the fleet: events grow roughly linearly (each
    # device runs the same sensing script), never sublinearly.
    for small, large in zip(FLEETS, FLEETS[1:]):
        growth = large / small
        assert by_devices[large]["events"] > by_devices[small]["events"] * growth * 0.8

    # The CI budget: a 500-device simulated hour in well under a minute.
    # (Takes ~4-5 s on a 2024 laptop; the bound leaves >10x headroom.)
    largest = max(FLEETS)
    assert by_devices[largest]["wall_s"] < 60.0

    # Throughput must not collapse with scale — per-event cost at the
    # largest fleet stays within 4x of the smallest fleet's.
    smallest = min(FLEETS)
    assert (
        by_devices[largest]["events_per_s"]
        > by_devices[smallest]["events_per_s"] / 4.0
    )
