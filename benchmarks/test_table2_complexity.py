"""Table 2 — code complexity of Pogo applications.

Paper: the localization application totals 214 SLOC (scan.js 41,
clustering.js 155, collect.js 18) and RogueFinder 33 (28 + 5), with
sizes in bytes.  We count our deployable Python scripts the same way
(no blanks, no comments) and check the paper's qualitative claims:

* whole applications fit in a few hundred lines;
* ``clustering`` dominates the localization app ("by far the largest,
  mainly due to the modified DBSCAN clustering algorithm");
* RogueFinder is an order of magnitude smaller, with a trivial collector
  script.
"""

from repro.analysis.sloc import count_scripts
from repro.apps import localization, roguefinder

PAPER = {
    "localization": {"scan": 41, "clustering": 155, "collect": 18, "total": 214},
    "roguefinder": {"roguefinder": 28, "collect": 5, "total": 33},
}


def measure():
    loc_experiment = localization.build_experiment()
    loc_scripts = dict(loc_experiment.device_scripts)
    loc_scripts["collect"] = loc_experiment.collector_scripts["collect"]

    rf_experiment = roguefinder.build_experiment([(52.0, 4.3), (52.1, 4.4), (52.0, 4.5)])
    rf_scripts = dict(rf_experiment.device_scripts)
    rf_scripts["collect"] = rf_experiment.collector_scripts["collect"]

    return {
        "localization": count_scripts(loc_scripts),
        "roguefinder": count_scripts(rf_scripts),
    }


def render(measured) -> str:
    lines = ["Table 2 — code complexity for Pogo applications", ""]
    lines.append(f"{'Application':<14} {'File':<14} {'SLOC':>5} {'(paper)':>8} {'Size B':>7}")
    for app, rows in measured.items():
        for name, count in rows:
            paper = PAPER[app].get(name, "—")
            lines.append(
                f"{app:<14} {name:<14} {count.sloc:>5} {str(paper):>8} {count.size_bytes:>7}"
            )
    return "\n".join(lines)


def test_table2_code_complexity(benchmark, report):
    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("table2_complexity", render(measured))

    loc = dict(measured["localization"])
    rf = dict(measured["roguefinder"])

    # Applications are small: a couple hundred lines end to end.
    assert loc["total"].sloc < 400
    assert rf["total"].sloc < 80

    # clustering dominates the localization app.
    assert loc["clustering"].sloc > loc["scan"].sloc + loc["collect"].sloc
    assert loc["clustering"].sloc == max(c.sloc for n, c in measured["localization"] if n != "total")

    # The RogueFinder collector script is trivial (paper: 5 SLOC).
    assert rf["collect"].sloc <= 8

    # RogueFinder is much smaller than the localization app.
    assert rf["total"].sloc < 0.4 * loc["total"].sloc

    # Size columns are plausible byte counts for the SLOCs involved.
    for app in measured.values():
        for _name, count in app:
            assert count.size_bytes >= count.sloc * 5
