"""Table 4 — the 24-day localization deployment.

Paper: 8 participants (9 sessions), 246,908 scans (76.7 MB raw) reduced
to 3,525 locations (1.3 MB) — a 98.3 % reduction from on-line clustering
— with per-user match rates of 80–97 % (partial 83–100 %), degraded by
reboots, script updates, user 2a's trip abroad (24 h purge) and user 3's
3G outage.

Full fidelity takes a few minutes of wall time; set
``REPRO_TABLE4_SCALE`` (e.g. ``0.25``) to shrink every session's length
proportionally for a quick pass.  The assertions below are scale-robust:
they check the table's *shape* — per-user ordering, loss attribution,
and the overall data-reduction factor.
"""

import dataclasses
import os

import pytest

from repro.apps.deployment_study import (
    DEFAULT_SESSIONS,
    PAPER_TABLE4,
    format_table,
    run_deployment,
)


def scaled_sessions():
    scale = float(os.environ.get("REPRO_TABLE4_SCALE", "1.0"))
    if scale >= 0.999:
        return DEFAULT_SESSIONS
    sessions = []
    for spec in DEFAULT_SESSIONS:
        days = max(4, round(spec.days * scale))
        # The 24 h purge needs an offline window longer than a day to
        # bite at all, so disruption windows never shrink below ~1.5 days
        # regardless of scale.
        patch = {"days": days}
        if spec.trip_abroad_days is not None:
            start, end = spec.trip_abroad_days
            new_start = min(start * scale, days - 2.0)
            duration = max((end - start) * scale, 1.5)
            patch["trip_abroad_days"] = (new_start, min(new_start + duration, float(days)))
        if spec.cell_outage_days is not None:
            start, end = spec.cell_outage_days
            new_start = min(start * scale, days - 2.5)
            duration = max((end - start) * scale, 1.8)
            patch["cell_outage_days"] = (new_start, min(new_start + duration, float(days)))
        patch["update_days"] = tuple(
            max(1, round(d * scale)) for d in spec.update_days if round(d * scale) < days
        )
        sessions.append(dataclasses.replace(spec, **patch))
    return tuple(sessions)


def run():
    return run_deployment(scaled_sessions(), seed=2012)


def render(results) -> str:
    lines = ["Table 4 — localization deployment (simulated)", ""]
    lines.append(format_table(results))
    lines.append("")
    lines.append("paper, for comparison:")
    lines.append(
        f"{'User':<8} {'Scans':>7} {'Size':>11} {'Locations':>9} {'Size':>9} {'Match':>7} {'Partial':>8}"
    )
    for name, row in PAPER_TABLE4.items():
        lines.append(
            f"{name:<8} {row['scans']:>7,} {row['raw']:>11,} {row['locations']:>9,} "
            f"{row['reduced']:>9,} {row['match']:>6}% {row['partial']:>7}%"
        )
    return "\n".join(lines)


def test_table4_deployment(benchmark, report):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("table4_localization", render(results))
    by_name = {r.name: r for r in results}

    # Every session produced data and ground truth.
    for result in results:
        assert result.scans > 1000
        assert result.locations > 5
        assert result.truth_clusters > 5

    # The headline: on-line clustering cuts transferred bytes by ~98%.
    total_raw = sum(r.raw_bytes for r in results)
    total_reduced = sum(r.location_bytes for r in results)
    reduction = 100.0 * (1.0 - total_reduced / total_raw)
    assert reduction > 90.0

    # Partial >= match for everyone (partial includes exact).
    for result in results:
        assert result.partial_percent >= result.match_percent

    # The two disrupted users lost data the others did not:
    # user 2a (trip abroad, purge) and user 3 (3G outage) sit at the
    # bottom of the partial column, as in the paper (90 % and 83 % vs
    # 96-100 % for everyone else).
    clean = [r for r in results if r.name not in ("user2a", "user3")]
    for disrupted in (by_name["user2a"], by_name["user3"]):
        assert disrupted.partial_percent < min(r.partial_percent for r in clean)
        assert disrupted.expired_messages > 0  # the 24 h purge fired

    # Undisrupted users still show match < 100%: reboots and script
    # updates truncate clusters (the "later start time" effect).
    assert any(r.match_percent < 99.5 for r in clean)
    # But their data quality is high.
    for result in clean:
        assert result.partial_percent > 90.0

    # Mobile user 3 produces far more location sessions per scan than
    # anyone else (paper: 1,282 locations vs 121-703).  Measured on the
    # ground truth, since user 3's *reported* set is cut by the purge.
    others_max = max(r.truth_clusters / max(r.scans, 1) for r in clean)
    assert by_name["user3"].truth_clusters / by_name["user3"].scans > others_max

    # Per-location wire size lands near the paper's (~400-500 B).
    for result in results:
        per_location = result.location_bytes / result.locations
        assert 150 <= per_location <= 1500
