"""Performance: simulator throughput and per-device middleware cost.

Not a paper table — this benchmark keeps the reproduction honest about
its own substrate: the discrete-event simulator must stay fast enough
that the Table 4 deployment (≈200 device-days) completes in minutes.
It measures wall-clock time to simulate one hour of the Table 3 workload
for a small fleet, and reports simulated-vs-wall speedup and kernel
event throughput.

Two configurations are reported:

* **instrumented** — the default ``PogoSimulation`` (lifecycle spans and
  the metrics plane on), timed by pytest-benchmark; comparable with the
  historical numbers in ``benchmarks/out/perf_simulator.txt``.
* **production** — ``spans=False, metrics=False``: both observability
  planes swapped to their no-op fast lanes, which is the configuration
  the fleet-scale runs (and ``python -m repro bench``) use.  Reported as
  best-of-N wall time, the robust estimator on noisy CI boxes.

``REPRO_BENCH_FLEET`` overrides the fleet size (default 5) so the same
file can probe larger fleets without editing code.
"""

import os
import time

import pytest

from repro.apps import battery_monitor
from repro.core.middleware import PogoSimulation
from repro.sim.kernel import HOUR

FLEET = int(os.environ.get("REPRO_BENCH_FLEET", "5"))


def simulate_fleet_hour(spans=True, metrics=True):
    sim = PogoSimulation(seed=9, spans=spans, metrics=metrics)
    collector = sim.add_collector("alice")
    devices = [sim.add_device(with_email_app=True) for _ in range(FLEET)]
    sim.start()
    sim.assign(collector, devices)
    collector.node.deploy(battery_monitor.build_experiment(), [d.jid for d in devices])
    sim.run(hours=1)
    return sim


def test_perf_fleet_hour(benchmark, report):
    sim = benchmark(simulate_fleet_hour)
    wall_s = benchmark.stats["mean"]
    sim_s = 1 * HOUR / 1000.0
    events = sim.kernel.events_executed

    # Production shape: no-op span/metric fast lanes, best of 3.
    prod_walls = []
    for _ in range(3):
        t0 = time.perf_counter()
        prod_sim = simulate_fleet_hour(spans=False, metrics=False)
        prod_walls.append(time.perf_counter() - t0)
    prod_s = min(prod_walls)
    prod_events = prod_sim.kernel.events_executed

    lines = [
        "Simulator throughput — 1 simulated hour, "
        f"{FLEET} devices + 1 collector (Table 3 workload)",
        "",
        "instrumented (spans + metrics on, pytest-benchmark mean):",
        f"  kernel events executed : {events:,}",
        f"  wall time (mean)       : {wall_s*1000:.0f} ms",
        f"  simulated/wall speedup : {sim_s / wall_s:,.0f}x",
        f"  event throughput       : {events / wall_s:,.0f} events/s",
        "",
        "production (spans=False metrics=False, best of 3):",
        f"  kernel events executed : {prod_events:,}",
        f"  wall time (best)       : {prod_s*1000:.0f} ms",
        f"  simulated/wall speedup : {sim_s / prod_s:,.0f}x",
        f"  event throughput       : {prod_events / prod_s:,.0f} events/s",
    ]
    report("perf_simulator", "\n".join(lines))

    # Disabling the observability planes must not change the simulation:
    # the no-op fast lanes are dispatch shims, not behaviour switches.
    assert prod_events == events

    # The Table 4 study needs ≥ ~3000x real time per device to finish in
    # minutes.  The kernel sustains ~80,000x on a 2024 laptop; 5,000x
    # still leaves an order of magnitude for slow CI machines.
    assert sim_s / wall_s > 5_000.0
    assert events > 2_000
