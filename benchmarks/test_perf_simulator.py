"""Performance: simulator throughput and per-device middleware cost.

Not a paper table — this benchmark keeps the reproduction honest about
its own substrate: the discrete-event simulator must stay fast enough
that the Table 4 deployment (≈200 device-days) completes in minutes.
It measures wall-clock time to simulate one hour of the Table 3 workload
for a small fleet, and reports simulated-vs-wall speedup and kernel
event throughput.
"""

import pytest

from repro.apps import battery_monitor
from repro.core.middleware import PogoSimulation
from repro.sim.kernel import HOUR

FLEET = 5


def simulate_fleet_hour():
    sim = PogoSimulation(seed=9)
    collector = sim.add_collector("alice")
    devices = [sim.add_device(with_email_app=True) for _ in range(FLEET)]
    sim.start()
    sim.assign(collector, devices)
    collector.node.deploy(battery_monitor.build_experiment(), [d.jid for d in devices])
    sim.run(hours=1)
    return sim


def test_perf_fleet_hour(benchmark, report):
    sim = benchmark(simulate_fleet_hour)
    wall_s = benchmark.stats["mean"]
    sim_s = 1 * HOUR / 1000.0
    events = sim.kernel.events_executed
    lines = [
        "Simulator throughput — 1 simulated hour, "
        f"{FLEET} devices + 1 collector (Table 3 workload)",
        "",
        f"  kernel events executed : {events:,}",
        f"  wall time (mean)       : {wall_s*1000:.0f} ms",
        f"  simulated/wall speedup : {sim_s / wall_s:,.0f}x",
        f"  event throughput       : {events / wall_s:,.0f} events/s",
    ]
    report("perf_simulator", "\n".join(lines))

    # The Table 4 study needs ≥ ~3000x real time per device to finish in
    # minutes; leave generous slack for slow CI machines.
    assert sim_s / wall_s > 200.0
    assert events > 2_000
