"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation (Section 5).  Conventions:

* the experiment runs once inside ``benchmark.pedantic(...)`` so that
  ``pytest benchmarks/ --benchmark-only`` both exercises and times it;
* the regenerated table is printed (visible with ``-s``) **and** written
  to ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can reference the
  exact output of the last run;
* assertions check the paper's qualitative *shape* (who wins, orderings,
  rough factors) rather than absolute joules, which depend on the
  authors' handset and carrier configuration.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def report():
    """Writer fixture: report(name, text) prints and persists the table."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return write
