"""Performance: envelope publish path vs the seed's per-hop walks.

Not a paper table — this benchmark guards the envelope refactor's reason
to exist.  The seed re-did per-message work at every hop of the publish
path: a validation walk at the broker, a deep copy per local subscriber,
and a fresh validate+``json.dumps`` at the buffer, the transport and the
XMPP switch.  The envelope does each unit of work once (validate+freeze
at ingest, one cached serialization) and splices the cached text into
enclosing stanzas.

The legacy path below replicates the seed implementation *exactly*
(checked against git history), so the measured ratio is refactor-vs-seed
rather than refactor-vs-strawman.  Workload: a 50-device fleet's worth
of telemetry publishes, two local subscribers each, then the three
downstream serialization hops every remote-bound message paid.
"""

import json
import time

from repro.core.broker import Broker
from repro.core.envelope import Envelope
from repro.core.messages import message_size_bytes, to_json
from repro.sim.spans import SpanRecorder

DEVICES = 50
MESSAGES_PER_DEVICE = 40
SUBSCRIBERS = 2
#: Downstream hops that re-serialized the stanza in the seed: buffer
#: persist, transport size accounting, switchboard size accounting.
SIZE_HOPS = 3
ROUNDS = 5

_CANONICAL = {"separators": (",", ":"), "sort_keys": True, "ensure_ascii": False}
_SCALARS = (str, int, float, bool, type(None))


def make_workload():
    """One telemetry message per (device, tick), like the Table 3 app."""
    messages = []
    for device in range(DEVICES):
        for tick in range(MESSAGES_PER_DEVICE):
            messages.append(
                {
                    "device": f"phone-{device:03d}",
                    "timestamp": 1_000.0 * tick,
                    "level": (device * 7 + tick) % 100 / 100.0,
                    "voltage": 3.7 + (tick % 10) / 50.0,
                    "charging": tick % 8 == 0,
                    "samples": [float(device + i) for i in range(8)],
                    "meta": {"seq": tick, "carrier": "kpn", "iface": "3g"},
                }
            )
    return messages


# ---------------------------------------------------------------------------
# Legacy path: the seed's implementation, replicated verbatim
# ---------------------------------------------------------------------------


def legacy_validate(value, _path="$"):
    if isinstance(value, _SCALARS):
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"non-string key {key!r} at {_path}")
            legacy_validate(item, f"{_path}.{key}")
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            legacy_validate(item, f"{_path}[{index}]")
        return
    raise TypeError(f"unsupported type {type(value).__name__} at {_path}")


def legacy_copy(value):
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        return {key: legacy_copy(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [legacy_copy(item) for item in value]
    raise TypeError(f"unsupported type {type(value).__name__}")


def legacy_to_json(value):
    legacy_validate(value)
    return json.dumps(value, **_CANONICAL)


def run_legacy(messages):
    sink = []
    handlers = [sink.append for _ in range(SUBSCRIBERS)]
    total_bytes = 0
    for seq, message in enumerate(messages):
        # Broker: validate, then one deep copy per subscriber.
        legacy_validate(message)
        for handler in handlers:
            handler(legacy_copy(message))
        # Buffer persist: the bare dumps the seed's SqliteStore used.
        json.dumps(message)
        # Reliable-link stanza, re-serialized at each accounting hop.
        stanza = {"kind": "env", "seq": seq, "base": 0, "ack": 0, "payload": message}
        for _ in range(SIZE_HOPS):
            total_bytes = len(legacy_to_json(stanza).encode("utf-8"))
    return sink, total_bytes


# ---------------------------------------------------------------------------
# Envelope path: the production code under test
# ---------------------------------------------------------------------------


def run_envelope(messages):
    # Lifecycle tracing is default-on in production, so the measured path
    # includes it: every publish tags the envelope and records a fan-out
    # span into the flight recorder.
    spans = SpanRecorder(clock=lambda: 0.0)
    broker = Broker(spans=spans)
    sink = []
    for _ in range(SUBSCRIBERS):
        broker.subscribe("telemetry", sink.append)
    total_bytes = 0
    for seq, message in enumerate(messages):
        envelope = Envelope.wrap(message)
        broker.publish("telemetry", envelope)
        # Buffer persist: canonical text, answered from the cache.
        to_json(envelope)
        stanza = {"kind": "env", "seq": seq, "base": 0, "ack": 0, "payload": envelope}
        for _ in range(SIZE_HOPS):
            total_bytes = message_size_bytes(stanza)
    return sink, total_bytes


def best_of(fn, messages, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(messages)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_perf_envelope_publish_path(report):
    messages = make_workload()
    count = len(messages)

    legacy_s, (legacy_sink, legacy_bytes) = best_of(run_legacy, messages)
    envelope_s, (envelope_sink, envelope_bytes) = best_of(run_envelope, messages)

    # Equivalence first: same deliveries, same wire accounting.
    assert len(legacy_sink) == len(envelope_sink) == count * SUBSCRIBERS
    assert legacy_sink[0] == envelope_sink[0]
    assert legacy_bytes == envelope_bytes

    speedup = legacy_s / envelope_s
    lines = [
        "Envelope publish path — "
        f"{DEVICES} devices x {MESSAGES_PER_DEVICE} messages, "
        f"{SUBSCRIBERS} subscribers, {SIZE_HOPS} serialization hops",
        "",
        f"  legacy (seed) path     : {legacy_s*1000:8.1f} ms "
        f"({count/legacy_s:,.0f} msg/s)",
        f"  envelope path          : {envelope_s*1000:8.1f} ms "
        f"({count/envelope_s:,.0f} msg/s)",
        f"  speedup                : {speedup:.2f}x",
    ]
    report("perf_envelope", "\n".join(lines))

    # The refactor must pay for itself on the 50-device workload.
    assert speedup >= 1.3
