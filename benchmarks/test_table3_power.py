"""Table 3 — power consumption with and without Pogo, per carrier.

Paper (Samsung Galaxy Nexus, e-mail checked every 5 minutes, Pogo
sampling battery voltage once per minute, reported in batches of five):

    Carrier    Without Pogo   With Pogo   Increase
    KPN            277.59 J    288.76 J      4.09%
    T-Mobile       182.05 J    194.30 J      6.73%
    Vodafone       205.47 J    218.98 J      6.57%

Qualitative shape this benchmark asserts:

* baseline ordering KPN > Vodafone > T-Mobile (KPN's much longer tail);
* Pogo's overhead is single-digit percent on every carrier;
* the *absolute* overhead is roughly carrier-independent (it is CPU
  wakeups + piggybacked payload), so the *relative* overhead is smallest
  on KPN — exactly the inversion visible in the paper's numbers;
* readings arrive in batches of ~5 (one per e-mail check).
"""

import pytest

from repro.analysis.energy import percent_increase
from repro.apps import battery_monitor
from repro.core.middleware import PogoSimulation
from repro.device.radio import CARRIERS
from repro.sim.kernel import MINUTE

PAPER = {
    "KPN": (277.59, 288.76, 4.09),
    "T-Mobile": (182.05, 194.30, 6.73),
    "Vodafone": (205.47, 218.98, 6.57),
}

WARMUP_MS = 10 * MINUTE


def run_hour(carrier, with_pogo):
    sim = PogoSimulation(seed=3, carrier=carrier)
    collector = sim.add_collector("alice")
    device = sim.add_device(with_email_app=True)
    sim.start()
    sim.assign(collector, [device])
    context = None
    if with_pogo:
        context = collector.node.deploy(
            battery_monitor.build_experiment(), [device.jid]
        )
    sim.run(duration_ms=WARMUP_MS)
    device.phone.rail.reset_energy()
    batches_before = device.node.batches_sent
    payloads_before = device.node.payloads_sent
    sim.run(hours=1)
    energy = device.phone.rail.energy_joules
    stats = {
        "energy": energy,
        "batches": device.node.batches_sent - batches_before,
        "payloads": device.node.payloads_sent - payloads_before,
        "rampups": device.phone.modem.rampup_count,
        "email_checks": device.email_app().check_count,
    }
    return stats


def run_all():
    results = {}
    for name, carrier in CARRIERS.items():
        base = run_hour(carrier, with_pogo=False)
        pogo = run_hour(carrier, with_pogo=True)
        results[name] = (base, pogo)
    return results


def render(results) -> str:
    lines = [
        "Table 3 — hourly energy, e-mail every 5 min, Pogo battery @ 1/min",
        "",
        f"{'Carrier':<10} {'Without':>10} {'With':>10} {'Increase':>9}   "
        f"{'(paper: without / with / incr)':<30}",
    ]
    for name, (base, pogo) in results.items():
        increase = percent_increase(base["energy"], pogo["energy"])
        p_base, p_with, p_inc = PAPER[name]
        lines.append(
            f"{name:<10} {base['energy']:>8.2f} J {pogo['energy']:>8.2f} J "
            f"{increase:>8.2f}%   ({p_base:.2f} / {p_with:.2f} / {p_inc:.2f}%)"
        )
    kpn_base, kpn_pogo = results["KPN"]
    lines.append("")
    lines.append(
        f"batching on KPN: {kpn_pogo['payloads']} readings in "
        f"{kpn_pogo['batches']} batches "
        f"(~{kpn_pogo['payloads'] / max(kpn_pogo['batches'], 1):.1f}/batch; paper: batches of five)"
    )
    return "\n".join(lines)


def test_table3_power_consumption(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("table3_power", render(results))

    energies = {name: (b["energy"], p["energy"]) for name, (b, p) in results.items()}

    # Baselines land near the paper's absolute values (same ballpark
    # handset model) — generous 15% envelope, shape asserted exactly.
    for name, (base, _pogo) in energies.items():
        assert base == pytest.approx(PAPER[name][0], rel=0.15)

    # Baseline ordering: KPN (longest tail) > Vodafone > T-Mobile.
    assert energies["KPN"][0] > energies["Vodafone"][0] > energies["T-Mobile"][0]

    increases = {
        name: percent_increase(base, pogo) for name, (base, pogo) in energies.items()
    }
    # Single-digit-percent overhead everywhere.
    for name, inc in increases.items():
        assert 0.0 < inc < 10.0, f"{name}: {inc}"

    # Relative overhead smallest on KPN (constant absolute overhead over
    # the largest baseline) — the inversion in the paper's Increase column.
    assert increases["KPN"] < increases["Vodafone"]
    assert increases["KPN"] < increases["T-Mobile"]

    # Absolute overhead roughly carrier-independent (within 40%).
    absolute = [pogo - base for base, pogo in energies.values()]
    assert max(absolute) < 1.4 * min(absolute)

    # Batches of ~5 readings per e-mail check, not one send per sample.
    for name, (base, pogo) in results.items():
        assert pogo["payloads"] >= 50
        assert pogo["batches"] <= 0.35 * pogo["payloads"]
