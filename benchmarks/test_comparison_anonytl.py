"""Section 5.1 — the AnonyTL vs Pogo programming-model comparison, executed.

The paper compares notations (Listing 1: six lines of AnonyTL; Listing
2 + Table 2: 28+5 SLOC of Pogo script) and argues the extra complexity
buys expressiveness: "toggling the Wi-Fi scanning sensor depending on
the user location required extra work" — work the DSL simply cannot
express.  This benchmark runs both RogueFinder implementations against
the *same* simulated user and world for a full day and measures:

* notation size (the Table 2 comparison, extended with the DSL);
* report equivalence: both report scans only inside the polygon;
* the energy cost of the DSL's semantics: the compiled task keeps the
  Wi-Fi scanner sampling all day, while the handwritten script
  releases its subscription outside the geofence.
"""

import pytest

from repro.analysis.sloc import count_sloc
from repro.anonytl import ROGUEFINDER_TASK, compile_task, parse_task
from repro.apps import roguefinder
from repro.core.middleware import PogoSimulation
from repro.sim.kernel import HOUR
from repro.world.geometry import to_latlon


def polygon_latlon(device, half=150.0):
    office = device.user_world.places["office"][0]
    return [
        to_latlon(office.center.offset(dx, dy))
        for dx, dy in ((-half, -half), (half, -half), (half, half), (-half, half))
    ]


def office_task_text(device):
    points = " ".join(
        f"(Point {lon} {lat})" for lat, lon in polygon_latlon(device)
    )
    return (
        "(Task 25043) \n"
        "(Report (location SSIDs) (Every 1 Minute)\n"
        f"  (In location (Polygon {points})))"
    )


def run_variant(variant):
    sim = PogoSimulation(seed=21)
    collector = sim.add_collector("alice")
    device = sim.add_device(world_days=1, with_email_app=True)
    sim.start()
    sim.assign(collector, [device])

    if variant == "anonytl":
        task = parse_task(office_task_text(device))
        experiment = compile_task(task)
        report_list = "reports"
    else:
        experiment = roguefinder.build_experiment(polygon_latlon(device))
        report_list = "scans"
    context = collector.node.deploy(experiment, [device.jid])
    sim.run(days=1)

    sensor = device.node.sensor_manager.sensors["wifi-scan"]
    reports = context.scripts["collect"].namespace[report_list]
    return {
        "reports": len(reports),
        "scans_performed": sensor.completed_scans,
        "energy_j": device.phone.energy_joules,
        "device": device,
        "experiment": experiment,
    }


def run_both():
    return run_variant("anonytl"), run_variant("pogo")


def render(anonytl, pogo) -> str:
    task_sloc = count_sloc(ROGUEFINDER_TASK, language="javascript").sloc
    pogo_device = count_sloc(pogo["experiment"].device_scripts["roguefinder"]).sloc
    pogo_collect = count_sloc(pogo["experiment"].collector_scripts["collect"]).sloc
    generated = count_sloc(anonytl["experiment"].device_scripts["task"]).sloc
    lines = [
        "Section 5.1 — AnonyTL (Listing 1) vs Pogo script (Listing 2), 1 day",
        "",
        "notation:",
        f"  AnonyTL task source            {task_sloc:>4} lines   (paper: 6)",
        f"  Pogo roguefinder + collect     {pogo_device:>4} + {pogo_collect} SLOC (paper: 28 + 5)",
        f"  (compiled AnonyTL device code  {generated:>4} SLOC — machine-generated)",
        "",
        "behaviour over one simulated day:",
        f"  {'':<24}{'AnonyTL':>10} {'Pogo script':>12}",
        f"  {'reports delivered':<24}{anonytl['reports']:>10} {pogo['reports']:>12}",
        f"  {'Wi-Fi scans performed':<24}{anonytl['scans_performed']:>10} {pogo['scans_performed']:>12}",
        f"  {'device energy (J)':<24}{anonytl['energy_j']:>10.1f} {pogo['energy_j']:>12.1f}",
        "",
        "The DSL cannot express duty-cycling: the compiled task scans all",
        "day; the Pogo script releases its subscription outside the fence.",
    ]
    return "\n".join(lines)


def test_comparison_anonytl_vs_pogo(benchmark, report):
    anonytl, pogo = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report("comparison_anonytl", render(anonytl, pogo))

    # Both deliver a meaningful number of in-office reports, of the same
    # order (the task reports once per minute when inside).
    assert anonytl["reports"] > 100
    assert pogo["reports"] > 100
    ratio = anonytl["reports"] / pogo["reports"]
    assert 0.5 < ratio < 2.0

    # The DSL's semantics scan all day; the script scans only inside the
    # geofence (plus the geofence-transition slack) — a large factor.
    assert anonytl["scans_performed"] > 2.0 * pogo["scans_performed"]

    # And that costs real energy.
    assert anonytl["energy_j"] > pogo["energy_j"] * 1.1

    # Notation: the task is far smaller than the handwritten script —
    # the trade the paper describes.
    task_sloc = count_sloc(ROGUEFINDER_TASK, language="javascript").sloc
    pogo_sloc = count_sloc(pogo["experiment"].device_scripts["roguefinder"]).sloc
    assert task_sloc < 10
    assert pogo_sloc > 2 * task_sloc
