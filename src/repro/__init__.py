"""Reproduction of "Pogo, a Middleware for Mobile Phone Sensing".

Brouwers & Langendoen, MIDDLEWARE 2012 (doi:10.1007/978-3-642-35170-9_2).

The package implements the Pogo middleware — a scriptable
publish/subscribe framework for mobile phone sensing testbeds — together
with every substrate the paper's evaluation depends on, simulated:
phone hardware (CPU sleep states, 3G RRC power-state machine, battery),
an XMPP-like switchboard with realistic loss, a synthetic world with
Wi-Fi environments and human mobility, and the analysis pipeline
(sliding-window DBSCAN clustering, energy-trace segmentation).

Quick start::

    from repro import PogoSimulation, Experiment

    sim = PogoSimulation(seed=1)
    researcher = sim.add_collector("alice")
    phone = sim.add_device(world_days=1)
    sim.start()
    sim.assign(researcher, [phone])
    researcher.node.deploy(
        Experiment(
            experiment_id="hello",
            collector_scripts={"collect": COLLECT_SRC},
        ),
        [phone.jid],
    )
    sim.run(hours=1)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core.deployment import Experiment
from .core.middleware import PogoSimulation, SimulatedCollector, SimulatedDevice
from .core.shard import DeviceSpec, Shard, ShardSpec, SimContext
from .core.node import CollectorNode, DeviceNode
from .core.broker import Broker, Subscription
from .core.tailsync import (
    ImmediatePolicy,
    PeriodicPolicy,
    SynchronizedPolicy,
    TailDetector,
)
from .device.radio import CARRIERS, KPN, T_MOBILE, VODAFONE, CarrierProfile
from .fleet import FleetResult, fleet_spec, plan_fleet, run_fleet
from .sim.kernel import DAY, HOUR, MINUTE, SECOND, Kernel
from .sim.randomness import RandomStreams

__version__ = "1.0.0"

__all__ = [
    "Experiment",
    "PogoSimulation",
    "Shard",
    "ShardSpec",
    "DeviceSpec",
    "SimContext",
    "SimulatedCollector",
    "SimulatedDevice",
    "CollectorNode",
    "DeviceNode",
    "Broker",
    "Subscription",
    "ImmediatePolicy",
    "PeriodicPolicy",
    "SynchronizedPolicy",
    "TailDetector",
    "CARRIERS",
    "KPN",
    "T_MOBILE",
    "VODAFONE",
    "CarrierProfile",
    "FleetResult",
    "fleet_spec",
    "plan_fleet",
    "run_fleet",
    "DAY",
    "HOUR",
    "MINUTE",
    "SECOND",
    "Kernel",
    "RandomStreams",
    "__version__",
]
