"""Pogo's scheduler: wake locks, alarms and a serialized task pool.

Section 4.5: "The Pogo framework abstracts away the complexities of
setting alarms and managing wake locks through a *scheduler* component
that executes submitted tasks in a thread pool, and supports delayed
execution. ... When there are no tasks to execute, the CPU can safely go
to sleep."

The simulation analogue: tasks run as kernel events with a Pogo wake lock
held across each execution, and delayed tasks use CPU alarms so the
device can sleep in between.  Two semantics from the paper are enforced
on top:

* **Per-key serialization.**  "the threads are synchronized so that only
  a single thread will run code from a given script at any time" — tasks
  submitted with the same ``serial_key`` run strictly in FIFO order, one
  at a time.
* **Error containment.**  A task that raises is recorded and reported to
  an error listener, never propagated into the kernel loop.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..sim.kernel import Kernel
from ..device.cpu import Alarm, Cpu

#: The wake-lock tag Pogo holds while running tasks.
WAKE_LOCK_TAG = "pogo-scheduler"


class ScheduledTask:
    """Handle for a delayed task."""

    def __init__(self) -> None:
        self.cancelled = False
        self.fired = False
        self._alarm: Optional[Alarm] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._alarm is not None:
            self._alarm.cancel()


class _TaskFire:
    """Picklable alarm/timer callback that submits a scheduled task.

    A nested ``fire()`` closure would work identically but cannot be
    pickled, and scheduler timers are reachable from the kernel's event
    queue — part of the Shard snapshot graph.  ``handle`` is set only
    for kernel-native repeating chains (so a stale firing can tear the
    chain down, exactly as the old closure did).
    """

    __slots__ = ("scheduler", "task", "fn", "args", "serial_key", "handle")

    def __init__(self, scheduler, task: "ScheduledTask", fn: Callable, args: tuple,
                 serial_key: Optional[str]) -> None:
        self.scheduler = scheduler
        self.task = task
        self.fn = fn
        self.args = args
        self.serial_key = serial_key
        self.handle = None

    def __call__(self) -> None:
        task = self.task
        if task.cancelled or self.scheduler.stopped:
            if self.handle is not None:
                self.handle.cancel()
            return
        task.fired = True
        self.scheduler.submit(self.fn, *self.args, serial_key=self.serial_key)


class PogoScheduler:
    """Runs middleware and script code with correct power behaviour."""

    def __init__(self, kernel: Kernel, cpu: Cpu, name: str = "scheduler") -> None:
        self.kernel = kernel
        self.cpu = cpu
        self.name = name
        self.tasks_run = 0
        self.task_errors = 0
        #: Called with (serial_key, exception) when a task raises.
        self.on_error: List[Callable[[Optional[str], BaseException], None]] = []
        #: serial key -> queue of (fn, args, enqueued_ms)
        self._serial_queues: Dict[str, Deque[Tuple[Callable, tuple, float]]] = {}
        self._serial_running: Dict[str, bool] = {}
        self.stopped = False
        self._spans = kernel.spans
        self._h_task = kernel.spans.hop("scheduler.task")
        #: Chaos seam: a witness with ``task_started(scheduler, key)`` /
        #: ``task_finished(scheduler, key)``, used by the invariant
        #: monitor to prove the paper's serialization guarantee ("only a
        #: single thread will run code from a given script at any time").
        self.observer = None

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., Any], *args: Any, serial_key: Optional[str] = None) -> None:
        """Run a task as soon as possible, holding the Pogo wake lock."""
        if self.stopped:
            return
        if serial_key is None:
            self.cpu.acquire_wake_lock(WAKE_LOCK_TAG)
            self.kernel.schedule(0.0, self._run_free, fn, args)
        else:
            queue = self._serial_queues.setdefault(serial_key, deque())
            queue.append((fn, args, self.kernel.now))
            self._pump_serial(serial_key)

    def schedule(
        self,
        delay_ms: float,
        fn: Callable[..., Any],
        *args: Any,
        serial_key: Optional[str] = None,
    ) -> ScheduledTask:
        """Run a task after ``delay_ms``, waking the CPU via an alarm."""
        task = ScheduledTask()
        if self.stopped:
            task.cancelled = True
            return task

        fire = _TaskFire(self, task, fn, args, serial_key)
        task._alarm = self.cpu.set_alarm(delay_ms, fire)
        return task

    def schedule_repeating(
        self,
        interval_ms: float,
        fn: Callable[..., Any],
        *args: Any,
        serial_key: Optional[str] = None,
        initial_delay_ms: Optional[float] = None,
    ) -> ScheduledTask:
        """Run a task at a fixed rate."""
        task = ScheduledTask()
        if self.stopped:
            task.cancelled = True
            return task

        fire = _TaskFire(self, task, fn, args, serial_key)
        task._alarm = self.cpu.set_repeating_alarm(
            interval_ms, fire, initial_delay_ms=initial_delay_ms
        )
        return task

    def stop(self) -> None:
        """Stop accepting work (middleware shutdown)."""
        self.stopped = True
        self._serial_queues.clear()
        self._serial_running.clear()

    def restart(self) -> None:
        """Accept work again (after a reboot)."""
        self.stopped = False

    # ------------------------------------------------------------------
    def _run_free(self, fn: Callable, args: tuple) -> None:
        try:
            self._execute(fn, args, None)
        finally:
            self.cpu.release_wake_lock(WAKE_LOCK_TAG)

    def _pump_serial(self, key: str) -> None:
        if self._serial_running.get(key) or self.stopped:
            return
        queue = self._serial_queues.get(key)
        if not queue:
            return
        self._serial_running[key] = True
        fn, args, enqueued_ms = queue.popleft()
        self.cpu.acquire_wake_lock(WAKE_LOCK_TAG)
        self.kernel.schedule(0.0, self._run_serial, key, fn, args, enqueued_ms)

    def _run_serial(self, key: str, fn: Callable, args: tuple, enqueued_ms: float = 0.0) -> None:
        if self._spans.enabled:
            # Span covers submit -> execution start: the serialization
            # queue wait (a slow handler starves its siblings here).
            self._h_task.record(
                0, self._spans.active_parent, enqueued_ms, self.kernel.now, {"key": key}
            )
        try:
            self._execute(fn, args, key)
        finally:
            self.cpu.release_wake_lock(WAKE_LOCK_TAG)
            self._serial_running[key] = False
            self._pump_serial(key)

    def _execute(self, fn: Callable, args: tuple, key: Optional[str]) -> None:
        self.tasks_run += 1
        self.cpu.note_activity()
        observer = self.observer
        if observer is not None:
            observer.task_started(self, key)
        try:
            fn(*args)
        except BaseException as exc:  # noqa: BLE001 - containment is the point
            self.task_errors += 1
            for listener in list(self.on_error):
                listener(key, exc)
        finally:
            if observer is not None:
                observer.task_finished(self, key)


class SimpleScheduler:
    """Scheduler for collector nodes (a PC: no wake locks, no sleep).

    Offers the same interface as :class:`PogoScheduler` so script hosts
    and sensors are agnostic to which node type they run on.
    """

    def __init__(self, kernel: Kernel, name: str = "wired-scheduler") -> None:
        self.kernel = kernel
        self.name = name
        self.tasks_run = 0
        self.task_errors = 0
        self.on_error: List[Callable[[Optional[str], BaseException], None]] = []
        self._serial_queues: Dict[str, Deque[Tuple[Callable, tuple, float]]] = {}
        self._serial_running: Dict[str, bool] = {}
        self.stopped = False
        self._spans = kernel.spans
        self._h_task = kernel.spans.hop("scheduler.task")
        #: Chaos seam: same witness interface as :class:`PogoScheduler`.
        self.observer = None

    def submit(self, fn: Callable[..., Any], *args: Any, serial_key: Optional[str] = None) -> None:
        if self.stopped:
            return
        if serial_key is None:
            self.kernel.schedule(0.0, self._run, fn, args, None)
        else:
            queue = self._serial_queues.setdefault(serial_key, deque())
            queue.append((fn, args, self.kernel.now))
            self._pump_serial(serial_key)

    def schedule(
        self, delay_ms: float, fn: Callable[..., Any], *args: Any, serial_key: Optional[str] = None
    ) -> ScheduledTask:
        task = ScheduledTask()
        if self.stopped:
            task.cancelled = True
            return task

        fire = _TaskFire(self, task, fn, args, serial_key)
        handle = self.kernel.schedule(delay_ms, fire)
        task._alarm = _HandleAlarm(handle)
        return task

    def schedule_repeating(
        self,
        interval_ms: float,
        fn: Callable[..., Any],
        *args: Any,
        serial_key: Optional[str] = None,
        initial_delay_ms: Optional[float] = None,
    ) -> ScheduledTask:
        if interval_ms <= 0:
            raise ValueError("interval must be positive")
        task = ScheduledTask()
        if self.stopped:
            task.cancelled = True
            return task

        # The kernel re-arms the handle in place before each firing; a
        # firing whose task was cancelled (or whose scheduler stopped)
        # tears the chain down via the handle stashed on the callback.
        fire = _TaskFire(self, task, fn, args, serial_key)
        first = interval_ms if initial_delay_ms is None else initial_delay_ms
        handle = self.kernel.schedule_repeating(interval_ms, fire, initial_delay=first)
        fire.handle = handle
        task._alarm = _HandleAlarm(handle)
        return task

    def stop(self) -> None:
        self.stopped = True
        self._serial_queues.clear()
        self._serial_running.clear()

    def _pump_serial(self, key: str) -> None:
        if self._serial_running.get(key) or self.stopped:
            return
        queue = self._serial_queues.get(key)
        if not queue:
            return
        self._serial_running[key] = True
        fn, args, enqueued_ms = queue.popleft()
        self.kernel.schedule(0.0, self._run, fn, args, key, enqueued_ms)

    def _run(self, fn: Callable, args: tuple, key: Optional[str], enqueued_ms: float = 0.0) -> None:
        self.tasks_run += 1
        if key is not None and self._spans.enabled:
            self._h_task.record(
                0, self._spans.active_parent, enqueued_ms, self.kernel.now, {"key": key}
            )
        observer = self.observer
        if observer is not None:
            observer.task_started(self, key)
        try:
            fn(*args)
        except BaseException as exc:  # noqa: BLE001
            self.task_errors += 1
            for listener in list(self.on_error):
                listener(key, exc)
        finally:
            if observer is not None:
                observer.task_finished(self, key)
            if key is not None:
                self._serial_running[key] = False
                self._pump_serial(key)


class _HandleAlarm:
    """Adapts a kernel EventHandle to the Alarm.cancel() interface."""

    def __init__(self, handle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()
