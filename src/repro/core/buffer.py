"""Store-and-forward message buffer with persistence and expiry.

Section 4.6: "Messages that are to be transferred over the XMPP
connection are not sent out immediately ... Messages are therefore
buffered at the device and sent out in batches.  Buffered messages are
stored in an embedded SQL database to ensure that no messages are lost
should a device reboot or run out of battery."

And from the deployment post-mortem (Section 5.3): "we had configured
Pogo to drop messages older than 24 hours if there was no Internet
connectivity" — which is exactly what purged user 2a's and user 3's data
and produced the sub-100% match rates in Table 4.  The expiry is
therefore a first-class, configurable behaviour here.

Two storage backends are provided: a plain in-memory store (fast, used by
the large simulations — "persistence" across simulated reboots is simply
the object surviving the phone's restart, as flash does), and a real
embedded-SQL backend on :mod:`sqlite3`, faithful to the implementation,
used by the tests to prove the two behave identically.
"""

from __future__ import annotations

import itertools
import sqlite3
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..sim.kernel import HOUR, Kernel
from .messages import from_json, to_json

#: The deployment's configured maximum message age.
DEFAULT_MAX_AGE_MS = 24 * HOUR


def traced_envelope(payload: Any):
    """The traced envelope riding an op payload, if any.

    Only ``pub`` ops carry messages; sub/attach/ack plumbing has no
    envelope and stays untraced.  SQLite round-trips rebuild payloads
    from JSON, so after a simulated reboot the envelope identity (and
    with it the trace) is gone — tracing degrades, delivery does not.
    """
    if isinstance(payload, dict):
        envelope = payload.get("msg")
        if envelope is not None and getattr(envelope, "trace_id", 0):
            return envelope
    return None


@dataclass(frozen=True)
class BufferedMessage:
    """One message waiting for transmission."""

    id: int
    created_ms: float
    destination: str
    payload: Any


class MessageStore:
    """Interface for buffer storage backends."""

    def append(self, message: BufferedMessage) -> None:
        raise NotImplementedError

    def remove(self, ids: Iterable[int]) -> None:
        raise NotImplementedError

    def all_messages(self) -> List[BufferedMessage]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class InMemoryStore(MessageStore):
    """Flash-backed store modelled as an ordinary list."""

    def __init__(self) -> None:
        self._messages: List[BufferedMessage] = []

    def append(self, message: BufferedMessage) -> None:
        self._messages.append(message)

    def remove(self, ids: Iterable[int]) -> None:
        doomed = set(ids)
        self._messages = [m for m in self._messages if m.id not in doomed]

    def all_messages(self) -> List[BufferedMessage]:
        return list(self._messages)

    def __len__(self) -> int:
        return len(self._messages)


class SqliteStore(MessageStore):
    """The paper's embedded SQL database, on :mod:`sqlite3`."""

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS outbox ("
            " id INTEGER PRIMARY KEY,"
            " created_ms REAL NOT NULL,"
            " destination TEXT NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        self._conn.commit()

    def append(self, message: BufferedMessage) -> None:
        # Canonical encoding (compact, key-sorted), exactly what
        # to_json/message_size_bytes account on the wire — a bare
        # json.dumps here persisted *different* bytes than the sizes the
        # evaluation reports, and re-serialized envelope payloads that
        # already carry cached canonical text.
        self._conn.execute(
            "INSERT INTO outbox (id, created_ms, destination, payload) VALUES (?, ?, ?, ?)",
            (message.id, message.created_ms, message.destination, to_json(message.payload)),
        )
        self._conn.commit()

    def remove(self, ids: Iterable[int]) -> None:
        id_list = list(ids)
        if not id_list:
            return
        marks = ",".join("?" for _ in id_list)
        self._conn.execute(f"DELETE FROM outbox WHERE id IN ({marks})", id_list)
        self._conn.commit()

    def all_messages(self) -> List[BufferedMessage]:
        rows = self._conn.execute(
            "SELECT id, created_ms, destination, payload FROM outbox ORDER BY id"
        ).fetchall()
        return [
            BufferedMessage(row[0], row[1], row[2], from_json(row[3])) for row in rows
        ]

    def __len__(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM outbox").fetchone()
        return int(count)

    def close(self) -> None:
        self._conn.close()


class MessageBuffer:
    """The device's outgoing buffer: enqueue, expire, drain in batches."""

    def __init__(
        self,
        kernel: Kernel,
        store: Optional[MessageStore] = None,
        max_age_ms: float = DEFAULT_MAX_AGE_MS,
    ) -> None:
        self._ids = itertools.count(1)
        self.kernel = kernel
        # `store or ...` would discard an *empty* store (stores define
        # __len__), so compare with None explicitly.
        self.store = store if store is not None else InMemoryStore()
        self.max_age_ms = max_age_ms
        self.enqueued = 0
        self.drained = 0
        self.expired = 0
        self._m_enqueued = kernel.metrics.counter("buffer.enqueued")
        self._m_drained = kernel.metrics.counter("buffer.drained")
        self._m_expired = kernel.metrics.counter("buffer.expired")
        self._spans = kernel.spans
        self._h_enqueue = kernel.spans.hop("buffer.enqueue")
        self._h_dwell = kernel.spans.hop("buffer.dwell")


    def enqueue(self, destination: str, payload: Any) -> BufferedMessage:
        message = BufferedMessage(
            id=next(self._ids),
            created_ms=self.kernel.now,
            destination=destination,
            payload=payload,
        )
        self.store.append(message)
        self.enqueued += 1
        self._m_enqueued.inc()
        envelope = traced_envelope(payload)
        if envelope is not None and self._spans.enabled:
            now = self.kernel.now
            span_id = self._h_enqueue.record(
                envelope.trace_id,
                envelope.hop_span,
                now,
                now,
                {"destination": destination, "bytes": envelope.wire_size},
            )
            if span_id:
                envelope.hop_span = span_id
        return message

    def __len__(self) -> int:
        return len(self.store)

    @property
    def empty(self) -> bool:
        return len(self.store) == 0

    def conservation_error(self) -> int:
        """``enqueued − drained − expired − occupancy``; zero when the
        books balance.  Every message that ever entered the buffer must
        be accounted as drained (handed to the reliable layer), expired
        (the 24-hour purge) or still waiting — the buffer-occupancy
        invariant the chaos monitor checks continuously.
        """
        return self.enqueued - self.drained - self.expired - len(self.store)

    def purge_expired(self) -> int:
        """Drop messages older than ``max_age_ms``.  Returns the count.

        This is the mechanism that lost user 2a's trip and user 3's
        outage window in the paper's deployment.
        """
        if self.max_age_ms is None:
            return 0
        cutoff = self.kernel.now - self.max_age_ms
        doomed = [m.id for m in self.store.all_messages() if m.created_ms < cutoff]
        self.store.remove(doomed)
        self.expired += len(doomed)
        self._m_expired.inc(len(doomed))
        return len(doomed)

    def peek_batches(self) -> List[Tuple[str, List[BufferedMessage]]]:
        """Pending messages grouped by destination, oldest first."""
        # One walk: split the expired from the pending, then group.  The
        # separate purge_expired() entry point stays for callers that
        # only want the purge, but the flush path (this method, called on
        # every tail-sync poll) should not copy the store twice.
        messages = self.store.all_messages()
        if self.max_age_ms is not None:
            cutoff = self.kernel.now - self.max_age_ms
            doomed = [m.id for m in messages if m.created_ms < cutoff]
            if doomed:
                self.store.remove(doomed)
                self.expired += len(doomed)
                self._m_expired.inc(len(doomed))
                messages = [m for m in messages if m.created_ms >= cutoff]
        by_destination: dict = {}
        for message in messages:
            by_destination.setdefault(message.destination, []).append(message)
        return sorted(by_destination.items())

    def mark_sent(
        self,
        messages: Iterable[BufferedMessage],
        flush_span: int = 0,
        flush_reason: str = "",
    ) -> None:
        """Remove messages that were handed to the reliable layer.

        With tracing on, each traced message closes its ``buffer.dwell``
        span here — created_ms to now is exactly the latency tail-sync
        trades for energy, labelled with the flush that released it.
        """
        messages = list(messages)
        ids = [m.id for m in messages]
        self.store.remove(ids)
        self.drained += len(ids)
        self._m_drained.inc(len(ids))
        if self._spans.enabled:
            now = self.kernel.now
            for message in messages:
                envelope = traced_envelope(message.payload)
                if envelope is None:
                    continue
                span_id = self._h_dwell.record(
                    envelope.trace_id,
                    envelope.hop_span,
                    message.created_ms,
                    now,
                    {"flush_span": flush_span, "reason": flush_reason},
                )
                if span_id:
                    envelope.hop_span = span_id
