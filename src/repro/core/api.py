"""The Pogo script API: Table 1's eleven methods, and nothing else.

Section 4.4: "in the interest of security ... we hide the Java standard
library and of course all of the Android API from the application
programmer.  Instead, we expose only a small programming interface."

The reproduction's scripts are Python source executed in a namespace that
contains exactly:

==============================  ==========================================
``setDescription(description)`` script metadata, shown in the device UI
``setAutoStart(start)``         don't run until the user starts it
``print(m1, ..., mN)``          debug output (viewable on the phone)
``log(m1, ..., mN)``            append to the default persistent log
``logTo(name, m1, ..., mN)``    append to a named persistent log
``publish(channel, message)``   publish into the experiment's broker
``subscribe(channel, fn[, p])`` subscribe; returns a ``Subscription``
``freeze(object)``              persist one object (overwrites previous)
``thaw()``                      retrieve the frozen object (or ``None``)
``json(object)``                serialize to a JSON string
``setTimeout(fn, delay)``       run ``fn`` after ``delay`` ms
==============================  ==========================================

plus a restricted set of builtins and the ``math`` module (the paper's
JavaScript got ``Math`` for free; the clustering script needs it).  There
is deliberately no ``__import__``, no file or network access, and no way
to reach the host middleware objects.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional

#: Builtins scripts may use.  ``__import__`` is the notable omission:
#: without it, ``import`` statements raise ``ImportError`` inside scripts.
SAFE_BUILTINS: Dict[str, Any] = {
    name: __builtins__[name] if isinstance(__builtins__, dict) else getattr(__builtins__, name)
    for name in (
        "abs", "all", "any", "bool", "dict", "divmod", "enumerate", "filter",
        "float", "frozenset", "hash", "int", "isinstance", "iter", "len",
        "list", "map", "max", "min", "next", "pow", "range", "repr",
        "reversed", "round", "set", "sorted", "str", "sum", "tuple", "zip",
        "Exception", "ValueError", "TypeError", "KeyError", "IndexError",
        "ZeroDivisionError", "ArithmeticError", "StopIteration",
        # Class definitions inside scripts (the clustering script defines
        # one); __build_class__ is what the `class` statement compiles to.
        "__build_class__", "object", "staticmethod", "classmethod", "property",
    )
}


class ScriptApi:
    """The Table 1 methods as bound methods of one per-host instance.

    Closures over ``host`` would work identically, but bound methods of a
    module-level class are picklable — and a script is free to stash an
    API function in a data variable, which would then ride along in a
    Shard snapshot.  Scripts stay isolated from each other because each
    host gets its own instance.
    """

    __slots__ = ("host",)

    def __init__(self, host) -> None:
        self.host = host

    def setDescription(self, description: str) -> None:
        self.host.description = str(description)

    def setAutoStart(self, start: bool) -> None:
        self.host.autostart = bool(start)

    def print(self, *messages: Any) -> None:
        self.host.debug_lines.append(" ".join(str(m) for m in messages))

    def log(self, *messages: Any) -> None:
        self.logTo("default", *messages)

    def logTo(self, log_name: str, *messages: Any) -> None:
        self.host.logs.setdefault(str(log_name), []).append(
            " ".join(str(m) for m in messages)
        )

    def publish(self, channel: str, message: Any) -> None:
        self.host.api_publish(channel, message)

    def subscribe(
        self,
        channel: str,
        fn: Callable[[Any], None],
        parameters: Optional[Dict[str, Any]] = None,
    ):
        return self.host.api_subscribe(channel, fn, parameters)

    def freeze(self, obj: Any) -> None:
        self.host.api_freeze(obj)

    def thaw(self) -> Any:
        return self.host.api_thaw()

    def json(self, obj: Any) -> str:
        return self.host.api_json(obj)

    def setTimeout(self, fn: Callable[[], None], delay: float):
        return self.host.api_set_timeout(fn, delay)


def build_namespace(host) -> Dict[str, Any]:
    """Construct the global namespace for one script host.

    ``host`` is a :class:`repro.core.scripting.ScriptHost`; every API
    entry is a bound method of that host's :class:`ScriptApi` instance.
    """
    api = ScriptApi(host)
    namespace: Dict[str, Any] = {
        "__builtins__": dict(SAFE_BUILTINS),
        "__name__": f"<pogo-script {host.name}>",
        "math": math,
        "setDescription": api.setDescription,
        "setAutoStart": api.setAutoStart,
        "print": api.print,
        "log": api.log,
        "logTo": api.logTo,
        "publish": api.publish,
        "subscribe": api.subscribe,
        "freeze": api.freeze,
        "thaw": api.thaw,
        "json": api.json,
        "setTimeout": api.setTimeout,
    }
    return namespace


#: Number of public API methods — the paper advertises "only 11 methods".
API_METHOD_COUNT = 11


def api_method_names() -> list:
    """The Table 1 method names (for documentation and tests)."""
    return [
        "setDescription",
        "setAutoStart",
        "print",
        "log",
        "logTo",
        "publish",
        "subscribe",
        "freeze",
        "thaw",
        "json",
        "setTimeout",
    ]
