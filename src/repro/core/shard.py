"""The Shard: one self-contained, picklable simulation partition.

ROADMAP item 1 (multiprocess fleets past the 500-device throughput
cliff) needs the simulation core to be *partitionable*: a unit holding
one kernel, its randomness streams, world, XMPP switchboard, devices,
collectors and instrumentation planes — with nothing shared through
module-level state — so that several such units can run side by side in
one process, or be pickled into spawned workers, and still produce
byte-identical results.  That unit is the :class:`Shard`.

Three contracts define it:

* **SimContext** — the single bundle of cross-cutting simulation state
  (kernel, named random streams, metrics, spans, trace).  Everything a
  component needs reaches it through this graph; nothing may live at
  module level.  (The kernel carries the metrics and span planes, so
  most components take just the kernel — the context makes the full
  bundle explicit and hands the rest to world/device builders.)
* **The pickling contract** — ``snapshot()`` pickles the whole shard;
  ``restore()`` brings it back, mid-run, byte-deterministically.  Every
  callback reachable from the kernel's event heap must therefore be a
  bound method, ``functools.partial`` of one, or a module-level callable
  class — never a lambda or nested closure.  Script namespaces are the
  one exception: exec'd functions cannot be pickled, so
  :class:`~repro.core.scripting.ScriptHost` drops them on pickle and
  re-executes its source on restore (see its ``__setstate__``).
* **The cross-shard boundary** — an egress/ingress seam for stanzas
  addressed to JIDs another shard hosts, plus the epoch-barrier hooks
  (:meth:`run_until_epoch`, :meth:`pending_cross_shard`) a conservative
  time-windowed multiprocess scheduler needs: run every shard to the
  barrier, exchange the queued stanzas, repeat.

:class:`~repro.core.middleware.PogoSimulation` remains the public facade
— it *is* a single-shard deployment with the historical constructor.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from ..device.apps import EmailApp, EmailConfig
from ..device.phone import Phone
from ..device.radio import CARRIERS, KPN, CarrierProfile
from ..net.xmpp import XmppServer
from ..obs.telemetry import ShardTelemetry
from ..sensors.accelerometer import AccelerometerSensor
from ..sensors.battery_sensor import BatterySensor
from ..sensors.location import LocationSensor
from ..sensors.microphone import MicrophoneSensor, ambient_db_for
from ..sensors.wifi_scanner import WifiScanSensor
from ..sim.kernel import HOUR, MINUTE, Kernel
from ..sim.randomness import RandomStreams
from ..sim.trace import TraceRecorder
from ..world.environment import ConnectivityDriver, UserWorld, build_user_world
from ..world.mobility import TRAVEL, UserProfile
from .node import CollectorNode, DeviceNode
from .tailsync import TransmissionPolicy
from .testbed import TestbedAdmin


# ---------------------------------------------------------------------------
# SimContext
# ---------------------------------------------------------------------------

@dataclass
class SimContext:
    """The cross-cutting simulation state, as one explicit bundle.

    What used to be reachable only by threading a kernel around (plus
    ad-hoc extra arguments for streams and trace) is one object.  Two
    contexts never share anything: two shards in one process are as
    isolated as two processes.
    """

    kernel: Kernel
    streams: RandomStreams
    metrics: Any
    spans: Any
    trace: Optional[TraceRecorder] = None


# ---------------------------------------------------------------------------
# Declarative specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DeviceSpec:
    """Declarative description of one device in a shard roster.

    ``jid`` pins the device's identifier instead of taking the next
    ``device-N@pogo`` from the per-shard counter.  The fleet partitioner
    sets it so every shard keeps the *global* numbering — per-device
    random streams are keyed by JID, so this is what makes a partitioned
    run draw the same randomness as the single-shard one.
    """

    with_sensors: bool = True
    with_email_app: bool = False
    world_days: Optional[int] = None
    simulate_paging: bool = False
    track_power_history: bool = False
    capabilities: Optional[frozenset] = None
    jid: Optional[str] = None
    #: Carrier *name* (key into :data:`~repro.device.radio.CARRIERS`);
    #: ``None`` means the shard's default carrier.  A name, not a
    #: profile, so the spec stays plain data for multi-carrier rosters.
    carrier: Optional[str] = None


class Handoff(NamedTuple):
    """One cross-shard stanza, queued at egress for the coordinator.

    ``submit_ms`` is the sender-shard kernel time at which the stanza
    entered the switchboard; the receiving shard replays it due at
    ``submit_ms + latency`` so the cross-shard leg costs exactly what a
    local route would.  ``seq`` is the sender shard's running egress
    counter — ``(submit_ms, from_jid, seq)`` totally orders handoffs
    (a JID lives on exactly one shard, so ``from_jid`` disambiguates
    equal-time submissions from different shards and ``seq`` preserves
    the sender's program order within one shard).
    """

    submit_ms: float
    seq: int
    from_jid: str
    to_jid: str
    stanza: dict


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to build a Shard, as plain picklable data.

    A spec crosses process boundaries (multiprocessing ``spawn`` pickles
    it into the worker), so it holds only values: the seed, the carrier
    profile, the device roster and the instrumentation flags.  Building
    the same spec twice yields byte-identical shards.
    """

    shard_id: str = "shard-0"
    seed: int = 0
    carrier: CarrierProfile = KPN
    record_trace: bool = False
    spans: bool = True
    metrics: bool = True
    #: Arm the out-of-band telemetry sampler (the fleet worker samples it
    #: at every epoch barrier).  Never perturbs the simulation: sampling
    #: is pull-only, so this flag cannot change a single event.
    telemetry: bool = False
    #: Base switchboard latency in milliseconds — every stanza (local or
    #: cross-shard) spends at least this long in flight.  It is also the
    #: fleet's determinism contract: the epoch-barrier window must not
    #: exceed the *minimum* latency across shards, so a partitioned run
    #: is byte-identical to the solo run **at the same latency**.
    #: Changing it changes the simulated schedule itself (it is physics,
    #: not tuning), so solo and sharded runs only compare at equal
    #: values.  Must be positive.
    latency_ms: float = 80.0
    collectors: Tuple[str, ...] = ()
    devices: Tuple[DeviceSpec, ...] = ()

    def __post_init__(self) -> None:
        if not (isinstance(self.latency_ms, (int, float))
                and self.latency_ms > 0):
            raise ValueError(
                f"latency_ms must be a positive number of milliseconds, "
                f"got {self.latency_ms!r}"
            )


@dataclass
class SimulatedDevice:
    """One enrolled phone with its middleware and (optional) world."""

    jid: str
    phone: Phone
    node: DeviceNode
    user_world: Optional[UserWorld] = None
    apps: List[object] = field(default_factory=list)

    def email_app(self) -> Optional[EmailApp]:
        for app in self.apps:
            if isinstance(app, EmailApp):
                return app
        return None


@dataclass
class SimulatedCollector:
    """One researcher's collector node."""

    jid: str
    node: CollectorNode


# ---------------------------------------------------------------------------
# World-backed sensor sources (picklable callables, not closures)
# ---------------------------------------------------------------------------

class _WorldScanSource:
    __slots__ = ("world", "kernel")

    def __init__(self, world: UserWorld, kernel: Kernel) -> None:
        self.world = world
        self.kernel = kernel

    def __call__(self):
        return self.world.scan(self.kernel.now)


class _WorldPositionSource:
    __slots__ = ("world", "kernel")

    def __init__(self, world: UserWorld, kernel: Kernel) -> None:
        self.world = world
        self.kernel = kernel

    def __call__(self):
        return self.world.position(self.kernel.now)


class _WorldAmbientSource:
    __slots__ = ("world", "kernel")

    def __init__(self, world: UserWorld, kernel: Kernel) -> None:
        self.world = world
        self.kernel = kernel

    def __call__(self) -> float:
        place = self.world.current_place(self.kernel.now)
        return ambient_db_for(place.category if place else None)


class _WorldActivitySource:
    __slots__ = ("world", "kernel")

    def __init__(self, world: UserWorld, kernel: Kernel) -> None:
        self.world = world
        self.kernel = kernel

    def __call__(self) -> str:
        return "walking" if self.world.segment(self.kernel.now).kind == TRAVEL else "still"


# ---------------------------------------------------------------------------
# The Shard
# ---------------------------------------------------------------------------

class Shard:
    """One kernel + world + switchboard + fleet, fully self-contained.

    Everything reachable from a shard belongs to that shard; nothing is
    shared with any other shard or stored at module level.  The whole
    object graph pickles (``snapshot``/``restore``) and two shards built
    from equal specs — in one process, two processes, or before/after a
    pickle round-trip — execute byte-identically.
    """

    def __init__(
        self,
        spec: Optional[ShardSpec] = None,
        *,
        seed: int = 0,
        carrier: CarrierProfile = KPN,
        record_trace: bool = False,
        spans: bool = True,
        metrics: bool = True,
        telemetry: bool = False,
        shard_id: str = "shard-0",
        latency_ms: float = 80.0,
    ) -> None:
        if spec is not None:
            seed = spec.seed
            carrier = spec.carrier
            record_trace = spec.record_trace
            spans = spec.spans
            metrics = spec.metrics
            telemetry = spec.telemetry
            shard_id = spec.shard_id
            latency_ms = spec.latency_ms
        if not latency_ms > 0:
            raise ValueError(
                f"latency_ms must be positive, got {latency_ms!r}"
            )
        self.spec = spec
        self.shard_id = shard_id
        self.seed = seed
        self.kernel = Kernel()
        if not spans:
            # Kill switch: lifecycle tracing off, hop handles become no-ops.
            self.kernel.spans.disable()
        if not metrics:
            # Production-shape hot path: counters/histograms become no-ops.
            self.kernel.metrics.disable()
        self.streams = RandomStreams(seed)
        self.trace = TraceRecorder(self.kernel.read_now) if record_trace else None
        self.ctx = SimContext(
            kernel=self.kernel,
            streams=self.streams,
            metrics=self.kernel.metrics,
            spans=self.kernel.spans,
            trace=self.trace,
        )
        # The telemetry plane: a pull-only barrier sampler (fleet workers
        # read it; nothing in the shard ever calls it).  Disabled it is a
        # __class__-swapped null lane, same idiom as spans and metrics.
        self.telemetry = ShardTelemetry(self, enabled=telemetry)
        self.server = XmppServer(self.kernel, latency_ms=latency_ms, trace=self.trace)
        self.admin = TestbedAdmin(self.server)
        self.default_carrier = carrier
        self.devices: Dict[str, SimulatedDevice] = {}
        self.collectors: Dict[str, SimulatedCollector] = {}
        #: Scenario/tooling attachments (chaos engine, invariant monitor,
        #: …) that must survive a snapshot/restore alongside the shard.
        self.extras: Dict[str, Any] = {}
        self._egress: List[Handoff] = []
        self._egress_seq = 0
        self._started = False
        if spec is not None:
            for name in spec.collectors:
                self.add_collector(name)
            for device_spec in spec.devices:
                self.add_device(
                    carrier=(
                        CARRIERS[device_spec.carrier]
                        if device_spec.carrier is not None
                        else None
                    ),
                    with_sensors=device_spec.with_sensors,
                    with_email_app=device_spec.with_email_app,
                    world_days=device_spec.world_days,
                    simulate_paging=device_spec.simulate_paging,
                    track_power_history=device_spec.track_power_history,
                    capabilities=(
                        set(device_spec.capabilities)
                        if device_spec.capabilities is not None
                        else None
                    ),
                    jid=device_spec.jid,
                )

    # ------------------------------------------------------------------
    # Building the fleet
    # ------------------------------------------------------------------
    def add_collector(self, name: str) -> SimulatedCollector:
        jid = self.admin.enroll_researcher(name)
        node = CollectorNode(self.kernel, self.server, jid)
        collector = SimulatedCollector(jid, node)
        self.collectors[jid] = collector
        return collector

    def add_device(
        self,
        carrier: Optional[CarrierProfile] = None,
        with_sensors: bool = True,
        with_email_app: bool = False,
        email_config: Optional[EmailConfig] = None,
        user_world: Optional[UserWorld] = None,
        world_days: Optional[int] = None,
        user_profile: Optional[UserProfile] = None,
        propagation=None,
        policy: Optional[TransmissionPolicy] = None,
        simulate_paging: bool = False,
        track_power_history: bool = False,
        capabilities: Optional[set] = None,
        jid: Optional[str] = None,
    ) -> SimulatedDevice:
        """Enroll one phone, optionally with a generated user world."""
        jid = self.admin.enroll_device(
            capabilities or {"wifi", "battery", "location"}, jid=jid
        )
        phone = Phone(
            self.kernel,
            name=jid,
            profile=carrier or self.default_carrier,
            trace=self.trace,
            simulate_paging=simulate_paging,
            track_power_history=track_power_history,
        )
        node = DeviceNode(self.kernel, phone, self.server, jid, policy=policy)

        if user_world is None and world_days is not None:
            user_world = build_user_world(
                jid, self.streams, days=world_days, profile=user_profile,
                propagation=propagation,
            )
        device = SimulatedDevice(jid, phone, node, user_world=user_world)

        if with_sensors:
            self._install_sensors(device)
        if with_email_app:
            app = EmailApp(phone, email_config)
            device.apps.append(app)
        self.devices[jid] = device
        return device

    def _install_sensors(self, device: SimulatedDevice) -> None:
        node, phone = device.node, device.phone
        node.sensor_manager.register(BatterySensor(phone))
        wifi_sensor = WifiScanSensor(phone)
        node.sensor_manager.register(wifi_sensor)
        location = LocationSensor(phone)
        accel = AccelerometerSensor(
            phone, rng=self.streams.stream(f"accel/{device.jid}")
        )
        microphone = MicrophoneSensor(
            phone, rng=self.streams.stream(f"microphone/{device.jid}")
        )
        node.sensor_manager.register(location)
        node.sensor_manager.register(accel)
        node.sensor_manager.register(microphone)
        if device.user_world is not None:
            self._wire_world(device)

    def _wire_world(self, device: SimulatedDevice) -> None:
        """Point the device's sensors at its world's ground truth."""
        world = device.user_world
        sensors = device.node.sensor_manager.sensors
        device.phone.wifi.scan_source = _WorldScanSource(world, self.kernel)
        sensors["locations"].position_source = _WorldPositionSource(world, self.kernel)
        sensors["audio"].level_source = _WorldAmbientSource(world, self.kernel)
        sensors["accel"].activity_source = _WorldActivitySource(world, self.kernel)

    def attach_world(self, jid: str, world: UserWorld) -> None:
        """Attach a pre-built world to an already-enrolled device.

        Scenario workloads build worlds *after* spec construction (the
        roster comes from a compiled :class:`ShardSpec`, the worlds from
        the scenario's own derived randomness).  Must happen before
        :meth:`start`, which installs the connectivity driver.
        """
        if self._started:
            raise RuntimeError("attach_world must be called before start()")
        device = self.devices[jid]
        device.user_world = world
        self._wire_world(device)

    # ------------------------------------------------------------------
    # Wiring and running
    # ------------------------------------------------------------------
    def assign(self, collector: SimulatedCollector, devices: List[SimulatedDevice]) -> None:
        self.admin.assign(collector.jid, [d.jid for d in devices])

    def start(self) -> None:
        """Start every node, app and connectivity driver."""
        if self._started:
            return
        self._started = True
        for collector in self.collectors.values():
            collector.node.start()
        for device in self.devices.values():
            if device.user_world is not None:
                ConnectivityDriver(self.kernel, device.user_world, device.phone).start()
            device.node.start()
            for app in device.apps:
                app.start()

    def run(
        self,
        duration_ms: Optional[float] = None,
        minutes: Optional[float] = None,
        hours: Optional[float] = None,
        days: Optional[float] = None,
    ) -> None:
        """Advance the simulation by the given amount of time."""
        total = 0.0
        if duration_ms is not None:
            total += duration_ms
        if minutes is not None:
            total += minutes * MINUTE
        if hours is not None:
            total += hours * HOUR
        if days is not None:
            total += days * 24 * HOUR
        if total <= 0:
            raise ValueError("specify a positive duration")
        self.kernel.run_until(self.kernel.now + total)

    # ------------------------------------------------------------------
    # Snapshot / restore (the pickling contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the entire shard — kernel heap, fleet, scripts,
        instrumentation — into bytes.  ``restore`` resumes it exactly
        where it stopped, in this process or another."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(cls, blob: bytes) -> "Shard":
        shard = pickle.loads(blob)
        if not isinstance(shard, Shard):
            raise TypeError(f"snapshot does not contain a Shard: {type(shard)!r}")
        return shard

    # ------------------------------------------------------------------
    # Cross-shard boundary (egress/ingress + epoch barrier)
    # ------------------------------------------------------------------
    def open_boundary(self) -> None:
        """Accept stanzas for JIDs this shard does not host.

        Instead of raising ``RoutingError``, the switchboard hands such
        stanzas to the shard's egress queue; a fleet coordinator drains
        it at each epoch barrier (:meth:`pending_cross_shard`) and
        replays the handoffs into the owning shard (:meth:`ingress`).
        """
        self.server.egress = self._queue_egress

    def _queue_egress(self, from_jid: str, to_jid: str, stanza: dict) -> None:
        self._egress_seq += 1
        self._egress.append(
            Handoff(self.kernel.now, self._egress_seq, from_jid, to_jid, stanza)
        )

    def pending_cross_shard(self) -> List[Handoff]:
        """Drain and return the stanzas queued for other shards."""
        pending, self._egress = self._egress, []
        return pending

    @property
    def egress_capable(self) -> bool:
        """Whether this shard's topology can still emit cross-shard traffic.

        True while the switchboard holds at least one remote roster edge
        (:meth:`~repro.net.xmpp.XmppServer.add_remote_roster`).  The
        fleet coordinator's adaptive barrier uses this as topology
        lookahead: a shard with no remote edges cannot originate
        handoffs, so its local events never bound the barrier window.
        The contract is that cross-shard traffic only flows along
        remote-roster edges created *before* the window that uses them —
        all built-in workloads wire their edges at setup — and the
        coordinator fails loudly (never silently mis-times a delivery)
        if a shard that reported incapable egresses anyway.
        """
        return self.server.remote_edges > 0

    def ingress(self, handoffs) -> int:
        """Replay cross-shard handoffs into this shard's switchboard.

        Each handoff is a :class:`Handoff` as produced by another shard's
        :meth:`pending_cross_shard` (a bare ``(from_jid, to_jid, stanza)``
        triple is also accepted and delivered one switchboard latency
        from now).  Handoff records are replayed due at their original
        ``submit_ms`` plus the switchboard latency, so the cross-shard
        leg costs exactly what a local route would.

        Every destination is validated *before* anything is scheduled: a
        JID this shard does not host raises a descriptive
        :class:`~repro.net.xmpp.RoutingError` and the whole batch is
        rejected, rather than silently dropping (or partially applying)
        misrouted traffic.  Returns the number replayed.
        """
        from ..net.xmpp import RoutingError

        records = []
        for handoff in handoffs:
            if isinstance(handoff, Handoff):
                records.append(handoff)
            else:
                from_jid, to_jid, stanza = handoff
                records.append(Handoff(None, 0, from_jid, to_jid, stanza))
        unknown = sorted(
            {r.to_jid for r in records if not self.server.registered(r.to_jid)}
        )
        if unknown:
            raise RoutingError(
                f"shard {self.shard_id!r} does not host "
                f"{', '.join(unknown)}: the coordinator routed "
                f"{len(unknown)} of {len(records)} handoffs to the wrong "
                f"shard (no stanza was replayed)"
            )
        for record in records:
            stanza = record.stanza
            # Presence crossing the boundary is server-internal, never
            # submit()-stamped — data stanzas always carry "_from".
            presence = stanza.get("kind") == "presence" and "_from" not in stanza
            if record.submit_ms is None:
                if presence:
                    self.server.presence_at(
                        record.to_jid, stanza,
                        self.kernel.now + self.server.latency_ms,
                    )
                else:
                    self.server.ingress(record.from_jid, record.to_jid, stanza)
                continue
            due_ms = record.submit_ms + self.server.latency_ms
            if presence:
                self.server.presence_at(record.to_jid, stanza, due_ms)
            else:
                self.server.ingress_at(
                    record.from_jid, record.to_jid, stanza, due_ms
                )
        return len(records)

    def run_until_epoch(self, epoch_ms: float) -> List[Handoff]:
        """Run to the epoch barrier; return the queued cross-shard stanzas.

        The conservative time-windowed sync PR 7's multiprocess fleet
        uses: every shard runs to the same barrier, the coordinator
        exchanges the returned handoffs via :meth:`ingress`, and only
        then does any shard pass the barrier.  Cross-shard latency is
        thereby ≥ one epoch — the epoch must be chosen below the minimum
        cross-shard stanza latency for this to be exact.
        """
        self.kernel.run_until(epoch_ms)
        return self.pending_cross_shard()

    # ------------------------------------------------------------------
    # Canonical reporting
    # ------------------------------------------------------------------
    def fleet_report(self) -> Dict[str, Any]:
        """Deterministic per-shard summary (sorted JIDs, stable keys).

        Two identical seeded runs — in-process, restored from a
        snapshot, or spawned into a worker — must produce byte-identical
        :func:`fleet_report_json` output; CI pins this.
        """
        devices: Dict[str, Any] = {}
        for jid in sorted(self.devices):
            device = self.devices[jid]
            node = device.node
            devices[jid] = {
                "batches_sent": node.batches_sent,
                "energy_j": round(device.phone.energy_joules, 6),
                "flushes": node.flush_count,
                "payloads_sent": node.payloads_sent,
            }
        collectors: Dict[str, Any] = {}
        for jid in sorted(self.collectors):
            node = self.collectors[jid].node
            collectors[jid] = {
                "links": {
                    peer: {
                        "delivered": node.links[peer].delivered,
                        "duplicates": node.links[peer].duplicates,
                    }
                    for peer in sorted(node.links)
                },
            }
        return {
            "collectors": collectors,
            "devices": devices,
            "events_executed": self.kernel.events_executed,
            "now_ms": self.kernel.now,
            "seed": self.seed,
            "server": {
                "stanzas_lost": self.server.stanzas_lost,
                "stanzas_routed": self.server.stanzas_routed,
                "stanzas_stored_offline": self.server.stanzas_stored_offline,
            },
            "shard": self.shard_id,
        }

    def fleet_report_json(self) -> str:
        return json.dumps(self.fleet_report(), sort_keys=True, indent=2) + "\n"


# ---------------------------------------------------------------------------
# Spawn workers — the implementations moved to repro.fleet.worker, the
# single spawn-safe entry point shared by the fleet coordinator and the
# one-shot subprocess helpers.  These names stay as thin shims.
# ---------------------------------------------------------------------------

def run_battery_monitor_hour(spec: ShardSpec, hours: float = 1.0) -> Dict[str, str]:
    """Shim for :func:`repro.fleet.worker.run_battery_monitor_hour`."""
    from ..fleet.worker import run_battery_monitor_hour as impl

    return impl(spec, hours)


def run_spec_in_subprocess(spec: ShardSpec, hours: float = 1.0) -> Dict[str, str]:
    """Shim for :func:`repro.fleet.worker.run_spec_in_subprocess`."""
    from ..fleet.worker import run_spec_in_subprocess as impl

    return impl(spec, hours)
