"""Participation tracking: the incentive basis of Section 3.3.

"We have a central server that can keep track of when devices are online
and what data they are sharing, which would be the basis for assigning
rewards."  This module implements that bookkeeping on the switchboard:

* per-device **online time** (session uptime as the server observed it);
* per-device **traffic contributed** (stanzas and bytes routed from it);
* a configurable **reward function** and a leaderboard-style report the
  administrator can hand to whoever pays the study credit / Mechanical
  Turk rewards.

Only pseudonymous JIDs appear anywhere — the double-blind property is
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.messages import message_size_bytes
from ..net.xmpp import Session, XmppServer
from ..sim.kernel import HOUR, Kernel


@dataclass
class ParticipationRecord:
    """What the server observed about one device.

    Online time is credited per *heard-from* interval, capped at
    :attr:`ParticipationTracker.idle_cap_ms` between events: a session
    that went silent (dead interface the server has not noticed yet)
    stops earning, which is what a reward scheme needs.
    """

    jid: str
    online_ms: float = 0.0
    stanzas: int = 0
    bytes: int = 0
    sessions: int = 0
    _last_heard: Optional[float] = None

    def note_activity(self, now: float, idle_cap_ms: float) -> None:
        if self._last_heard is not None:
            self.online_ms += min(now - self._last_heard, idle_cap_ms)
        self._last_heard = now

    def snapshot_online_ms(self, now: float, idle_cap_ms: float) -> float:
        total = self.online_ms
        if self._last_heard is not None:
            total += min(now - self._last_heard, idle_cap_ms)
        return total


#: Default reward: credit per online hour plus per megabyte contributed.
def default_reward(online_h: float, megabytes: float, stanzas: int) -> float:
    return round(0.10 * online_h + 0.50 * megabytes, 2)


def _default_is_device(jid: str) -> bool:
    return jid.startswith("device-")


class _TrackedConnect:
    """Picklable wrapper around ``server.connect`` (observer tap)."""

    __slots__ = ("tracker", "original")

    def __init__(self, tracker, original) -> None:
        self.tracker = tracker
        self.original = original

    def __call__(self, jid: str, deliver, physical_rx=None):
        session = self.original(jid, deliver, physical_rx)
        tracker = self.tracker
        if tracker._is_device(jid):
            record = tracker._record(jid)
            record.sessions += 1
            record.note_activity(tracker.kernel.now, tracker.idle_cap_ms)
        return session


class _TrackedSubmit:
    """Picklable wrapper around ``server.submit`` (observer tap)."""

    __slots__ = ("tracker", "original")

    def __init__(self, tracker, original) -> None:
        self.tracker = tracker
        self.original = original

    def __call__(self, from_jid: str, to_jid: str, stanza: dict, parent_span: int = 0) -> None:
        self.original(from_jid, to_jid, stanza, parent_span=parent_span)
        tracker = self.tracker
        if tracker._is_device(from_jid):
            record = tracker._record(from_jid)
            record.stanzas += 1
            # Envelope payloads answer from their cached canonical
            # JSON — the tracker's accounting walk is wrapper-only.
            size = message_size_bytes(stanza)
            record.bytes += size
            tracker._m_stanzas.inc()
            tracker._m_bytes.inc(size)
            record.note_activity(tracker.kernel.now, tracker.idle_cap_ms)


class ParticipationTracker:
    """Observes an :class:`XmppServer` and accounts participation.

    Installed by wrapping the server's connect/disconnect/submit entry
    points — the tracker is an observer, not a routing participant.
    """

    def __init__(
        self,
        kernel: Kernel,
        server: XmppServer,
        is_device: Optional[Callable[[str], bool]] = None,
        reward: Callable[[float, float, int], float] = default_reward,
        idle_cap_ms: float = 15 * 60 * 1000.0,
    ) -> None:
        self.kernel = kernel
        self.server = server
        self.records: Dict[str, ParticipationRecord] = {}
        self.reward = reward
        self.idle_cap_ms = idle_cap_ms
        self._is_device = is_device or _default_is_device
        self._m_stanzas = kernel.metrics.counter("participation.stanzas")
        self._m_bytes = kernel.metrics.counter("participation.bytes")
        self._install()

    # ------------------------------------------------------------------
    def _install(self) -> None:
        self.server.connect = _TrackedConnect(self, self.server.connect)
        self.server.submit = _TrackedSubmit(self, self.server.submit)

    def _record(self, jid: str) -> ParticipationRecord:
        if jid not in self.records:
            self.records[jid] = ParticipationRecord(jid)
        return self.records[jid]

    # ------------------------------------------------------------------
    def online_hours(self, jid: str) -> float:
        record = self.records.get(jid)
        if record is None:
            return 0.0
        return record.snapshot_online_ms(self.kernel.now, self.idle_cap_ms) / HOUR

    def reward_for(self, jid: str) -> float:
        record = self.records.get(jid)
        if record is None:
            return 0.0
        return self.reward(
            self.online_hours(jid), record.bytes / 1e6, record.stanzas
        )

    def report(self) -> str:
        """Administrator-facing leaderboard (pseudonymous JIDs only)."""
        lines = [
            f"{'device':<18} {'online h':>9} {'sessions':>9} {'stanzas':>8} "
            f"{'kB shared':>10} {'reward':>8}",
        ]
        ranked = sorted(
            self.records.values(),
            key=lambda r: self.reward_for(r.jid),
            reverse=True,
        )
        for record in ranked:
            lines.append(
                f"{record.jid:<18} {self.online_hours(record.jid):>9.2f} "
                f"{record.sessions:>9} {record.stanzas:>8} "
                f"{record.bytes / 1e3:>10.1f} {self.reward_for(record.jid):>8.2f}"
            )
        return "\n".join(lines)
