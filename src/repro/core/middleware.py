"""High-level facade: build a whole Pogo testbed simulation in a few lines.

This is the public entry point examples and benchmarks use::

    sim = PogoSimulation(seed=7)
    collector = sim.add_collector("researcher")
    device = sim.add_device()
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(experiment, [device.jid])
    sim.run(hours=1)

Everything underneath — kernel, XMPP switchboard, testbed admin, phones,
sensors, worlds — is ordinary library surface and can be composed by hand
when an experiment needs something unusual (the benchmarks do both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..device.apps import EmailApp, EmailConfig
from ..device.phone import Phone
from ..device.radio import KPN, CarrierProfile
from ..net.xmpp import XmppServer
from ..sensors.accelerometer import AccelerometerSensor
from ..sensors.battery_sensor import BatterySensor
from ..sensors.location import LocationSensor
from ..sensors.microphone import MicrophoneSensor, ambient_db_for
from ..sensors.wifi_scanner import WifiScanSensor
from ..sim.kernel import HOUR, MINUTE, Kernel
from ..sim.randomness import RandomStreams
from ..sim.trace import TraceRecorder
from ..world.environment import ConnectivityDriver, UserWorld, build_user_world
from ..world.mobility import TRAVEL, UserProfile
from .node import CollectorNode, DeviceNode
from .tailsync import TransmissionPolicy
from .testbed import TestbedAdmin


@dataclass
class SimulatedDevice:
    """One enrolled phone with its middleware and (optional) world."""

    jid: str
    phone: Phone
    node: DeviceNode
    user_world: Optional[UserWorld] = None
    apps: List[object] = field(default_factory=list)

    def email_app(self) -> Optional[EmailApp]:
        for app in self.apps:
            if isinstance(app, EmailApp):
                return app
        return None


@dataclass
class SimulatedCollector:
    """One researcher's collector node."""

    jid: str
    node: CollectorNode


class PogoSimulation:
    """A complete simulated testbed."""

    def __init__(
        self,
        seed: int = 0,
        carrier: CarrierProfile = KPN,
        record_trace: bool = False,
        spans: bool = True,
        metrics: bool = True,
    ) -> None:
        self.kernel = Kernel()
        if not spans:
            # Kill switch: lifecycle tracing off, hop handles become no-ops.
            self.kernel.spans.disable()
        if not metrics:
            # Production-shape hot path: counters/histograms become no-ops.
            self.kernel.metrics.disable()
        self.streams = RandomStreams(seed)
        self.trace = TraceRecorder(lambda: self.kernel.now) if record_trace else None
        self.server = XmppServer(self.kernel, trace=self.trace)
        self.admin = TestbedAdmin(self.server)
        self.default_carrier = carrier
        self.devices: Dict[str, SimulatedDevice] = {}
        self.collectors: Dict[str, SimulatedCollector] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Building the fleet
    # ------------------------------------------------------------------
    def add_collector(self, name: str) -> SimulatedCollector:
        jid = self.admin.enroll_researcher(name)
        node = CollectorNode(self.kernel, self.server, jid)
        collector = SimulatedCollector(jid, node)
        self.collectors[jid] = collector
        return collector

    def add_device(
        self,
        carrier: Optional[CarrierProfile] = None,
        with_sensors: bool = True,
        with_email_app: bool = False,
        email_config: Optional[EmailConfig] = None,
        user_world: Optional[UserWorld] = None,
        world_days: Optional[int] = None,
        user_profile: Optional[UserProfile] = None,
        propagation=None,
        policy: Optional[TransmissionPolicy] = None,
        simulate_paging: bool = False,
        track_power_history: bool = False,
        capabilities: Optional[set] = None,
    ) -> SimulatedDevice:
        """Enroll one phone, optionally with a generated user world."""
        jid = self.admin.enroll_device(capabilities or {"wifi", "battery", "location"})
        phone = Phone(
            self.kernel,
            name=jid,
            profile=carrier or self.default_carrier,
            trace=self.trace,
            simulate_paging=simulate_paging,
            track_power_history=track_power_history,
        )
        node = DeviceNode(self.kernel, phone, self.server, jid, policy=policy)

        if user_world is None and world_days is not None:
            user_world = build_user_world(
                jid, self.streams, days=world_days, profile=user_profile,
                propagation=propagation,
            )
        device = SimulatedDevice(jid, phone, node, user_world=user_world)

        if with_sensors:
            self._install_sensors(device)
        if with_email_app:
            app = EmailApp(phone, email_config)
            device.apps.append(app)
        self.devices[jid] = device
        return device

    def _install_sensors(self, device: SimulatedDevice) -> None:
        node, phone = device.node, device.phone
        node.sensor_manager.register(BatterySensor(phone))
        wifi_sensor = WifiScanSensor(phone)
        node.sensor_manager.register(wifi_sensor)
        location = LocationSensor(phone)
        accel = AccelerometerSensor(
            phone, rng=self.streams.stream(f"accel/{device.jid}")
        )
        microphone = MicrophoneSensor(
            phone, rng=self.streams.stream(f"microphone/{device.jid}")
        )
        node.sensor_manager.register(location)
        node.sensor_manager.register(accel)
        node.sensor_manager.register(microphone)
        if device.user_world is not None:
            world = device.user_world

            def ambient_level() -> float:
                place = world.current_place(self.kernel.now)
                return ambient_db_for(place.category if place else None)

            phone.wifi.scan_source = lambda: world.scan(self.kernel.now)
            location.position_source = lambda: world.position(self.kernel.now)
            microphone.level_source = ambient_level
            accel.activity_source = lambda: (
                "walking" if world.segment(self.kernel.now).kind == TRAVEL else "still"
            )

    # ------------------------------------------------------------------
    # Wiring and running
    # ------------------------------------------------------------------
    def assign(self, collector: SimulatedCollector, devices: List[SimulatedDevice]) -> None:
        self.admin.assign(collector.jid, [d.jid for d in devices])

    def start(self) -> None:
        """Start every node, app and connectivity driver."""
        if self._started:
            return
        self._started = True
        for collector in self.collectors.values():
            collector.node.start()
        for device in self.devices.values():
            if device.user_world is not None:
                ConnectivityDriver(self.kernel, device.user_world, device.phone).start()
            device.node.start()
            for app in device.apps:
                app.start()

    def run(
        self,
        duration_ms: Optional[float] = None,
        minutes: Optional[float] = None,
        hours: Optional[float] = None,
        days: Optional[float] = None,
    ) -> None:
        """Advance the simulation by the given amount of time."""
        total = 0.0
        if duration_ms is not None:
            total += duration_ms
        if minutes is not None:
            total += minutes * MINUTE
        if hours is not None:
            total += hours * HOUR
        if days is not None:
            total += days * 24 * HOUR
        if total <= 0:
            raise ValueError("specify a positive duration")
        self.kernel.run_until(self.kernel.now + total)
