"""High-level facade: build a whole Pogo testbed simulation in a few lines.

This is the public entry point examples and benchmarks use::

    sim = PogoSimulation(seed=7)
    collector = sim.add_collector("researcher")
    device = sim.add_device()
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(experiment, [device.jid])
    sim.run(hours=1)

Everything underneath — kernel, XMPP switchboard, testbed admin, phones,
sensors, worlds — is ordinary library surface and can be composed by hand
when an experiment needs something unusual (the benchmarks do both).

The actual machinery lives in :mod:`repro.core.shard`: a
``PogoSimulation`` *is* a single :class:`~repro.core.shard.Shard` with
the historical constructor.  Code that needs the sharded surface —
``snapshot()``/``restore()``, the cross-shard egress/ingress seam, epoch
barriers, declarative ``ShardSpec`` construction — gets it for free on
every ``PogoSimulation``, or can build :class:`Shard` directly.
"""

from __future__ import annotations

from .shard import (  # noqa: F401  (re-exported public surface)
    DeviceSpec,
    Shard,
    ShardSpec,
    SimContext,
    SimulatedCollector,
    SimulatedDevice,
)
from ..device.radio import KPN, CarrierProfile


class PogoSimulation(Shard):
    """A complete simulated testbed (one shard, historical constructor)."""

    def __init__(
        self,
        seed: int = 0,
        carrier: CarrierProfile = KPN,
        record_trace: bool = False,
        spans: bool = True,
        metrics: bool = True,
    ) -> None:
        super().__init__(
            seed=seed,
            carrier=carrier,
            record_trace=record_trace,
            spans=spans,
            metrics=metrics,
            shard_id="sim",
        )
