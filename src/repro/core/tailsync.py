"""Tail detection and transmission-synchronization policies.

This is the paper's third contribution (Section 4.7): avoid paying 3G
tail energy by transmitting only when *some other application* has
already put the modem in its high-power state.

The detection mechanism is reproduced exactly:

* the detector polls the cellular interface's byte counters once per
  second;
* the poll loop runs on a **sleep-frozen timer** (``Thread.sleep``
  semantics, :class:`repro.device.cpu.SleepFrozenTimer`): while the CPU
  sleeps the loop is suspended, so the detector itself never wakes the
  device and costs essentially nothing;
* when another app's alarm wakes the CPU and its traffic moves the byte
  counters, the detector's next poll (≤1 s later, comfortably inside the
  ~6 s DCH tail) notices and fires — the transmission opportunity.

The *when to send* decision is a pluggable policy; alternatives the paper
discusses ("flush the transmit buffer at long intervals (i.e. once per
hour)", sending immediately) are implemented too, which is what the
ablation benchmark compares.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.kernel import HOUR, SECOND, Kernel
from ..device.cpu import SleepFrozenTimer


class TailDetector:
    """Polls modem byte counters from a sleep-frozen loop."""

    def __init__(self, phone, poll_interval_ms: float = 1 * SECOND) -> None:
        self.phone = phone
        self.poll_interval_ms = poll_interval_ms
        self.on_activity: List[Callable[[], None]] = []
        self.detections = 0
        self.polls = 0
        self._last_bytes = phone.modem.total_bytes
        self._timer: Optional[SleepFrozenTimer] = None
        self.running = False
        self._m_polls = phone.kernel.metrics.counter("tailsync.polls")
        self._m_detections = phone.kernel.metrics.counter("tailsync.detections")

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._last_bytes = self.phone.modem.total_bytes
        self._arm()

    def stop(self) -> None:
        self.running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm(self) -> None:
        timer = self._timer
        if timer is not None and timer.fired and not timer.cancelled:
            # Re-run the same timer (and its kernel handle) instead of
            # allocating a new one per poll — the detector polls once a
            # second for the entire simulation.
            timer.restart(self.poll_interval_ms)
        else:
            self._timer = self.phone.cpu.sleep_frozen_timer(self.poll_interval_ms, self._poll)

    def _poll(self) -> None:
        if not self.running:
            return
        self.polls += 1
        self._m_polls.inc()
        current = self.phone.modem.total_bytes
        if current != self._last_bytes:
            self._last_bytes = current
            self.detections += 1
            self._m_detections.inc()
            for listener in list(self.on_activity):
                listener()
        self._arm()


class TransmissionPolicy:
    """Decides when the device flushes its outgoing buffer.

    The controller bound via :meth:`bind` provides ``flush(reason)``
    (no-op when the buffer is empty or the device is offline), the
    ``phone`` and the ``scheduler``.
    """

    name = "base"

    def __init__(self) -> None:
        self._controller = None

    def bind(self, controller) -> None:
        self._controller = controller

    # Lifecycle -----------------------------------------------------------
    def start(self) -> None:  # pragma: no cover - overridden
        pass

    def stop(self) -> None:  # pragma: no cover - overridden
        pass

    # Hooks called by the device runtime -----------------------------------
    def on_enqueue(self) -> None:
        pass

    def on_connected(self) -> None:
        # Connectivity restored: there is buffered backlog and the
        # reconnection handshake has already spun the radio up, so a
        # flush here rides the handshake's tail.
        self._flush("connected")

    def _flush(self, reason: str) -> None:
        if self._controller is None:
            return
        kernel = self._controller.kernel
        kernel.metrics.counter(f"tailsync.flush.{reason}").inc()
        spans = kernel.spans
        if spans.enabled:
            # The decision span captures *why* the buffer moved now and
            # what state the radio was in — "tail-sync" on a hot radio is
            # the piggyback; "fallback-interval" from idle is the paid
            # ramp.  node.flush parents its span here via active_parent.
            phone = self._controller.phone
            now = kernel.now
            decision = spans.hop("tailsync.decision").record(
                0,
                0,
                now,
                now,
                {
                    "policy": self.name,
                    "reason": reason,
                    "radio": phone.modem.state if phone is not None else "?",
                },
            )
            previous = spans.active_parent
            spans.active_parent = decision
            try:
                self._controller.flush(reason)
            finally:
                spans.active_parent = previous
        else:
            self._controller.flush(reason)

    @property
    def phone(self):
        return self._controller.phone if self._controller else None


class SynchronizedPolicy(TransmissionPolicy):
    """The paper's scheme: piggyback on other apps' radio activity.

    A fallback timer bounds worst-case latency ("data gathering
    applications generally allow for long latencies"): if nothing else
    has used the radio for ``max_delay_ms``, flush anyway.  On Wi-Fi
    there is no tail to avoid, so enqueued data is sent promptly.
    """

    name = "synchronized"

    def __init__(
        self,
        detector: TailDetector,
        max_delay_ms: Optional[float] = 1 * HOUR,
        wifi_prompt: bool = True,
    ) -> None:
        super().__init__()
        self.detector = detector
        self.max_delay_ms = max_delay_ms
        self.wifi_prompt = wifi_prompt
        self.sync_flushes = 0
        self._fallback_task = None

    def start(self) -> None:
        self.detector.on_activity.append(self._on_radio_activity)
        self.detector.start()
        if self.max_delay_ms is not None:
            self._fallback_task = self._controller.scheduler.schedule_repeating(
                self.max_delay_ms, self._flush, "fallback-interval"
            )

    def stop(self) -> None:
        self.detector.stop()
        if self._on_radio_activity in self.detector.on_activity:
            self.detector.on_activity.remove(self._on_radio_activity)
        if self._fallback_task is not None:
            self._fallback_task.cancel()
            self._fallback_task = None

    def _on_radio_activity(self) -> None:
        self.sync_flushes += 1
        self._flush("tail-sync")

    def on_enqueue(self) -> None:
        if self.wifi_prompt and self.phone is not None:
            if self.phone.active_interface() == "wifi":
                self._flush("wifi-prompt")


class PeriodicPolicy(TransmissionPolicy):
    """Flush on a fixed timer regardless of other radio activity.

    The ablation baseline: every flush that does not happen to coincide
    with other traffic pays a full ramp-up + tail of its own.
    """

    name = "periodic"

    def __init__(self, interval_ms: float = 5 * 60 * SECOND, offset_ms: Optional[float] = None) -> None:
        super().__init__()
        self.interval_ms = interval_ms
        #: Phase offset of the first flush; lets experiments control
        #: whether the timer happens to align with other apps' traffic.
        self.offset_ms = offset_ms
        self._task = None

    def start(self) -> None:
        self._task = self._controller.scheduler.schedule_repeating(
            self.interval_ms, self._flush, "periodic",
            initial_delay_ms=self.offset_ms,
        )

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None


class ImmediatePolicy(TransmissionPolicy):
    """Send every message as soon as it is enqueued (worst case)."""

    name = "immediate"

    def on_enqueue(self) -> None:
        self._flush("immediate")


class ChargerPolicy(TransmissionPolicy):
    """Flush only while the phone is plugged in.

    The other alternative Section 4.7 names ("simply delay transfer
    until the phone is plugged into the charger") — also what SystemSens
    and LiveLab do ("Both offload the collected traces to a central
    server only when the phone is charging", Section 2).  Essentially
    free energy-wise, but delivery latency is measured in *hours*, and
    anything buffered longer than the message max-age is purged — which
    is why Pogo prefers synchronization.
    """

    name = "charger"

    def __init__(self, drain_interval_ms: float = 10 * 60 * SECOND) -> None:
        super().__init__()
        #: While plugged in, keep draining at this interval (overnight
        #: sessions produce new data continuously).
        self.drain_interval_ms = drain_interval_ms
        self._drain_task = None
        self._listener_installed = False

    def start(self) -> None:
        battery = self._controller.phone.battery
        if not self._listener_installed:
            battery.on_charging_changed.append(self._charging_changed)
            self._listener_installed = True
        if battery.charging:
            self._begin_draining()

    def stop(self) -> None:
        battery = self._controller.phone.battery
        if self._listener_installed and self._charging_changed in battery.on_charging_changed:
            battery.on_charging_changed.remove(self._charging_changed)
            self._listener_installed = False
        self._end_draining()

    def _charging_changed(self, charging: bool) -> None:
        if charging:
            self._flush("charger-plugged")
            self._begin_draining()
        else:
            self._end_draining()

    def _begin_draining(self) -> None:
        if self._drain_task is None:
            self._drain_task = self._controller.scheduler.schedule_repeating(
                self.drain_interval_ms, self._drain
            )

    def _end_draining(self) -> None:
        if self._drain_task is not None:
            self._drain_task.cancel()
            self._drain_task = None

    def _drain(self) -> None:
        if self._controller.phone.battery.charging:
            self._flush("charger-drain")

    def on_connected(self) -> None:
        # Unlike the default, reconnection alone does not trigger a
        # flush: the whole point of this policy is to wait for power.
        if self._controller.phone.battery.charging:
            self._flush("connected-charging")
