"""Wire operations and experiment specifications.

Everything device and collector nodes say to each other is one of the
small set of operations below, carried as the payload of a reliable
envelope (:mod:`repro.net.acks`) over the XMPP switchboard.  Batches
group many payloads into one stanza — "messages are therefore buffered at
the device and sent out in batches" (Section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .envelope import Envelope, Stanza

#: Create the device-side counterpart context for an experiment.  Sent
#: before any deploy/sub op so that experiments without device scripts
#: (pure sensor collection) still get a context on the device.
OP_ATTACH = "attach"
#: Remote script deployment (also used for updates: same name, new source).
OP_DEPLOY = "deploy"
#: Remove a script from a device.
OP_UNDEPLOY = "undeploy"
#: Tear down a whole experiment context.
OP_TEARDOWN = "teardown"
#: A published message crossing the network boundary.
OP_PUB = "pub"
#: Subscription synchronization between broker counterparts.
OP_SUB_ADD = "sub_add"
OP_SUB_RELEASE = "sub_release"
OP_SUB_RENEW = "sub_renew"
OP_SUB_REMOVE = "sub_remove"
#: Peer's subscription table should be cleared (sent by a device after a
#: reboot, before it re-announces its live subscriptions).
OP_SUB_RESET = "sub_reset"
#: A batch of payloads flushed together from a device buffer.
OP_BATCH = "batch"


def attach_op(experiment_id: str) -> Dict[str, Any]:
    return Stanza(op=OP_ATTACH, ctx=experiment_id)


def deploy_op(experiment_id: str, script_name: str, source: str) -> Dict[str, Any]:
    return Stanza(op=OP_DEPLOY, ctx=experiment_id, script=script_name, source=source)


def undeploy_op(experiment_id: str, script_name: str) -> Dict[str, Any]:
    return Stanza(op=OP_UNDEPLOY, ctx=experiment_id, script=script_name)


def teardown_op(experiment_id: str) -> Dict[str, Any]:
    return Stanza(op=OP_TEARDOWN, ctx=experiment_id)


def pub_op(experiment_id: str, channel: str, message: Any) -> Dict[str, Any]:
    """A published message crossing the network boundary.

    The ``msg`` leaf is always an :class:`Envelope`: wrapping here (a
    no-op for the already-wrapped hot path) means every remote-bound pub
    carries its validated payload and cached canonical JSON with it, so
    downstream hops splice instead of re-serializing.
    """
    return Stanza(
        op=OP_PUB,
        ctx=experiment_id,
        channel=channel,
        msg=Envelope.wrap(message),
    )


def sub_add_op(
    experiment_id: str, sub_id: int, channel: str, parameters: Optional[dict]
) -> Dict[str, Any]:
    return Stanza(
        op=OP_SUB_ADD,
        ctx=experiment_id,
        sub=sub_id,
        channel=channel,
        params=parameters or {},
    )


def sub_change_op(op: str, experiment_id: str, sub_id: int) -> Dict[str, Any]:
    return Stanza(op=op, ctx=experiment_id, sub=sub_id)


def batch_op(items: List[Dict[str, Any]]) -> Dict[str, Any]:
    return Stanza(op=OP_BATCH, items=items)


@dataclass
class Experiment:
    """A deployable experiment: scripts for devices and for the collector.

    The localization application (Section 4.1) is::

        Experiment(
            experiment_id="localization",
            device_scripts={"scan": SCAN_SOURCE, "clustering": CLUSTERING_SOURCE},
            collector_scripts={"collect": COLLECT_SOURCE},
        )
    """

    experiment_id: str
    device_scripts: Dict[str, str] = field(default_factory=dict)
    collector_scripts: Dict[str, str] = field(default_factory=dict)
    description: str = ""

    def validate(self) -> None:
        if not self.experiment_id:
            raise ValueError("experiment needs an id")
        for name, source in {**self.device_scripts, **self.collector_scripts}.items():
            if not isinstance(source, str) or not source.strip():
                raise ValueError(f"script {name!r} has empty source")
            compile(source, f"<script {name}>", "exec")  # syntax check up front
