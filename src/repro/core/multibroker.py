"""Collector-side contexts: the multi broker.

Section 4.2: "Since contexts on collector nodes can have more than one
remote context associated with them, a *multi broker* is used to make the
communication fan out over the different devices."

A :class:`CollectorContext` owns the collector's scripts (e.g.
``collect``), a local broker, and one :class:`DeviceLink` per assigned
device.  Fan-out rules:

* a collector script's ``subscribe()`` is announced to **every** device
  (and to devices attached later);
* a collector script's ``publish()`` is delivered locally and forwarded
  to each device whose synchronized subscription table shows interest;
* a ``pub`` arriving from a device is delivered to local scripts with the
  originating device identity attached (``_device``), since one handler
  receives data from the whole fleet.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .broker import Broker, Subscription
from .context import LINK_OWNER
from .deployment import (
    OP_SUB_ADD,
    OP_SUB_RELEASE,
    OP_SUB_REMOVE,
    OP_SUB_RENEW,
    attach_op,
    deploy_op,
    pub_op,
    sub_add_op,
    sub_change_op,
    teardown_op,
    undeploy_op,
)
from .envelope import Envelope, FrozenDict
from .scripting import ScriptHost


class DeviceLink:
    """Synchronized state for one device in a collector context."""

    def __init__(self, device_jid: str) -> None:
        self.device_jid = device_jid
        #: device-side subscription id -> {"channel", "params", "active"}
        self.remote_subs: Dict[int, dict] = {}
        #: channel -> number of active subscriptions, kept in lockstep
        #: with ``remote_subs`` so interest checks are O(1) instead of a
        #: scan of the whole synchronized table per publish.
        self._active_count: Dict[str, int] = {}

    def interested_in(self, channel: str) -> bool:
        return self._active_count.get(channel, 0) > 0

    def _count_active(self, channel: str, delta: int) -> None:
        count = self._active_count.get(channel, 0) + delta
        if count > 0:
            self._active_count[channel] = count
        else:
            self._active_count.pop(channel, None)

    def apply_sub_op(self, payload: dict) -> None:
        op = payload["op"]
        sub_id = int(payload["sub"])
        if op == OP_SUB_ADD:
            previous = self.remote_subs.get(sub_id)
            if previous is not None and previous["active"]:
                self._count_active(previous["channel"], -1)
            self.remote_subs[sub_id] = {
                "channel": payload["channel"],
                "params": payload.get("params") or {},
                "active": True,
            }
            self._count_active(payload["channel"], +1)
        elif op == OP_SUB_RELEASE:
            entry = self.remote_subs.get(sub_id)
            if entry is not None and entry["active"]:
                entry["active"] = False
                self._count_active(entry["channel"], -1)
        elif op == OP_SUB_RENEW:
            entry = self.remote_subs.get(sub_id)
            if entry is not None and not entry["active"]:
                entry["active"] = True
                self._count_active(entry["channel"], +1)
        elif op == OP_SUB_REMOVE:
            entry = self.remote_subs.pop(sub_id, None)
            if entry is not None and entry["active"]:
                self._count_active(entry["channel"], -1)
        else:
            raise ValueError(f"not a subscription op: {op!r}")

    def reset(self) -> None:
        self.remote_subs.clear()
        self._active_count.clear()


class CollectorContext:
    """One experiment's context on the collector node."""

    def __init__(self, node, experiment_id: str) -> None:
        self.node = node
        self.experiment_id = experiment_id
        self.broker = Broker(
            name=f"{experiment_id}@{node.jid}",
            metrics=node.kernel.metrics,
            spans=node.kernel.spans,
        )
        spans = node.kernel.spans
        self._spans = spans
        self._h_publish = spans.hop("publish")
        self._h_deliver = spans.hop("deliver.collector")
        self.scripts: Dict[str, ScriptHost] = {}
        self.links: Dict[str, DeviceLink] = {}
        self.device_scripts: Dict[str, str] = {}
        self._watch_listener = self._on_local_sub_change
        self.broker.watch_all(self._watch_listener)
        self.received_pubs = 0

    # ------------------------------------------------------------------
    # Scripts (collector side)
    # ------------------------------------------------------------------
    def deploy_script(self, name: str, source: str) -> ScriptHost:
        existing = self.scripts.get(name)
        if existing is not None:
            existing.update(source)
            return existing
        host = ScriptHost(self, name, source, watchdog_ms=self.node.watchdog_ms)
        self.scripts[name] = host
        host.load()
        return host

    # ------------------------------------------------------------------
    # Device management (the fan-out set)
    # ------------------------------------------------------------------
    def attach_device(self, device_jid: str) -> DeviceLink:
        """Add a device: push the experiment's scripts and our subs."""
        if device_jid in self.links:
            return self.links[device_jid]
        link = DeviceLink(device_jid)
        self.links[device_jid] = link
        self.node.send_to(device_jid, attach_op(self.experiment_id))
        for name, source in self.device_scripts.items():
            self.node.send_to(device_jid, deploy_op(self.experiment_id, name, source))
        self.sync_subscriptions_to(device_jid)
        return link

    def detach_device(self, device_jid: str) -> None:
        if device_jid in self.links:
            self.node.send_to(device_jid, teardown_op(self.experiment_id))
            del self.links[device_jid]

    def push_script(self, name: str, source: str) -> None:
        """Deploy/update a device script across the whole fleet."""
        self.device_scripts[name] = source
        for device_jid in self.links:
            self.node.send_to(device_jid, deploy_op(self.experiment_id, name, source))

    def remove_script(self, name: str) -> None:
        self.device_scripts.pop(name, None)
        for device_jid in self.links:
            self.node.send_to(device_jid, undeploy_op(self.experiment_id, name))

    @staticmethod
    def _is_local_plumbing(sub: Subscription) -> bool:
        """Service/instrumentation subscriptions stay local (never synced)."""
        return bool(
            sub.owner
            and (sub.owner.startswith("service:") or sub.owner.startswith("local:"))
        )

    def sync_subscriptions_to(self, device_jid: str) -> None:
        """(Re-)announce local script subscriptions to one device."""
        for sub in self.broker.all_subscriptions():
            if sub.owner == LINK_OWNER or sub.removed or self._is_local_plumbing(sub):
                continue
            self.node.send_to(
                device_jid,
                sub_add_op(self.experiment_id, sub.id, sub.channel, sub.parameters),
            )
            if not sub.active:
                self.node.send_to(
                    device_jid,
                    sub_change_op(OP_SUB_RELEASE, self.experiment_id, sub.id),
                )

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish_from_script(self, script: ScriptHost, channel: str, message: Any) -> None:
        envelope = Envelope.wrap(message)
        if self._spans.enabled and not envelope.trace_id:
            now = self._spans.now()
            envelope.origin_ms = now
            envelope.hop_span = self._h_publish.record(
                self._spans.tag(envelope),
                0,
                now,
                now,
                {
                    "channel": channel,
                    "source": script.name if script is not None else "collector",
                    "node": self.node.jid,
                },
            )
        self.broker.publish(channel, envelope)
        for device_jid, link in self.links.items():
            if link.interested_in(channel):
                # One envelope fans out to the whole fleet: each device's
                # pub op shares the same validated payload and cached JSON.
                self.node.send_to(device_jid, pub_op(self.experiment_id, channel, envelope))

    def deliver_remote(self, device_jid: str, channel: str, message: Any) -> int:
        """Deliver a device's pub to local scripts, tagged with origin."""
        self.received_pubs += 1
        envelope = Envelope.wrap(message)
        if envelope.trace_id and self._spans.enabled:
            # End-to-end terminus: from the device-side publish to here.
            # Recorded against the *incoming* envelope (the tagged re-wrap
            # below is a new envelope and would lose the trace).
            self._h_deliver.record(
                envelope.trace_id,
                envelope.hop_span,
                envelope.origin_ms,
                self._spans.now(),
                {"channel": channel, "device": device_jid},
            )
        payload = envelope.payload
        if isinstance(payload, dict):
            # Tag with the originating device.  The envelope's payload
            # values are already frozen (the construction invariant), so
            # the tagged view is a direct FrozenDict — no re-validation
            # walk over the top level.
            tagged = dict(payload)
            tagged["_device"] = device_jid
            payload = FrozenDict(tagged)
        delivered = 0
        for sub in list(self.broker.subscriptions(channel)):
            if sub.owner == LINK_OWNER:
                continue
            sub.delivery_count += 1
            delivered += 1
            sub.handler(payload)
        return delivered

    # ------------------------------------------------------------------
    # Subscription ops from devices
    # ------------------------------------------------------------------
    def apply_sub_op(self, device_jid: str, payload: dict) -> None:
        link = self.links.get(device_jid)
        if link is not None:
            link.apply_sub_op(payload)

    def reset_device_subs(self, device_jid: str) -> None:
        link = self.links.get(device_jid)
        if link is not None:
            link.reset()

    # ------------------------------------------------------------------
    def _on_local_sub_change(self, channel: str, sub: Subscription, change: str) -> None:
        if sub.owner == LINK_OWNER or self._is_local_plumbing(sub):
            return
        for device_jid in self.links:
            if change == "added":
                payload = sub_add_op(self.experiment_id, sub.id, channel, sub.parameters)
            elif change == "released":
                payload = sub_change_op(OP_SUB_RELEASE, self.experiment_id, sub.id)
            elif change == "renewed":
                payload = sub_change_op(OP_SUB_RENEW, self.experiment_id, sub.id)
            else:
                payload = sub_change_op(OP_SUB_REMOVE, self.experiment_id, sub.id)
            self.node.send_to(device_jid, payload)

    def teardown(self) -> None:
        for host in self.scripts.values():
            host.stop()
        for device_jid in list(self.links):
            self.detach_device(device_jid)
        self.broker.unwatch_all(self._watch_listener)
