"""Collector-side services exposed to scripts through pub/sub.

The paper's ``collect.js`` "uses Google's geolocation service to convert
[cluster characterizations] into a longitude, latitude pair" (Section
4.1).  The script API has no HTTP access (Table 1 is all there is), so
the collector runtime exposes such services the same way devices expose
sensors: as components on the context broker.  A script publishes a
query on ``geo-lookup`` and receives the answer on ``geo-result``::

    publish('geo-lookup', {'id': 7, 'vector': {bssid: weight, ...}})
    # later, on 'geo-result':
    {'id': 7, 'fix': {'lat': ..., 'lon': ..., 'accuracy': ...}}  # or fix=None

Service subscriptions are local plumbing: they are *not* mirrored to
devices (their owner tag is excluded from subscription sync).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, Optional

from ..world.geolocation import GeolocationService

#: Owner-tag prefix for service subscriptions (excluded from sub sync).
SERVICE_OWNER_PREFIX = "service:"

GEO_LOOKUP_CHANNEL = "geo-lookup"
GEO_RESULT_CHANNEL = "geo-result"


class GeolocationBridge:
    """Bridges ``geo-lookup``/``geo-result`` to a geolocation backend."""

    owner = SERVICE_OWNER_PREFIX + "geolocation"

    def __init__(self, service: GeolocationService) -> None:
        self.service = service
        self.queries = 0
        self._contexts = []

    def attach_context(self, context) -> None:
        """Install the service into one collector context."""
        self._contexts.append(context)
        context.broker.subscribe(
            GEO_LOOKUP_CHANNEL,
            partial(self._handle, context),
            owner=self.owner,
        )

    def _handle(self, context, message: Dict[str, Any]) -> None:
        self.queries += 1
        vector = message.get("vector") or {}
        fix = self.service.locate(vector)
        result: Dict[str, Any] = {"id": message.get("id")}
        if fix is None:
            result["fix"] = None
        else:
            result["fix"] = {
                "lat": round(fix.latitude, 6),
                "lon": round(fix.longitude, 6),
                "accuracy": round(fix.accuracy_m, 1),
                "matched": fix.matched_aps,
            }
        context.broker.publish(GEO_RESULT_CHANNEL, result)
