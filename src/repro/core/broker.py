"""Topic-based publish/subscribe broker with parameterized subscriptions.

This is the core abstraction of the paper (Sections 3.5 and 4.3):

* components publish messages on named **channels**;
* subscriptions may carry a **parameter object** ("a script may request
  location updates, but only from the GPS sensor ... the scanning
  interval in this case is also passed using the parameters");
* subscriptions can be deactivated and reactivated (``release`` /
  ``renew`` — RogueFinder toggles its Wi-Fi subscription this way);
* **publishers can observe the subscription set** of their channels:
  "sensors [can] listen for changes in subscriptions to the channels they
  publish on.  Sensors can enable or disable scanning based on this
  information" — the energy argument for choosing pub/sub over tuple
  spaces (Section 3.5).

Delivery is pluggable: stand-alone brokers deliver synchronously, while a
broker owned by a Pogo context routes deliveries through the node's
scheduler so that script handlers are serialized and watchdogged.
"""

from __future__ import annotations

import itertools
import sys
from typing import Any, Callable, Dict, List, Optional

from .envelope import Envelope
from .messages import validate_message

#: Signature of subscription-change listeners: (channel, subscription, change)
SubscriptionListener = Callable[[str, "Subscription", str], None]

#: Change kinds reported to subscription listeners.
SUB_ADDED = "added"
SUB_RELEASED = "released"
SUB_RENEWED = "renewed"
SUB_REMOVED = "removed"


class Subscription:
    """A handle to one subscription, as returned by ``subscribe()``.

    Mirrors Table 1's ``Subscription`` object: ``release()`` deactivates,
    ``renew()`` reactivates; both are idempotent ("these methods have no
    effect when the subscription is inactive or active respectively").
    """

    def __init__(
        self,
        broker: "Broker",
        channel: str,
        handler: Callable[[Any], None],
        parameters: Optional[Dict[str, Any]] = None,
        owner: Optional[str] = None,
    ) -> None:
        # Ids are per-broker (see Broker._next_sub_id): deterministic
        # across simulations in one process, unique within a context.
        self.id = broker._next_sub_id()
        self._broker = broker
        self.channel = channel
        self.handler = handler
        self.parameters = dict(parameters) if parameters else {}
        #: Identifies the subscribing component (script name, link id);
        #: used for cleanup when a script stops.
        self.owner = owner
        self.active = True
        self.removed = False
        self.delivery_count = 0

    def release(self) -> None:
        """Deactivate: no deliveries until :meth:`renew`."""
        if self.removed or not self.active:
            return
        self.active = False
        self._broker._notify(self.channel, self, SUB_RELEASED)

    def renew(self) -> None:
        """Reactivate a released subscription."""
        if self.removed or self.active:
            return
        self.active = True
        self._broker._notify(self.channel, self, SUB_RENEWED)

    def remove(self) -> None:
        """Permanently remove the subscription from the broker."""
        if self.removed:
            return
        self.removed = True
        self.active = False
        self._broker._remove(self)

    def parameter(self, key: str, default: Any = None) -> Any:
        return self.parameters.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "removed" if self.removed else ("active" if self.active else "released")
        return f"<Subscription #{self.id} {self.channel!r} {state} params={self.parameters}>"


def _default_deliver(subscription: "Subscription", message: Any) -> None:
    """Default delivery: call the handler directly (picklable, unlike a
    lambda — brokers live inside the Shard snapshot graph)."""
    subscription.handler(message)


class Broker:
    """A topic broker for one context (or one sensor manager)."""

    def __init__(
        self,
        name: str = "broker",
        deliver: Optional[Callable[[Subscription, Any], None]] = None,
        metrics=None,
        spans=None,
    ) -> None:
        self.name = name
        self._sub_ids = itertools.count(1)
        self._subscriptions: Dict[str, List[Subscription]] = {}
        #: Subscription index: interned topic -> the pre-filtered list of
        #: active subscriptions, built lazily on publish and invalidated
        #: (entry dropped) on any subscription change for that channel.
        #: Publish cost is therefore independent of how many released or
        #: foreign-channel subscriptions the broker carries.
        self._active_index: Dict[str, List[Subscription]] = {}
        self._channel_watchers: Dict[str, List[SubscriptionListener]] = {}
        self._global_watchers: List[SubscriptionListener] = []
        self._deliver = deliver or _default_deliver
        self.publish_count = 0
        self.delivery_count = 0
        # Pre-bound metric counters (kernel metrics plane); None-guarded so
        # stand-alone brokers in unit tests work without a kernel.
        self._m_publishes = metrics.counter("broker.publishes") if metrics else None
        self._m_deliveries = metrics.counter("broker.deliveries") if metrics else None
        self._m_copies_avoided = metrics.counter("broker.copies_avoided") if metrics else None
        # Pre-bound tracing handle (kernel span plane), same None-guard.
        self._spans = spans
        self._h_fanout = spans.hop("broker.fanout") if spans else None

    def _next_sub_id(self) -> int:
        return next(self._sub_ids)

    # ------------------------------------------------------------------
    # Subscribing
    # ------------------------------------------------------------------
    def subscribe(
        self,
        channel: str,
        handler: Callable[[Any], None],
        parameters: Optional[Dict[str, Any]] = None,
        owner: Optional[str] = None,
    ) -> Subscription:
        """Create an active subscription on ``channel``."""
        if not channel or not isinstance(channel, str):
            raise ValueError(f"invalid channel name: {channel!r}")
        # Interning gives every equal topic string one identity, so the
        # per-publish index lookup takes the dict's pointer-comparison
        # fast path instead of hashing/comparing characters.
        channel = sys.intern(channel)
        if parameters is not None:
            validate_message(parameters)
        subscription = Subscription(self, channel, handler, parameters, owner)
        self._subscriptions.setdefault(channel, []).append(subscription)
        self._notify(channel, subscription, SUB_ADDED)
        return subscription

    def _remove(self, subscription: Subscription) -> None:
        subs = self._subscriptions.get(subscription.channel, [])
        if subscription in subs:
            subs.remove(subscription)
            if not subs:
                del self._subscriptions[subscription.channel]
        self._notify(subscription.channel, subscription, SUB_REMOVED)

    def remove_owned_by(self, owner: str) -> int:
        """Remove every subscription created by ``owner`` (script stop)."""
        doomed = [
            s
            for subs in self._subscriptions.values()
            for s in subs
            if s.owner == owner
        ]
        for subscription in doomed:
            subscription.remove()
        return len(doomed)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, channel: str, message: Any) -> int:
        """Deliver ``message`` to all active subscriptions on ``channel``.

        The message is wrapped in an :class:`Envelope` — validated once,
        frozen — and every subscriber receives the *same* immutable view,
        so handlers cannot interfere with one another (mutation raises
        instead of silently diverging; handlers that edit take
        ``message.copy()``).  Returns the number of deliveries.
        """
        envelope = Envelope.wrap(message)
        payload = envelope.payload
        self.publish_count += 1
        if self._m_publishes is not None:
            self._m_publishes.inc()
        subs = self._active_index.get(channel)
        if subs is None:
            subs = self._active_subs(channel)
        delivered = 0
        # The index entry is replaced (never mutated) on invalidation, so
        # iterating it has snapshot semantics; the per-subscription active
        # check preserves the old behaviour for handlers that release a
        # later subscription mid-fanout.
        for subscription in subs:
            if not subscription.active:
                continue
            subscription.delivery_count += 1
            self.delivery_count += 1
            delivered += 1
            self._deliver(subscription, payload)
        if delivered:
            if self._m_deliveries is not None:
                self._m_deliveries.inc(delivered)
            # One shared frozen view replaced `delivered` deep copies.
            if self._m_copies_avoided is not None:
                self._m_copies_avoided.inc(delivered)
        if self._h_fanout is not None and self._spans.enabled:
            now = self._spans.now()
            span_id = self._h_fanout.record(
                self._spans.tag(envelope),
                envelope.hop_span,
                now,
                now,
                {"channel": channel, "deliveries": delivered},
            )
            if span_id:
                envelope.hop_span = span_id
        return delivered

    # ------------------------------------------------------------------
    # Introspection (what sensors use to duty-cycle)
    # ------------------------------------------------------------------
    def _active_subs(self, channel: str) -> List[Subscription]:
        """The index entry for ``channel``, built on first use."""
        subs = self._active_index.get(channel)
        if subs is None:
            subs = self._active_index[sys.intern(channel)] = [
                s for s in self._subscriptions.get(channel, ()) if s.active
            ]
        return subs

    def subscriptions(self, channel: str, active_only: bool = True) -> List[Subscription]:
        if active_only:
            return list(self._active_subs(channel))
        return list(self._subscriptions.get(channel, []))

    def has_subscribers(self, channel: str) -> bool:
        return bool(self._active_subs(channel))

    def channels(self) -> List[str]:
        return sorted(self._subscriptions)

    def all_subscriptions(self) -> List[Subscription]:
        return [s for subs in self._subscriptions.values() for s in subs]

    # ------------------------------------------------------------------
    # Subscription-change notification
    # ------------------------------------------------------------------
    def watch_channel(self, channel: str, listener: SubscriptionListener) -> None:
        """Be notified of subscription changes on one channel (sensors)."""
        self._channel_watchers.setdefault(channel, []).append(listener)

    def watch_all(self, listener: SubscriptionListener) -> None:
        """Be notified of every subscription change (context links)."""
        self._global_watchers.append(listener)

    def unwatch_all(self, listener: SubscriptionListener) -> None:
        if listener in self._global_watchers:
            self._global_watchers.remove(listener)

    def _notify(self, channel: str, subscription: Subscription, change: str) -> None:
        # Every change kind (add/release/renew/remove) can alter the
        # active set, so drop the channel's index entry before listeners
        # run — a listener may publish and rebuild it immediately.
        self._active_index.pop(channel, None)
        for listener in list(self._channel_watchers.get(channel, [])):
            listener(channel, subscription, change)
        for listener in list(self._global_watchers):
            listener(channel, subscription, change)
