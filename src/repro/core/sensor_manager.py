"""The sensor manager: sensors serving all contexts, duty-cycled by demand.

Section 4.2: "sensors live inside a *sensor manager*.  They are able to
publish data to, or query subscriptions from, all contexts.  All a script
needs to do in order to obtain sensor data is to subscribe to it.  This
also works across the network; a script running on a collector node that
subscribes to battery information will automatically receive voltage
measurements from all devices in the experiment."

The manager therefore aggregates subscription state across every context
on the node (including the remote-proxy subscriptions synchronized from
collectors), applies the owner's privacy settings, and notifies each
sensor when demand for its channel changes so it can turn itself on or
off and pick its sampling rate (Section 4.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .broker import Subscription
from .envelope import Envelope
from .privacy import PrivacySettings


class _SensorDemandWatch:
    """Picklable channel watcher: any subscription change re-evaluates
    the sensor's duty cycle (a lambda here would break Shard snapshots —
    watchers live on context brokers inside the pickled graph)."""

    __slots__ = ("sensor",)

    def __init__(self, sensor) -> None:
        self.sensor = sensor

    def __call__(self, _channel, _subscription, _change) -> None:
        self.sensor.reevaluate()


class SensorManager:
    """Registry and context/privacy bridge for a device's sensors."""

    def __init__(self, node, privacy: Optional[PrivacySettings] = None) -> None:
        self.node = node
        self.privacy = privacy or PrivacySettings()
        self.sensors: Dict[str, object] = {}
        self.privacy.on_change.append(self._privacy_changed)

    # ------------------------------------------------------------------
    def register(self, sensor) -> None:
        """Register a sensor (one per channel)."""
        if sensor.channel in self.sensors:
            raise ValueError(f"duplicate sensor for channel {sensor.channel!r}")
        self.sensors[sensor.channel] = sensor
        sensor.attach(self)
        for context in self.node.contexts.values():
            self._watch_context_channel(context, sensor.channel)
        sensor.reevaluate()

    def sensor_for(self, channel: str):
        return self.sensors.get(channel)

    # ------------------------------------------------------------------
    # Context integration
    # ------------------------------------------------------------------
    def on_context_added(self, context) -> None:
        """Called by the node whenever an experiment context appears."""
        for channel in self.sensors:
            self._watch_context_channel(context, channel)
        for sensor in self.sensors.values():
            sensor.reevaluate()

    def _watch_context_channel(self, context, channel: str) -> None:
        sensor = self.sensors[channel]
        context.broker.watch_channel(channel, _SensorDemandWatch(sensor))

    # ------------------------------------------------------------------
    # What sensors ask
    # ------------------------------------------------------------------
    def subscriptions(self, channel: str) -> List[Subscription]:
        """All active subscriptions for a channel across contexts.

        Returns nothing when the owner blocked the channel — from the
        sensor's point of view a blocked channel simply has no demand.
        """
        if not self.privacy.allows(channel):
            return []
        result: List[Subscription] = []
        for context in self.node.contexts.values():
            result.extend(context.broker.subscriptions(channel))
        return result

    def publish(self, channel: str, message) -> int:
        """Publish a sensor reading into every context.

        Wrapped once: a reading fanned out to many experiment contexts is
        validated and (if forwarded) serialized a single time.
        """
        if not self.privacy.allows(channel):
            self.privacy.suppressed_publishes += 1
            return 0
        envelope = Envelope.wrap(message)
        delivered = 0
        for context in self.node.contexts.values():
            delivered += context.publish_internal(channel, envelope) or 0
        return delivered

    # ------------------------------------------------------------------
    def _privacy_changed(self, channel: str, _allowed: bool) -> None:
        sensor = self.sensors.get(channel)
        if sensor is not None:
            sensor.reevaluate()

    def shutdown(self) -> None:
        for sensor in self.sensors.values():
            sensor.disable()

    def reevaluate_all(self) -> None:
        for sensor in self.sensors.values():
            sensor.reevaluate()
