"""Per-script power modelling (the paper's first future-work item).

Section 6: "In the future we would like to implement power modelling to
estimate the resource consumption of individual scripts."  This module
implements that estimator on top of the middleware's existing accounting:

* **CPU** — each call into a script (handler, timer, ``start``) runs in a
  scheduler task that wakes/holds the CPU; cost ≈ calls × (awake-hold ×
  awake power), apportioned when several scripts share one wakeup.
* **Sensors** — each sensor knows its per-sample energy (a Wi-Fi scan is
  ~1.5 s of scan power plus the wake lock window; a battery read is
  almost free); the cost of a sample is split across the subscriptions
  that demanded it, so two scripts sharing a sensor each pay half —
  mirroring how the framework shares the physical sampling (Section 3.5).
* **Radio** — bytes a script publishes toward the collector cost marginal
  DCH airtime; with tail synchronization there is no per-message tail to
  attribute (that is the whole point), so the estimate charges transfer
  time only, plus an amortized share of flush overhead.

The estimator is deliberately *a model*, not ground truth: the simulation
knows exact joules per component but cannot split the rail per script any
better than a real phone could.  Tests validate the model's sanity
against the exact totals (the per-script sum never exceeds measured
energy; a heavy script dominates a light one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.kernel import Kernel


@dataclass
class ScriptPowerEstimate:
    """Estimated resource consumption of one script."""

    script: str
    invocations: int = 0
    cpu_j: float = 0.0
    sensor_j: float = 0.0
    radio_j: float = 0.0
    published_bytes: int = 0
    sensor_samples: float = 0.0

    @property
    def total_j(self) -> float:
        return self.cpu_j + self.sensor_j + self.radio_j

    def row(self) -> str:
        return (
            f"{self.script:<24} {self.invocations:>8} {self.cpu_j:>8.2f} "
            f"{self.sensor_samples:>8.0f} {self.sensor_j:>8.2f} "
            f"{self.published_bytes:>10,} {self.radio_j:>8.2f} {self.total_j:>8.2f}"
        )


#: Default per-sample energy by sensor channel (joules).  Derived from
#: the device models: a Wi-Fi scan is ~1.5 s at 0.45 W plus ~1.5 s of
#: awake CPU; a battery read or network location fix is just the wakeup;
#: a GPS fix adds ~6 s at 0.35 W.
DEFAULT_SENSOR_SAMPLE_J = {
    "wifi-scan": 1.5 * 0.45 + 1.5 * 0.16,
    "battery": 0.02,
    "locations": 0.05,
    "accel": 0.01,
}
GPS_FIX_EXTRA_J = 6.0 * 0.35


class ScriptPowerModel:
    """Estimates per-script energy on one device node."""

    def __init__(
        self,
        node,
        sensor_sample_j: Optional[Dict[str, float]] = None,
    ) -> None:
        self.node = node
        self.sensor_sample_j = dict(DEFAULT_SENSOR_SAMPLE_J)
        if sensor_sample_j:
            self.sensor_sample_j.update(sensor_sample_j)

    # ------------------------------------------------------------------
    def _cpu_cost_per_invocation(self) -> float:
        cpu = self.node.phone.cpu.config
        # One scheduler task holds the CPU awake for roughly the hold
        # window; tasks triggered by the same wakeup share it, which the
        # 0.7 utilization factor approximates.
        return 0.7 * (cpu.awake_hold_ms / 1000.0) * cpu.awake_w

    def _radio_cost_per_byte(self) -> float:
        profile = self.node.phone.modem.profile
        return profile.dch_w / profile.uplink_bytes_per_s

    # ------------------------------------------------------------------
    def estimate(self) -> List[ScriptPowerEstimate]:
        """Estimate every deployed script on the node."""
        estimates: Dict[str, ScriptPowerEstimate] = {}
        cpu_per_call = self._cpu_cost_per_invocation()
        radio_per_byte = self._radio_cost_per_byte()

        for context in self.node.contexts.values():
            for name, host in context.scripts.items():
                key = host.serial_key
                estimate = estimates.setdefault(key, ScriptPowerEstimate(script=key))
                estimate.invocations += host.invocations
                estimate.cpu_j += host.invocations * cpu_per_call
                estimate.published_bytes += host.published_bytes
                estimate.radio_j += host.published_bytes * radio_per_byte

        # Sensor sampling, split across the demanding subscriptions.
        for channel, sensor in self.node.sensor_manager.sensors.items():
            samples = sensor.sample_count
            if samples == 0:
                continue
            per_sample = self.sensor_sample_j.get(channel, 0.05)
            if channel == "locations" and getattr(sensor, "provider", "") == "gps":
                per_sample += GPS_FIX_EXTRA_J
            owners = self._channel_demanders(channel)
            if not owners:
                continue
            share = samples * per_sample / len(owners)
            for owner in owners:
                estimate = estimates.setdefault(owner, ScriptPowerEstimate(script=owner))
                estimate.sensor_j += share
                estimate.sensor_samples += samples / len(owners)

        return sorted(estimates.values(), key=lambda e: e.total_j, reverse=True)

    def _channel_demanders(self, channel: str) -> List[str]:
        """Who is subscribed to a sensor channel, across contexts.

        Local script subscriptions are attributed to the script; remote
        (collector) subscriptions to the experiment's collector — so a
        researcher streaming raw sensor data sees that cost too.
        """
        owners: List[str] = []
        for context in self.node.contexts.values():
            for sub in context.broker.subscriptions(channel):
                if sub.owner and sub.owner.startswith("script:"):
                    owners.append(f"{context.experiment_id}/{sub.owner[7:]}")
                elif sub.owner == "link":
                    owners.append(f"{context.experiment_id}/<collector>")
        return owners

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable per-script table."""
        lines = [
            f"{'script':<24} {'calls':>8} {'cpu J':>8} {'samples':>8} "
            f"{'sens J':>8} {'tx bytes':>10} {'radio J':>8} {'total J':>8}",
        ]
        for estimate in self.estimate():
            lines.append(estimate.row())
        measured = self.node.phone.energy_joules
        modeled = sum(e.total_j for e in self.estimate())
        lines.append(
            f"{'(modeled / measured device total)':<24} "
            f"{modeled:>10.2f} / {measured:.2f} J"
        )
        return "\n".join(lines)
