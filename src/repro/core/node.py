"""Device and collector nodes: the running Pogo middleware.

Section 4.2: "both the researchers and device owners are running the same
middleware; the only functional difference between them is that
researcher nodes are operating in *collector* mode, which gives them the
ability to deploy scripts."

:class:`DeviceNode` composes everything that runs on a phone —
scheduler, transport, contexts, sensor manager, the outgoing buffer with
its 24-hour expiry, and the tail-synchronization policy.
:class:`CollectorNode` is the researcher's PC: wired transport, collector
contexts (multi brokers), experiment deployment.
"""

from __future__ import annotations

from collections import Counter
from functools import partial
from typing import Any, Dict, List, Optional

from ..net.acks import ReliableLink
from ..net.transport import DeviceTransport, TransportError, WiredTransport
from ..net.xmpp import XmppServer
from ..sim.kernel import MINUTE, Kernel
from ..sim.spans import EnergyLedger
from .buffer import DEFAULT_MAX_AGE_MS, MessageBuffer, MessageStore, traced_envelope
from .messages import message_size_bytes
from .context import DeviceContext
from .deployment import (
    OP_ATTACH,
    OP_BATCH,
    OP_DEPLOY,
    OP_PUB,
    OP_SUB_ADD,
    OP_SUB_RELEASE,
    OP_SUB_REMOVE,
    OP_SUB_RENEW,
    OP_SUB_RESET,
    OP_TEARDOWN,
    OP_UNDEPLOY,
    Experiment,
    batch_op,
)
from .multibroker import CollectorContext
from .privacy import PrivacySettings
from .scheduler import PogoScheduler, SimpleScheduler
from .scripting import DEFAULT_WATCHDOG_MS, FreezeStore
from .sensor_manager import SensorManager
from .tailsync import SynchronizedPolicy, TailDetector, TransmissionPolicy

_SUB_OPS = (OP_SUB_ADD, OP_SUB_RELEASE, OP_SUB_RENEW, OP_SUB_REMOVE)


class DeviceNode:
    """The Pogo middleware on one phone."""

    def __init__(
        self,
        kernel: Kernel,
        phone,
        server: XmppServer,
        jid: str,
        policy: Optional[TransmissionPolicy] = None,
        store: Optional[MessageStore] = None,
        max_age_ms: float = DEFAULT_MAX_AGE_MS,
        watchdog_ms: float = DEFAULT_WATCHDOG_MS,
        poll_interval_ms: float = 1000.0,
        privacy: Optional[PrivacySettings] = None,
    ) -> None:
        self.kernel = kernel
        self.phone = phone
        self.jid = jid
        self.watchdog_ms = watchdog_ms

        self.scheduler = PogoScheduler(kernel, phone.cpu, name=f"{jid}.scheduler")
        self.transport = DeviceTransport(kernel, server, jid, phone)
        self.buffer = MessageBuffer(kernel, store, max_age_ms)
        self.detector = TailDetector(phone, poll_interval_ms)
        self.policy = policy if policy is not None else SynchronizedPolicy(self.detector)
        self.freeze_store = FreezeStore()
        self.privacy = privacy or PrivacySettings()
        self.sensor_manager = SensorManager(self, self.privacy)

        self.contexts: Dict[str, DeviceContext] = {}
        self.links: Dict[str, ReliableLink] = {}

        self.started = False
        self._suspended = False
        #: Called with each newly created DeviceContext (instrumentation,
        #: e.g. the deployment study's SD-card scan logger).
        self.on_context_added: List = []
        #: Called with each lazily created ReliableLink (the chaos
        #: invariant monitor attaches its protocol witness here).
        self.on_link_created: List = []
        self.flush_count = 0
        self.flush_reasons: Counter = Counter()
        self.batches_sent = 0
        self.payloads_sent = 0
        self._m_flushes = kernel.metrics.counter("node.flushes")
        self._m_batches = kernel.metrics.counter("node.batches_sent")
        self._m_payloads = kernel.metrics.counter("node.payloads_sent")
        self._m_batch_size = kernel.metrics.histogram("node.batch_payloads")
        self._spans = kernel.spans
        self._h_flush = kernel.spans.hop("node.flush")
        #: Per-device modem energy accounting: every RRC episode's joules,
        #: attributed to the traced messages whose flushes rode it.
        self.energy = EnergyLedger(kernel, phone.modem)
        #: (experiment, script, exception) for deploys whose script
        #: failed to load — surfaced, never propagated.
        self.deploy_errors: List = []

        self.transport.on_stanza.append(self._on_stanza)
        self.transport.on_connected.append(self._on_connected)
        phone.on_shutdown.append(self._suspend)
        phone.on_boot.append(self._resume)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self.policy.bind(self)
        self.policy.start()
        self.transport.start()

    def stop(self) -> None:
        self.started = False
        self.policy.stop()
        self.detector.stop()
        for context in self.contexts.values():
            context.stop_all_scripts()
        self.sensor_manager.shutdown()
        self.scheduler.stop()

    def _suspend(self) -> None:
        """Phone shut down (reboot / battery): volatile state dies."""
        if not self.started:
            return
        self._suspended = True
        self.policy.stop()
        self.detector.stop()
        for context in self.contexts.values():
            context.stop_all_scripts()
            context.clear_remote_subs()
        self.sensor_manager.shutdown()
        self.scheduler.stop()

    def _resume(self) -> None:
        """Phone booted: reload persisted scripts, re-sync subscriptions."""
        if not self.started or not self._suspended:
            return
        self._suspended = False
        self.scheduler.restart()
        # Tell each collector to forget our stale subscription table,
        # then reloading the scripts re-announces the fresh one.
        for context in self.contexts.values():
            self.send_to(
                context.collector_jid,
                {"op": OP_SUB_RESET, "ctx": context.experiment_id},
            )
        for context in self.contexts.values():
            context.reload_all_scripts()
        self.sensor_manager.reevaluate_all()
        self.policy.start()

    # ------------------------------------------------------------------
    # The owner's UI surface (Section 3.3: settings and script control
    # "can be changed at any time from the application interface")
    # ------------------------------------------------------------------
    def script_status(self) -> List[Dict[str, Any]]:
        """What the phone's UI lists: each script's description & state."""
        rows: List[Dict[str, Any]] = []
        for experiment_id, context in sorted(self.contexts.items()):
            for name, host in sorted(context.scripts.items()):
                rows.append(
                    {
                        "experiment": experiment_id,
                        "script": name,
                        "description": host.description,
                        "autostart": host.autostart,
                        "running": host.running,
                        "errors": len(host.errors),
                        "debug_lines": len(host.debug_lines),
                    }
                )
        return rows

    def start_script(self, experiment_id: str, name: str) -> None:
        """The user explicitly starts a non-autostart script from the UI.

        Section 4.4: "If automatic starting of a script is turned off, it
        will not run until the user explicitly starts it through the UI."
        """
        self.contexts[experiment_id].scripts[name].start()

    def stop_script(self, experiment_id: str, name: str) -> None:
        """The user stops a script from the UI."""
        self.contexts[experiment_id].scripts[name].stop()

    # ------------------------------------------------------------------
    # Outgoing path: buffer -> (flush) -> reliable link -> transport
    # ------------------------------------------------------------------
    def send_to(self, peer_jid: str, payload: Dict[str, Any]) -> None:
        """Enqueue a payload for a peer; the policy decides when it goes."""
        if self._suspended:
            return
        self.buffer.enqueue(peer_jid, payload)
        self.policy.on_enqueue()

    def flush(self, reason: str = "manual") -> int:
        """Drain the buffer into batches, one per destination.

        Also retransmits unacknowledged envelopes and sends any owed
        acknowledgements — everything rides the same radio session.
        Returns the number of payloads handed to the reliable layer.
        """
        if self._suspended or not self.transport.connected:
            return 0
        self.flush_count += 1
        self._m_flushes.inc()
        self.flush_reasons[reason] += 1
        batches = self.buffer.peek_batches()
        interface = self.phone.active_interface()
        spans = self._spans
        flush_span = 0
        if spans.enabled:
            now = self.kernel.now
            flush_span = self._h_flush.record(
                0,
                spans.active_parent,  # the tail-sync decision, when any
                now,
                now,
                {
                    "reason": reason,
                    "radio": self.phone.modem.state,
                    "interface": interface or "none",
                    "batches": len(batches),
                    "payloads": sum(len(m) for _, m in batches),
                },
            )
        if batches:
            # Register this flush's riders with the energy ledger *before*
            # the physical sends: a flush from idle opens the radio episode
            # synchronously inside link.send, and the ledger must already
            # know Pogo triggered it (self-initiated vs piggybacked is the
            # whole Table 3 distinction).
            riders = []
            for _, messages in batches:
                for message in messages:
                    envelope = traced_envelope(message.payload)
                    if envelope is not None:
                        riders.append((envelope.trace_id, envelope.wire_size))
                    else:
                        riders.append((0, message_size_bytes(message.payload)))
            self.energy.on_flush(flush_span, riders, interface, self.phone.modem.state)
        sent_payloads = 0
        previous_parent = spans.active_parent
        if flush_span:
            spans.active_parent = flush_span
        try:
            for destination, messages in batches:
                link = self.link_for(destination)
                items = [m.payload for m in messages]
                # mark_sent before the physical send: from here on the
                # reliable layer owns delivery (resend on loss).
                self.buffer.mark_sent(messages, flush_span, reason)
                link.send(batch_op(items))
                self.batches_sent += 1
                self._m_batches.inc()
                self._m_payloads.inc(len(items))
                self._m_batch_size.observe(len(items))
                sent_payloads += len(items)
            for link in self.links.values():
                link.resend_unacked(max_age_ms=self.buffer.max_age_ms)
                ack = link.make_ack()
                if ack is not None:
                    self._raw_send(link.peer, ack)
        finally:
            spans.active_parent = previous_parent
        self.energy.settle_flush()
        self.payloads_sent += sent_payloads
        return sent_payloads

    def link_for(self, peer_jid: str) -> ReliableLink:
        link = self.links.get(peer_jid)
        if link is None:
            link = ReliableLink(
                self.kernel,
                peer_jid,
                send_raw=partial(self._raw_send, peer_jid),
                deliver=partial(self._handle_payload, peer_jid),
                # Device acks piggyback on the next flush; incoming data
                # itself triggers the tail detector, so the flush follows
                # within about a second of the push.
                request_ack_send=None,
            )
            self.links[peer_jid] = link
            for listener in list(self.on_link_created):
                listener(link)
        return link

    def _raw_send(self, peer_jid: str, stanza: dict) -> None:
        try:
            self.transport.send(peer_jid, stanza)
        except (TransportError, Exception):
            # The reliable layer keeps the envelope; it will be resent.
            pass

    # ------------------------------------------------------------------
    # Incoming path
    # ------------------------------------------------------------------
    def _on_connected(self) -> None:
        if self._suspended:
            return
        self.policy.on_connected()

    def _on_stanza(self, from_jid: str, stanza: dict) -> None:
        if self._suspended:
            return
        kind = stanza.get("kind")
        if kind == "presence":
            return  # devices do not act on collector presence
        self.link_for(from_jid).on_raw(stanza)

    def _handle_payload(self, from_jid: str, payload: Dict[str, Any]) -> None:
        op = payload.get("op")
        if op == OP_BATCH:
            for item in payload.get("items", []):
                self._handle_payload(from_jid, item)
            return
        experiment_id = payload.get("ctx", "")
        if op in (OP_ATTACH, OP_DEPLOY):
            context = self.contexts.get(experiment_id)
            if context is None:
                context = DeviceContext(self, experiment_id, from_jid)
                self.contexts[experiment_id] = context
                self.sensor_manager.on_context_added(context)
                for listener in list(self.on_context_added):
                    listener(context)
            if op == OP_DEPLOY:
                try:
                    context.deploy_script(payload["script"], payload["source"])
                except Exception as exc:  # noqa: BLE001 - a broken script
                    # must not take the middleware down; the host records
                    # the error for the device UI / researcher to see.
                    self.deploy_errors.append((experiment_id, payload["script"], exc))
            return
        context = self.contexts.get(experiment_id)
        if context is None:
            return
        if op == OP_UNDEPLOY:
            context.undeploy_script(payload["script"])
        elif op == OP_TEARDOWN:
            context.teardown()
            del self.contexts[experiment_id]
        elif op == OP_PUB:
            context.deliver_remote(payload["channel"], payload["msg"])
        elif op in _SUB_OPS:
            context.apply_sub_op(payload)
        # Unknown ops are ignored (forward compatibility).


class CollectorNode:
    """The Pogo middleware in collector mode (a researcher's PC)."""

    def __init__(
        self,
        kernel: Kernel,
        server: XmppServer,
        jid: str,
        watchdog_ms: float = DEFAULT_WATCHDOG_MS,
        resend_interval_ms: float = 5 * MINUTE,
    ) -> None:
        self.kernel = kernel
        self.jid = jid
        self.watchdog_ms = watchdog_ms
        self.scheduler = SimpleScheduler(kernel, name=f"{jid}.scheduler")
        self.transport = WiredTransport(kernel, server, jid)
        self.freeze_store = FreezeStore()
        self.contexts: Dict[str, CollectorContext] = {}
        self.links: Dict[str, ReliableLink] = {}
        self.resend_interval_ms = resend_interval_ms
        self.started = False
        #: Collector-side services (e.g. the geolocation bridge); attached
        #: to every context created by :meth:`deploy`.
        self.services: List[object] = []
        #: Called with each lazily created ReliableLink (chaos monitor).
        self.on_link_created: List = []

        self.transport.on_stanza.append(self._on_stanza)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.started:
            return
        self.started = True
        self.transport.start()
        self.scheduler.schedule_repeating(self.resend_interval_ms, self._resend_all)

    def _resend_all(self) -> None:
        for link in self.links.values():
            link.resend_unacked()

    def add_service(self, service) -> None:
        """Register a collector-side service (attached to all contexts)."""
        self.services.append(service)
        for context in self.contexts.values():
            service.attach_context(context)

    # ------------------------------------------------------------------
    # Deployment (what "collector mode" adds, Section 4.2)
    # ------------------------------------------------------------------
    def deploy(self, experiment: Experiment, device_jids: List[str]) -> CollectorContext:
        """Run an experiment on a set of devices."""
        experiment.validate()
        context = self.contexts.get(experiment.experiment_id)
        if context is None:
            context = CollectorContext(self, experiment.experiment_id)
            self.contexts[experiment.experiment_id] = context
            for service in self.services:
                service.attach_context(context)
        context.device_scripts = dict(experiment.device_scripts)
        for name, source in experiment.collector_scripts.items():
            context.deploy_script(name, source)
        for device_jid in device_jids:
            context.attach_device(device_jid)
        return context

    def push_script(self, experiment_id: str, name: str, source: str) -> None:
        """Deploy or update one device script across the fleet."""
        self.contexts[experiment_id].push_script(name, source)

    # ------------------------------------------------------------------
    def send_to(self, peer_jid: str, payload: Dict[str, Any]) -> None:
        """Collectors are wired: payloads go out immediately."""
        self.link_for(peer_jid).send(payload)

    def link_for(self, peer_jid: str) -> ReliableLink:
        link = self.links.get(peer_jid)
        if link is None:
            link = ReliableLink(
                self.kernel,
                peer_jid,
                send_raw=partial(self._raw_send, peer_jid),
                deliver=partial(self._handle_payload, peer_jid),
                request_ack_send=partial(self._send_ack, peer_jid),
            )
            self.links[peer_jid] = link
            for listener in list(self.on_link_created):
                listener(link)
        return link

    def _raw_send(self, peer_jid: str, stanza: dict) -> None:
        try:
            self.transport.send(peer_jid, stanza)
        except TransportError:
            pass

    def _send_ack(self, peer_jid: str) -> None:
        link = self.links.get(peer_jid)
        if link is None:
            return
        ack = link.make_ack()
        if ack is not None:
            self._raw_send(peer_jid, ack)

    # ------------------------------------------------------------------
    def _on_stanza(self, from_jid: str, stanza: dict) -> None:
        kind = stanza.get("kind")
        if kind == "presence":
            if stanza.get("available"):
                jid = stanza.get("jid", "")
                for context in self.contexts.values():
                    if jid in context.links:
                        context.sync_subscriptions_to(jid)
            return
        self.link_for(from_jid).on_raw(stanza)

    def _handle_payload(self, from_jid: str, payload: Dict[str, Any]) -> None:
        op = payload.get("op")
        if op == OP_BATCH:
            for item in payload.get("items", []):
                self._handle_payload(from_jid, item)
            return
        experiment_id = payload.get("ctx", "")
        context = self.contexts.get(experiment_id)
        if op == OP_SUB_RESET:
            for ctx in self.contexts.values():
                ctx.reset_device_subs(from_jid)
            return
        if context is None:
            return
        if op == OP_PUB:
            context.deliver_remote(from_jid, payload["channel"], payload["msg"])
        elif op in _SUB_OPS:
            context.apply_sub_op(from_jid, payload)
