"""Testbed organization: devices, researchers, and the administrator.

Section 3.1: "There are three types of stake holders in a Pogo testbed.
First, the *device owners* contribute computational and sensing resources
... The *researchers* run Pogo on their computers and consume these
resources by deploying experiments.  The *administrator* of the testbed
decides which devices are assigned to which researchers.  In a way the
administrator acts as a broker ... The connections between researchers
and device owners are double blind."

:class:`TestbedAdmin` manages the XMPP server's account and roster state:
assigning a device to a researcher is exactly adding a roster pair, and
the double-blind property holds because JIDs are opaque — the admin hands
out pseudonymous device identifiers, never owner identities.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..net.xmpp import XmppServer


class AssignmentError(Exception):
    """Raised for invalid pool operations (unknown ids, over-allocation)."""


@dataclass
class DeviceRecord:
    """What the administrator knows about a device (and nothing more).

    ``region`` supports the paper's second future-work item: "automate
    the assignment process between devices and researchers based on
    information such as device capabilities and geographical location".
    It is a coarse, owner-approved label (e.g. a city), never a precise
    position — the double-blind property stays intact.
    """

    jid: str
    capabilities: Set[str] = field(default_factory=set)
    assigned_to: Set[str] = field(default_factory=set)
    region: Optional[str] = None
    #: Free-form owner-approved metadata (e.g. ``carrier``): what
    #: AnonySense-style Accept predicates match against.
    attributes: Dict[str, str] = field(default_factory=dict)


@dataclass
class ResearcherRecord:
    """A researcher account (the only side with personal information)."""

    jid: str
    name: str = ""
    devices: Set[str] = field(default_factory=set)


class TestbedAdmin:
    """The broker between device owners and researchers."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, server: XmppServer, max_experiments_per_device: int = 4) -> None:
        self.server = server
        self.max_experiments_per_device = max_experiments_per_device
        self.devices: Dict[str, DeviceRecord] = {}
        self.researchers: Dict[str, ResearcherRecord] = {}
        # Per-instance counter: a class-level counter would leak across
        # simulations in one process and break run-to-run determinism
        # (different JIDs seed different world RNG streams).
        self._device_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Enrollment (Section 3.3: one-click participation, no registration)
    # ------------------------------------------------------------------
    def enroll_device(
        self,
        capabilities: Optional[Set[str]] = None,
        region: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
        jid: Optional[str] = None,
    ) -> str:
        """A phone joins the pool; returns its pseudonymous JID.

        ``jid`` pins an explicit identifier — the fleet partitioner uses
        this to keep the *global* device numbering on every shard, so a
        partitioned run draws the same per-device random streams as the
        single-shard one.  Without it the per-admin counter assigns the
        next free ``device-N@pogo``.
        """
        if jid is None:
            jid = f"device-{next(self._device_ids)}@pogo"
            while self.server.registered(jid):
                jid = f"device-{next(self._device_ids)}@pogo"
        elif self.server.registered(jid) or jid in self.devices:
            raise AssignmentError(f"JID already enrolled: {jid}")
        self.server.register(jid)
        self.devices[jid] = DeviceRecord(
            jid, set(capabilities or ()), region=region, attributes=dict(attributes or {})
        )
        return jid

    def devices_matching(self, predicate) -> List[str]:
        """JIDs of devices whose attributes satisfy ``predicate``.

        ``predicate`` is any object with ``matches(attributes) -> bool``
        (e.g. an AnonyTL Accept predicate) or a plain callable.
        """
        check = predicate.matches if hasattr(predicate, "matches") else predicate
        return sorted(jid for jid, d in self.devices.items() if check(d.attributes))

    def set_device_region(self, jid: str, region: Optional[str]) -> None:
        """Owner-approved coarse location update."""
        self._device(jid).region = region

    def enroll_researcher(self, name: str) -> str:
        jid = f"{name}@pogo"
        self.server.register(jid)
        self.researchers[jid] = ResearcherRecord(jid, name=name)
        return jid

    def remove_device(self, jid: str) -> None:
        """A device owner leaves: all assignments are revoked."""
        record = self.devices.pop(jid, None)
        if record is None:
            return
        for researcher_jid in list(record.assigned_to):
            self.unassign(researcher_jid, [jid])

    # ------------------------------------------------------------------
    # Assignment (the administrator's brokering role)
    # ------------------------------------------------------------------
    def assign(self, researcher_jid: str, device_jids: List[str]) -> None:
        """Give a researcher access to specific devices."""
        researcher = self._researcher(researcher_jid)
        for device_jid in device_jids:
            device = self._device(device_jid)
            if len(device.assigned_to) >= self.max_experiments_per_device:
                raise AssignmentError(
                    f"{device_jid} already runs {len(device.assigned_to)} experiments"
                )
            device.assigned_to.add(researcher_jid)
            researcher.devices.add(device_jid)
            self.server.add_roster_pair(researcher_jid, device_jid)

    def unassign(self, researcher_jid: str, device_jids: List[str]) -> None:
        researcher = self._researcher(researcher_jid)
        for device_jid in device_jids:
            device = self.devices.get(device_jid)
            if device is not None:
                device.assigned_to.discard(researcher_jid)
            researcher.devices.discard(device_jid)
            self.server.remove_roster_pair(researcher_jid, device_jid)

    def request_devices(
        self,
        researcher_jid: str,
        count: int,
        required_capabilities: Optional[Set[str]] = None,
        region: Optional[str] = None,
    ) -> List[str]:
        """Assign up to ``count`` suitable devices from the shared pool.

        Devices are shared: "researchers share devices between them and
        multiple sensing applications run concurrently on each device"
        (Section 3.1) — so allocation prefers the least-loaded devices
        rather than exclusively reserving them.  With ``region`` set,
        only devices whose owners advertise that coarse location are
        eligible (future-work automation, Section 6).
        """
        required = required_capabilities or set()
        researcher = self._researcher(researcher_jid)
        candidates = [
            d
            for d in self.devices.values()
            if required <= d.capabilities
            and (region is None or d.region == region)
            and researcher_jid not in d.assigned_to
            and len(d.assigned_to) < self.max_experiments_per_device
        ]
        candidates.sort(key=lambda d: (len(d.assigned_to), d.jid))
        chosen = [d.jid for d in candidates[:count]]
        if len(chosen) < count:
            raise AssignmentError(
                f"only {len(chosen)} of {count} requested devices available"
            )
        self.assign(researcher_jid, chosen)
        return chosen

    # ------------------------------------------------------------------
    def _device(self, jid: str) -> DeviceRecord:
        if jid not in self.devices:
            raise AssignmentError(f"unknown device: {jid}")
        return self.devices[jid]

    def _researcher(self, jid: str) -> ResearcherRecord:
        if jid not in self.researchers:
            raise AssignmentError(f"unknown researcher: {jid}")
        return self.researchers[jid]

    def pool_size(self) -> int:
        return len(self.devices)

    def report(self) -> str:
        """The administrator's pool overview (the web-console analogue).

        Shows only what the admin legitimately sees: pseudonymous device
        JIDs with capabilities/region/load, and researcher names with
        their assignment counts — never owner identities.
        """
        lines = [f"device pool ({len(self.devices)} devices):"]
        for jid in sorted(self.devices):
            device = self.devices[jid]
            caps = ",".join(sorted(device.capabilities)) or "-"
            lines.append(
                f"  {jid:<18} region={device.region or '-':<10} "
                f"experiments={len(device.assigned_to)}/{self.max_experiments_per_device} "
                f"caps={caps}"
            )
        lines.append(f"researchers ({len(self.researchers)}):")
        for jid in sorted(self.researchers):
            researcher = self.researchers[jid]
            lines.append(
                f"  {researcher.name:<12} ({jid}) devices={len(researcher.devices)}"
            )
        return "\n".join(lines)
