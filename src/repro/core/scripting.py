"""Script hosting: sandboxed execution, watchdog, freeze/thaw, lifecycle.

Pogo experiments are *source text* pushed to remote nodes and executed in
a sandboxed runtime (Rhino in the paper, a restricted ``exec`` here — see
:mod:`repro.core.api` for exactly what scripts can touch).  This module
implements the host around a running script:

* **Loading** — the source is executed top-to-bottom (running
  ``setDescription``/``setAutoStart`` and defining functions); if it
  defines ``start()`` and autostart is on, ``start()`` is invoked.
* **Serialization** — all calls into one script (subscription handlers,
  ``setTimeout`` callbacks, ``start``) are funneled through the node
  scheduler with the script's serial key: "only a single thread will run
  code from a given script at any time" (Section 4.5).
* **Watchdog** — "all calls to JavaScript functions by the framework must
  complete within a certain timeframe.  If the JavaScript function does
  not return in time, it is interrupted and an exception is thrown.  The
  default timeout is set to 100ms."  Implemented with a tracing hook that
  aborts the script frame when its wall-clock budget is exceeded.
* **freeze/thaw** — one persisted object per script, surviving script
  stop/start cycles, updates and reboots (Section 4.4; added *because* of
  the data loss observed in Section 5.3).
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from .api import build_namespace
from .messages import from_json, to_json

#: Default watchdog budget, from the paper.
DEFAULT_WATCHDOG_MS = 100.0


class ScriptError(Exception):
    """Base class for script-level failures."""


class ScriptTimeoutError(ScriptError):
    """A script call exceeded its watchdog budget."""


#: Public alias used by observability consumers (the watchdog span docs
#: and tests speak of "watchdog timeouts").
WatchdogTimeout = ScriptTimeoutError


class Watchdog:
    """Interrupts script code that runs past its budget.

    Uses ``sys.settrace``: while a guarded call is on the stack, every
    line event checks the deadline and raises
    :class:`ScriptTimeoutError` from inside the script frame, which is
    the closest Python analogue to Rhino's instruction-count interrupts.
    If a tracer is already installed (debugger, coverage), the watchdog
    degrades to post-hoc detection: the call completes but the violation
    is still reported.
    """

    def __init__(self, timeout_ms: float = DEFAULT_WATCHDOG_MS) -> None:
        self.timeout_ms = timeout_ms
        self.violations = 0

    #: Frames deeper than this below the guarded call get no per-line
    #: checks (only per-call checks).  Keeps hot helper code at native
    #: speed while still interrupting loops in handler-level code.
    LINE_TRACE_DEPTH = 2

    def guard(self, fn: Callable[..., Any], *args: Any) -> Any:
        timeout_s = self.timeout_ms / 1000.0
        deadline = time.perf_counter() + timeout_s
        preemptive = sys.gettrace() is None
        root_frame = sys._getframe()

        def over_budget() -> None:
            self.violations += 1
            raise ScriptTimeoutError(
                f"script call exceeded {self.timeout_ms:.0f} ms watchdog budget"
            )

        def line_tracer(frame, event, arg):
            if event == "line" and time.perf_counter() > deadline:
                over_budget()
            return line_tracer

        def tracer(frame, event, arg):
            # Global tracer: receives only 'call' events.  Every function
            # call checks the deadline; line-level checks apply only near
            # the top of the script's stack (hot leaf helpers run
            # untraced, at full speed).
            if time.perf_counter() > deadline:
                over_budget()
            depth, walker = 0, frame.f_back
            while walker is not None and walker is not root_frame and depth <= self.LINE_TRACE_DEPTH:
                walker = walker.f_back
                depth += 1
            return line_tracer if depth < self.LINE_TRACE_DEPTH else None

        if preemptive:
            sys.settrace(tracer)
        started = time.perf_counter()
        try:
            result = fn(*args)
        finally:
            if preemptive:
                sys.settrace(None)
        if not preemptive and time.perf_counter() - started > timeout_s:
            self.violations += 1
            raise ScriptTimeoutError(
                f"script call exceeded {self.timeout_ms:.0f} ms watchdog budget (post-hoc)"
            )
        return result


class ScriptHost:
    """One deployed script inside a context."""

    def __init__(
        self,
        context,
        name: str,
        source: str,
        watchdog_ms: float = DEFAULT_WATCHDOG_MS,
    ) -> None:
        self.context = context
        self.name = name
        self.source = source
        self.watchdog = Watchdog(watchdog_ms)

        self.description = ""
        self.autostart = True
        self.loaded = False
        self.running = False
        self.load_count = 0

        self.debug_lines: List[str] = []
        self.logs: Dict[str, List[str]] = {}
        self.errors: List[BaseException] = []
        self.namespace: Dict[str, Any] = {}
        self._timers: List[Any] = []

        # Resource accounting (Section 6 future work: "power modelling to
        # estimate the resource consumption of individual scripts").
        self.invocations = 0
        self.published_messages = 0
        self.published_bytes = 0
        self.timers_set = 0

        # Observability plane, pre-bound once per host.  Wall-clock call
        # durations go ONLY into the metrics histogram — never into spans,
        # whose exports must be byte-identical across identical seeded
        # runs (sim-time is deterministic; wall time is not).
        kernel = context.node.kernel
        self._m_call_ms = kernel.metrics.histogram(f"script.call_ms.{self.serial_key}")
        self._spans = kernel.spans
        self._h_call = kernel.spans.hop("script.call")
        self._h_watchdog = kernel.spans.hop("script.watchdog")

    # ------------------------------------------------------------------
    @property
    def serial_key(self) -> str:
        return f"{self.context.experiment_id}/{self.name}"

    @property
    def owner_key(self) -> str:
        """Owner tag for broker subscriptions (cleaned up on stop)."""
        return f"script:{self.name}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def load(self) -> None:
        """Execute the script body; call ``start()`` if autostart is on."""
        if self.running:
            self.stop()
        self.namespace = build_namespace(self)
        self.load_count += 1
        self.running = True
        code = compile(self.source, f"<script {self.name}>", "exec")
        try:
            self.watchdog.guard(_exec_in, code, self.namespace)
        except BaseException as exc:  # noqa: BLE001 - report, stay contained
            self.errors.append(exc)
            self.running = False
            raise ScriptError(f"script {self.name!r} failed to load: {exc!r}") from exc
        self.loaded = True
        start = self.namespace.get("start")
        if self.autostart and callable(start):
            self.context.node.scheduler.submit(
                self.guarded_call, start, serial_key=self.serial_key
            )

    def start(self) -> None:
        """Explicit user start for non-autostart scripts."""
        if not self.loaded:
            self.load()
            if self.autostart:
                return
        start = self.namespace.get("start")
        self.running = True
        if callable(start):
            self.context.node.scheduler.submit(
                self.guarded_call, start, serial_key=self.serial_key
            )

    def stop(self) -> None:
        """Stop the script: drop subscriptions and timers, keep storage."""
        self.running = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.context.broker.remove_owned_by(self.owner_key)

    def update(self, new_source: str) -> None:
        """Replace the script with a new version (remote redeployment).

        The frozen object survives, which is how post-deployment Pogo
        avoids losing cluster state across updates (Section 5.3).
        """
        self.stop()
        self.source = new_source
        self.load()

    # ------------------------------------------------------------------
    # Guarded calls
    # ------------------------------------------------------------------
    def guarded_call(self, fn: Callable, *args: Any) -> None:
        """Run script code under the watchdog; contain its errors."""
        if not self.running:
            return
        self.invocations += 1
        started = time.perf_counter()
        spans = self._spans
        try:
            self.watchdog.guard(fn, *args)
        except BaseException as exc:  # noqa: BLE001
            if isinstance(exc, ScriptTimeoutError):
                self.context.node.kernel.metrics.counter("watchdog.hits").inc()
                if spans.enabled:
                    now = spans.now()
                    self._h_watchdog.record(
                        0,
                        spans.active_parent,
                        now,
                        now,
                        {
                            "script": self.serial_key,
                            "fn": getattr(fn, "__name__", repr(fn)),
                            "budget_ms": self.watchdog.timeout_ms,
                        },
                    )
            self.errors.append(exc)
        finally:
            # Wall-clock duration: metrics only (see __init__ note).
            self._m_call_ms.observe((time.perf_counter() - started) * 1000.0)
            if spans.enabled:
                now = spans.now()
                self._h_call.record(
                    0,
                    spans.active_parent,
                    now,
                    now,
                    {"script": self.serial_key, "fn": getattr(fn, "__name__", repr(fn))},
                )

    # ------------------------------------------------------------------
    # API backends (called from the namespace built by repro.core.api)
    # ------------------------------------------------------------------
    def api_publish(self, channel: str, message: Any) -> None:
        self.published_messages += 1
        self.published_bytes += _cheap_size(message)
        self.context.publish_from_script(self, channel, message)

    def api_subscribe(self, channel: str, fn: Callable, parameters: Optional[dict]):
        def handler(message: Any) -> None:
            self.context.node.scheduler.submit(
                self.guarded_call, fn, message, serial_key=self.serial_key
            )

        return self.context.broker.subscribe(
            channel, handler, parameters, owner=self.owner_key
        )

    def api_freeze(self, obj: Any) -> None:
        # Hot path: scripts may freeze on every sample.  json.dumps does
        # the type policing itself (raises TypeError on non-JSON values),
        # so the separate validation walk of to_json() is skipped.
        self.context.node.freeze_store.put(self.serial_key, json.dumps(obj))

    def api_thaw(self) -> Any:
        stored = self.context.node.freeze_store.get(self.serial_key)
        return from_json(stored) if stored is not None else None

    def api_json(self, obj: Any) -> str:
        return to_json(obj)

    def api_set_timeout(self, fn: Callable, delay_ms: float):
        self.timers_set += 1
        timer = self.context.node.scheduler.schedule(
            float(delay_ms), self.guarded_call, fn, serial_key=self.serial_key
        )
        self._timers.append(timer)
        return timer


def _cheap_size(message: Any) -> int:
    """Fast wire-size estimate for accounting (exact JSON is computed
    later by the transport; this avoids double serialization)."""
    try:
        return len(json.dumps(message))
    except (TypeError, ValueError):
        return 0


class FreezeStore:
    """Per-node persistent storage for frozen script objects.

    Keyed by the script's serial key; "each script can have only one such
    object at any given time, and freeze will always overwrite any
    preexisting data" (Section 4.4).  Survives reboots (flash).
    """

    def __init__(self) -> None:
        self._data: Dict[str, str] = {}

    def put(self, key: str, json_text: str) -> None:
        self._data[key] = json_text

    def get(self, key: str) -> Optional[str]:
        return self._data.get(key)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def __len__(self) -> int:
        return len(self._data)


def _exec_in(code, namespace: Dict[str, Any]) -> None:
    exec(code, namespace)  # noqa: S102 - the sandbox is the namespace
