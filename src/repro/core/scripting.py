"""Script hosting: sandboxed execution, watchdog, freeze/thaw, lifecycle.

Pogo experiments are *source text* pushed to remote nodes and executed in
a sandboxed runtime (Rhino in the paper, a restricted ``exec`` here — see
:mod:`repro.core.api` for exactly what scripts can touch).  This module
implements the host around a running script:

* **Loading** — the source is executed top-to-bottom (running
  ``setDescription``/``setAutoStart`` and defining functions); if it
  defines ``start()`` and autostart is on, ``start()`` is invoked.
* **Serialization** — all calls into one script (subscription handlers,
  ``setTimeout`` callbacks, ``start``) are funneled through the node
  scheduler with the script's serial key: "only a single thread will run
  code from a given script at any time" (Section 4.5).
* **Watchdog** — "all calls to JavaScript functions by the framework must
  complete within a certain timeframe.  If the JavaScript function does
  not return in time, it is interrupted and an exception is thrown.  The
  default timeout is set to 100ms."  Implemented with an asynchronous
  interrupt raised into the script's thread when its wall-clock budget
  is exceeded (see :class:`_WatchdogArbiter`).
* **freeze/thaw** — one persisted object per script, surviving script
  stop/start cycles, updates and reboots (Section 4.4; added *because* of
  the data loss observed in Section 5.3).
"""

from __future__ import annotations

import ctypes
import itertools
import json
import threading
import time
import types
from typing import Any, Callable, Dict, List, Optional

from .api import build_namespace
from .messages import from_json, to_json

#: Default watchdog budget, from the paper.
DEFAULT_WATCHDOG_MS = 100.0


class ScriptError(Exception):
    """Base class for script-level failures."""


class ScriptTimeoutError(ScriptError):
    """A script call exceeded its watchdog budget."""


#: Public alias used by observability consumers (the watchdog span docs
#: and tests speak of "watchdog timeouts").
WatchdogTimeout = ScriptTimeoutError


class _WatchdogArbiter:
    """One daemon thread that interrupts over-budget guarded calls.

    The previous watchdog used ``sys.settrace``, which forces the whole
    guarded subtree — broker fan-out, envelope freezing, storage writes —
    to run with per-call trace hooks installed: an ~8 µs tax on *every*
    script invocation to police a budget that healthy scripts never come
    near.  Arming here is two dict operations; nothing else touches the
    hot path.  When a deadline actually expires, the arbiter raises
    :class:`ScriptTimeoutError` inside the guarded thread via
    ``PyThreadState_SetAsyncExc`` — which, like Rhino's instruction-count
    interrupts, stops a ``while True: pass`` loop dead.

    The async raise lands at the guarded thread's next bytecode boundary,
    so a call that finishes in the same instant its budget expires can
    race the interrupt.  ``disarm`` closes the gap: it reports whether
    this guard was fired so the caller can clear a still-pending
    interrupt and convert it into a deterministic post-hoc error.
    """

    #: Idle poll interval; also bounds how late an interrupt can be.
    POLL_S = 0.05

    def __init__(self) -> None:
        #: thread id -> stack of (deadline, generation, watchdog); plain
        #: dict/list ops are GIL-atomic, so arm/disarm take no lock.
        self._armed: Dict[int, List[tuple]] = {}
        self._fired: Dict[int, int] = {}
        self._gen = itertools.count(1)
        self._thread: Optional[threading.Thread] = None

    def arm(self, watchdog: "Watchdog", timeout_s: float) -> tuple:
        tid = threading.get_ident()
        gen = next(self._gen)
        stack = self._armed.get(tid)
        if stack is None:
            stack = self._armed[tid] = []
        stack.append((time.monotonic() + timeout_s, gen, watchdog))
        if self._thread is None:
            self._start()
        return tid, gen

    def disarm(self, token: tuple) -> bool:
        """Remove the guard; returns True if it was fired (interrupted)."""
        tid, gen = token
        stack = self._armed.get(tid)
        if stack:
            for index in range(len(stack) - 1, -1, -1):
                if stack[index][1] == gen:
                    del stack[index]
                    break
            if not stack:
                self._armed.pop(tid, None)
        if self._fired.get(tid) == gen:
            del self._fired[tid]
            return True
        return False

    def _start(self) -> None:
        thread = threading.Thread(
            target=self._run, name="script-watchdog", daemon=True
        )
        self._thread = thread
        thread.start()

    def _run(self) -> None:
        set_async_exc = ctypes.pythonapi.PyThreadState_SetAsyncExc
        while True:
            wait = self.POLL_S
            now = time.monotonic()
            for tid, stack in list(self._armed.items()):
                for entry in list(stack):
                    deadline, gen, watchdog = entry
                    if now < deadline:
                        wait = min(wait, deadline - now)
                        continue
                    if self._fired.get(tid) is not None:
                        continue  # one pending interrupt per thread
                    self._fired[tid] = gen
                    watchdog.violations += 1
                    set_async_exc(
                        ctypes.c_ulong(tid), ctypes.py_object(ScriptTimeoutError)
                    )
                    try:
                        stack.remove(entry)
                    except ValueError:
                        pass
            time.sleep(max(wait, 0.001))


_arbiter = _WatchdogArbiter()


class Watchdog:
    """Interrupts script code that runs past its budget.

    The budget is wall-clock, as in the paper ("all calls to JavaScript
    functions by the framework must complete within a certain
    timeframe").  Enforcement lives in the process-wide
    :class:`_WatchdogArbiter`; a guard costs two dict operations on the
    hot path and nothing more.
    """

    def __init__(self, timeout_ms: float = DEFAULT_WATCHDOG_MS) -> None:
        self.timeout_ms = timeout_ms
        self.violations = 0

    def guard(self, fn: Callable[..., Any], *args: Any) -> Any:
        token = _arbiter.arm(self, self.timeout_ms / 1000.0)
        fired = False
        try:
            result = fn(*args)
        finally:
            fired = _arbiter.disarm(token)
            if fired:
                # Either the interrupt already unwound ``fn`` (we are
                # propagating it right now and the clear is a no-op), or
                # ``fn`` returned in the race window and the raise is
                # still pending — clear it before it lands in unrelated
                # code.
                ctypes.pythonapi.PyThreadState_SetAsyncExc(
                    ctypes.c_ulong(token[0]), None
                )
        if fired:
            raise ScriptTimeoutError(
                f"script call exceeded {self.timeout_ms:.0f} ms watchdog budget (post-hoc)"
            )
        return result


class ScriptFn:
    """Picklable reference to a function defined by a script.

    Functions created by ``exec`` cannot be pickled (their qualified name
    resolves nowhere), yet they sit in subscription handlers, timers and
    scheduler queues — all inside the Shard snapshot graph.  This wrapper
    stores the *host* and the function's name; after a restore re-executes
    the script source, the name resolves against the rebuilt namespace.
    ``__name__`` mirrors the wrapped function so watchdog/call spans
    record the same label either way.
    """

    def __init__(self, host: "ScriptHost", fn: Callable) -> None:
        self.host = host
        self.name = getattr(fn, "__name__", repr(fn))
        self._fn: Optional[Callable] = fn

    def __getstate__(self):
        return {"host": self.host, "name": self.name}

    def __setstate__(self, state):
        self.host = state["host"]
        self.name = state["name"]
        self._fn = None

    @property
    def __name__(self) -> str:
        return self.name

    def resolve(self) -> Optional[Callable]:
        fn = self._fn
        if fn is None:
            fn = self._fn = self.host.namespace.get(self.name)
        return fn

    def __call__(self, *args: Any) -> Any:
        fn = self.resolve()
        if fn is None:
            raise ScriptError(
                f"script {self.host.name!r} has no function {self.name!r}"
            )
        return fn(*args)


class _ScriptCallbackHandler:
    """Picklable subscription handler: funnel a delivery into the
    script's serialized scheduler lane (Section 4.5)."""

    __slots__ = ("host", "fn")

    def __init__(self, host: "ScriptHost", fn: "ScriptFn") -> None:
        self.host = host
        self.fn = fn

    def __call__(self, message: Any) -> None:
        host = self.host
        host.context.node.scheduler.submit(
            host.guarded_call, self.fn, message, serial_key=host.serial_key
        )


def _exec_stub(*_args: Any, **_kwargs: Any) -> None:
    """Side-effect sink used while re-executing a restored script."""
    return None


#: Namespace entries that are rebuilt (not pickled) on restore: the API
#: surface plus the interpreter plumbing.
_RUNTIME_NAMESPACE_KEYS = frozenset(
    (
        "__builtins__", "__name__", "math",
        "setDescription", "setAutoStart", "print", "log", "logTo",
        "publish", "subscribe", "freeze", "thaw", "json", "setTimeout",
    )
)

#: API entries stubbed out during the restore re-exec: anything whose
#: top-level invocation would repeat a side effect the snapshot already
#: contains (subscriptions, timers, publishes, log lines, freezes).
_RESTORE_STUBBED_KEYS = (
    "print", "log", "logTo", "publish", "subscribe", "freeze", "setTimeout",
)


class ScriptHost:
    """One deployed script inside a context."""

    def __init__(
        self,
        context,
        name: str,
        source: str,
        watchdog_ms: float = DEFAULT_WATCHDOG_MS,
    ) -> None:
        self.context = context
        self.name = name
        self.source = source
        self.watchdog = Watchdog(watchdog_ms)

        self.description = ""
        self.autostart = True
        self.loaded = False
        self.running = False
        self.load_count = 0

        self.debug_lines: List[str] = []
        self.logs: Dict[str, List[str]] = {}
        self.errors: List[BaseException] = []
        self.namespace: Dict[str, Any] = {}
        self._timers: List[Any] = []

        # Resource accounting (Section 6 future work: "power modelling to
        # estimate the resource consumption of individual scripts").
        self.invocations = 0
        self.published_messages = 0
        self.published_bytes = 0
        self.timers_set = 0

        # Observability plane, pre-bound once per host.  Wall-clock call
        # durations go ONLY into the metrics histogram — never into spans,
        # whose exports must be byte-identical across identical seeded
        # runs (sim-time is deterministic; wall time is not).
        kernel = context.node.kernel
        self._m_call_ms = kernel.metrics.histogram(f"script.call_ms.{self.serial_key}")
        self._spans = kernel.spans
        self._h_call = kernel.spans.hop("script.call")
        self._h_watchdog = kernel.spans.hop("script.watchdog")

    # ------------------------------------------------------------------
    @property
    def serial_key(self) -> str:
        return f"{self.context.experiment_id}/{self.name}"

    @property
    def owner_key(self) -> str:
        """Owner tag for broker subscriptions (cleaned up on stop)."""
        return f"script:{self.name}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def load(self) -> None:
        """Execute the script body; call ``start()`` if autostart is on."""
        if self.running:
            self.stop()
        self.namespace = build_namespace(self)
        self.load_count += 1
        self.running = True
        code = compile(self.source, f"<script {self.name}>", "exec")
        try:
            self.watchdog.guard(_exec_in, code, self.namespace)
        except BaseException as exc:  # noqa: BLE001 - report, stay contained
            self.errors.append(exc)
            self.running = False
            raise ScriptError(f"script {self.name!r} failed to load: {exc!r}") from exc
        self.loaded = True
        start = self.namespace.get("start")
        if self.autostart and callable(start):
            self.context.node.scheduler.submit(
                self.guarded_call, ScriptFn(self, start), serial_key=self.serial_key
            )

    def start(self) -> None:
        """Explicit user start for non-autostart scripts."""
        if not self.loaded:
            self.load()
            if self.autostart:
                return
        start = self.namespace.get("start")
        self.running = True
        if callable(start):
            self.context.node.scheduler.submit(
                self.guarded_call, ScriptFn(self, start), serial_key=self.serial_key
            )

    def stop(self) -> None:
        """Stop the script: drop subscriptions and timers, keep storage."""
        self.running = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        self.context.broker.remove_owned_by(self.owner_key)

    def update(self, new_source: str) -> None:
        """Replace the script with a new version (remote redeployment).

        The frozen object survives, which is how post-deployment Pogo
        avoids losing cluster state across updates (Section 5.3).
        """
        self.stop()
        self.source = new_source
        self.load()

    # ------------------------------------------------------------------
    # Snapshot/restore (the Shard pickling contract)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle everything except the exec'd namespace internals.

        Functions and classes defined by ``exec`` are unpicklable; the
        API entries and ``math`` are rebuilt anyway.  What *is* state —
        the script's top-level data variables (counters, reading lists,
        stored subscription handles) — is kept and merged back over the
        re-executed namespace on restore.
        """
        state = self.__dict__.copy()
        namespace = state.pop("namespace", {})
        data = {}
        for key, value in namespace.items():
            if key in _RUNTIME_NAMESPACE_KEYS:
                continue
            if isinstance(value, (types.FunctionType, type, types.ModuleType)):
                continue  # recreated by re-executing the source
            data[key] = value
        state["namespace"] = data
        return state

    def __setstate__(self, state):
        data = state.pop("namespace", {})
        self.__dict__.update(state)
        self.namespace = {}
        if self.loaded:
            namespace = build_namespace(self)
            real_api = {key: namespace[key] for key in _RESTORE_STUBBED_KEYS}
            for key in _RESTORE_STUBBED_KEYS:
                namespace[key] = _exec_stub
            code = compile(self.source, f"<script {self.name}>", "exec")
            try:
                _exec_in(code, namespace)
            except BaseException:  # noqa: BLE001 - a restore must not raise
                pass  # partial namespace; data entries still restore below
            namespace.update(real_api)
            self.namespace = namespace
        # Pickled data variables win over whatever top-level code reset.
        self.namespace.update(data)

    # ------------------------------------------------------------------
    # Guarded calls
    # ------------------------------------------------------------------
    def guarded_call(self, fn: Callable, *args: Any) -> None:
        """Run script code under the watchdog; contain its errors."""
        if not self.running:
            return
        self.invocations += 1
        started = time.perf_counter()
        spans = self._spans
        try:
            self.watchdog.guard(fn, *args)
        except BaseException as exc:  # noqa: BLE001
            if isinstance(exc, ScriptTimeoutError):
                self.context.node.kernel.metrics.counter("watchdog.hits").inc()
                if spans.enabled:
                    now = spans.now()
                    self._h_watchdog.record(
                        0,
                        spans.active_parent,
                        now,
                        now,
                        {
                            "script": self.serial_key,
                            "fn": getattr(fn, "__name__", repr(fn)),
                            "budget_ms": self.watchdog.timeout_ms,
                        },
                    )
            self.errors.append(exc)
        finally:
            # Wall-clock duration: metrics only (see __init__ note).
            self._m_call_ms.observe((time.perf_counter() - started) * 1000.0)
            if spans.enabled:
                now = spans.now()
                self._h_call.record(
                    0,
                    spans.active_parent,
                    now,
                    now,
                    {"script": self.serial_key, "fn": getattr(fn, "__name__", repr(fn))},
                )

    # ------------------------------------------------------------------
    # API backends (called from the namespace built by repro.core.api)
    # ------------------------------------------------------------------
    def api_publish(self, channel: str, message: Any) -> None:
        self.published_messages += 1
        self.published_bytes += _cheap_size(message)
        self.context.publish_from_script(self, channel, message)

    def api_subscribe(self, channel: str, fn: Callable, parameters: Optional[dict]):
        handler = _ScriptCallbackHandler(self, ScriptFn(self, fn))
        return self.context.broker.subscribe(
            channel, handler, parameters, owner=self.owner_key
        )

    def api_freeze(self, obj: Any) -> None:
        # Hot path: scripts may freeze on every sample.  json.dumps does
        # the type policing itself (raises TypeError on non-JSON values),
        # so the separate validation walk of to_json() is skipped.
        self.context.node.freeze_store.put(self.serial_key, json.dumps(obj))

    def api_thaw(self) -> Any:
        stored = self.context.node.freeze_store.get(self.serial_key)
        return from_json(stored) if stored is not None else None

    def api_json(self, obj: Any) -> str:
        return to_json(obj)

    def api_set_timeout(self, fn: Callable, delay_ms: float):
        self.timers_set += 1
        timer = self.context.node.scheduler.schedule(
            float(delay_ms), self.guarded_call, ScriptFn(self, fn),
            serial_key=self.serial_key,
        )
        self._timers.append(timer)
        return timer


def _cheap_size(message: Any) -> int:
    """Fast wire-size estimate for accounting (exact JSON is computed
    later by the transport; this avoids double serialization)."""
    try:
        return len(json.dumps(message))
    except (TypeError, ValueError):
        return 0


class FreezeStore:
    """Per-node persistent storage for frozen script objects.

    Keyed by the script's serial key; "each script can have only one such
    object at any given time, and freeze will always overwrite any
    preexisting data" (Section 4.4).  Survives reboots (flash).
    """

    def __init__(self) -> None:
        self._data: Dict[str, str] = {}

    def put(self, key: str, json_text: str) -> None:
        self._data[key] = json_text

    def get(self, key: str) -> Optional[str]:
        return self._data.get(key)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def __len__(self) -> int:
        return len(self._data)


def _exec_in(code, namespace: Dict[str, Any]) -> None:
    exec(code, namespace)  # noqa: S102 - the sandbox is the namespace
