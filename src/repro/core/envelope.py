"""Immutable message envelopes: validate once, serialize at most once.

The seed reproduction re-did per-message work at every hop of the publish
path: ``validate_message`` at the broker, a ``copy_message`` per local
subscriber, and a fresh ``json.dumps`` (inside ``to_json`` /
``message_size_bytes``) at the buffer, the transport, the XMPP switch and
the participation tracker — five walks over the *same* payload.  MOSDEN
identifies exactly this per-message middleware overhead as the
scalability limit of collaborative sensing platforms.

An :class:`Envelope` does each unit of work once per message lifetime:

* **one validation** — the payload tree is checked (and tuples
  normalized to lists, as JSON serialization would) in a single walk at
  construction;
* **structural immutability** — the walk produces a frozen view
  (:class:`FrozenDict` / :class:`FrozenList`), so every subscriber can
  safely share the *same* object and the per-delivery deep copy
  disappears.  Handlers that want to mutate take an explicit
  ``message.copy()`` (or ``dict(message)`` / ``list(...)``);
* **lazy canonical JSON** — ``env.json`` and ``env.wire_size`` are
  computed on first use and cached, and :func:`canonical_json` splices
  the cached text into enclosing stanzas instead of re-serializing the
  payload at each hop.

Frozen containers subclass ``dict`` / ``list``, so reads, iteration,
``==`` against plain containers, and ``json.dumps`` all behave exactly as
before; only mutation changes (it raises instead of silently diverging
from what other subscribers see).
"""

from __future__ import annotations

import json as _json
from json.encoder import encode_basestring as _escape_str
from typing import Any, List, Tuple

#: Types allowed at message leaves.
SCALARS = (str, int, float, bool, type(None))

#: Canonical wire format arguments (compact, key-sorted, UTF-8).
_CANONICAL = {"separators": (",", ":"), "sort_keys": True, "ensure_ascii": False}


class MessageError(TypeError):
    """Raised when a value cannot be used as a Pogo message."""


def _blocked(self, *args: Any, **kwargs: Any) -> None:
    raise MessageError(
        "delivered messages are immutable; take message.copy() "
        "(or dict(...)/list(...)) before mutating"
    )


class FrozenDict(dict):
    """A read-only dict view of one level of a frozen message tree.

    Built only by :func:`freeze_message`; its values are themselves
    frozen, which is the invariant that lets validation short-circuit on
    already-frozen subtrees.  ``copy()`` returns a plain, mutable,
    *shallow* ``dict`` — the escape hatch for handlers that tag or edit a
    received message.
    """

    __slots__ = ()

    __setitem__ = __delitem__ = _blocked
    clear = pop = popitem = setdefault = update = _blocked
    __ior__ = _blocked

    def __deepcopy__(self, memo: dict) -> dict:
        return thaw_message(self)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (dict, (thaw_message(self),))


class FrozenList(list):
    """A read-only list view of one level of a frozen message tree."""

    __slots__ = ()

    __setitem__ = __delitem__ = _blocked
    append = extend = insert = pop = remove = _blocked
    sort = reverse = clear = _blocked
    __iadd__ = __imul__ = _blocked

    def __deepcopy__(self, memo: dict) -> list:
        return thaw_message(self)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (list, (thaw_message(self),))


def freeze_message(value: Any, _path: str = "$") -> Any:
    """Validate ``value`` and return its frozen form, in one walk.

    Tuples are normalized to (frozen) lists here — at ingest — so a
    payload observes the same shape whether it is delivered locally or
    round-trips through JSON.  Already-frozen subtrees (and the payloads
    of other envelopes) are returned as-is: re-wrapping a tagged message
    only pays for the top level.

    The walk carries no location bookkeeping (this runs per publish); on
    failure the tree is re-walked cold to raise the classic
    path-annotated error.
    """
    try:
        return _freeze_fast(value)
    except MessageError:
        _freeze_with_path(value, _path)
        raise


def _freeze_fast(value: Any) -> Any:
    cls = type(value)
    if cls is dict:
        for key in value:
            if type(key) is not str and not isinstance(key, str):
                raise MessageError(f"non-string key {key!r}")
        return FrozenDict((key, _freeze_fast(item)) for key, item in value.items())
    if cls is FrozenDict or cls is FrozenList:
        return value
    if cls in _SCALAR_TYPES:
        return value
    if cls is list or cls is tuple:
        return FrozenList(_freeze_fast(item) for item in value)
    # Uncommon shapes (subclasses, Envelope) take the general checks.
    if isinstance(value, Envelope):
        return value.payload
    if isinstance(value, SCALARS):
        return value
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise MessageError(f"non-string key {key!r}")
        return FrozenDict((key, _freeze_fast(item)) for key, item in value.items())
    if isinstance(value, (list, tuple)):
        return FrozenList(_freeze_fast(item) for item in value)
    raise MessageError(f"unsupported type {cls.__name__}")


def _freeze_with_path(value: Any, _path: str = "$") -> Any:
    """The original path-carrying walk; error reporting only."""
    cls = type(value)
    if cls is FrozenDict or cls is FrozenList:
        return value
    if isinstance(value, Envelope):
        return value.payload
    if isinstance(value, SCALARS):
        return value
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise MessageError(f"non-string key {key!r} at {_path}")
        return FrozenDict(
            (key, _freeze_with_path(item, f"{_path}.{key}")) for key, item in value.items()
        )
    if isinstance(value, (list, tuple)):
        return FrozenList(
            _freeze_with_path(item, f"{_path}[{index}]") for index, item in enumerate(value)
        )
    raise MessageError(f"unsupported type {cls.__name__} at {_path}")


_SCALAR_TYPES = frozenset((str, int, float, bool, type(None)))


def thaw_message(value: Any) -> Any:
    """Deep, plain-``dict``/``list`` copy of a (frozen) message tree."""
    if isinstance(value, Envelope):
        value = value.payload
    if isinstance(value, dict):
        return {key: thaw_message(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [thaw_message(item) for item in value]
    return value


class Envelope:
    """One published message: validated once, frozen, lazily serialized.

    ``Envelope.wrap`` is idempotent — wrapping an existing envelope (a
    message being forwarded to the next hop) returns it unchanged, which
    is how the single-validation invariant survives the whole
    broker → buffer → transport → switch → remote-broker pipeline.
    """

    __slots__ = ("payload", "_json", "_size", "trace_id", "origin_ms", "hop_span")

    def __init__(self, payload: Any) -> None:
        self.payload = freeze_message(payload)
        self._json: Any = None
        self._size: Any = None
        # Tracing plane (repro.sim.spans).  The simulation moves envelope
        # objects end to end, so the trace id assigned at first publish and
        # the running causal parent (the last hop's span id) ride along for
        # free.  Zero means untraced; the payload itself never changes.
        self.trace_id = 0
        self.origin_ms = 0.0
        self.hop_span = 0

    @classmethod
    def wrap(cls, value: Any) -> "Envelope":
        """The one ingestion point: dict in, envelope out (idempotent)."""
        if isinstance(value, Envelope):
            return value
        return cls(value)

    @property
    def json(self) -> str:
        """Canonical wire JSON, computed at most once."""
        if self._json is None:
            self._json = _json.dumps(self.payload, **_CANONICAL)
        return self._json

    @property
    def wire_size(self) -> int:
        """UTF-8 byte count of :attr:`json`, computed at most once."""
        if self._size is None:
            self._size = len(self.json.encode("utf-8"))
        return self._size

    def copy(self) -> Any:
        """A deep, mutable copy of the payload (plain dicts/lists)."""
        return thaw_message(self.payload)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Envelope):
            return self.payload == other.payload
        if isinstance(other, (dict, list, tuple)) or isinstance(other, SCALARS):
            return self.payload == (list(other) if isinstance(other, tuple) else other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - mutable-payload semantics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Envelope {self.payload!r}>"


class Stanza(dict):
    """A wire stanza that caches its canonical JSON across hops.

    The same stanza object is serialized several times on its way out —
    wire-size accounting at the buffer, the transport and the XMPP
    switch, then the actual send — and, unlike message payloads, stanzas
    are plain mutable dicts, so the envelope cache cannot help them.
    Constructing wire ops as ``Stanza`` keeps dict semantics everywhere
    (consumers index into them unchanged) but lets :func:`canonical_json`
    and ``message_size_bytes`` answer repeats from the first encoding.

    Any mutation drops the cache (chaos tamper interceptors edit stanzas
    in flight), so a stale serialization can never leak onto the wire.
    """

    __slots__ = ("_json", "_size")

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._json: Any = None
        self._size: Any = None

    def _invalidate(self) -> None:
        self._json = None
        self._size = None

    def __setitem__(self, key: Any, item: Any) -> None:
        self._json = None
        self._size = None
        dict.__setitem__(self, key, item)

    def __delitem__(self, key: Any) -> None:
        self._json = None
        self._size = None
        dict.__delitem__(self, key)

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._invalidate()
        dict.update(self, *args, **kwargs)

    def pop(self, *args: Any) -> Any:
        self._invalidate()
        return dict.pop(self, *args)

    def popitem(self) -> Any:
        self._invalidate()
        return dict.popitem(self)

    def clear(self) -> None:
        self._invalidate()
        dict.clear(self)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._invalidate()
        return dict.setdefault(self, key, default)

    @property
    def json(self) -> str:
        """Canonical wire JSON, cached until the next mutation."""
        text = self._json
        if text is None:
            text = self._json = _splice(self)
        return text

    @property
    def wire_size(self) -> int:
        """UTF-8 byte count of :attr:`json`, cached with it."""
        size = self._size
        if size is None:
            size = self._size = len(self.json.encode("utf-8"))
        return size


def canonical_json(value: Any) -> str:
    """Canonical JSON of a message or stanza, reusing cached envelope text.

    Fast paths, in order: a bare envelope (or a :class:`Stanza`) returns
    its cached string; a stanza with envelope values (the reliable-link
    wrapper, checked with a shallow scan) goes straight to the splicing
    encoder; everything else takes the C encoder in one pass.  The
    splicing path only ever hand-encodes the small wrapper — the payload
    text is cached.
    """
    if isinstance(value, Stanza):
        return value.json
    if isinstance(value, Envelope):
        return value.json
    if type(value) is dict:
        for item in value.values():
            if isinstance(item, Envelope):
                return _splice(value)
    try:
        return _json.dumps(value, **_CANONICAL)
    except (TypeError, ValueError):
        # Envelopes nested deeper than the shallow scan saw, or a value
        # that is not a message at all.
        return _splice(value)


def _splice(value: Any) -> str:
    parts: List[str] = []
    try:
        _encode_into(value, parts)
    except MessageError:
        _raise_with_path(value)  # rebuild the offending path, cold
        raise
    return "".join(parts)


def _encode_into(value: Any, parts: List[str]) -> None:
    """Recursive canonical encoder that splices cached envelope JSON.

    This runs per hop on every remote-bound stanza, so it avoids
    per-element allocations (no path strings, no ``json.dumps`` calls
    for scalars); errors are cheap to make slow, successes are not.
    """
    cls = type(value)
    if cls is str:
        parts.append(_escape_str(value))
        return
    if cls is bool:
        parts.append("true" if value else "false")
        return
    if cls is int:
        parts.append(repr(value))
        return
    if value is None:
        parts.append("null")
        return
    if cls is Envelope:
        parts.append(value.json)
        return
    if cls is Stanza:
        text = value._json
        if text is not None:
            parts.append(text)
            return
        # Cache cold: encode as a dict below (the json property caches
        # the result of this very walk).
    if isinstance(value, dict):
        # The container loops dispatch common leaves inline (exact type
        # checks, so bool never masquerades as int) — one recursive call
        # per *container*, not per node.
        append = parts.append
        append("{")
        first = True
        for key in sorted(value):
            if not isinstance(key, str):
                raise MessageError(f"non-string key {key!r}")
            if first:
                first = False
            else:
                append(",")
            append(_escape_str(key))
            append(":")
            item = value[key]
            icls = type(item)
            if icls is str:
                append(_escape_str(item))
            elif icls is int:
                append(repr(item))
            elif icls is Envelope:
                append(item.json)
            elif item is None:
                append("null")
            elif icls is bool:
                append("true" if item else "false")
            else:
                _encode_into(item, parts)
        append("}")
        return
    if isinstance(value, (list, tuple)):
        append = parts.append
        append("[")
        for index, item in enumerate(value):
            if index:
                append(",")
            icls = type(item)
            if icls is Stanza and item._json is not None:
                append(item._json)
            elif icls is Envelope:
                append(item.json)
            elif icls is str:
                append(_escape_str(item))
            else:
                _encode_into(item, parts)
        append("]")
        return
    if isinstance(value, float):
        # Mirror json.dumps: shortest repr, named non-finite constants.
        if value != value:
            parts.append("NaN")
        elif value == _INF:
            parts.append("Infinity")
        elif value == -_INF:
            parts.append("-Infinity")
        else:
            parts.append(float.__repr__(value))
        return
    if isinstance(value, str):
        parts.append(_escape_str(value))
        return
    if isinstance(value, int):
        parts.append(int.__repr__(value))
        return
    raise MessageError(f"unsupported type {cls.__name__}")


_INF = float("inf")


def _raise_with_path(value: Any, _path: str = "$") -> None:
    """Re-walk an invalid stanza to name the offending path (error path
    only; the hot encoder carries no location bookkeeping)."""
    if isinstance(value, (Envelope, SCALARS)):
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise MessageError(f"non-string key {key!r} at {_path}")
            _raise_with_path(item, f"{_path}.{key}")
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _raise_with_path(item, f"{_path}[{index}]")
        return
    raise MessageError(f"unsupported type {type(value).__name__} at {_path}")
