"""Device-side experiment contexts.

Section 4.2: "Scripts belonging to a certain experiment run inside a
so-called *context*, which acts as a sandbox; scripts can only
communicate within the same experiment.  Each context has a counterpart
on a remote node ... Each context has a *message broker* associated with
it ... The brokers on either end synchronize with each other so that the
publish-subscribe mechanism works seamlessly across the network
boundary."

A :class:`DeviceContext` therefore owns:

* a broker (local scripts + sensor deliveries);
* the deployed scripts of one experiment;
* the synchronized view of the collector's subscriptions (*remote
  proxies*): real :class:`~repro.core.broker.Subscription` objects with a
  link owner tag and a no-op handler.  They exist so sensors see remote
  interest (a collector subscribing to ``battery`` turns the device's
  battery sensor on) while actual cross-network delivery is a single
  forwarded ``pub`` per publish.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .broker import Broker, Subscription
from .deployment import (
    OP_SUB_ADD,
    OP_SUB_RELEASE,
    OP_SUB_REMOVE,
    OP_SUB_RENEW,
    pub_op,
    sub_add_op,
    sub_change_op,
)
from .envelope import Envelope
from .scripting import ScriptHost

#: Owner tag for remote-proxy subscriptions.
LINK_OWNER = "link"


def _noop(_message: Any) -> None:
    """Handler for proxy subscriptions; forwarding happens out of band."""


class DeviceContext:
    """One experiment's sandbox on a device node."""

    def __init__(self, node, experiment_id: str, collector_jid: str) -> None:
        self.node = node
        self.experiment_id = experiment_id
        self.collector_jid = collector_jid
        self.broker = Broker(
            name=f"{experiment_id}@{node.jid}",
            metrics=node.kernel.metrics,
            spans=node.kernel.spans,
        )
        spans = node.kernel.spans
        self._spans = spans
        self._h_publish = spans.hop("publish")
        self._h_deliver = spans.hop("deliver.device")
        self.scripts: Dict[str, ScriptHost] = {}
        #: remote subscription id (collector side) -> proxy Subscription.
        self.remote_subs: Dict[int, Subscription] = {}
        self._remote_params: Dict[int, dict] = {}
        #: Local script subscriptions are mirrored to the collector; map
        #: local Subscription.id -> True once announced.
        self._watching = False
        self._watch_listener = self._on_local_sub_change
        self.broker.watch_all(self._watch_listener)
        self.forwarded_pubs = 0

    # ------------------------------------------------------------------
    # Scripts
    # ------------------------------------------------------------------
    def deploy_script(self, name: str, source: str) -> ScriptHost:
        """Install or update a script (remote push, Section 3.2)."""
        existing = self.scripts.get(name)
        if existing is not None:
            existing.update(source)
            return existing
        host = ScriptHost(self, name, source, watchdog_ms=self.node.watchdog_ms)
        self.scripts[name] = host
        host.load()
        return host

    def undeploy_script(self, name: str) -> bool:
        host = self.scripts.pop(name, None)
        if host is None:
            return False
        host.stop()
        return True

    def stop_all_scripts(self) -> None:
        for host in self.scripts.values():
            host.stop()

    def reload_all_scripts(self) -> None:
        """After a reboot: scripts restart from source; thaw() recovers
        whatever they froze."""
        for host in self.scripts.values():
            try:
                host.load()
            except Exception:  # noqa: BLE001 - a broken script must not kill boot
                pass

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish_from_script(self, script: ScriptHost, channel: str, message: Any) -> None:
        envelope = Envelope.wrap(message)
        self._root_span(
            envelope, channel, script.name if script is not None else "script"
        )
        self.broker.publish(channel, envelope)
        self._forward_if_remote_interest(channel, envelope)

    def publish_internal(self, channel: str, message: Any) -> int:
        """Sensor-manager publishes (sensors reach every context)."""
        envelope = Envelope.wrap(message)
        self._root_span(envelope, channel, "sensor")
        delivered = self.broker.publish(channel, envelope)
        self._forward_if_remote_interest(channel, envelope)
        return delivered

    def _root_span(self, envelope: Envelope, channel: str, source: str) -> None:
        """Open the message's trace at its first traced publish."""
        if not self._spans.enabled or envelope.trace_id:
            return
        now = self._spans.now()
        envelope.origin_ms = now
        envelope.hop_span = self._h_publish.record(
            self._spans.tag(envelope),
            0,
            now,
            now,
            {"channel": channel, "source": source, "node": self.node.jid},
        )

    def _forward_if_remote_interest(self, channel: str, envelope: Envelope) -> None:
        if any(
            sub.owner == LINK_OWNER and sub.active
            for sub in self.broker.subscriptions(channel)
        ):
            self.forwarded_pubs += 1
            # The envelope travels inside the pub op: the buffer, the
            # transport and the switch all reuse its cached JSON/size.
            self.node.send_to(
                self.collector_jid, pub_op(self.experiment_id, channel, envelope)
            )

    def deliver_remote(self, channel: str, message: Any) -> int:
        """Deliver a pub that arrived from the collector to local scripts."""
        envelope = Envelope.wrap(message)
        payload = envelope.payload
        delivered = 0
        for sub in list(self.broker.subscriptions(channel)):
            if sub.owner == LINK_OWNER:
                continue
            sub.delivery_count += 1
            delivered += 1
            sub.handler(payload)
        if envelope.trace_id and self._spans.enabled:
            # End-to-end terminus: span covers origin publish -> delivery.
            self._h_deliver.record(
                envelope.trace_id,
                envelope.hop_span,
                envelope.origin_ms,
                self._spans.now(),
                {"channel": channel, "deliveries": delivered, "node": self.node.jid},
            )
        return delivered

    # ------------------------------------------------------------------
    # Remote subscription synchronization (collector -> device)
    # ------------------------------------------------------------------
    def apply_sub_op(self, payload: dict) -> None:
        op = payload["op"]
        sub_id = int(payload["sub"])
        if op == OP_SUB_ADD:
            existing = self.remote_subs.pop(sub_id, None)
            if existing is not None:
                existing.remove()
            proxy = self.broker.subscribe(
                payload["channel"], _noop, payload.get("params") or {}, owner=LINK_OWNER
            )
            self.remote_subs[sub_id] = proxy
        elif op == OP_SUB_RELEASE:
            proxy = self.remote_subs.get(sub_id)
            if proxy is not None:
                proxy.release()
        elif op == OP_SUB_RENEW:
            proxy = self.remote_subs.get(sub_id)
            if proxy is not None:
                proxy.renew()
        elif op == OP_SUB_REMOVE:
            proxy = self.remote_subs.pop(sub_id, None)
            if proxy is not None:
                proxy.remove()
        else:
            raise ValueError(f"not a subscription op: {op!r}")

    def clear_remote_subs(self) -> None:
        """Volatile broker state dies with a reboot; the collector
        re-announces its subscriptions on our next presence."""
        for proxy in list(self.remote_subs.values()):
            proxy.remove()
        self.remote_subs.clear()

    # ------------------------------------------------------------------
    # Local subscription mirroring (device -> collector)
    # ------------------------------------------------------------------
    @staticmethod
    def _is_local_plumbing(sub: Subscription) -> bool:
        """Node-local subscriptions (instrumentation, services) are never
        mirrored to the collector."""
        return bool(sub.owner and (sub.owner.startswith("local:") or sub.owner.startswith("service:")))

    def _on_local_sub_change(self, channel: str, sub: Subscription, change: str) -> None:
        if sub.owner == LINK_OWNER or self._is_local_plumbing(sub):
            return
        if change == "added":
            payload = sub_add_op(self.experiment_id, sub.id, channel, sub.parameters)
        elif change == "released":
            payload = sub_change_op(OP_SUB_RELEASE, self.experiment_id, sub.id)
        elif change == "renewed":
            payload = sub_change_op(OP_SUB_RENEW, self.experiment_id, sub.id)
        else:
            payload = sub_change_op(OP_SUB_REMOVE, self.experiment_id, sub.id)
        self.node.send_to(self.collector_jid, payload)

    def announce_local_subs(self) -> None:
        """Re-announce every live local subscription (after reconnect)."""
        for sub in self.broker.all_subscriptions():
            if sub.owner == LINK_OWNER or sub.removed or self._is_local_plumbing(sub):
                continue
            self.node.send_to(
                self.collector_jid,
                sub_add_op(self.experiment_id, sub.id, sub.channel, sub.parameters),
            )
            if not sub.active:
                self.node.send_to(
                    self.collector_jid,
                    sub_change_op(OP_SUB_RELEASE, self.experiment_id, sub.id),
                )

    def teardown(self) -> None:
        self.stop_all_scripts()
        self.clear_remote_subs()
        self.broker.unwatch_all(self._watch_listener)
