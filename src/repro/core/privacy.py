"""Per-user privacy controls.

Sections 3.2/3.3: "we allow users to select the types of information they
wish to share, so that they retain full control over their own privacy
... these settings can be changed at any time from the application
interface."

The unit of control is the sensor channel: a blocked channel behaves as
if it had no subscribers (the sensor stays off — saving energy too) and
any residual publish on it is suppressed before reaching a broker.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Set


class PrivacySettings:
    """The device owner's sharing choices."""

    def __init__(self, blocked_channels: Iterable[str] = ()) -> None:
        self._blocked: Set[str] = set(blocked_channels)
        self.on_change: List[Callable[[str, bool], None]] = []
        self.suppressed_publishes = 0

    def allows(self, channel: str) -> bool:
        return channel not in self._blocked

    def block(self, channel: str) -> None:
        """User revokes sharing of a channel (takes effect immediately)."""
        if channel in self._blocked:
            return
        self._blocked.add(channel)
        self._notify(channel, False)

    def allow(self, channel: str) -> None:
        """User re-enables sharing of a channel."""
        if channel not in self._blocked:
            return
        self._blocked.discard(channel)
        self._notify(channel, True)

    def blocked_channels(self) -> Set[str]:
        return set(self._blocked)

    def _notify(self, channel: str, allowed: bool) -> None:
        for listener in list(self.on_change):
            listener(channel, allowed)
