"""Pogo middleware core: pub/sub, scripting, scheduling, nodes, tail sync."""

from .broker import (
    SUB_ADDED,
    SUB_RELEASED,
    SUB_REMOVED,
    SUB_RENEWED,
    Broker,
    Subscription,
)
from .buffer import (
    DEFAULT_MAX_AGE_MS,
    BufferedMessage,
    InMemoryStore,
    MessageBuffer,
    MessageStore,
    SqliteStore,
)
from .context import LINK_OWNER, DeviceContext
from .deployment import Experiment
from .envelope import (
    Envelope,
    FrozenDict,
    FrozenList,
    canonical_json,
    freeze_message,
    thaw_message,
)
from .messages import (
    MessageError,
    copy_message,
    from_json,
    message_size_bytes,
    messages_equal,
    to_json,
    validate_message,
)
from .multibroker import CollectorContext, DeviceLink
from .node import CollectorNode, DeviceNode
from .privacy import PrivacySettings
from .scheduler import PogoScheduler, ScheduledTask, SimpleScheduler
from .scripting import (
    DEFAULT_WATCHDOG_MS,
    FreezeStore,
    ScriptError,
    ScriptHost,
    ScriptTimeoutError,
    Watchdog,
)
from .sensor_manager import SensorManager
from .tailsync import (
    ChargerPolicy,
    ImmediatePolicy,
    PeriodicPolicy,
    SynchronizedPolicy,
    TailDetector,
    TransmissionPolicy,
)
from .participation import ParticipationRecord, ParticipationTracker
from .power_model import ScriptPowerEstimate, ScriptPowerModel
from .testbed import AssignmentError, TestbedAdmin
from .api import API_METHOD_COUNT, api_method_names

__all__ = [
    "SUB_ADDED",
    "SUB_RELEASED",
    "SUB_REMOVED",
    "SUB_RENEWED",
    "Broker",
    "Subscription",
    "DEFAULT_MAX_AGE_MS",
    "BufferedMessage",
    "InMemoryStore",
    "MessageBuffer",
    "MessageStore",
    "SqliteStore",
    "LINK_OWNER",
    "DeviceContext",
    "Experiment",
    "Envelope",
    "FrozenDict",
    "FrozenList",
    "canonical_json",
    "freeze_message",
    "thaw_message",
    "MessageError",
    "copy_message",
    "from_json",
    "message_size_bytes",
    "messages_equal",
    "to_json",
    "validate_message",
    "CollectorContext",
    "DeviceLink",
    "CollectorNode",
    "DeviceNode",
    "PrivacySettings",
    "PogoScheduler",
    "ScheduledTask",
    "SimpleScheduler",
    "DEFAULT_WATCHDOG_MS",
    "FreezeStore",
    "ScriptError",
    "ScriptHost",
    "ScriptTimeoutError",
    "Watchdog",
    "SensorManager",
    "ChargerPolicy",
    "ImmediatePolicy",
    "PeriodicPolicy",
    "SynchronizedPolicy",
    "TailDetector",
    "TransmissionPolicy",
    "ParticipationRecord",
    "ParticipationTracker",
    "ScriptPowerEstimate",
    "ScriptPowerModel",
    "AssignmentError",
    "TestbedAdmin",
    "API_METHOD_COUNT",
    "api_method_names",
]
