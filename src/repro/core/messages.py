"""Messages: trees of key/value pairs with a JSON wire format.

Section 4.3: "Messages are represented as a tree of key/value pairs,
which map directly onto JavaScript objects ... Messages are serialized to
JSON notation when they are to be delivered to a remote node."

In the Python reproduction messages are plain dicts/lists/scalars.  This
module provides validation (so scripts cannot publish un-serializable
objects and have them explode later inside the transport), canonical JSON
encoding, wire-size accounting (Table 4's "Size" columns measure exactly
these byte counts) and deep copying.

Since the envelope refactor the hot publish path carries
:class:`~repro.core.envelope.Envelope` objects instead of raw dicts —
validated once, frozen, with canonical JSON cached.  Every function here
is envelope-aware, so stanzas that embed envelopes (batches of pubs)
serialize by splicing the cached payload text rather than walking the
tree again.  The dict-based API below remains the compatibility surface
for scripts, tests and tools.
"""

from __future__ import annotations

import json
from typing import Any

from .envelope import (
    SCALARS as _SCALARS,
    Envelope,
    FrozenDict,
    FrozenList,
    MessageError,
    Stanza,
    canonical_json,
)

__all__ = [
    "MessageError",
    "validate_message",
    "to_json",
    "from_json",
    "message_size_bytes",
    "copy_message",
    "messages_equal",
]


def validate_message(value: Any, _path: str = "$") -> None:
    """Ensure ``value`` is a JSON-able tree of key/value pairs.

    Raises :class:`MessageError` naming the offending path otherwise.
    Envelopes and frozen subtrees validated at ingest are trusted and
    short-circuit — the single-validation invariant of the envelope
    pipeline.
    """
    if isinstance(value, _SCALARS):
        return
    cls = type(value)
    if cls is FrozenDict or cls is FrozenList or cls is Envelope:
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise MessageError(f"non-string key {key!r} at {_path}")
            validate_message(item, f"{_path}.{key}")
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            validate_message(item, f"{_path}[{index}]")
        return
    raise MessageError(f"unsupported type {type(value).__name__} at {_path}")


def to_json(value: Any) -> str:
    """Serialize a message to compact, key-sorted JSON.

    For an :class:`Envelope` (or a stanza containing envelopes) the
    cached canonical text is reused instead of re-serializing.
    """
    try:
        return canonical_json(value)
    except MessageError:
        raise
    except (TypeError, ValueError):
        # Produce the classic path-annotated error for invalid trees.
        validate_message(value)
        raise


def from_json(text: str) -> Any:
    """Parse a wire message."""
    return json.loads(text)


def message_size_bytes(value: Any) -> int:
    """Wire size of a message in bytes (UTF-8 JSON).

    Envelopes answer from their cached size; computing the size of the
    same payload at the buffer, transport, switch and participation
    tracker therefore costs one serialization total, not four.
    """
    if isinstance(value, Envelope):
        return value.wire_size
    if isinstance(value, Stanza):
        return value.wire_size
    return len(to_json(value).encode("utf-8"))


def copy_message(value: Any) -> Any:
    """Deep-copy a message tree into plain, mutable dicts/lists.

    Tuples become lists — explicitly the same normalization the envelope
    pipeline applies at ingest (:func:`~repro.core.envelope.freeze_message`)
    and that JSON round-trips apply on the wire, so a payload has one
    observable shape no matter which path delivered it.
    """
    if isinstance(value, Envelope):
        value = value.payload
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        return {key: copy_message(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [copy_message(item) for item in value]
    raise MessageError(f"unsupported type {type(value).__name__}")


def messages_equal(a: Any, b: Any) -> bool:
    """Structural equality on the JSON representation."""
    return to_json(a) == to_json(b)
