"""Messages: trees of key/value pairs with a JSON wire format.

Section 4.3: "Messages are represented as a tree of key/value pairs,
which map directly onto JavaScript objects ... Messages are serialized to
JSON notation when they are to be delivered to a remote node."

In the Python reproduction messages are plain dicts/lists/scalars.  This
module provides validation (so scripts cannot publish un-serializable
objects and have them explode later inside the transport), canonical JSON
encoding, wire-size accounting (Table 4's "Size" columns measure exactly
these byte counts) and deep copying (local deliveries must not allow one
subscriber to mutate what another receives).
"""

from __future__ import annotations

import json
from typing import Any

#: Types allowed at message leaves.
_SCALARS = (str, int, float, bool, type(None))


class MessageError(TypeError):
    """Raised when a value cannot be used as a Pogo message."""


def validate_message(value: Any, _path: str = "$") -> None:
    """Ensure ``value`` is a JSON-able tree of key/value pairs.

    Raises :class:`MessageError` naming the offending path otherwise.
    """
    if isinstance(value, _SCALARS):
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise MessageError(f"non-string key {key!r} at {_path}")
            validate_message(item, f"{_path}.{key}")
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            validate_message(item, f"{_path}[{index}]")
        return
    raise MessageError(f"unsupported type {type(value).__name__} at {_path}")


def to_json(value: Any) -> str:
    """Serialize a message to compact, key-sorted JSON."""
    validate_message(value)
    return json.dumps(value, separators=(",", ":"), sort_keys=True, ensure_ascii=False)


def from_json(text: str) -> Any:
    """Parse a wire message."""
    return json.loads(text)


def message_size_bytes(value: Any) -> int:
    """Wire size of a message in bytes (UTF-8 JSON)."""
    return len(to_json(value).encode("utf-8"))


def copy_message(value: Any) -> Any:
    """Deep-copy a message tree (tuples become lists, as JSON would)."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, dict):
        return {key: copy_message(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [copy_message(item) for item in value]
    raise MessageError(f"unsupported type {type(value).__name__}")


def messages_equal(a: Any, b: Any) -> bool:
    """Structural equality on the JSON representation."""
    return to_json(a) == to_json(b)
