"""Command-line interface: run the reproduction's experiments directly.

    python -m repro <command> [options]

Commands
--------
quickstart       battery telemetry across a small simulated fleet
localization     the Section 4.1 app for N days on one phone
roguefinder      Listing 2's geofenced scanning for one day
tail-trace       Figure 3: one transmission's power trace (ASCII)
table3           Table 3: hourly energy per carrier, with/without Pogo
table4           Table 4: the full deployment study (slow; supports --scale)
anonytl          parse/compile/run an AnonyTL task file (Listing 1 format)
power-report     per-script resource estimates after a simulated run
metrics          kernel metrics plane report after a simulated run
trace            message lifecycle tracing: per-hop latency, span tree,
                 per-message energy attribution (supports --json/--export)
chaos            deterministic fault injection + invariant verdict
                 (scenario presets, --report JSON, --inject-bug canary)
scenarios        generative city-scale workload presets (commuter surge,
                 stadium crowds, contact tracing, noise-map campaigns);
                 runs solo or sharded under the invariant monitor and
                 emits a canonical byte-deterministic report
bench            fleet-scaling kernel benchmark; emits the canonical
                 BENCH_kernel.json artifact (machine-comparable)
fleet            one simulation partitioned across shard worker
                 processes; the merged report is byte-identical to the
                 single-shard run (--shards 1 is that run); --telemetry
                 exports the per-barrier time-series, --prom a
                 Prometheus snapshot, --live a progress view
top              live fleet progress: sim-time, events/s, per-shard lag
                 bars and handoff backlog refreshed at every barrier,
                 with a health verdict at the end

Every command accepts ``--seed`` and prints a deterministic report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import chaos as _chaos
from .sim.kernel import MINUTE


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Pogo, a Middleware for Mobile Phone Sensing'",
    )
    parser.add_argument("--seed", type=int, default=7, help="experiment seed")
    sub = parser.add_subparsers(dest="command", required=True)

    quickstart = sub.add_parser("quickstart", help="battery telemetry quickstart")
    quickstart.add_argument("--devices", type=int, default=3)
    quickstart.add_argument("--hours", type=float, default=1.0)

    localization = sub.add_parser("localization", help="the Section 4.1 application")
    localization.add_argument("--days", type=int, default=2)

    roguefinder = sub.add_parser("roguefinder", help="Listing 2's geofenced scanning")
    roguefinder.add_argument("--hours", type=float, default=24.0)

    sub.add_parser("tail-trace", help="Figure 3 power trace (ASCII)")

    sub.add_parser("table3", help="Table 3 energy comparison")

    table4 = sub.add_parser("table4", help="Table 4 deployment study")
    table4.add_argument("--scale", type=float, default=1.0,
                        help="shrink session lengths proportionally")

    anonytl = sub.add_parser("anonytl", help="run an AnonyTL task file")
    anonytl.add_argument("task_file", help="path to task text (Listing 1 format)")
    anonytl.add_argument("--hours", type=float, default=12.0)

    power = sub.add_parser("power-report", help="per-script power estimates")
    power.add_argument("--hours", type=float, default=6.0)

    metrics = sub.add_parser("metrics", help="kernel metrics plane report")
    metrics.add_argument("--devices", type=int, default=3)
    metrics.add_argument("--hours", type=float, default=1.0)
    metrics.add_argument("--all", action="store_true",
                         help="include zero-valued counters")
    metrics.add_argument("--json", action="store_true",
                         help="machine-readable snapshot instead of text")
    metrics.add_argument("--output", metavar="FILE",
                         help="write the report to FILE instead of stdout "
                              "('-' keeps stdout)")

    trace = sub.add_parser(
        "trace", help="message lifecycle tracing: per-hop latency & energy"
    )
    trace.add_argument("--devices", type=int, default=50)
    trace.add_argument("--hours", type=float, default=1.0)
    trace.add_argument("--json", action="store_true",
                       help="machine-readable summary instead of text")
    trace.add_argument("--export", metavar="PATH",
                       help="write the flight recorder's spans as JSONL")
    trace.add_argument("--output", metavar="FILE",
                       help="write the report to FILE instead of stdout "
                            "('-' keeps stdout)")

    chaos = sub.add_parser(
        "chaos", help="deterministic fault injection + invariant verdict"
    )
    chaos.add_argument("--scenario", default="mixed",
                       help="preset name (see --list)")
    chaos.add_argument("--list", action="store_true",
                       help="list the scenario presets and exit")
    chaos.add_argument("--minutes", type=float, default=None,
                       help="fault-window length (default: per scenario)")
    chaos.add_argument("--devices", type=int, default=3)
    chaos.add_argument("--report", metavar="PATH",
                       help="write the full report as canonical JSON")
    chaos.add_argument("--json", action="store_true",
                       help="print the canonical JSON report instead of text")
    chaos.add_argument("--inject-bug", choices=list(_chaos.BUGS), default=None,
                       help="deliberately break the middleware to prove the "
                            "monitor catches it")

    scenarios = sub.add_parser(
        "scenarios", help="generative city-scale workload presets"
    )
    scenarios.add_argument("--preset", default="commuter-surge",
                           help="preset name (see --list)")
    scenarios.add_argument("--list", action="store_true",
                           help="list the scenario presets and exit")
    scenarios.add_argument("--scale", type=float, default=1.0,
                           help="shrink devices/hours proportionally "
                                "(0.25 = quarter size)")
    scenarios.add_argument("--shards", type=int, default=1,
                           help="partition across this many shard workers "
                                "(the report is byte-identical to --shards 1)")
    scenarios.add_argument("--in-process", action="store_true",
                           help="drive the shards in this process (no spawn "
                                "cost; byte-identical results)")
    scenarios.add_argument("--report", metavar="PATH",
                           help="write the canonical report JSON to PATH")
    scenarios.add_argument("--json", action="store_true",
                           help="print the canonical JSON report instead of "
                                "text")
    scenarios.add_argument("--telemetry", metavar="FILE",
                           help="sample every shard at each barrier and write "
                                "the timeline as deterministic JSONL")
    scenarios.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                           help="experiment seed (also accepted before the "
                                "subcommand)")

    bench = sub.add_parser(
        "bench", help="fleet-scaling kernel benchmark -> BENCH_kernel.json"
    )
    bench.add_argument("--fleets", default=None,
                       help="comma-separated fleet sizes (default 5,50,500; "
                            "falls back to $REPRO_BENCH_FLEETS or "
                            "$REPRO_BENCH_FLEET when the flag is absent)")
    bench.add_argument("--hours", type=float, default=1.0,
                       help="simulated hours per run")
    bench.add_argument("--repeats", type=int, default=3,
                       help="runs per fleet size; best-of is reported "
                            "(fleets > 50 devices always run once)")
    bench.add_argument("--out", metavar="PATH", default="BENCH_kernel.json",
                       help="artifact path (default BENCH_kernel.json; "
                            "empty string to skip writing)")
    bench.add_argument("--json", action="store_true",
                       help="print the canonical JSON artifact instead of text")
    bench.add_argument("--shards", type=int, default=None,
                       help="partition every plain fleet size across this "
                            "many shard worker processes (NxK tokens keep "
                            "their own counts)")

    fleet = sub.add_parser(
        "fleet", help="partitioned multiprocess run with a merged report"
    )
    fleet.add_argument("--devices", type=int, default=500,
                       help="fleet size (default 500)")
    fleet.add_argument("--shards", type=int, default=4,
                       help="worker process count (default 4; 1 = the "
                            "reference single-shard run)")
    fleet.add_argument("--hours", type=float, default=1.0,
                       help="simulated hours (default 1.0)")
    fleet.add_argument("--epoch-ms", type=float, default=None,
                       help="barrier window length; must not exceed the "
                            "minimum cross-shard latency (the default)")
    fleet.add_argument("--latency-ms", type=float, default=None,
                       help="switchboard base stanza latency (default 80; "
                            "simulated physics — changing it changes the "
                            "schedule itself, identically for solo and "
                            "sharded runs; must be > 0)")
    fleet.add_argument("--in-process", action="store_true",
                       help="drive the shards in this process behind the "
                            "same barrier protocol (no spawn cost; "
                            "byte-identical results)")
    fleet.add_argument("--report", metavar="PATH",
                       help="write the merged fleet report as canonical JSON")
    fleet.add_argument("--json", action="store_true",
                       help="print the merged report JSON instead of text")
    fleet.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                       help="experiment seed (also accepted before the "
                            "subcommand)")
    fleet.add_argument("--telemetry", metavar="FILE",
                       help="sample every shard at each barrier and write "
                            "the timeline as deterministic JSONL (same-seed "
                            "runs are byte-identical)")
    fleet.add_argument("--prom", metavar="FILE",
                       help="write a Prometheus text-exposition snapshot of "
                            "the final barrier (implies telemetry)")
    fleet.add_argument("--live", action="store_true",
                       help="show the repro-top live progress view on "
                            "stderr while the fleet runs")

    top = sub.add_parser(
        "top", help="live fleet progress view (refreshed at each barrier)"
    )
    top.add_argument("--devices", type=int, default=500,
                     help="fleet size (default 500)")
    top.add_argument("--shards", type=int, default=4,
                     help="worker process count (default 4)")
    top.add_argument("--hours", type=float, default=1.0,
                     help="simulated hours (default 1.0)")
    top.add_argument("--epoch-ms", type=float, default=None,
                     help="barrier window length (default: max safe)")
    top.add_argument("--latency-ms", type=float, default=None,
                     help="switchboard base stanza latency (default 80; "
                          "simulated physics, not a tuning knob)")
    top.add_argument("--in-process", action="store_true",
                     help="drive the shards in this process (no spawn cost)")
    top.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                     help="experiment seed (also accepted before the "
                          "subcommand)")

    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_quickstart(args) -> int:
    from .apps import battery_monitor
    from .core.middleware import PogoSimulation

    sim = PogoSimulation(seed=args.seed)
    collector = sim.add_collector("cli")
    devices = [sim.add_device(with_email_app=True) for _ in range(args.devices)]
    sim.start()
    sim.assign(collector, devices)
    context = collector.node.deploy(
        battery_monitor.build_experiment(), [d.jid for d in devices]
    )
    sim.run(hours=args.hours)
    readings = context.scripts["collect"].namespace["readings"]
    print(f"{len(readings)} readings from {args.devices} devices in {args.hours} h")
    for device in devices:
        print(
            f"  {device.jid}: {device.node.payloads_sent} payloads / "
            f"{device.node.batches_sent} batches, {device.phone.energy_joules:.1f} J"
        )
    return 0


def cmd_localization(args) -> int:
    from .apps import localization
    from .core.middleware import PogoSimulation
    from .core.services import GeolocationBridge
    from .world.geolocation import GeolocationService

    sim = PogoSimulation(seed=args.seed)
    collector = sim.add_collector("cli")
    device = sim.add_device(world_days=args.days, with_email_app=True)
    service = GeolocationService()
    for group in device.user_world.places.values():
        for place in group:
            service.register_all(place.access_points)
    collector.node.add_service(GeolocationBridge(service))
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(localization.build_experiment(), [device.jid])
    sim.run(days=args.days)
    database = context.scripts["collect"].namespace["database"]
    print(f"{len(database)} dwell sessions over {args.days} days:")
    for cluster in database:
        hours = cluster["entry"] / 3_600_000.0
        print(
            f"  day {int(hours // 24)} {hours % 24:5.2f}h  "
            f"{cluster['samples']:4d} scans  place={'yes' if cluster['place'] else 'no'}"
        )
    return 0


def cmd_roguefinder(args) -> int:
    from .apps import roguefinder
    from .core.middleware import PogoSimulation
    from .world.geometry import to_latlon

    sim = PogoSimulation(seed=args.seed)
    collector = sim.add_collector("cli")
    device = sim.add_device(world_days=max(1, int(args.hours // 24) + 1), with_email_app=True)
    office = device.user_world.places["office"][0]
    polygon = [
        to_latlon(office.center.offset(dx, dy))
        for dx, dy in ((-150, -150), (150, -150), (150, 150), (-150, 150))
    ]
    sim.start()
    sim.assign(collector, [device])
    context = collector.node.deploy(roguefinder.build_experiment(polygon), [device.jid])
    sim.run(hours=args.hours)
    scans = context.scripts["collect"].namespace["scans"]
    sensor = device.node.sensor_manager.sensors["wifi-scan"]
    print(f"{len(scans)} geofenced scans reported in {args.hours} h")
    print(f"scanner performed {sensor.completed_scans} scans (duty-cycled by location)")
    return 0


def cmd_tail_trace(args) -> int:
    from .analysis.energy import segment_tail_from_state_trace
    from .analysis.plotting import render_series
    from .core.middleware import PogoSimulation
    from .device.power import PowerMeter
    from .device.radio import KPN

    sim = PogoSimulation(seed=args.seed, carrier=KPN, record_trace=True)
    device = sim.add_device(with_email_app=True, simulate_paging=True)
    meter = PowerMeter(sim.kernel, device.phone.rail, interval_ms=50.0)
    meter.start()
    sim.start()
    sim.run(duration_ms=7 * MINUTE)
    seg = segment_tail_from_state_trace(
        sim.trace, device.phone.modem.name, KPN, after_ms=4 * MINUTE
    )
    if seg is None:
        print("no transmission found", file=sys.stderr)
        return 1
    print(
        f"tail b->d {seg.tail_duration_ms/1000:.1f} s, {seg.tail_energy_j:.2f} J "
        f"(transfer itself {seg.transfer_energy_j:.2f} J)\n"
    )
    print(
        render_series(
            meter.samples,
            start_ms=seg.a_ramp_start_ms - 20_000.0,
            end_ms=seg.d_fach_end_ms + 20_000.0,
            height=8,
            annotations=[
                (seg.a_ramp_start_ms, "a"),
                (seg.b_transfer_end_ms, "b"),
                (seg.c_dch_end_ms, "c"),
                (seg.d_fach_end_ms, "d"),
            ],
        )
    )
    return 0


def cmd_table3(args) -> int:
    from .analysis.energy import percent_increase
    from .apps import battery_monitor
    from .core.middleware import PogoSimulation
    from .device.radio import CARRIERS

    def run_hour(carrier, with_pogo):
        sim = PogoSimulation(seed=args.seed, carrier=carrier)
        collector = sim.add_collector("cli")
        device = sim.add_device(with_email_app=True)
        sim.start()
        sim.assign(collector, [device])
        if with_pogo:
            collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
        sim.run(duration_ms=10 * MINUTE)
        device.phone.rail.reset_energy()
        sim.run(hours=1)
        return device.phone.rail.energy_joules

    print(f"{'Carrier':<10} {'Without':>10} {'With':>10} {'Increase':>9}")
    for name, carrier in CARRIERS.items():
        base = run_hour(carrier, False)
        pogo = run_hour(carrier, True)
        print(
            f"{name:<10} {base:>8.2f} J {pogo:>8.2f} J "
            f"{percent_increase(base, pogo):>8.2f}%"
        )
    return 0


def cmd_table4(args) -> int:
    import dataclasses

    from .apps.deployment_study import DEFAULT_SESSIONS, format_table, run_session

    results = []
    for index, spec in enumerate(DEFAULT_SESSIONS):
        if args.scale < 0.999:
            spec = dataclasses.replace(spec, days=max(3, round(spec.days * args.scale)))
        result = run_session(spec, seed=args.seed + index)
        results.append(result)
        print(result.row(), flush=True)
    print()
    print(format_table(results))
    return 0


def cmd_anonytl(args) -> int:
    from .anonytl import REPORT_CHANNEL, deploy_task, parse_task
    from .core.middleware import PogoSimulation

    with open(args.task_file, "r", encoding="utf-8") as handle:
        text = handle.read()
    task = parse_task(text)
    print(f"task {task.task_id}: {len(task.reports)} report statement(s)")

    sim = PogoSimulation(seed=args.seed)
    collector = sim.add_collector("cli")
    device = sim.add_device(world_days=max(1, int(args.hours // 24) + 1), with_email_app=True)
    sim.start()
    context, accepted = deploy_task(collector.node, sim.admin, task)
    print(f"deployed to: {accepted}")
    sim.run(hours=args.hours)
    reports = context.scripts["collect"].namespace["reports"]
    print(f"{len(reports)} reports on '{REPORT_CHANNEL}' after {args.hours} h")
    return 0


def cmd_power_report(args) -> int:
    from .apps import battery_monitor, localization
    from .core.middleware import PogoSimulation
    from .core.power_model import ScriptPowerModel
    from .core.services import GeolocationBridge
    from .world.geolocation import GeolocationService

    sim = PogoSimulation(seed=args.seed)
    collector = sim.add_collector("cli")
    device = sim.add_device(world_days=1, with_email_app=True)
    service = GeolocationService()
    for group in device.user_world.places.values():
        for place in group:
            service.register_all(place.access_points)
    collector.node.add_service(GeolocationBridge(service))
    sim.start()
    sim.assign(collector, [device])
    collector.node.deploy(localization.build_experiment(), [device.jid])
    collector.node.deploy(battery_monitor.build_experiment(), [device.jid])
    sim.run(hours=args.hours)
    print(ScriptPowerModel(device.node).report())
    return 0


def cmd_metrics(args) -> int:
    from .apps import battery_monitor
    from .core.middleware import PogoSimulation

    sim = PogoSimulation(seed=args.seed)
    collector = sim.add_collector("cli")
    devices = [sim.add_device(with_email_app=True) for _ in range(args.devices)]
    sim.start()
    sim.assign(collector, devices)
    collector.node.deploy(battery_monitor.build_experiment(), [d.jid for d in devices])
    sim.run(hours=args.hours)
    from .analysis.export import write_text

    if args.json:
        import json

        snapshot = sim.kernel.metrics.snapshot()
        if not args.all:
            snapshot = {
                name: value
                for name, value in snapshot.items()
                if not (isinstance(value, (int, float)) and value == 0)
                and not (isinstance(value, dict) and not value.get("count"))
            }
        text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    else:
        text = (
            f"metrics after {args.hours} h with {args.devices} device(s) "
            f"(seed {args.seed}):\n"
            + sim.kernel.metrics.report(include_zero=args.all)
            + "\n"
        )
    write_text(args.output, text)
    return 0


def cmd_trace(args) -> int:
    """A seeded fleet run viewed through the message lifecycle tracer."""
    import json

    from .apps import battery_monitor
    from .core.middleware import PogoSimulation
    from .sim.spans import render_span_tree

    sim = PogoSimulation(seed=args.seed)
    collector = sim.add_collector("cli")
    devices = [sim.add_device(with_email_app=True) for _ in range(args.devices)]
    sim.start()
    sim.assign(collector, devices)
    collector.node.deploy(battery_monitor.build_experiment(), [d.jid for d in devices])
    sim.run(hours=args.hours)

    spans = sim.kernel.spans
    ledgers = [d.node.energy for d in devices]
    for ledger in ledgers:
        ledger.finalize()

    # Fleet-wide energy attribution totals (the Table 3 accounting, summed
    # per message instead of per hour).
    attributed = sum(ledger.attributed_j for ledger in ledgers)
    control = sum(ledger.control_j for ledger in ledgers)
    unattributed = sum(ledger.unattributed_j for ledger in ledgers)
    idle = sum(ledger.idle_j for ledger in ledgers)
    active = sum(ledger.active_j for ledger in ledgers)
    messages = sum(ledger.messages_attributed for ledger in ledgers)
    piggybacked = sum(ledger.piggybacked_messages for ledger in ledgers)
    delta = (
        abs((attributed + control + unattributed) - active) / active if active else 0.0
    )

    from .analysis.export import write_text

    if args.export:
        from .analysis.export import spans_to_jsonl

        spans_to_jsonl(spans, args.export)

    if args.json:
        text = json.dumps(
            {
                "devices": args.devices,
                "hours": args.hours,
                "seed": args.seed,
                "spans": {
                    "recorded": spans.recorded,
                    "in_ring": len(spans),
                    "dropped": spans.dropped,
                },
                "hops": spans.latency_snapshot(),
                "energy": {
                    "attributed_j": round(attributed, 6),
                    "control_j": round(control, 6),
                    "unattributed_j": round(unattributed, 6),
                    "idle_j": round(idle, 6),
                    "active_j": round(active, 6),
                    "total_j": round(active + idle, 6),
                    "messages_attributed": messages,
                    "piggybacked_messages": piggybacked,
                    "reconciliation_delta": round(delta, 9),
                },
            },
            indent=2,
            sort_keys=True,
        ) + "\n"
        write_text(args.output, text)
        return 0

    lines = [
        f"trace of {args.hours} h with {args.devices} device(s) (seed {args.seed}): "
        f"{spans.recorded:,} spans recorded, {len(spans):,} in flight recorder, "
        f"{spans.dropped:,} dropped",
        "",
        "per-hop latency:",
        spans.latency_table(),
    ]

    # One complete lifecycle, as a causal tree: pick the last message that
    # reached the collector and is still fully inside the ring.
    delivered = spans.spans(hop="deliver.collector")
    if delivered:
        lines.append("")
        lines.append(render_span_tree(spans, delivered[-1].trace_id))

    lines.extend([
        "",
        "per-message energy attribution (3G modem, fleet total):",
        f"  messages attributed     {messages:>12,} ({piggybacked:,} piggybacked)",
        f"  attributed to messages  {attributed:>12.2f} J",
        f"  control/ack overhead    {control:>12.2f} J",
        f"  other apps' radio use   {unattributed:>12.2f} J",
        f"  radio-active total      {active:>12.2f} J",
        f"  idle baseline           {idle:>12.2f} J",
        f"  modem total             {active + idle:>12.2f} J",
        f"  reconciliation delta    {delta * 100:>11.4f} %  "
        f"(attributed+control+other vs active)",
    ])
    write_text(args.output, "\n".join(lines) + "\n")
    return 0


def cmd_chaos(args) -> int:
    if args.list:
        for name in sorted(_chaos.SCENARIOS):
            scenario = _chaos.SCENARIOS[name]
            print(f"{name:<16} {scenario.default_minutes:>4.0f} min  {scenario.description}")
        return 0
    report = _chaos.run_scenario(
        args.scenario,
        seed=args.seed,
        minutes=args.minutes,
        devices=args.devices,
        inject_bug=args.inject_bug,
    )
    if args.report:
        from .analysis.export import write_text

        write_text(args.report, _chaos.report_json(report))
    if args.json:
        print(_chaos.report_json(report), end="")
    else:
        print(_chaos.render_report(report))
    return 1 if report["violation_count"] else 0


def cmd_scenarios(args) -> int:
    import dataclasses

    from . import scenarios as _scenarios
    from .fleet import FleetError, WorkerCrashed

    if args.list:
        for name in _scenarios.preset_names():
            spec = _scenarios.build_preset(name)
            tag = " (long)" if name in _scenarios.LONG_PRESETS else ""
            print(
                f"{name:<20} {spec.devices:>4} devices {spec.hours:>6.1f} h  "
                f"{len(spec.surges)} surge(s), "
                f"{len(spec.campaigns)} campaign(s){tag}"
            )
        return 0
    try:
        spec = _scenarios.build_preset(args.preset, scale=args.scale)
    except KeyError:
        print(
            f"scenarios: unknown preset {args.preset!r} "
            f"(choose from {_scenarios.preset_names()})",
            file=sys.stderr,
        )
        return 2
    except ValueError as exc:
        print(f"scenarios: {exc}", file=sys.stderr)
        return 2
    if args.seed != spec.seed:
        spec = dataclasses.replace(spec, seed=args.seed)
        spec.validate()
    try:
        result = _scenarios.run_scenario_spec(
            spec,
            shards=args.shards,
            processes=(False if args.in_process else None),
            telemetry=bool(args.telemetry),
        )
    except WorkerCrashed as exc:
        print(_crash_line(exc), file=sys.stderr)
        return 1
    except FleetError as exc:
        print(f"scenarios: {exc}", file=sys.stderr)
        return 1
    from .analysis.export import write_text

    if args.telemetry:
        from .obs.timeline import timeline_to_jsonl

        write_text(args.telemetry, timeline_to_jsonl(result.fleet.timeline))
    if args.report:
        write_text(args.report, result.report_json)
    if args.json:
        print(result.report_json, end="")
    else:
        print(_scenarios.render_report(result.report))
        if args.telemetry:
            print(f"  telemetry timeline -> {args.telemetry}")
        if args.report:
            print(f"  canonical report -> {args.report}")
    return 1 if result.report["invariants"]["violation_count"] else 0


def cmd_bench(args) -> int:
    from . import bench as _bench

    return _bench.main(args)


def _crash_line(exc) -> str:
    """One line a human can act on, instead of a pasted traceback."""
    shard = exc.shard_id if exc.shard_id is not None else "?"
    where = ""
    if exc.barriers is not None:
        sim_ms = exc.barrier_ms if exc.barrier_ms is not None else 0.0
        where = f" at epoch {exc.barriers:,} (t={sim_ms:,.0f} ms sim)"
    cause = exc.cause or str(exc).splitlines()[0]
    return f"fleet: worker {shard} crashed{where}: {cause}"


def cmd_fleet(args) -> int:
    from .fleet import FleetError, WorkerCrashed, run_fleet

    observer = None
    live = None
    telemetry = bool(args.telemetry or args.prom)
    if args.live:
        from .obs.live import LiveView
        from .sim.kernel import HOUR

        live = LiveView(args.hours * HOUR, args.devices, args.shards)
        observer = live
    try:
        result = run_fleet(
            args.devices,
            args.shards,
            seed=args.seed,
            hours=args.hours,
            epoch_ms=args.epoch_ms,
            latency_ms=args.latency_ms,
            processes=not args.in_process,
            telemetry=telemetry,
            observer=observer,
        )
    except WorkerCrashed as exc:
        print(_crash_line(exc), file=sys.stderr)
        return 1
    except FleetError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 1
    finally:
        if live is not None:
            live.close()
    from .analysis.export import write_text

    if args.telemetry:
        from .obs.timeline import timeline_to_jsonl

        write_text(args.telemetry, timeline_to_jsonl(result.timeline))
    if args.prom:
        from .obs.prometheus import timeline_to_prometheus

        write_text(args.prom, timeline_to_prometheus(result.timeline))
    if args.report:
        write_text(args.report, result.report_json)
    if args.json:
        print(result.report_json, end="")
        return 0
    mode = "in-process" if args.in_process or args.shards == 1 else "spawned"
    print(
        f"{result.devices} devices across {result.shards} {mode} shard(s), "
        f"{args.hours} h simulated (seed {args.seed}):"
    )
    print(
        f"  {result.events:,} events in {result.wall_s:.2f} s wall "
        f"({result.events / result.wall_s:,.0f} ev/s aggregate)"
    )
    print(
        f"  {result.barriers:,} barriers at epoch {result.epoch_ms:.0f} ms, "
        f"{result.handoffs:,} cross-shard handoffs"
    )
    if result.handoff_bytes:
        print(
            f"  {result.handoff_bytes:,} handoff wire bytes on the worker "
            f"pipes ({result.handoff_bytes / max(1, result.handoffs):,.0f} "
            f"B/handoff framed+compressed)"
        )
    server = result.report["server"]
    print(
        f"  {server['stanzas_routed']:,} stanzas routed, "
        f"{server['stanzas_lost']:,} lost, "
        f"{server['stanzas_stored_offline']:,} stored offline"
    )
    if result.health is not None:
        from .obs.timeline import render_health

        print("  " + render_health(result.health).replace("\n", "\n  "))
    if args.telemetry:
        print(f"  telemetry timeline -> {args.telemetry}")
    if args.prom:
        print(f"  prometheus snapshot -> {args.prom}")
    if args.report:
        print(f"  merged report -> {args.report}")
    return 0


def cmd_top(args) -> int:
    """Run a fleet with the live view attached; print health at the end."""
    from .fleet import FleetError, WorkerCrashed, run_fleet
    from .obs.live import LiveView
    from .obs.timeline import render_health
    from .sim.kernel import HOUR

    live = LiveView(args.hours * HOUR, args.devices, args.shards)
    try:
        result = run_fleet(
            args.devices,
            args.shards,
            seed=args.seed,
            hours=args.hours,
            epoch_ms=args.epoch_ms,
            latency_ms=args.latency_ms,
            processes=not args.in_process,
            observer=live,
        )
    except WorkerCrashed as exc:
        print(_crash_line(exc), file=sys.stderr)
        return 1
    except FleetError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 1
    finally:
        live.close()
    print(
        f"{result.devices} devices / {result.shards} shard(s): "
        f"{result.events:,} events, {result.barriers:,} barriers, "
        f"{result.handoffs:,} handoffs in {result.wall_s:.2f} s wall"
    )
    print(render_health(result.health))
    return 0


_COMMANDS = {
    "quickstart": cmd_quickstart,
    "localization": cmd_localization,
    "roguefinder": cmd_roguefinder,
    "tail-trace": cmd_tail_trace,
    "table3": cmd_table3,
    "table4": cmd_table4,
    "anonytl": cmd_anonytl,
    "power-report": cmd_power_report,
    "metrics": cmd_metrics,
    "trace": cmd_trace,
    "chaos": cmd_chaos,
    "scenarios": cmd_scenarios,
    "bench": cmd_bench,
    "fleet": cmd_fleet,
    "top": cmd_top,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
