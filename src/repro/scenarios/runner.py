"""Run a scenario spec and emit the canonical byte-deterministic report.

The runner is a thin shell over the fleet coordinator: a compiled
scenario is just a root :class:`~repro.core.shard.ShardSpec` plus the
``"scenario"`` workload, so solo runs are the one-shard degenerate case
of the sharded path — which is exactly what makes sharded-vs-solo byte
parity a meaningful gate rather than a coincidence.

The canonical report (``schema: scenario/1``) contains only
placement-independent data: the merged fleet report, the summed world
statistics, the collector's order-insensitive campaign statistics, the
pure-function surge attendance rows, and the invariant verdict.  Two
seeded runs — any shard count, processes or not — must serialize it to
identical bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..fleet import run_fleet
from ..fleet.coordinator import FleetResult
from ..fleet.partition import device_jid
from ..sim.kernel import HOUR
from .spec import ScenarioSpec, attends, contends

SCHEMA = "scenario/1"


@dataclass
class ScenarioResult:
    """One scenario run: the spec, its canonical report, and the fleet."""

    spec: ScenarioSpec
    report: Dict[str, Any]
    report_json: str
    fleet: FleetResult


def _merge_extras(extras) -> Dict[str, Any]:
    world = {"places": 0, "segments": 0, "splices": 0, "city_places": 0}
    campaigns: Dict[str, Any] = {}
    violations: List[Dict[str, Any]] = []
    for extra in extras:
        if not extra:
            continue
        for key, value in extra["world"].items():
            if key == "city_places":
                # The city is shared state, not partitioned: same value
                # on every shard.
                world["city_places"] = max(world["city_places"], value)
            else:
                world[key] = world.get(key, 0) + value
        if extra["campaigns"]:
            # Collectors live on one shard; exactly one extra has these.
            campaigns = extra["campaigns"]
        violations.extend(extra["violations"])
    violations.sort(
        key=lambda v: (
            v.get("time_ms", 0.0), v.get("invariant", ""), v.get("subject", "")
        )
    )
    return {"world": world, "campaigns": campaigns, "violations": violations}


def scenario_report(spec: ScenarioSpec, result: FleetResult) -> Dict[str, Any]:
    """Assemble the canonical report for one finished run."""
    merged = _merge_extras(result.shard_extras)
    all_jids = [device_jid(i) for i in range(spec.devices)]
    surges = [
        {
            "name": surge.name,
            "venue": surge.venue,
            "attendees": sum(
                1 for jid in all_jids if attends(spec.seed, surge, jid)
            ),
            "contended": sum(
                1 for jid in all_jids if contends(spec.seed, surge, jid)
            ),
        }
        for surge in spec.surges
    ]
    return {
        "schema": SCHEMA,
        "scenario": spec.name,
        "seed": spec.seed,
        "devices": spec.devices,
        "hours": spec.hours,
        "carriers": list(spec.carriers),
        "campaigns": merged["campaigns"],
        "world": merged["world"],
        "surges": surges,
        "invariants": {
            "violation_count": len(merged["violations"]),
            "violations": merged["violations"],
        },
        "fleet": result.report,
    }


def report_json(report: Dict[str, Any]) -> str:
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def run_scenario_spec(
    spec: ScenarioSpec,
    shards: int = 1,
    *,
    processes: Optional[bool] = None,
    telemetry: bool = False,
    observer=None,
    epoch_ms: Optional[float] = None,
    barrier_timeout_s: float = 600.0,
) -> ScenarioResult:
    """Execute ``spec`` (solo or sharded) and build the canonical report."""
    spec.validate()
    if processes is None:
        processes = shards > 1
    root = spec.compile()
    result = run_fleet(
        spec=root,
        shards=shards,
        duration_ms=spec.hours * HOUR,
        workload="scenario",
        workload_ctx={"scenario": spec},
        processes=processes,
        telemetry=telemetry,
        observer=observer,
        epoch_ms=epoch_ms,
        barrier_timeout_s=barrier_timeout_s,
    )
    report = scenario_report(spec, result)
    return ScenarioResult(
        spec=spec,
        report=report,
        report_json=report_json(report),
        fleet=result,
    )


def render_report(report: Dict[str, Any]) -> str:
    """Human-oriented summary of one scenario report."""
    lines = [
        f"scenario {report['scenario']} (seed {report['seed']}): "
        f"{report['devices']} devices, {report['hours']} h, "
        f"carriers {', '.join(report['carriers'])}",
        f"  world: {report['world']['city_places']} city places, "
        f"{report['world']['places']} materialized, "
        f"{report['world']['splices']} surge splices",
    ]
    for surge in report["surges"]:
        lines.append(
            f"  surge {surge['name']} @ {surge['venue']}: "
            f"{surge['attendees']} attendees, {surge['contended']} contended"
        )
    for kind in sorted(report["campaigns"]):
        stats = report["campaigns"][kind]
        detail = ", ".join(f"{k}={stats[k]}" for k in sorted(stats))
        lines.append(f"  campaign {kind}: {detail}")
    fleet = report["fleet"]
    lines.append(
        f"  fleet: {fleet['events_executed']} events, "
        f"{fleet['server']['stanzas_routed']} stanzas routed"
    )
    count = report["invariants"]["violation_count"]
    lines.append(
        "  invariants: all held" if count == 0
        else f"  invariants: {count} VIOLATION(S)"
    )
    return "\n".join(lines)
