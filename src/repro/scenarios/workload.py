"""Turning a :class:`ScenarioSpec` into a running shard workload.

Split into three stages so every execution mode reuses the same code:

* :func:`attach_scenario` — build and wire the generative worlds, the
  surge radio contention, and the (pure-observer) invariant monitor onto
  an un-started shard;
* :func:`start_scenario` — start the shard and deploy the campaigns,
  solo or against the fleet coordinator's global roster;
* :func:`scenario_summary` — the order-insensitive per-shard summary the
  runner merges into the canonical scenario report.

:func:`setup_scenario` composes the first two behind the fleet worker's
``WORKLOADS`` registry; the chaos engine instead calls
:func:`attach_scenario`/:func:`start_scenario` directly (it owns its own
monitor).  This module deliberately never imports :mod:`repro.fleet`, so
the fleet worker can import it at module level without a cycle.

Determinism rules honoured throughout:

* world construction draws only from private ``derive_seed`` RNGs keyed
  by ``(scenario seed, jid)`` — placement-independent by construction;
* attendance/contention/targeting are pure functions of the spec;
* the monitor runs with ``check_interval_ms=None`` so attaching it adds
  zero kernel events (solo and sharded event counts must match);
* every summary statistic is a set/sum — no dependence on the order in
  which same-timestamp deliveries interleave at the collector.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ..anonytl.compiler import compile_task
from ..anonytl.tasks import (
    AcceptPredicate,
    AnonyTLTask,
    ReportSpec,
    accepted_jids,
)
from ..apps import battery_monitor, contact_tracing, noise_map
from ..chaos.invariants import InvariantMonitor
from ..core.shard import Shard
from ..sim.kernel import HOUR
from ..sim.randomness import derive_seed
from ..world.city import build_city, build_citizen_world
from ..world.disruptions import DATA_OFF, DATA_ON, DisruptionPlan
from .spec import CampaignSpec, ScenarioSpec, attends, carrier_for, contends


def _global_jids(spec: ScenarioSpec) -> List[str]:
    """Every device JID in global index order."""
    from ..fleet.partition import device_jid

    return [device_jid(i) for i in range(spec.devices)]


def _world_days(spec: ScenarioSpec) -> int:
    import math

    return max(1, math.ceil(spec.hours / 24.0))


# ---------------------------------------------------------------------------
# Stage 1: attach worlds, contention and the monitor
# ---------------------------------------------------------------------------

def attach_scenario(
    shard: Shard,
    spec: ScenarioSpec,
    fleet_ctx: Optional[Dict[str, Any]] = None,
    monitor: bool = True,
) -> None:
    """Build the scenario's worlds onto ``shard``'s local devices."""
    spec.validate()
    city = build_city(spec.seed, spec.city_places, spec.venues)
    days = _world_days(spec)

    world_stats = {"places": 0, "segments": 0, "splices": 0}
    for jid in sorted(shard.devices):
        surges = [
            (surge, surge.start_h * HOUR, surge.end_h * HOUR)
            for surge in spec.surges
            if attends(spec.seed, surge, jid)
        ]
        world, stats = build_citizen_world(
            jid, spec.seed, city, days, surges=surges
        )
        shard.attach_world(jid, world)
        for key in world_stats:
            world_stats[key] += stats[key]
    world_stats["city_places"] = city.n_places

    # Crowd-congestion radio contention: attending-and-contending devices
    # have mobile data flap during the surge window.  Times come from a
    # per-(surge, jid) derived RNG so placement never changes them.
    for surge in spec.surges:
        start_ms, end_ms = surge.start_h * HOUR, surge.end_h * HOUR
        for jid in sorted(shard.devices):
            if not contends(spec.seed, surge, jid):
                continue
            rng = random.Random(
                derive_seed(spec.seed, f"scenario/contention/{surge.name}/{jid}")
            )
            times = sorted(
                rng.uniform(start_ms, end_ms) for _ in range(2 * surge.flaps)
            )
            plan = DisruptionPlan()
            for k in range(surge.flaps):
                plan.add(times[2 * k], DATA_OFF).add(times[2 * k + 1], DATA_ON)
            plan.schedule(shard.kernel, shard.devices[jid].phone)

    if monitor:
        # Pure observer: no periodic check event, so the kernel's event
        # count — part of the canonical report — is untouched.
        shard.extras["invariant_monitor"] = InvariantMonitor(
            shard, check_interval_ms=None
        )
    shard.extras["scenario_state"] = {"spec": spec, "world": world_stats}


# ---------------------------------------------------------------------------
# Stage 2: start and deploy campaigns
# ---------------------------------------------------------------------------

def _campaign_experiment(campaign: CampaignSpec, spec: ScenarioSpec, index: int):
    if campaign.kind == "battery-monitor":
        return battery_monitor.build_experiment()
    if campaign.kind == "noise-map":
        return noise_map.build_experiment()
    if campaign.kind == "contact-tracing":
        return contact_tracing.build_experiment()
    if campaign.kind == "anonytl":
        requirements = ()
        if campaign.carrier is not None:
            requirements = (("carrier", campaign.carrier),)
        task = AnonyTLTask(
            task_id=9000 + index,
            expires=None,
            accept=AcceptPredicate(requirements) if requirements else None,
            reports=(ReportSpec(fields=("location",), interval_ms=300_000.0),),
        )
        return compile_task(task)
    raise ValueError(f"unknown campaign kind {campaign.kind!r}")


def campaign_targets(
    campaign: CampaignSpec, spec: ScenarioSpec, all_jids: List[str]
) -> List[str]:
    """The global target set of one campaign — pure function of the spec."""
    indexed = list(enumerate(all_jids))
    if campaign.subset == "even":
        indexed = [(i, j) for i, j in indexed if i % 2 == 0]
    elif campaign.subset == "odd":
        indexed = [(i, j) for i, j in indexed if i % 2 == 1]
    if campaign.kind == "anonytl" and campaign.carrier is not None:
        attributes = {
            jid: {"carrier": carrier_for(spec, i)} for i, jid in indexed
        }
        task = AnonyTLTask(
            task_id=0,
            expires=None,
            accept=AcceptPredicate((("carrier", campaign.carrier),)),
            reports=(ReportSpec(fields=("location",), interval_ms=300_000.0),),
        )
        return accepted_jids(task, attributes)
    return sorted(jid for _, jid in indexed)


def start_scenario(
    shard: Shard,
    spec: ScenarioSpec,
    fleet_ctx: Optional[Dict[str, Any]] = None,
) -> None:
    """Start the shard and deploy every campaign over its target set.

    Mirrors the battery-monitor fleet contract: the collector's shard
    assigns local devices and deploys to the *global* roster, with
    one-sided roster edges for remote JIDs on both sides so presence
    crosses the boundary exactly as the solo run delivers it locally.
    """
    shard.start()
    all_jids = _global_jids(spec)
    for index, jid in enumerate(all_jids):
        if jid in shard.devices:
            record = shard.admin.devices.get(jid)
            if record is not None:
                record.attributes["carrier"] = carrier_for(spec, index)

    local_jids = sorted(shard.devices)
    names = sorted(shard.collectors)
    if fleet_ctx is None:
        collector_jid = names[0] if names else None
        remote_jids: List[str] = []
    else:
        if not fleet_ctx["collector_jids"]:
            return
        collector_jid = fleet_ctx["collector_jids"][0]
        remote_jids = [j for j in sorted(all_jids) if j not in shard.devices]

    if names:
        collector = shard.collectors[names[0]]
        shard.assign(collector, [shard.devices[jid] for jid in local_jids])
        for jid in remote_jids:
            shard.server.add_remote_roster(collector_jid, jid)
        for index, campaign in enumerate(spec.campaigns):
            experiment = _campaign_experiment(campaign, spec, index)
            targets = campaign_targets(campaign, spec, all_jids)
            collector.node.deploy(experiment, targets)
    elif collector_jid is not None:
        for jid in local_jids:
            shard.server.add_remote_roster(jid, collector_jid)


def setup_scenario(shard: Shard, fleet_ctx: Optional[Dict[str, Any]] = None) -> None:
    """The fleet worker's ``"scenario"`` workload entry point.

    The spec rides in ``fleet_ctx["scenario"]`` (the coordinator passes
    it through ``workload_ctx``, so it crosses the spawn pipe as data).
    """
    if fleet_ctx is None or "scenario" not in fleet_ctx:
        raise ValueError("scenario workload needs fleet_ctx['scenario']")
    spec = fleet_ctx["scenario"]
    attach_scenario(shard, spec, fleet_ctx)
    start_scenario(shard, spec, fleet_ctx)


class _MidEpochBomb:
    """Module-level callable (picklable) that detonates mid-epoch."""

    def __call__(self) -> None:
        raise RuntimeError("scenario mid-epoch crash canary")


def setup_scenario_crash(
    shard: Shard, fleet_ctx: Optional[Dict[str, Any]] = None
) -> None:
    """Scenario workload that crashes one worker mid-epoch (test-only).

    Device-1 always lands on shard 0 under round-robin partitioning, so
    the crash site is deterministic regardless of shard count.
    """
    setup_scenario(shard, fleet_ctx)
    from ..fleet.partition import device_jid

    if device_jid(0) in shard.devices:
        shard.kernel.schedule_at(1_000.0, _MidEpochBomb())


# ---------------------------------------------------------------------------
# Stage 3: the order-insensitive per-shard summary
# ---------------------------------------------------------------------------

def scenario_summary(shard: Shard) -> Optional[Dict[str, Any]]:
    """Summarize a scenario shard for the merged report.

    Returns ``None`` for non-scenario shards.  Every statistic is a count
    over sets/sums, so the value is independent of the interleaving of
    same-timestamp deliveries — the property that makes sharded runs
    byte-identical to solo ones.
    """
    state = shard.extras.get("scenario_state")
    if state is None:
        return None
    spec: ScenarioSpec = state["spec"]

    violations: List[Dict[str, Any]] = []
    monitor = shard.extras.get("invariant_monitor")
    if monitor is not None:
        # Scenario horizons cut through in-flight traffic by design, so
        # quiescence is not expected at finish time.
        monitor.finish(expect_quiesced=False)
        violations = monitor.violations_dicts()

    campaigns: Dict[str, Any] = {}
    for cjid in sorted(shard.collectors):
        node = shard.collectors[cjid].node
        for experiment_id, context in sorted(node.contexts.items()):
            host = context.scripts.get("collect")
            if host is None:
                continue
            ns = host.namespace
            if experiment_id == battery_monitor.EXPERIMENT_ID:
                campaigns["battery-monitor"] = {"readings": len(ns["readings"])}
            elif experiment_id == noise_map.EXPERIMENT_ID:
                campaigns["noise-map"] = {
                    "cells": len(ns["noise_map"]),
                    "digests": len(ns["digests"]),
                }
            elif experiment_id == contact_tracing.EXPERIMENT_ID:
                campaigns["contact-tracing"] = {
                    "beacons": ns["counters"]["beacons"],
                    "pairs": len(ns["contacts"]),
                    "anchors": len(ns["anchors"]),
                }
            elif experiment_id.startswith("anonytl-"):
                campaigns["anonytl"] = {"reports": len(ns["reports"])}

    return {
        "scenario": spec.name,
        "world": state["world"],
        "campaigns": campaigns,
        "violations": violations,
        "violation_count": len(violations),
    }
