"""The scenario engine: generative city-scale workloads.

Declarative :class:`ScenarioSpec` values compile to ordinary shard specs
and run solo, sharded, or under the chaos engine — always under the
invariant monitor, always emitting a canonical byte-deterministic report.

The runner names are resolved lazily (PEP 562): the spec/preset layer
must stay importable from :mod:`repro.fleet.worker` without importing
the fleet package back.
"""

from .presets import LONG_PRESETS, PRESETS, build_preset, preset_names
from .spec import (
    CAMPAIGN_KINDS,
    CampaignSpec,
    ScenarioError,
    ScenarioSpec,
    SurgeSpec,
    attends,
    carrier_for,
    contends,
)
from ..world.city import VenueSpec

_LAZY = {
    "ScenarioResult", "run_scenario_spec", "scenario_report",
    "report_json", "render_report",
}

__all__ = [
    "CAMPAIGN_KINDS",
    "CampaignSpec",
    "LONG_PRESETS",
    "PRESETS",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioSpec",
    "SurgeSpec",
    "VenueSpec",
    "attends",
    "build_preset",
    "carrier_for",
    "contends",
    "preset_names",
    "render_report",
    "report_json",
    "run_scenario_spec",
    "scenario_report",
]


def __getattr__(name):
    if name in _LAZY:
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
