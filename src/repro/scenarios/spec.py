"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the single source of truth for one generative
workload: the city, the crowd surges, the campaigns, the carriers, the
seed.  It is a frozen value object — two equal specs always produce
byte-identical runs — and it compiles to a plain
:class:`~repro.core.shard.ShardSpec`, which is what lets every preset run
solo, sharded via ``repro fleet``, and under the chaos engine unchanged.

Everything derived from a spec (who attends a surge, who suffers radio
contention, which devices a campaign targets) is a *pure function* of the
spec, computed via :func:`~repro.sim.randomness.derive_seed` so the answer
is independent of shard placement and evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..device.radio import CARRIERS
from ..sim.randomness import derive_seed

#: Campaign kinds the workload knows how to deploy.
CAMPAIGN_KINDS = ("battery-monitor", "noise-map", "contact-tracing", "anonytl")

#: Device subsets a campaign can target (by global device index).
SUBSETS = ("all", "even", "odd")


class ScenarioError(ValueError):
    """A scenario spec failed validation."""


@dataclass(frozen=True)
class SurgeSpec:
    """A crowd surge: many users converge on one venue at once.

    ``attendance`` is the probability any given device attends;
    ``contention`` the probability an attendee's mobile data flaps from
    crowd congestion (``flaps`` off/on pairs during the window).
    """

    name: str
    venue: str
    start_h: float
    end_h: float
    attendance: float = 0.5
    contention: float = 0.0
    flaps: int = 2


@dataclass(frozen=True)
class CampaignSpec:
    """One sensing campaign deployed over a subset of the fleet."""

    kind: str
    #: For "anonytl": restrict the task to devices on this carrier.
    carrier: Optional[str] = None
    subset: str = "all"


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, seeded, composable scenario description."""

    name: str
    seed: int = 7
    devices: int = 8
    hours: float = 2.0
    carriers: Tuple[str, ...] = ("KPN",)
    city_places: int = 64
    venues: Tuple = ()  # Tuple[VenueSpec, ...]
    surges: Tuple[SurgeSpec, ...] = ()
    campaigns: Tuple[CampaignSpec, ...] = (CampaignSpec("battery-monitor"),)
    collector: str = "scenario"
    telemetry: bool = False

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.name:
            raise ScenarioError("scenario needs a name")
        if self.devices < 1:
            raise ScenarioError("scenario needs at least one device")
        if self.hours <= 0:
            raise ScenarioError("scenario duration must be positive")
        if not self.carriers:
            raise ScenarioError("scenario needs at least one carrier")
        for carrier in self.carriers:
            if carrier not in CARRIERS:
                raise ScenarioError(f"unknown carrier {carrier!r}")
        if self.city_places < 1:
            raise ScenarioError("city needs at least one place")
        venue_names = [v.name for v in self.venues]
        if len(venue_names) != len(set(venue_names)):
            raise ScenarioError("venue names must be unique")
        surge_names = [s.name for s in self.surges]
        if len(surge_names) != len(set(surge_names)):
            raise ScenarioError("surge names must be unique")
        for surge in self.surges:
            if surge.venue not in venue_names:
                raise ScenarioError(
                    f"surge {surge.name!r} references unknown venue {surge.venue!r}"
                )
            if not 0.0 <= surge.start_h < surge.end_h <= self.hours:
                raise ScenarioError(
                    f"surge {surge.name!r} window must satisfy "
                    f"0 <= start < end <= hours"
                )
            if not 0.0 <= surge.attendance <= 1.0:
                raise ScenarioError(f"surge {surge.name!r} attendance out of [0, 1]")
            if not 0.0 <= surge.contention <= 1.0:
                raise ScenarioError(f"surge {surge.name!r} contention out of [0, 1]")
            if surge.flaps < 1:
                raise ScenarioError(f"surge {surge.name!r} needs at least one flap")
        kinds = [c.kind for c in self.campaigns]
        if len(kinds) != len(set(kinds)):
            raise ScenarioError("campaign kinds must be unique within a scenario")
        for campaign in self.campaigns:
            if campaign.kind not in CAMPAIGN_KINDS:
                raise ScenarioError(f"unknown campaign kind {campaign.kind!r}")
            if campaign.subset not in SUBSETS:
                raise ScenarioError(f"unknown campaign subset {campaign.subset!r}")
            if campaign.carrier is not None and campaign.carrier not in CARRIERS:
                raise ScenarioError(
                    f"campaign {campaign.kind!r} references unknown "
                    f"carrier {campaign.carrier!r}"
                )

    # ------------------------------------------------------------------
    def compile(self):
        """Compile to a root :class:`~repro.core.shard.ShardSpec`.

        The result is an ordinary shard spec: it can be run solo, handed
        to ``plan_fleet`` for sharding, or wrapped by the chaos engine.
        """
        from ..core.shard import DeviceSpec, ShardSpec
        from ..fleet.partition import device_jid

        self.validate()
        devices = tuple(
            DeviceSpec(
                with_email_app=False,
                jid=device_jid(i),
                carrier=carrier_for(self, i),
            )
            for i in range(self.devices)
        )
        return ShardSpec(
            shard_id=f"scenario-{self.name}",
            seed=self.seed,
            telemetry=self.telemetry,
            collectors=(self.collector,),
            devices=devices,
        )


# ----------------------------------------------------------------------
# Pure derivations: placement- and order-independent by construction.

def carrier_for(spec: ScenarioSpec, index: int) -> str:
    """The carrier of the device at global ``index`` (round-robin)."""
    return spec.carriers[index % len(spec.carriers)]


def _coin(seed: int, name: str, probability: float) -> bool:
    return derive_seed(seed, name) % 1_000_000 < probability * 1_000_000


def attends(seed: int, surge: SurgeSpec, jid: str) -> bool:
    """Whether ``jid`` attends ``surge`` — pure function of the seed."""
    return _coin(seed, f"scenario/attend/{surge.name}/{jid}", surge.attendance)


def contends(seed: int, surge: SurgeSpec, jid: str) -> bool:
    """Whether an attending ``jid`` suffers radio contention."""
    return attends(seed, surge, jid) and _coin(
        seed, f"scenario/contend/{surge.name}/{jid}", surge.contention
    )
