"""The named scenario catalog.

Each preset is a builder parameterized by ``scale`` so the same scenario
serves three audiences: full scale for day-length studies, ``--scale
0.25`` for CI conformance gates, and tiny scales for unit tests.  Scale
multiplies the device count and the duration; surge windows are defined
as *fractions* of the run so they scale along.

``metro-day`` is the city-scale flagship (10k+ places, multiple surges,
three concurrent campaigns); it is long by construction and therefore
gated behind ``REPRO_SCENARIO_LONG`` in the test suite.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..world.city import VenueSpec
from .spec import CampaignSpec, ScenarioSpec, SurgeSpec


def _devices(base: int, scale: float) -> int:
    return max(2, round(base * scale))


def _hours(base: float, scale: float) -> float:
    return max(1.0, round(base * scale, 3))


def _window(hours: float, start_frac: float, end_frac: float):
    return round(hours * start_frac, 3), round(hours * end_frac, 3)


def _commuter_surge(scale: float) -> ScenarioSpec:
    hours = _hours(11.0, scale)
    start_h, end_h = _window(hours, 0.62, 0.84)
    return ScenarioSpec(
        name="commuter-surge",
        devices=_devices(24, scale),
        hours=hours,
        carriers=("KPN", "T-Mobile"),
        city_places=160,
        venues=(
            VenueSpec(
                "business-park", category="office", radius_m=180.0,
                ap_count=32, has_wifi_internet=True,
            ),
        ),
        surges=(
            SurgeSpec(
                "morning-crush", "business-park", start_h, end_h,
                attendance=0.7, contention=0.5,
            ),
        ),
        campaigns=(
            CampaignSpec("battery-monitor"),
            CampaignSpec("anonytl", carrier="KPN"),
        ),
    )


def _stadium_evening(scale: float) -> ScenarioSpec:
    hours = _hours(23.0, scale)
    start_h, end_h = _window(hours, 0.80, 0.95)
    return ScenarioSpec(
        name="stadium-evening",
        devices=_devices(30, scale),
        hours=hours,
        carriers=("KPN", "Vodafone"),
        city_places=200,
        venues=(
            VenueSpec("stadium", category="stadium", radius_m=150.0, ap_count=40),
        ),
        surges=(
            SurgeSpec(
                "kickoff", "stadium", start_h, end_h,
                attendance=0.6, contention=0.5, flaps=3,
            ),
        ),
        campaigns=(
            CampaignSpec("noise-map"),
            CampaignSpec("battery-monitor"),
        ),
    )


def _contact_tracing(scale: float) -> ScenarioSpec:
    hours = _hours(12.0, scale)
    start_h, end_h = _window(hours, 0.45, 0.65)
    return ScenarioSpec(
        name="contact-tracing",
        devices=_devices(16, scale),
        hours=hours,
        carriers=("KPN",),
        city_places=96,
        venues=(
            VenueSpec("market-square", category="generic", radius_m=90.0, ap_count=20),
        ),
        surges=(
            SurgeSpec(
                "midday-market", "market-square", start_h, end_h,
                attendance=0.8, contention=0.25,
            ),
        ),
        campaigns=(
            CampaignSpec("contact-tracing"),
            CampaignSpec("battery-monitor", subset="even"),
        ),
    )


def _noise_map_campaign(scale: float) -> ScenarioSpec:
    hours = _hours(24.0, scale)
    start_h, end_h = _window(hours, 0.82, 0.96)
    return ScenarioSpec(
        name="noise-map-campaign",
        devices=_devices(20, scale),
        hours=hours,
        carriers=("KPN", "T-Mobile", "Vodafone"),
        city_places=240,
        venues=(
            VenueSpec("concert-hall", category="stadium", radius_m=80.0, ap_count=16),
        ),
        surges=(
            SurgeSpec(
                "evening-concert", "concert-hall", start_h, end_h,
                attendance=0.5, contention=0.3,
            ),
        ),
        campaigns=(CampaignSpec("noise-map"),),
    )


def _metro_day(scale: float) -> ScenarioSpec:
    hours = _hours(24.0, scale)
    rush_start, rush_end = _window(hours, 0.30, 0.40)
    match_start, match_end = _window(hours, 0.78, 0.93)
    return ScenarioSpec(
        name="metro-day",
        devices=_devices(60, scale),
        hours=hours,
        carriers=("KPN", "T-Mobile", "Vodafone"),
        city_places=12_000,
        venues=(
            VenueSpec(
                "central-station", category="generic", radius_m=200.0,
                ap_count=48, has_wifi_internet=True,
            ),
            VenueSpec("arena", category="stadium", radius_m=160.0, ap_count=40),
        ),
        surges=(
            SurgeSpec(
                "rush-hour", "central-station", rush_start, rush_end,
                attendance=0.65, contention=0.4, flaps=3,
            ),
            SurgeSpec(
                "evening-match", "arena", match_start, match_end,
                attendance=0.45, contention=0.5, flaps=3,
            ),
        ),
        campaigns=(
            CampaignSpec("battery-monitor"),
            CampaignSpec("noise-map", subset="odd"),
            CampaignSpec("contact-tracing"),
        ),
    )


#: Preset name → builder.  Ordering is the catalog's display order.
PRESETS: Dict[str, Callable[[float], ScenarioSpec]] = {
    "commuter-surge": _commuter_surge,
    "stadium-evening": _stadium_evening,
    "contact-tracing": _contact_tracing,
    "noise-map-campaign": _noise_map_campaign,
    "metro-day": _metro_day,
}

#: Presets too long for tier-1; the test suite runs them only when
#: ``REPRO_SCENARIO_LONG`` is set.
LONG_PRESETS = frozenset({"metro-day"})


def build_preset(name: str, scale: float = 1.0) -> ScenarioSpec:
    """Build the named preset at the given scale (validated)."""
    try:
        builder = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario preset {name!r}; known: {', '.join(PRESETS)}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    spec = builder(scale)
    spec.validate()
    return spec


def preset_names() -> List[str]:
    return list(PRESETS)
