"""AnonyTL: AnonySense's task DSL, compiled onto Pogo (the baseline)."""

from .parser import (
    AnonyTLSyntaxError,
    Attribute,
    Symbol,
    head_is,
    parse_forms,
    tokenize,
)
from .tasks import (
    ROGUEFINDER_TASK,
    AcceptPredicate,
    AnonyTLSemanticError,
    AnonyTLTask,
    PolygonCondition,
    ReportSpec,
    parse_task,
)
from .compiler import (
    REPORT_CHANNEL,
    compile_source,
    compile_task,
    deploy_task,
    generate_collector_script,
    generate_device_script,
)

__all__ = [
    "AnonyTLSyntaxError",
    "Attribute",
    "Symbol",
    "head_is",
    "parse_forms",
    "tokenize",
    "ROGUEFINDER_TASK",
    "AcceptPredicate",
    "AnonyTLSemanticError",
    "AnonyTLTask",
    "PolygonCondition",
    "ReportSpec",
    "parse_task",
    "REPORT_CHANNEL",
    "compile_source",
    "compile_task",
    "deploy_task",
    "generate_collector_script",
    "generate_device_script",
]
