"""Parser for AnonyTL, AnonySense's task language (the paper's baseline).

Section 5.1 compares Pogo's JavaScript model against AnonyTL, "a
domain-specific language ... which has a Lisp-like syntax" (Section 2).
Listing 1 reproduces the RogueFinder task:

    (Task 25043) (Expires 1196728453)
    (Accept (= @carrier 'professor'))
    (Report (location SSIDs) (Every 1 Minute)
      (In location
        (Polygon (Point 1 1) (Point 2 2)
        (Point 3 0))))

This module implements the s-expression layer: a tokenizer and a reader
producing nested Python lists of atoms.  Atoms:

* integers and floats (``1``, ``2.5``, ``-3``),
* quoted strings (``'professor'``),
* attribute references (``@carrier``) as :class:`Attribute`,
* bare symbols (``Report``, ``location``) as :class:`Symbol`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Union


class AnonyTLSyntaxError(ValueError):
    """Malformed task text."""


@dataclass(frozen=True)
class Symbol:
    """A bare identifier (case-sensitive, compared case-insensitively)."""

    name: str

    def matches(self, word: str) -> bool:
        return self.name.lower() == word.lower()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


@dataclass(frozen=True)
class Attribute:
    """An ``@attribute`` reference (device-side metadata)."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"@{self.name}"


SExpr = Union[int, float, str, Symbol, Attribute, List["SExpr"]]


def tokenize(text: str) -> List[str]:
    """Split task text into parenthesis and atom tokens."""
    tokens: List[str] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch in "()":
            tokens.append(ch)
            i += 1
        elif ch.isspace():
            i += 1
        elif ch == ";":
            # Comment to end of line (conventional in Lisp syntaxes).
            while i < length and text[i] != "\n":
                i += 1
        elif ch == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise AnonyTLSyntaxError(f"unterminated string at offset {i}")
            tokens.append(text[i : end + 1])
            i = end + 1
        else:
            start = i
            while i < length and not text[i].isspace() and text[i] not in "()';":
                i += 1
            tokens.append(text[start:i])
    return tokens


def _atom(token: str) -> SExpr:
    if token.startswith("'") and token.endswith("'"):
        return token[1:-1]
    if token.startswith("@"):
        if len(token) == 1:
            raise AnonyTLSyntaxError("empty attribute reference '@'")
        return Attribute(token[1:])
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return Symbol(token)


def parse_forms(text: str) -> List[SExpr]:
    """Parse task text into a list of top-level forms."""
    tokens = tokenize(text)
    position = 0

    def read() -> SExpr:
        nonlocal position
        if position >= len(tokens):
            raise AnonyTLSyntaxError("unexpected end of input")
        token = tokens[position]
        position += 1
        if token == "(":
            form: List[SExpr] = []
            while True:
                if position >= len(tokens):
                    raise AnonyTLSyntaxError("unbalanced '(': form never closed")
                if tokens[position] == ")":
                    position += 1
                    return form
                form.append(read())
        if token == ")":
            raise AnonyTLSyntaxError("unbalanced ')'")
        return _atom(token)

    forms: List[SExpr] = []
    while position < len(tokens):
        forms.append(read())
    return forms


def head_is(form: SExpr, word: str) -> bool:
    """Whether a form is a list starting with the given symbol."""
    return (
        isinstance(form, list)
        and bool(form)
        and isinstance(form[0], Symbol)
        and form[0].matches(word)
    )
