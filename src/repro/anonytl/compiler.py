"""Compile AnonyTL tasks into deployable Pogo experiments.

The paper positions AnonyTL and Pogo as alternative programming models
for the *same* class of system (Section 3.4: DSLs are "easy to execute
and sandbox ... accessible to researchers and programmers with little
domain experience", general languages give "total flexibility").  This
compiler makes the comparison concrete: a task written in Listing 1's
six lines becomes a generated Pogo device script plus a trivial
collector script.

The generated code preserves **AnonySense's semantics**, including the
limitation the paper's Section 5.1 discussion hinges on: the DSL has no
way to express turning a sensor *off* outside the report condition, so
the compiled script keeps every subscribed sensor sampling at the report
rate and merely suppresses reports when ``(In location ...)`` is false.
The handwritten Pogo RogueFinder (Listing 2) releases/renews its
subscription instead — which is worth real energy, and the
``benchmarks/test_comparison_anonytl.py`` benchmark measures exactly
that gap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.deployment import Experiment
from .tasks import AnonyTLTask, ReportSpec, parse_task

#: Channel compiled tasks publish their reports on.
REPORT_CHANNEL = "anonytl-reports"


def compile_source(text: str) -> Experiment:
    """Parse and compile task text in one step."""
    return compile_task(parse_task(text))


def compile_task(task: AnonyTLTask) -> Experiment:
    """Compile a parsed task into a Pogo :class:`Experiment`."""
    device_script = generate_device_script(task)
    collector_script = generate_collector_script(task)
    return Experiment(
        experiment_id=task.experiment_id,
        description=f"AnonyTL task {task.task_id}",
        device_scripts={"task": device_script},
        collector_scripts={"collect": collector_script},
    )


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def _polygon_literal(report: ReportSpec) -> str:
    assert report.condition is not None
    points = ", ".join(f"({x!r}, {y!r})" for x, y in report.condition.vertices)
    return f"[{points}]"


def _report_function(index: int, report: ReportSpec) -> str:
    """One evaluator per (Report ...) statement."""
    fields_payload = []
    if "location" in report.fields:
        fields_payload.append(
            "        report['location'] = {'lat': loc['lat'], 'lon': loc['lon']}"
        )
    if "ssids" in report.fields:
        fields_payload.append(
            "        scan = state.get('wifi-scan')\n"
            "        report['SSIDs'] = [ap['ssid'] for ap in scan['aps']] if scan else []"
        )
    payload = "\n".join(fields_payload)
    # Only statements that actually consume the location gate on it: an
    # (In location ...) condition, or a location report field.
    if report.condition is not None:
        condition = (
            f"    if loc is None or not point_in_polygon(loc['lon'], loc['lat'], POLYGON_{index}):\n"
            "        return"
        )
    elif "location" in report.fields:
        condition = "    if loc is None:\n        return"
    else:
        condition = "    pass"
    return f'''
def evaluate_{index}():
    setTimeout(evaluate_{index}, {report.interval_ms!r})
    loc = state.get('locations')
{condition}
    report = {{'task': TASK_ID, 'statement': {index}}}
    if True:
{payload if payload else "        pass"}
    publish('{REPORT_CHANNEL}', report)
'''


def generate_device_script(task: AnonyTLTask) -> str:
    """The device-side script for a task.

    AnonySense semantics: every sensor a report statement references is
    sampled at that statement's rate for the task's whole lifetime; the
    condition only gates *reporting*.
    """
    lines: List[str] = [
        f"setDescription('AnonyTL task {task.task_id}')",
        "",
        f"TASK_ID = {task.task_id}",
        "state = {}",
        "",
        # Ray casting, same as Listing 2's locationInPolygon.
        "def point_in_polygon(x, y, poly):",
        "    inside = False",
        "    count = len(poly)",
        "    for i in range(count):",
        "        ax, ay = poly[i]",
        "        bx, by = poly[(i + 1) % count]",
        "        if (ay > y) != (by > y):",
        "            if x < (bx - ax) * (y - ay) / (by - ay) + ax:",
        "                inside = not inside",
        "    return inside",
        "",
    ]

    # One subscription per referenced channel, at the fastest rate any
    # statement demands (the broker would coordinate anyway; compiled
    # code asks for what it needs).
    channel_rates: Dict[str, float] = {}
    needs_location = False
    for report in task.reports:
        for channel in report.channels:
            rate = channel_rates.get(channel)
            channel_rates[channel] = min(rate, report.interval_ms) if rate else report.interval_ms
        if report.condition is not None:
            needs_location = True
    if needs_location and "locations" not in channel_rates:
        fastest = min(r.interval_ms for r in task.reports)
        channel_rates["locations"] = fastest

    for channel, interval in sorted(channel_rates.items()):
        handler = channel.replace("-", "_")
        lines.append(f"def on_{handler}(msg):")
        lines.append(f"    state['{channel}'] = msg")
        lines.append(
            f"subscribe('{channel}', on_{handler}, {{'interval': {interval!r}}})"
        )
        lines.append("")

    for index, report in enumerate(task.reports):
        if report.condition is not None:
            lines.append(f"POLYGON_{index} = {_polygon_literal(report)}")
        lines.append(_report_function(index, report))

    lines.append("")
    lines.append("def start():")
    for index, report in enumerate(task.reports):
        lines.append(f"    setTimeout(evaluate_{index}, {report.interval_ms!r})")
    lines.append("")
    return "\n".join(lines)


def generate_collector_script(task: AnonyTLTask) -> str:
    """The collector side: store every report (AnonySense's report sink)."""
    return f'''setDescription('AnonyTL task {task.task_id} report sink')

reports = []


def handle(msg):
    reports.append(msg)
    logTo('task-{task.task_id}', json(msg))


subscribe('{REPORT_CHANNEL}', handle)
'''


# ---------------------------------------------------------------------------
# Deployment with Accept matching and expiry
# ---------------------------------------------------------------------------


def deploy_task(
    collector_node,
    admin,
    task: AnonyTLTask,
    researcher_jid: Optional[str] = None,
    now_unix_s: float = 0.0,
):
    """Deploy a task the AnonySense way.

    * devices are selected by the task's ``(Accept ...)`` predicate
      against the pool's device attributes (all devices when absent);
    * the researcher is assigned those devices (roster pairs);
    * if the task ``(Expires ...)``, a teardown is scheduled at expiry
      (relative to ``now_unix_s``, the testbed's notion of wall time at
      simulation start).

    Returns ``(context, accepted_jids)``.
    """
    researcher_jid = researcher_jid or collector_node.jid
    if task.accept is not None:
        accepted = admin.devices_matching(task.accept)
    else:
        accepted = sorted(admin.devices)
    new = [
        jid
        for jid in accepted
        if researcher_jid not in admin.devices[jid].assigned_to
    ]
    if new:
        admin.assign(researcher_jid, new)

    experiment = compile_task(task)
    context = collector_node.deploy(experiment, accepted)

    if task.expires is not None:
        delay_ms = max(0.0, (task.expires - now_unix_s) * 1000.0)
        collector_node.kernel.schedule(delay_ms, _expire, collector_node, task)
    return context, accepted


def _expire(collector_node, task: AnonyTLTask) -> None:
    context = collector_node.contexts.get(task.experiment_id)
    if context is not None:
        context.teardown()
        del collector_node.contexts[task.experiment_id]
