"""AnonyTL task model: the semantic layer above the s-expressions.

A task (AnonySense, MobiSys'08 — the paper's ref [8]) consists of:

* ``(Task <id>)`` — numeric task identifier;
* ``(Expires <unix-seconds>)`` — when devices stop running it;
* ``(Accept <predicate>)`` — which devices may accept the task, matched
  against device attributes (``@carrier``, ``@os``, ...);
* one or more ``(Report (<fields>) (Every <n> <unit>) [<condition>])`` —
  periodically report the listed sensor fields, optionally only when a
  condition such as ``(In location (Polygon ...))`` holds.

Supported report fields map onto Pogo sensor channels: ``location``
(the location sensor) and ``SSIDs`` (the Wi-Fi scanner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .parser import AnonyTLSyntaxError, Attribute, SExpr, Symbol, head_is, parse_forms

#: Report fields the compiler understands, mapped to sensor channels.
SUPPORTED_FIELDS = {"location": "locations", "ssids": "wifi-scan"}

_UNIT_MS = {
    "second": 1_000.0,
    "seconds": 1_000.0,
    "minute": 60_000.0,
    "minutes": 60_000.0,
    "hour": 3_600_000.0,
    "hours": 3_600_000.0,
}


class AnonyTLSemanticError(ValueError):
    """Structurally valid s-expressions that are not a valid task."""


@dataclass(frozen=True)
class AcceptPredicate:
    """``(= @attribute 'value')`` — and conjunctions thereof."""

    requirements: Tuple[Tuple[str, str], ...]

    def matches(self, attributes: Dict[str, str]) -> bool:
        return all(attributes.get(name) == value for name, value in self.requirements)


@dataclass(frozen=True)
class PolygonCondition:
    """``(In location (Polygon (Point x y) ...))``."""

    subject: str
    vertices: Tuple[Tuple[float, float], ...]


@dataclass(frozen=True)
class ReportSpec:
    """One ``(Report ...)`` statement."""

    fields: Tuple[str, ...]
    interval_ms: float
    condition: Optional[PolygonCondition] = None

    @property
    def channels(self) -> List[str]:
        return [SUPPORTED_FIELDS[f] for f in self.fields]


@dataclass(frozen=True)
class AnonyTLTask:
    """A fully parsed task."""

    task_id: int
    expires: Optional[int]
    accept: Optional[AcceptPredicate]
    reports: Tuple[ReportSpec, ...]

    @property
    def experiment_id(self) -> str:
        return f"anonytl-{self.task_id}"


# ---------------------------------------------------------------------------
# Form interpretation
# ---------------------------------------------------------------------------


def _expect_symbol(value: SExpr, context: str) -> str:
    if not isinstance(value, Symbol):
        raise AnonyTLSemanticError(f"expected a symbol in {context}, got {value!r}")
    return value.name


def _parse_accept(form: List[SExpr]) -> AcceptPredicate:
    # (Accept (= @carrier 'professor'))  or  (Accept (and (= ...) (= ...)))
    if len(form) != 2:
        raise AnonyTLSemanticError("(Accept ...) takes exactly one predicate")
    predicate = form[1]

    def parse_equals(p: SExpr) -> Tuple[str, str]:
        if (
            not isinstance(p, list)
            or len(p) != 3
            or not (isinstance(p[0], Symbol) and p[0].name == "=")
            or not isinstance(p[1], Attribute)
            or not isinstance(p[2], str)
        ):
            raise AnonyTLSemanticError(f"unsupported Accept predicate: {p!r}")
        return (p[1].name, p[2])

    if head_is(predicate, "and"):
        requirements = tuple(parse_equals(p) for p in predicate[1:])
    else:
        requirements = (parse_equals(predicate),)
    return AcceptPredicate(requirements)


def _parse_polygon(form: SExpr) -> Tuple[Tuple[float, float], ...]:
    if not head_is(form, "Polygon"):
        raise AnonyTLSemanticError(f"expected (Polygon ...), got {form!r}")
    vertices: List[Tuple[float, float]] = []
    for point in form[1:]:
        if not head_is(point, "Point") or len(point) != 3:
            raise AnonyTLSemanticError(f"expected (Point x y), got {point!r}")
        x, y = point[1], point[2]
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            raise AnonyTLSemanticError(f"non-numeric point: {point!r}")
        vertices.append((float(x), float(y)))
    if len(vertices) < 3:
        raise AnonyTLSemanticError("a Polygon needs at least 3 points")
    return tuple(vertices)


def _parse_condition(form: SExpr) -> PolygonCondition:
    # (In location (Polygon ...))
    if not head_is(form, "In") or len(form) != 3:
        raise AnonyTLSemanticError(f"unsupported condition: {form!r}")
    subject = _expect_symbol(form[1], "(In ...)").lower()
    if subject != "location":
        raise AnonyTLSemanticError(f"only (In location ...) is supported, got {subject}")
    return PolygonCondition(subject=subject, vertices=_parse_polygon(form[2]))


def _parse_report(form: List[SExpr]) -> ReportSpec:
    # (Report (<fields>) (Every n unit) [condition])
    if len(form) < 3:
        raise AnonyTLSemanticError("(Report ...) needs fields and a schedule")
    fields_form = form[1]
    if not isinstance(fields_form, list) or not fields_form:
        raise AnonyTLSemanticError("(Report ...) fields must be a non-empty list")
    fields = []
    for item in fields_form:
        name = _expect_symbol(item, "report fields").lower()
        if name not in SUPPORTED_FIELDS:
            raise AnonyTLSemanticError(
                f"unsupported report field {name!r}; supported: {sorted(SUPPORTED_FIELDS)}"
            )
        fields.append(name)

    every = form[2]
    if not head_is(every, "Every") or len(every) != 3:
        raise AnonyTLSemanticError(f"expected (Every n unit), got {every!r}")
    count = every[1]
    unit = _expect_symbol(every[2], "(Every ...)").lower()
    if not isinstance(count, (int, float)) or count <= 0:
        raise AnonyTLSemanticError(f"invalid Every count: {count!r}")
    if unit not in _UNIT_MS:
        raise AnonyTLSemanticError(f"unknown time unit: {unit!r}")
    interval_ms = float(count) * _UNIT_MS[unit]

    condition = None
    if len(form) >= 4:
        condition = _parse_condition(form[3])
    return ReportSpec(fields=tuple(fields), interval_ms=interval_ms, condition=condition)


def parse_task(text: str) -> AnonyTLTask:
    """Parse complete task text (Listing 1 format) into a task object."""
    forms = parse_forms(text)
    task_id: Optional[int] = None
    expires: Optional[int] = None
    accept: Optional[AcceptPredicate] = None
    reports: List[ReportSpec] = []
    for form in forms:
        if head_is(form, "Task"):
            if len(form) != 2 or not isinstance(form[1], int):
                raise AnonyTLSemanticError(f"bad (Task id): {form!r}")
            task_id = form[1]
        elif head_is(form, "Expires"):
            if len(form) != 2 or not isinstance(form[1], int):
                raise AnonyTLSemanticError(f"bad (Expires ts): {form!r}")
            expires = form[1]
        elif head_is(form, "Accept"):
            accept = _parse_accept(form)
        elif head_is(form, "Report"):
            reports.append(_parse_report(form))
        else:
            raise AnonyTLSemanticError(f"unknown top-level form: {form!r}")
    if task_id is None:
        raise AnonyTLSemanticError("task is missing (Task <id>)")
    if not reports:
        raise AnonyTLSemanticError("task has no (Report ...) statement")
    return AnonyTLTask(
        task_id=task_id, expires=expires, accept=accept, reports=tuple(reports)
    )


#: Listing 1 verbatim, as shipped in the paper.
ROGUEFINDER_TASK = """\
(Task 25043) (Expires 1196728453)
(Accept (= @carrier 'professor'))
(Report (location SSIDs) (Every 1 Minute)
  (In location
    (Polygon (Point 1 1) (Point 2 2)
    (Point 3 0))))
"""


def accepted_jids(
    task: AnonyTLTask, attributes_by_jid: Dict[str, Dict[str, str]]
) -> List[str]:
    """JIDs whose attributes satisfy the task's Accept predicate.

    Pure and order-insensitive (sorted output), so scenario workloads can
    compute the same target set on every shard independently.
    """
    return sorted(
        jid
        for jid, attributes in attributes_by_jid.items()
        if task.accept is None or task.accept.matches(attributes)
    )
