"""Fleet-scale benchmark harness: canonical, machine-comparable numbers.

``python -m repro bench --json`` measures the kernel hot path on the
Table 3 workload (battery telemetry, one collector) at several fleet
sizes and emits ``BENCH_kernel.json`` — one artifact that a CI job, a
future PR, or a laptop run can diff against the committed copy.

Two kinds of fields live in the artifact, and they are compared
differently:

* **Structural fields** — workload, seed, per-fleet *event counts* and
  the determinism hashes (SHA-256 of the seeded trace export and chaos
  reports).  These are machine-independent: regenerating the artifact
  anywhere must reproduce them byte-for-byte, and CI fails when they
  drift.
* **Timing fields** — wall seconds, events/s, simulated-vs-wall
  speedup.  These depend on the machine and are recorded for trend
  tracking, never gated on.

The measured configuration is the production shape (``spans=False``,
``metrics=False``): the point of the no-op fast lanes is that the
instrumentation planes cost nothing when off, so the benchmark measures
the middleware, not the tracer.  ``instrumented=True`` rows are
available for comparison via :func:`run_fleet`.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence

#: Artifact schema identifier; bump when the layout changes.
SCHEMA = "bench_kernel/1"

#: Fleet sizes measured by default (the ROADMAP's 5 -> 500 scaling axis,
#: extended with the partitioned 5000x4 row from the fleet coordinator).
#: An entry is either ``devices`` (single process) or ``(devices, shards)``.
DEFAULT_FLEETS = (5, 50, 500, (5000, 4))

#: The wall-clock-gated large row: measured only when the 5000-device row
#: projects it to finish inside LARGE_BUDGET_S (or REPRO_BENCH_LARGE=1
#: forces it) — a laptop should never stall on `repro bench`.
LARGE_FLEET = (50_000, 8)
LARGE_BUDGET_S = 300.0

#: Benchmark seed.  Distinct from the determinism seed (7) so the two
#: planes of the artifact cannot be confused.
BENCH_SEED = 9


def _build_fleet(seed: int, devices: int, spans: bool, metrics: bool):
    from .apps import battery_monitor
    from .core.middleware import PogoSimulation

    sim = PogoSimulation(seed=seed, spans=spans, metrics=metrics)
    collector = sim.add_collector("bench")
    fleet = [sim.add_device(with_email_app=True) for _ in range(devices)]
    sim.start()
    sim.assign(collector, fleet)
    collector.node.deploy(
        battery_monitor.build_experiment(), [d.jid for d in fleet]
    )
    return sim


def run_fleet(
    devices: int,
    seed: int = BENCH_SEED,
    hours: float = 1.0,
    repeats: int = 1,
    spans: bool = False,
    metrics: bool = False,
    shards: int = 1,
) -> Dict[str, Any]:
    """Measure one fleet size; returns a result row.

    ``wall_s`` is the best (minimum) of ``repeats`` full builds+runs —
    the standard robust estimator for a noisy-neighbour CI box; the mean
    rides along for context.  Event counts are asserted identical across
    repeats: a benchmark that perturbs the simulation is lying.

    With ``shards > 1`` the run goes through the fleet coordinator
    (spawned worker processes, epoch-barrier handoff); ``events`` is then
    the merged fleet total and ``events_per_s`` the aggregate rate.
    """
    walls: List[float] = []
    crits: List[float] = []
    events: Optional[int] = None
    fleet_stats: Optional[Dict[str, Any]] = None
    sim_ms = hours * 3_600_000.0
    for _ in range(max(1, repeats)):
        if shards > 1:
            from .fleet import run_fleet as run_partitioned

            t0 = time.perf_counter()
            result = run_partitioned(
                devices, shards, seed=seed, hours=hours,
                collector="bench", spans=spans, metrics=metrics,
            )
            walls.append(time.perf_counter() - t0)
            crits.append(result.critical_path_s)
            executed = result.events
            # Barrier and handoff counts are structural (same on every
            # machine, gated like event counts); wire bytes depend on
            # the zlib build and stay timing-plane.
            stats = {
                "barriers": result.barriers,
                "handoffs": result.handoffs,
                "handoff_bytes": result.handoff_bytes,
            }
            if fleet_stats is None:
                fleet_stats = stats
            elif (fleet_stats["barriers"], fleet_stats["handoffs"]) != (
                stats["barriers"], stats["handoffs"]
            ):
                raise AssertionError(
                    f"non-deterministic benchmark: barrier/handoff counts "
                    f"drifted across repeats ({fleet_stats} vs {stats})"
                )
        else:
            t0 = time.perf_counter()
            sim = _build_fleet(seed, devices, spans, metrics)
            sim.run(hours=hours)
            walls.append(time.perf_counter() - t0)
            executed = sim.kernel.events_executed
        if events is None:
            events = executed
        elif events != executed:
            raise AssertionError(
                f"non-deterministic benchmark: {events} vs {executed} events"
            )
    best = min(walls)
    row = {
        "devices": devices,
        "shards": shards,
        "events": events,
        "wall_s": round(best, 6),
        "wall_s_mean": round(sum(walls) / len(walls), 6),
        "events_per_s": round(events / best, 1),
        "speedup": round((sim_ms / 1000.0) / best, 1),
    }
    if crits:
        # The busiest worker's advance time: with one core per worker the
        # fleet finishes in this wall time, so events/critical-path is the
        # aggregate rate the shard layout supports (``events_per_s`` above
        # is what *this* machine's core count delivered).
        crit = min(crits)
        row["critical_path_s"] = round(crit, 6)
        row["events_per_s_parallel"] = parallel_rate(executed, crit)
        # Coordinator cost: everything that is not shard work — spawn,
        # barrier round-trips, codec, merge.  Timing-plane only.
        row["barrier_overhead_s"] = round(max(0.0, best - crit), 6)
    if fleet_stats is not None:
        row.update(fleet_stats)
    return row


#: Below this critical path (in seconds) a parallel rate is noise, not a
#: measurement — ``process_time`` resolution on a near-empty window.
MIN_CRITICAL_PATH_S = 1e-6


def parallel_rate(events: int, critical_path_s: float) -> Optional[float]:
    """``events / critical_path_s``, or ``None`` when the denominator is
    zero or too small to mean anything.

    A degenerate run (zero devices, a sub-resolution window) used to
    divide by ~0 and report an absurd or infinite rate; ``null`` in the
    JSON artifact is honest and keeps downstream tooling from plotting
    garbage.
    """
    if critical_path_s is None or critical_path_s < MIN_CRITICAL_PATH_S:
        return None
    return round(events / critical_path_s, 1)


# ---------------------------------------------------------------------------
# Determinism plane
# ---------------------------------------------------------------------------

def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def determinism_hashes(seed: int = 7) -> Dict[str, str]:
    """SHA-256 of the seeded trace export and chaos reports.

    These are the same artifacts pinned byte-for-byte in
    ``tests/golden/``; hashing them into the benchmark artifact makes
    "the fast kernel changed behaviour" visible in the same diff as
    "the fast kernel changed speed".
    """
    from . import chaos as _chaos

    hashes: Dict[str, str] = {}
    for name, scenario in (("chaos_flaky3g", "flaky-3g"), ("chaos_reorder", "reorder-storm")):
        report = _chaos.run_scenario(scenario, seed=seed)
        hashes[f"{name}_seed{seed}"] = _sha256(_chaos.report_json(report).encode("utf-8"))

    from .analysis.export import spans_to_jsonl
    from .apps import battery_monitor
    from .core.middleware import PogoSimulation

    sim = PogoSimulation(seed=seed)
    collector = sim.add_collector("cli")
    fleet = [sim.add_device(with_email_app=True) for _ in range(3)]
    sim.start()
    sim.assign(collector, fleet)
    collector.node.deploy(battery_monitor.build_experiment(), [d.jid for d in fleet])
    sim.run(hours=0.5)
    handle, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(handle)
    try:
        spans_to_jsonl(sim.kernel.spans, path)
        with open(path, "rb") as fh:
            hashes[f"trace_seed{seed}_d3_h05"] = _sha256(fh.read())
    finally:
        os.unlink(path)
    return hashes


#: Scenario-engine presets baked into the artifact's structural plane,
#: run at SCENARIO_SCALE so the benchmark stays laptop-fast while still
#: pinning the generative-workload event counts and report bytes.
SCENARIO_ROWS = ("commuter-surge", "contact-tracing")
SCENARIO_SCALE = 0.25


def run_scenario_rows(
    names: Sequence[str] = SCENARIO_ROWS,
    scale: float = SCENARIO_SCALE,
    progress=None,
) -> List[Dict[str, Any]]:
    """Run each scenario preset solo and distill it to a structural row.

    ``report_sha256`` hashes the canonical report — the same bytes the
    golden-gated conformance suite pins — so a behaviour change in the
    scenario engine surfaces in the benchmark diff, not just in CI.
    ``wall_s`` is timing-plane only and excluded from the structural
    view.
    """
    from .scenarios import build_preset, run_scenario_spec, report_json

    rows: List[Dict[str, Any]] = []
    for name in names:
        if progress is not None:
            progress(f"scenario {name} @ x{scale} ...")
        spec = build_preset(name, scale=scale)
        t0 = time.perf_counter()
        result = run_scenario_spec(spec)
        wall = time.perf_counter() - t0
        report = result.report
        rows.append(
            {
                "scenario": name,
                "devices": spec.devices,
                "hours": spec.hours,
                "events": report["fleet"]["events_executed"],
                "violations": report["invariants"]["violation_count"],
                "report_sha256": _sha256(
                    report_json(report).encode("utf-8")
                ),
                "wall_s": round(wall, 6),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Artifact
# ---------------------------------------------------------------------------

#: Fields CI gates on.  Everything else (timings, environment) may vary
#: between machines and runs.
STRUCTURAL_FIELDS = ("schema", "workload", "seed", "hours", "config", "determinism")


def fleet_key(devices: int, shards: int) -> str:
    """The row's identity in ``events_by_fleet``: ``"500"`` for a single
    process, ``"5000x4"`` for a partitioned row — devices alone would
    collide if the same size is measured at two shard counts."""
    return str(devices) if shards <= 1 else f"{devices}x{shards}"


def run_benchmark(
    fleets: Sequence[Any] = DEFAULT_FLEETS,
    seed: int = BENCH_SEED,
    hours: float = 1.0,
    repeats: int = 3,
    progress=None,
    large: Optional[bool] = None,
) -> Dict[str, Any]:
    """The full benchmark: fleet scaling rows + determinism hashes.

    ``fleets`` entries are ``devices`` or ``(devices, shards)``.  The
    :data:`LARGE_FLEET` row is appended when ``large`` is True, skipped
    when False, and wall-clock-gated when None: it runs only if the
    largest measured row projects it to finish inside
    :data:`LARGE_BUDGET_S` (linear extrapolation on devices/shards).
    """
    import platform

    rows = []
    for entry in fleets:
        devices, shards = entry if isinstance(entry, tuple) else (entry, 1)
        # The big fleets take seconds per run; one repeat is plenty there.
        n = repeats if devices <= 50 else 1
        if progress is not None:
            progress(f"fleet {fleet_key(devices, shards):>7} x{n} ...")
        rows.append(
            run_fleet(devices, seed=seed, hours=hours, repeats=n, shards=shards)
        )
    if large is None and rows:
        anchor = max(rows, key=lambda row: row["devices"])
        scale = (LARGE_FLEET[0] / anchor["devices"]) * (
            max(1, anchor["shards"]) / LARGE_FLEET[1]
        )
        large = anchor["wall_s"] * scale <= LARGE_BUDGET_S
    if large:
        devices, shards = LARGE_FLEET
        if progress is not None:
            progress(f"fleet {fleet_key(devices, shards):>7} x1 ...")
        row = run_fleet(devices, seed=seed, hours=hours, shards=shards)
        # Wall-clock-gated rows are trend data, not part of the
        # machine-independent structural plane — whether they ran at all
        # depends on how fast the box is.
        row["gated"] = True
        rows.append(row)
    scenario_rows = run_scenario_rows(progress=progress)
    if progress is not None:
        progress("determinism hashes ...")
    hashes = determinism_hashes()
    events_by_fleet = {
        fleet_key(row["devices"], row["shards"]): row["events"]
        for row in rows
        if not row.get("gated")
    }
    return {
        "schema": SCHEMA,
        "workload": "battery_monitor fleet hour (Table 3 workload)",
        "seed": seed,
        "hours": hours,
        "config": {"spans": False, "metrics": False},
        "fleets": rows,
        "scenarios": scenario_rows,
        "determinism": {"events_by_fleet": events_by_fleet, **hashes},
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
    }


def canonical_dumps(report: Dict[str, Any]) -> str:
    """The artifact's on-disk form: sorted keys, two-space indent, LF."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def structural_view(report: Dict[str, Any]) -> Dict[str, Any]:
    """The machine-independent subset CI diffs against the committed copy."""
    view = {key: report[key] for key in STRUCTURAL_FIELDS if key in report}
    # ``handoff_bytes`` stays out of the structural view on purpose: the
    # frame bytes depend on the zlib build (e.g. zlib-ng compresses
    # differently), so only the counts are machine-independent.
    view["fleets"] = [
        {
            "devices": row["devices"],
            "shards": row.get("shards", 1),
            "events": row["events"],
            **{
                key: row[key]
                for key in ("barriers", "handoffs")
                if key in row
            },
        }
        for row in report.get("fleets", ())
        if not row.get("gated")
    ]
    view["scenarios"] = [
        {key: value for key, value in row.items() if key != "wall_s"}
        for row in report.get("scenarios", ())
    ]
    return view


def render_report(report: Dict[str, Any]) -> str:
    lines = [
        f"kernel benchmark — {report['workload']} (seed {report['seed']})",
        f"config: spans={report['config']['spans']} metrics={report['config']['metrics']}",
        "",
        f"{'devices':>8} {'shards':>7} {'events':>12} {'wall (s)':>10} "
        f"{'events/s':>12} {'speedup':>12}",
    ]
    for row in report["fleets"]:
        notes = []
        if "events_per_s_parallel" in row:
            rate = row["events_per_s_parallel"]
            notes.append(
                f"parallel {rate:,.0f} ev/s" if rate is not None
                else "parallel rate n/a (critical path ~0)"
            )
        if "barriers" in row:
            notes.append(
                f"{row['barriers']:,} barriers / {row['handoffs']:,} handoffs"
            )
        if "handoff_bytes" in row:
            notes.append(f"{row['handoff_bytes']:,} B wire")
        if "barrier_overhead_s" in row:
            notes.append(f"overhead {row['barrier_overhead_s']:.2f} s")
        if row.get("gated"):
            notes.append("wall-clock gated")
        lines.append(
            f"{row['devices']:>8} {row.get('shards', 1):>7} "
            f"{row['events']:>12,} {row['wall_s']:>10.3f} "
            f"{row['events_per_s']:>12,.0f} {row['speedup']:>11,.0f}x"
            + (f"  ({', '.join(notes)})" if notes else "")
        )
    if report.get("scenarios"):
        lines.append("")
        lines.append("scenario presets (structural rows, solo run):")
        for row in report["scenarios"]:
            lines.append(
                f"  {row['scenario']:<18} {row['devices']:>4} devices "
                f"{row['hours']:>6.2f} h {row['events']:>10,} events "
                f"{row['violations']} violations "
                f"sha256:{row['report_sha256'][:16]}..."
            )
    lines.append("")
    lines.append("determinism (must be identical on every machine):")
    for name, value in sorted(report["determinism"].items()):
        if name == "events_by_fleet":
            continue
        lines.append(f"  {name:<24} sha256:{value[:16]}...")
    return "\n".join(lines)


def parse_fleets(value: Any, source: str = "--fleets") -> List[Any]:
    """Parse a comma-separated fleet-size list, rejecting junk loudly.

    A token is ``N`` (single process) or ``NxK`` (N devices partitioned
    across K shard workers), e.g. ``"5,500,5000x4"``.  ``source`` names
    where the value came from (flag or env var) so the error tells the
    user which knob to fix.
    """
    fleets: List[Any] = []
    for part in str(value).split(","):
        part = part.strip()
        if not part:
            continue
        size_text, sep, shard_text = part.partition("x")
        try:
            size = int(size_text)
            shards = int(shard_text) if sep else 1
        except ValueError:
            raise ValueError(
                f"{source}: {part!r} is not a fleet size (want N or NxK)"
            ) from None
        if size <= 0 or shards <= 0:
            raise ValueError(f"{source}: fleet sizes must be positive, got {part!r}")
        fleets.append((size, shards) if sep else size)
    if not fleets:
        raise ValueError(f"{source}: no fleet sizes found in {value!r}")
    return fleets


def resolve_fleets(flag_value: Optional[str], env=None) -> List[Any]:
    """Fleet sizes from ``--fleets``, else the env vars, else the default.

    ``REPRO_BENCH_FLEETS`` (list) is consulted before the older singular
    ``REPRO_BENCH_FLEET``.  Malformed values raise instead of being
    silently ignored.
    """
    if flag_value is not None:
        return parse_fleets(flag_value, "--fleets")
    environ = os.environ if env is None else env
    for var in ("REPRO_BENCH_FLEETS", "REPRO_BENCH_FLEET"):
        raw = environ.get(var)
        if raw is not None and raw.strip():
            return parse_fleets(raw, var)
    return list(DEFAULT_FLEETS)


def main(args) -> int:
    """``python -m repro bench`` entry point (wired in cli.py)."""
    try:
        fleets = resolve_fleets(args.fleets)
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    shards = getattr(args, "shards", None)
    if shards is not None:
        if shards <= 0:
            print(f"bench: --shards must be positive, got {shards}", file=sys.stderr)
            return 2
        # The --shards axis: re-measure every plain fleet size partitioned
        # across K workers (NxK tokens keep their own shard counts).
        fleets = [
            entry if isinstance(entry, tuple) else (entry, shards)
            for entry in fleets
        ]
    large = None
    if os.environ.get("REPRO_BENCH_LARGE", "").strip():
        large = os.environ["REPRO_BENCH_LARGE"].strip() not in ("0", "no", "off")
    report = run_benchmark(
        fleets=fleets,
        hours=args.hours,
        repeats=args.repeats,
        progress=(None if args.json else lambda note: print(note, file=sys.stderr)),
        large=large,
    )
    text = canonical_dumps(report)
    if args.out:
        from .analysis.export import write_text

        write_text(args.out, text)
    if args.json:
        print(text, end="")
    else:
        print(render_report(report))
    return 0
