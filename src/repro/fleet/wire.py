"""Batched binary handoff codec: one frame per barrier, not one pickle
per stanza.

PR 6's data plane pickled every :class:`~repro.core.shard.Handoff`
individually through the worker pipe — ~9 MB per 500x4 hour, most of it
pickle memo tables and repeated JID strings.  This codec encodes a whole
barrier's batch into one struct-packed, length-prefixed frame:

* **JID interning** — every ``from_jid``/``to_jid`` in the batch is
  written once into a per-frame string table and referenced by index.
* **Canonical-JSON stanza bodies** — a stanza's wire text is the
  serialize-once canonical JSON PR 4 already caches
  (:func:`~repro.core.envelope.canonical_json` splices cached
  :class:`~repro.core.envelope.Envelope` text), so encoding costs one
  cache read for stanzas that were already serialized for size
  accounting.  Decode seeds the rebuilt
  :class:`~repro.core.envelope.Stanza`'s JSON cache with the received
  text — the receiver never re-serializes either.
* **Envelope sidecar** — JSON alone would flatten
  :class:`~repro.core.envelope.Envelope` values into plain dicts and
  drop the tracing fields (``trace_id``/``origin_ms``/``hop_span``)
  that the receiving collector's ``deliver.collector`` span terminus
  records.  Each stanza body therefore carries a sidecar of envelope
  positions (paths into the tree) plus their trace fields, and decode
  re-wraps those subtrees as envelopes — merged traces stay
  byte-identical to the solo run.
* **zlib frame compression** — battery-telemetry batches are extremely
  self-similar; level-1 zlib shrinks the 500x4 hour's frames ~50x on
  top of the ~2x from dropping pickle framing.  Compression is skipped
  for tiny frames where the header would cost more than it saves.
* **Pickle fallback** — a stanza whose wrapper tree is not faithfully
  JSON-round-trippable (non-string keys, tuples, exotic leaves) is
  carried as an individual pickle, flagged per record.  Envelope
  *payloads* never need the check: ``freeze_message`` validated them at
  publish.

Fidelity contract: ``decode_batch(encode_batch(batch))`` reconstructs
``Handoff`` records equal to the originals — same ``submit_ms``, ``seq``
and JIDs, stanza trees equal under ``==``, top-level ``Stanza``-ness
preserved, envelope positions and trace fields preserved.  Like the
pickle path it replaces, nested frozen/``Stanza`` containers come back
as plain dicts/lists (``FrozenDict.__reduce__`` did the same), and a
``NaN`` float survives structurally but compares unequal to itself.
"""

from __future__ import annotations

import json
import pickle
import struct
import zlib
from typing import Any, List, Sequence, Tuple

from ..core.envelope import Envelope, Stanza, canonical_json
from ..core.shard import Handoff

#: Frame magic + codec version.  Bump on any layout change: frames are a
#: process-boundary protocol, never persisted, so no back-compat decode.
MAGIC = b"PF1"

_FLAG_ZLIB = 0x01

_H_HAS_SUBMIT = 0x01
_H_PICKLED = 0x02
_H_STANZA = 0x04

_SEG_KEY = 0
_SEG_INDEX = 1

#: Frames smaller than this are shipped uncompressed — the zlib header
#: and dictionary warm-up cost more than they save.
_COMPRESS_THRESHOLD = 128

#: zlib level 1: within ~20% of level 6's ratio on stanza batches at a
#: fraction of the CPU.  Deterministic for a given zlib build; the bench
#: keeps compressed byte counts out of the structural plane for exactly
#: that reason.
_COMPRESS_LEVEL = 1

_U16_MAX = 0xFFFF
_U32_MAX = 0xFFFFFFFF
_U64_MAX = 0xFFFFFFFFFFFFFFFF

_pack_u16 = struct.Struct("<H").pack
_pack_u32 = struct.Struct("<I").pack
_pack_u64 = struct.Struct("<Q").pack
_pack_f64 = struct.Struct("<d").pack
_unpack_u16 = struct.Struct("<H").unpack_from
_unpack_u32 = struct.Struct("<I").unpack_from
_unpack_u64 = struct.Struct("<Q").unpack_from
_unpack_f64 = struct.Struct("<d").unpack_from

_SCALARS = (str, int, float, bool, type(None))


class WireError(ValueError):
    """A frame that cannot be encoded or decoded."""


# ---------------------------------------------------------------------------
# Encode
# ---------------------------------------------------------------------------

def _scan(value: Any, path: Tuple, envelopes: List) -> bool:
    """Collect envelope positions; report JSON-round-trip fidelity.

    Returns ``False`` when the wrapper tree cannot come back equal from
    ``json.loads(canonical_json(...))`` — non-string dict keys (JSON
    stringifies them), tuples (become lists), or non-message leaves.
    Envelopes are leaves: their payloads were freeze-validated at
    publish, so only the position and trace fields need recording.
    """
    if isinstance(value, Envelope):
        if not (0 <= value.trace_id <= _U64_MAX and 0 <= value.hop_span <= _U64_MAX):
            return False
        envelopes.append((path, value))
        return True
    if isinstance(value, dict):
        for key, item in value.items():
            if type(key) is not str:
                return False
            if not _scan(item, path + (key,), envelopes):
                return False
        return True
    if type(value) is list or type(value) is tuple:
        if type(value) is tuple:
            return False
        for index, item in enumerate(value):
            if not _scan(item, path + (index,), envelopes):
                return False
        return True
    if isinstance(value, list):  # FrozenList and other list subclasses
        for index, item in enumerate(value):
            if not _scan(item, path + (index,), envelopes):
                return False
        return True
    return isinstance(value, _SCALARS) and not isinstance(value, tuple)


def _encode_paths(parts: List[bytes], envelopes: List) -> None:
    parts.append(_pack_u16(len(envelopes)))
    for path, envelope in envelopes:
        if len(path) > 0xFF:
            raise WireError(f"envelope nested {len(path)} levels deep")
        parts.append(bytes((len(path),)))
        for seg in path:
            if isinstance(seg, str):
                raw = seg.encode("utf-8")
                if len(raw) > _U16_MAX:
                    raise WireError(f"path key longer than 64 KiB: {seg[:40]!r}…")
                parts.append(bytes((_SEG_KEY,)))
                parts.append(_pack_u16(len(raw)))
                parts.append(raw)
            else:
                parts.append(bytes((_SEG_INDEX,)))
                parts.append(_pack_u32(seg))
        parts.append(_pack_u64(envelope.trace_id))
        parts.append(_pack_f64(envelope.origin_ms))
        parts.append(_pack_u64(envelope.hop_span))


def encode_batch(handoffs: Sequence[Handoff]) -> bytes:
    """Encode one barrier's handoff batch into a single binary frame."""
    if len(handoffs) > _U32_MAX:
        raise WireError(f"batch of {len(handoffs)} handoffs overflows the frame")
    jid_table: dict = {}
    body: List[bytes] = []
    records: List[bytes] = []
    for handoff in handoffs:
        stanza = handoff.stanza
        envelopes: List = []
        faithful = isinstance(stanza, dict) and _scan(stanza, (), envelopes)
        flags = 0
        parts: List[bytes] = [b""]  # flags byte, patched last
        if handoff.submit_ms is not None:
            flags |= _H_HAS_SUBMIT
            parts.append(_pack_f64(handoff.submit_ms))
        parts.append(_pack_u32(handoff.seq))
        for jid in (handoff.from_jid, handoff.to_jid):
            index = jid_table.setdefault(jid, len(jid_table))
            parts.append(_pack_u32(index))
        if faithful:
            if isinstance(stanza, Stanza):
                flags |= _H_STANZA
            raw = canonical_json(stanza).encode("utf-8")
            parts.append(_pack_u32(len(raw)))
            parts.append(raw)
            _encode_paths(parts, envelopes)
        else:
            flags |= _H_PICKLED
            raw = pickle.dumps(stanza, protocol=pickle.HIGHEST_PROTOCOL)
            parts.append(_pack_u32(len(raw)))
            parts.append(raw)
        parts[0] = bytes((flags,))
        records.append(b"".join(parts))
    body.append(_pack_u32(len(jid_table)))
    for jid in jid_table:  # insertion order == index order
        raw = jid.encode("utf-8")
        if len(raw) > _U16_MAX:
            raise WireError(f"JID longer than 64 KiB: {jid[:40]!r}…")
        body.append(_pack_u16(len(raw)))
        body.append(raw)
    body.append(_pack_u32(len(records)))
    body.extend(records)
    raw_body = b"".join(body)
    if len(raw_body) >= _COMPRESS_THRESHOLD:
        packed = zlib.compress(raw_body, _COMPRESS_LEVEL)
        return b"".join(
            (MAGIC, bytes((_FLAG_ZLIB,)), _pack_u32(len(raw_body)), packed)
        )
    return b"".join((MAGIC, b"\x00", raw_body))


# ---------------------------------------------------------------------------
# Decode
# ---------------------------------------------------------------------------

def _rewrap_envelope(root: Any, path: Tuple, trace_id: int,
                     origin_ms: float, hop_span: int) -> None:
    node = root
    for seg in path[:-1]:
        node = node[seg]
    envelope = Envelope.__new__(Envelope)
    envelope.payload = node[path[-1]]
    envelope._json = None
    envelope._size = None
    envelope.trace_id = trace_id
    envelope.origin_ms = origin_ms
    envelope.hop_span = hop_span
    node[path[-1]] = envelope


def decode_batch(frame: bytes) -> List[Handoff]:
    """Decode a frame back into the identical list of ``Handoff``s."""
    if frame[:3] != MAGIC:
        raise WireError(f"bad frame magic {frame[:3]!r} (want {MAGIC!r})")
    flags = frame[3]
    if flags & _FLAG_ZLIB:
        (raw_len,) = _unpack_u32(frame, 4)
        body = zlib.decompress(frame[8:])
        if len(body) != raw_len:
            raise WireError(
                f"frame decompressed to {len(body)} bytes, header says {raw_len}"
            )
    else:
        body = frame[4:]
    view = memoryview(body)
    offset = 0
    (n_jids,) = _unpack_u32(view, offset)
    offset += 4
    jids: List[str] = []
    for _ in range(n_jids):
        (length,) = _unpack_u16(view, offset)
        offset += 2
        jids.append(str(view[offset:offset + length], "utf-8"))
        offset += length
    (n_handoffs,) = _unpack_u32(view, offset)
    offset += 4
    handoffs: List[Handoff] = []
    for _ in range(n_handoffs):
        hflags = view[offset]
        offset += 1
        submit_ms = None
        if hflags & _H_HAS_SUBMIT:
            (submit_ms,) = _unpack_f64(view, offset)
            offset += 8
        (seq,) = _unpack_u32(view, offset)
        (from_idx,) = _unpack_u32(view, offset + 4)
        (to_idx,) = _unpack_u32(view, offset + 8)
        (body_len,) = _unpack_u32(view, offset + 12)
        offset += 16
        raw = view[offset:offset + body_len]
        offset += body_len
        if hflags & _H_PICKLED:
            stanza = pickle.loads(raw)
        else:
            text = str(raw, "utf-8")
            tree = json.loads(text)
            (n_envelopes,) = _unpack_u16(view, offset)
            offset += 2
            for _ in range(n_envelopes):
                n_segs = view[offset]
                offset += 1
                path: List = []
                for _ in range(n_segs):
                    kind = view[offset]
                    offset += 1
                    if kind == _SEG_KEY:
                        (length,) = _unpack_u16(view, offset)
                        offset += 2
                        path.append(str(view[offset:offset + length], "utf-8"))
                        offset += length
                    elif kind == _SEG_INDEX:
                        (index,) = _unpack_u32(view, offset)
                        offset += 4
                        path.append(index)
                    else:
                        raise WireError(f"unknown path segment kind {kind}")
                (trace_id,) = _unpack_u64(view, offset)
                (origin_ms,) = _unpack_f64(view, offset + 8)
                (hop_span,) = _unpack_u64(view, offset + 16)
                offset += 24
                _rewrap_envelope(tree, tuple(path), trace_id, origin_ms, hop_span)
            if hflags & _H_STANZA:
                stanza = Stanza(tree)
                # Seed the serialize-once cache with the sender's exact
                # canonical text: the receiver's size accounting reads
                # the same bytes the sender's would have.
                stanza._json = text
            else:
                stanza = tree
        try:
            from_jid = jids[from_idx]
            to_jid = jids[to_idx]
        except IndexError:
            raise WireError(
                f"JID index out of range ({from_idx}/{to_idx} of {len(jids)})"
            ) from None
        handoffs.append(Handoff(submit_ms, seq, from_jid, to_jid, stanza))
    if offset != len(body):
        raise WireError(
            f"frame has {len(body) - offset} trailing bytes after "
            f"{n_handoffs} handoffs"
        )
    return handoffs
