"""Multiprocess fleet execution: one simulation, K shard workers.

ROADMAP item 1: the single-process kernel hits a throughput cliff around
500 devices.  This package partitions one fleet across worker processes
— each driving its own :class:`~repro.core.shard.Shard` — and keeps the
merged result byte-identical to the single-shard run for the same seed:

* :mod:`repro.fleet.partition` — split a root :class:`ShardSpec` into K
  per-shard specs with deterministic device→shard assignment and the
  global JID numbering pinned (per-device random streams are keyed by
  JID, so every shard draws exactly the single-shard randomness).
* :mod:`repro.fleet.worker` — the spawn-safe worker loop: advance the
  shard to each epoch barrier, ship ``pending_cross_shard()`` handoffs
  up the pipe, block until the coordinator grants the next window.
* :mod:`repro.fleet.coordinator` — conservative time-windowed
  synchronization: epoch length bounded by the minimum cross-shard
  stanza latency, deterministic sorted handoff exchange at each barrier,
  quiescence detection, clean errors on worker crashes.
* :mod:`repro.fleet.wire` — the batched binary handoff codec: one
  struct-packed, zlib-compressed frame per barrier instead of one
  pickle per stanza; decode reconstructs identical ``Handoff`` objects.
* :mod:`repro.fleet.merge` — combine per-shard fleet reports, metrics
  planes and span traces into one canonical report.

Telemetry samples and final artifacts ride a per-shard shared-memory
ring (:mod:`repro.obs.shm`) rather than the control pipe.
"""

from .coordinator import FleetError, FleetResult, WorkerCrashed, run_fleet
from .merge import merge_fleet_reports, merge_metrics, merge_trace_jsonl
from .partition import FleetPlan, fleet_spec, plan_fleet
from .wire import WireError, decode_batch, encode_batch

__all__ = [
    "FleetError",
    "FleetPlan",
    "FleetResult",
    "WireError",
    "WorkerCrashed",
    "decode_batch",
    "encode_batch",
    "fleet_spec",
    "merge_fleet_reports",
    "merge_metrics",
    "merge_trace_jsonl",
    "plan_fleet",
    "run_fleet",
]
