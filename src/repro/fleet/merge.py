"""Merging per-shard artifacts into one canonical fleet view.

The merged fleet report must be byte-identical to the report the same
fleet produces in a single shard — that is the whole correctness claim
of the coordinator, and both the hypothesis property test and the CI
fleet-determinism job compare the bytes.  The merge itself is therefore
deliberately boring: disjoint unions for per-JID tables, sums for the
conserved counters, and hard errors on anything that should be
impossible (overlapping JIDs, shards disagreeing on the clock or seed).

Why plain sums are exact:

* every stanza is routed by exactly one switchboard — the destination's
  (egress on the sender counts in ``stanzas_egressed``, which the
  report intentionally omits) — so ``stanzas_routed`` / ``_lost`` /
  ``_stored_offline`` partition across shards;
* a cross-shard send costs the sender shard zero kernel events (egress
  is synchronous inside the submitting event) and the receiver exactly
  the one ``_route`` event the solo run would have executed, so
  ``events_executed`` partitions too.

Metrics planes merge the same way (counters and gauges sum, histograms
combine count/sum/min/max with the mean recomputed).  Span traces merge
into one JSONL stream with a ``shard`` field added to every line —
span ids are only unique per shard, so the shard id is part of the
merged identity.

Edge cases are first-class: a shard with zero devices still produces a
valid (empty-table) report and merges cleanly — partitioners may hand a
small fleet to many workers — and a shard that recorded no trace events
contributes an empty JSONL text, which the trace merge treats as zero
lines, not an error.  The telemetry plane's
:func:`repro.obs.timeline.aggregate_totals` leans on exactly the
partitioning argument above: every field it sums is one of the
conserved counters, so fleet totals equal the solo run's.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple


class MergeError(ValueError):
    """Per-shard artifacts that cannot form one consistent fleet view."""


def merge_fleet_reports(
    reports: Sequence[Dict[str, Any]], fleet_id: str
) -> Dict[str, Any]:
    """Combine per-shard :meth:`Shard.fleet_report` dicts into one.

    The result has exactly the single-shard schema, with ``shard`` set
    to ``fleet_id`` — compare it against a solo run built with the same
    shard id.
    """
    if not reports:
        raise MergeError("no shard reports to merge")
    devices: Dict[str, Any] = {}
    collectors: Dict[str, Any] = {}
    events = 0
    server = {"stanzas_lost": 0, "stanzas_routed": 0, "stanzas_stored_offline": 0}
    clocks = set()
    seeds = set()
    for report in reports:
        for jid, entry in report["devices"].items():
            if jid in devices:
                raise MergeError(f"device {jid} reported by more than one shard")
            devices[jid] = entry
        for jid, entry in report["collectors"].items():
            if jid in collectors:
                raise MergeError(f"collector {jid} reported by more than one shard")
            collectors[jid] = entry
        events += report["events_executed"]
        clocks.add(report["now_ms"])
        seeds.add(report["seed"])
        for key in server:
            server[key] += report["server"][key]
    if len(clocks) != 1:
        raise MergeError(
            f"shards disagree on the clock at merge time: {sorted(clocks)} — "
            "a worker did not reach the final barrier"
        )
    if len(seeds) != 1:
        raise MergeError(f"shards were built from different seeds: {sorted(seeds)}")
    return {
        "collectors": {jid: collectors[jid] for jid in sorted(collectors)},
        "devices": {jid: devices[jid] for jid in sorted(devices)},
        "events_executed": events,
        "now_ms": clocks.pop(),
        "seed": seeds.pop(),
        "server": server,
        "shard": fleet_id,
    }


def report_to_json(report: Dict[str, Any]) -> str:
    """Same canonical encoding as :meth:`Shard.fleet_report_json`."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def merge_metrics(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-shard :meth:`MetricsRegistry.snapshot` dicts.

    Scalars (counters and gauges) sum; histograms combine count/sum/
    min/max with the mean recomputed from the merged totals.
    """
    merged: Dict[str, Any] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            if isinstance(value, dict):
                slot = merged.setdefault(
                    name, {"count": 0, "sum": 0.0, "min": None, "max": None}
                )
                slot["count"] += value["count"]
                slot["sum"] += value["sum"]
                for key, pick in (("min", min), ("max", max)):
                    if value[key] is not None:
                        slot[key] = (
                            value[key]
                            if slot[key] is None
                            else pick(slot[key], value[key])
                        )
            else:
                merged[name] = merged.get(name, 0) + value
    for value in merged.values():
        if isinstance(value, dict):
            value["mean"] = (
                round(value["sum"] / value["count"], 3) if value["count"] else 0.0
            )
    return {name: merged[name] for name in sorted(merged)}


def merge_trace_jsonl(traces: Sequence[Tuple[str, str]]) -> str:
    """Merge per-shard span-trace JSONL exports into one stream.

    ``traces`` is ``(shard_id, jsonl_text)`` pairs.  Every line gains a
    ``shard`` field (span ids are per-shard), and the merged stream is
    ordered by ``(start_ms, end_ms, shard, span)`` — a total order, so
    the merged trace is byte-deterministic whatever the worker layout.
    """
    spans: List[Tuple[float, float, str, int, str]] = []
    for shard_id, text in traces:
        for line in text.splitlines():
            if not line:
                continue
            record = json.loads(line)
            record["shard"] = shard_id
            spans.append(
                (
                    record.get("start_ms", 0.0),
                    record.get("end_ms", 0.0),
                    shard_id,
                    record.get("span", 0),
                    json.dumps(record, sort_keys=True, separators=(",", ":")),
                )
            )
    spans.sort(key=lambda item: item[:4])
    if not spans:
        return ""
    return "\n".join(item[4] for item in spans) + "\n"
