"""The spawn-safe shard worker: one process, one Shard, one pipe.

Everything here is module-level and picklable-by-reference, so it works
under the ``spawn`` start method (a fresh interpreter that re-imports
this module).  Two entry points share the plumbing:

* :func:`fleet_worker_main` — the coordinator's worker loop: build the
  shard from its spec, open the cross-shard boundary, install the
  workload, then serve ``advance``/``finish`` commands over the pipe
  until told to stop.  Each ``advance`` ingresses the handoffs granted
  at the barrier, runs to the next barrier via
  :meth:`~repro.core.shard.Shard.run_until_epoch`, and ships the newly
  queued handoffs (plus the shard's next-event time, for the
  coordinator's lookahead) back up the pipe.
* :func:`run_spec_in_subprocess` — the one-shot form: run a whole
  workload in a single spawned worker and return its artifacts.  This
  subsumes the helpers that used to live in ``repro.core.shard`` (the
  old names remain there as shims).
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
import zlib
from typing import Any, Dict, Iterable, Optional, Sequence

from ..core.shard import Shard, ShardSpec

#: Ring record tags: first byte of every record in the shared-memory
#: ring says what the rest is.  Samples are canonical JSON, artifact
#: chunks raw slices of the compressed pickle blob.
TELEMETRY_TAG = 1
CHUNK_TAG = 2

#: Headroom left when sizing artifact chunks: record framing (4-byte
#: length prefix + tag) plus slack so a chunk always fits a drained ring.
_CHUNK_SLACK = 16


class WorkerCrashed(RuntimeError):
    """A worker process died, raised an exception, or stopped responding.

    Beyond the message, carries structured fields the CLI uses to print
    a one-line diagnosis instead of a raw traceback dump:

    * ``shard_id`` — which worker died (``None`` if unknown).
    * ``cause`` — one-line cause (last traceback line, or an exit-code /
      timeout description).
    * ``barriers`` / ``barrier_ms`` — how many epoch barriers the fleet
      had completed, and the sim time of the last one, when the crash
      surfaced (filled in by the coordinator).
    """

    def __init__(
        self,
        message: str,
        shard_id: Optional[str] = None,
        cause: Optional[str] = None,
        barriers: Optional[int] = None,
        barrier_ms: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.cause = cause
        self.barriers = barriers
        self.barrier_ms = barrier_ms


def _rss_kb() -> Optional[int]:
    """Peak RSS of this process in KiB, or ``None`` where unavailable.

    ``resource`` is POSIX-only, and macOS reports ``ru_maxrss`` in bytes
    rather than kilobytes — normalise so the telemetry wall section means
    the same thing everywhere it exists.
    """
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":
            peak //= 1024
        return int(peak)
    except Exception:
        return None


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def setup_battery_monitor(
    shard: Shard, fleet_ctx: Optional[Dict[str, Any]] = None
) -> None:
    """Start ``shard`` and deploy the Table 3 battery-monitor workload.

    Solo (``fleet_ctx=None``): deploy to the shard's own devices.

    Partitioned: ``fleet_ctx`` carries the *global* roster —
    ``deploy_jids`` (every device in the fleet) and ``collector_jids``.
    The collector's shard deploys to all of them, and remote
    assignments become one-sided roster edges
    (:meth:`XmppServer.add_remote_roster`) on both shards so presence
    crosses the boundary exactly as the solo run delivers it locally.
    """
    from ..apps import battery_monitor

    shard.start()
    local_jids = sorted(shard.devices)
    names = sorted(shard.collectors)
    if fleet_ctx is None:
        if not names:
            return
        collector = shard.collectors[names[0]]
        shard.assign(collector, [shard.devices[jid] for jid in local_jids])
        collector.node.deploy(battery_monitor.build_experiment(), local_jids)
        return
    if not fleet_ctx["collector_jids"]:
        return
    collector_jid = fleet_ctx["collector_jids"][0]
    targets = sorted(fleet_ctx["deploy_jids"])
    if names:
        collector = shard.collectors[names[0]]
        shard.assign(collector, [shard.devices[jid] for jid in local_jids])
        for jid in targets:
            if jid not in shard.devices:
                shard.server.add_remote_roster(collector_jid, jid)
        collector.node.deploy(battery_monitor.build_experiment(), targets)
    else:
        for jid in local_jids:
            shard.server.add_remote_roster(jid, collector_jid)


def setup_crash_canary(
    shard: Shard, fleet_ctx: Optional[Dict[str, Any]] = None
) -> None:
    """Deliberately crash during workload setup (test workload).

    Lets the crash-reporting tests exercise the full spawned-worker
    error path — the workload must live at module level so the child
    interpreter can import it by name.
    """
    raise RuntimeError("crash canary tripped")


#: Workload name → setup callable, looked up by the worker loop.  Names,
#: not callables, cross the pipe — the registry keeps spawn picklability
#: trivial and gives misconfiguration a clean error.  (The scenario
#: workload imports only core/apps/world modules, never this package, so
#: the module-level import is cycle-free.)
from ..scenarios.workload import setup_scenario, setup_scenario_crash

WORKLOADS = {
    "battery-monitor": setup_battery_monitor,
    "crash-canary": setup_crash_canary,
    "scenario": setup_scenario,
    "scenario-crash-mid-epoch": setup_scenario_crash,
}


def collect_artifacts(shard: Shard, busy_s: float = 0.0) -> Dict[str, Any]:
    """The per-shard outputs the merger combines: canonical report,
    metrics snapshot, and the deterministic span-trace export.

    ``busy_s`` is the wall time this worker spent advancing its shard
    (ingress + ``run_until_epoch``), excluding barrier waits.  The
    maximum across workers is the coordinator's critical path — the
    fleet's wall time once every worker has its own core.
    """
    from ..analysis.export import spans_to_jsonl
    from ..scenarios.workload import scenario_summary

    return {
        "shard_id": shard.shard_id,
        "report": shard.fleet_report(),
        "metrics": shard.kernel.metrics.snapshot(),
        "trace_jsonl": spans_to_jsonl(shard.kernel.spans) or "",
        "busy_s": busy_s,
        # Workload-specific extras; None for non-scenario shards.
        "extra": scenario_summary(shard),
    }


# ---------------------------------------------------------------------------
# The coordinator's worker loop
# ---------------------------------------------------------------------------

def _stream_artifacts(conn, ring, artifacts: Dict[str, Any]) -> None:
    """Chunk the artifact blob through the shared-memory ring.

    The blob (zlib-compressed pickle) is cut into ring-sized chunks;
    each chunk is pushed, announced with a ``("chunk",)`` pipe message,
    and acknowledged by the coordinator after it drains the ring — so
    the ring is empty again before the next push and a chunk can never
    fail to fit.  Replaces the old one-giant-pickle ``("result", ...)``
    send, whose peak memory and pipe occupancy scaled with fleet size.
    """
    blob = zlib.compress(
        pickle.dumps(artifacts, protocol=pickle.HIGHEST_PROTOCOL), 1
    )
    chunk_size = ring.capacity - _CHUNK_SLACK
    chunks = range(0, max(1, len(blob)), chunk_size)
    conn.send(("stream", len(blob), len(chunks)))
    for start in chunks:
        piece = bytes((CHUNK_TAG,)) + blob[start:start + chunk_size]
        if not ring.try_push(piece):
            raise RuntimeError(
                f"artifact chunk of {len(piece)} bytes did not fit the "
                f"drained {ring.capacity}-byte ring"
            )
        conn.send(("chunk",))
        ack = conn.recv()
        if ack != ("ok",):
            raise ValueError(f"unexpected chunk acknowledgement: {ack!r}")
    conn.send(("done",))


def fleet_worker_main(
    conn,
    spec: ShardSpec,
    workload: str,
    fleet_ctx: Optional[Dict[str, Any]],
    shm_name: Optional[str] = None,
) -> None:
    """Serve one shard over ``conn`` until the coordinator says finish.

    Protocol (coordinator → worker / worker → coordinator).  Handoff
    batches cross the pipe as :mod:`repro.fleet.wire` frames — one
    struct-packed, zlib-compressed buffer per barrier instead of one
    pickle per stanza; telemetry samples and the final artifacts ride
    the shared-memory ring named by ``shm_name`` (``None``: everything
    falls back inline on the pipe, byte-identical results):

    * ← ``("ready", shard_id, latency_ms, next_event_time, frame,
      egress_capable)`` once the shard is built; ``frame`` encodes
      anything the workload setup egressed at time zero (e.g. the
      deploy fan-out), so the coordinator can deliver it with the
      *first* window grant and receivers schedule it exactly where the
      solo run would.  ``egress_capable`` is the topology-lookahead bit
      (:attr:`~repro.core.shard.Shard.egress_capable`): the adaptive
      barrier only lets capable shards' next events bound the window.
    * → ``("advance", barrier_ms, frame)``: ingress the granted
      handoffs, run to the barrier.
      ← ``("barrier", frame, next_event_time, egress_capable, sample,
      sample_in_ring)`` — ``sample`` is the shard's telemetry snapshot
      for the window just finished, ``None`` when telemetry is disabled
      *or* when it was appended to the ring instead
      (``sample_in_ring=True``; inline is the spill path for a full or
      absent ring).
    * → ``("finish",)``  ← ``("result", artifacts)`` without a ring, or
      the chunk stream of :func:`_stream_artifacts` with one.
    * Any exception ← ``("error", traceback_text)`` and the loop exits.

    Telemetry wall fields: ``cpu_s`` is cumulative CPU spent advancing
    the shard (ingress, run, and wire codec work), ``stall_s`` is
    cumulative wall time spent blocked in ``conn.recv`` waiting for the
    next barrier grant (the worker's view of barrier imbalance),
    ``rss_kb`` the process peak RSS.
    """
    # CPU time, not wall: on an oversubscribed host a worker's window
    # wall time includes the other workers' time slices, which would
    # inflate the critical path it reports.
    from time import perf_counter, process_time

    from ..core.envelope import canonical_json
    from .wire import decode_batch, encode_batch

    ring = None
    try:
        if shm_name is not None:
            from ..obs.shm import ShmRing

            ring = ShmRing.attach(shm_name)
        setup = WORKLOADS[workload]
        shard = Shard(spec)
        shard.open_boundary()
        setup(shard, fleet_ctx)
        busy_s = 0.0
        stall_s = 0.0
        epoch = 0
        conn.send(
            ("ready", shard.shard_id, shard.server.latency_ms,
             shard.kernel.next_event_time(),
             encode_batch(shard.pending_cross_shard()),
             shard.egress_capable)
        )
        while True:
            w0 = perf_counter()
            message = conn.recv()
            stall_s += perf_counter() - w0
            op = message[0]
            if op == "advance":
                barrier_ms, frame = message[1], message[2]
                t0 = process_time()
                handoffs = decode_batch(frame)
                if handoffs:
                    shard.ingress(handoffs)
                out = shard.run_until_epoch(barrier_ms)
                out_frame = encode_batch(out)
                busy_s += process_time() - t0
                epoch += 1
                sample = shard.telemetry.sample(
                    epoch,
                    barrier_ms,
                    handoffs_in=len(handoffs),
                    handoffs_out=len(out),
                    wall={
                        "cpu_s": round(busy_s, 6),
                        "stall_s": round(stall_s, 6),
                        "rss_kb": _rss_kb(),
                    },
                )
                in_ring = False
                if sample is not None and ring is not None:
                    record = (
                        bytes((TELEMETRY_TAG,))
                        + canonical_json(sample).encode("utf-8")
                    )
                    in_ring = ring.try_push(record)
                conn.send((
                    "barrier", out_frame, shard.kernel.next_event_time(),
                    shard.egress_capable,
                    None if in_ring else sample, in_ring,
                ))
            elif op == "finish":
                artifacts = collect_artifacts(shard, busy_s)
                if ring is None:
                    conn.send(("result", artifacts))
                else:
                    _stream_artifacts(conn, ring, artifacts)
                return
            else:
                raise ValueError(f"unknown coordinator op: {op!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass  # coordinator already gone; exit code tells the story
    finally:
        if ring is not None:
            ring.close()
        conn.close()


# ---------------------------------------------------------------------------
# One-shot subprocess execution
# ---------------------------------------------------------------------------

def run_battery_monitor_hour(spec: ShardSpec, hours: float = 1.0) -> Dict[str, str]:
    """Build a shard from ``spec``, run the Table 3 battery-monitor
    workload for ``hours``, and return its canonical artifacts.

    The returned dict has ``report`` (:meth:`Shard.fleet_report_json`)
    and ``trace_jsonl`` (the deterministic span export).  Running this in
    the parent and in a spawned subprocess must produce byte-identical
    values — the CI smoke job gates on it.
    """
    from ..analysis.export import spans_to_jsonl

    shard = Shard(spec)
    if not shard.collectors:
        shard.add_collector("spawn")
    setup_battery_monitor(shard)
    shard.run(hours=hours)
    return {
        "report": shard.fleet_report_json(),
        "trace_jsonl": spans_to_jsonl(shard.kernel.spans) or "",
    }


def _subprocess_entry(conn, fn, args) -> None:
    try:
        result = fn(*args)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ok", result))
    conn.close()


def call_in_subprocess(fn, *args, timeout_s: float = 600.0):
    """Run ``fn(*args)`` in a fresh ``spawn`` interpreter and return its
    result, raising :class:`WorkerCrashed` on death or timeout.

    ``fn`` must be a module-level callable and every argument picklable —
    the same contract the fleet workers live under.
    """
    context = multiprocessing.get_context("spawn")
    parent, child = context.Pipe()
    process = context.Process(
        target=_subprocess_entry, args=(child, fn, args), daemon=True
    )
    process.start()
    child.close()
    try:
        try:
            if not parent.poll(timeout_s):
                raise WorkerCrashed(
                    f"subprocess running {fn.__name__} produced no result "
                    f"within {timeout_s:.0f}s"
                )
            kind, payload = parent.recv()
        except EOFError:
            process.join(timeout=5.0)
            raise WorkerCrashed(
                f"subprocess running {fn.__name__} died with exit code "
                f"{process.exitcode} before sending a result"
            ) from None
    finally:
        parent.close()
        if process.is_alive():
            process.terminate()
        process.join(timeout=5.0)
    if kind == "error":
        raise WorkerCrashed(f"subprocess running {fn.__name__} raised:\n{payload}")
    return payload


def run_spec_in_subprocess(spec: ShardSpec, hours: float = 1.0) -> Dict[str, str]:
    """Pickle ``spec`` into a fresh ``spawn`` interpreter, run
    :func:`run_battery_monitor_hour` there, and return its result."""
    return call_in_subprocess(run_battery_monitor_hour, spec, hours)
