"""The fleet coordinator: conservative epoch-barrier synchronization.

One simulation, K shards, each advanced in lockstep windows:

* **Barrier math.**  The epoch length L must satisfy ``0 < L ≤ min
  cross-shard stanza latency`` (the switchboard's base latency, 80 ms by
  default — every cross-shard stanza spends at least that long on the
  wire).  A handoff submitted at time *s* inside the window ``(B−L, B]``
  is exchanged at barrier *B* and is due at ``s + latency > B`` — always
  strictly in the receiver's future, so delivering it before the next
  window starts reproduces the solo schedule exactly.
* **Lookahead.**  Workers report their next-event time at every barrier;
  the next barrier is placed one epoch after the earliest thing that can
  happen anywhere (first local event or first pending handoff delivery),
  so idle stretches cost one window, not thousands.  When every shard is
  idle and no handoffs are in flight the fleet is quiescent and jumps
  straight to the horizon.
* **Determinism.**  Handoffs collected at a barrier are delivered in
  sorted ``(submit_ms, from_jid, seq)`` order — a total order (a JID
  lives on exactly one shard; ``seq`` is that shard's egress counter) —
  so the receiver schedules them identically no matter which worker
  answered first.
* **Failures.**  A worker that dies, raises, or stops responding turns
  into :class:`WorkerCrashed`/:class:`FleetError` with the worker's
  traceback or exit code; every other worker is torn down. No hangs.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from time import perf_counter, process_time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.shard import Handoff, Shard, ShardSpec
from ..obs.timeline import FleetTimeline, fleet_health
from ..sim.kernel import HOUR
from .merge import merge_fleet_reports, merge_metrics, merge_trace_jsonl, report_to_json
from .partition import FleetPlan, fleet_spec, plan_fleet
from .worker import (
    WORKLOADS,
    WorkerCrashed,
    _rss_kb,
    collect_artifacts,
    fleet_worker_main,
)


class FleetError(RuntimeError):
    """A coordinator-level failure (bad epoch, misrouted handoff, …)."""


@dataclass
class FleetResult:
    """The merged outcome of one partitioned run."""

    report: Dict[str, Any]
    report_json: str
    metrics: Dict[str, Any]
    trace_jsonl: str
    shard_reports: Tuple[Dict[str, Any], ...]
    devices: int
    shards: int
    epoch_ms: float
    barriers: int
    handoffs: int
    wall_s: float
    #: CPU time of the busiest worker (ingress + run_until_epoch, no
    #: barrier waits) — the fleet's wall time once every worker has its
    #: own core.  On a single-core host ``wall_s`` serializes the
    #: workers; this is the parallel capacity the layout actually has.
    critical_path_s: float = 0.0
    #: Per-barrier telemetry time-series (``None`` unless the run was
    #: started with ``telemetry=True`` or an observer).
    timeline: Optional[FleetTimeline] = None
    #: Coordinator health verdict derived from the timeline — slow or
    #: stalled shards, barrier imbalance (``None`` without telemetry).
    health: Optional[Dict[str, Any]] = None
    #: Per-shard workload extras (``artifacts["extra"]``), in shard
    #: order.  The scenario runner merges its per-shard summaries from
    #: here; ``None`` entries mean the shard had nothing to add.
    shard_extras: Tuple[Any, ...] = ()

    @property
    def events(self) -> int:
        return self.report["events_executed"]


def _handoff_sort_key(handoff: Handoff):
    return (handoff.submit_ms, handoff.from_jid, handoff.seq)


# ---------------------------------------------------------------------------
# Worker handles: same protocol in-process and across a pipe
# ---------------------------------------------------------------------------

class _LocalWorker:
    """Drives a shard in this process — the coordinator's fast path for
    tests and small fleets, bit-identical to the process form."""

    def __init__(self, spec: ShardSpec, workload: str, fleet_ctx) -> None:
        self.shard_id = spec.shard_id
        try:
            self.shard = Shard(spec)
            self.shard.open_boundary()
            WORKLOADS[workload](self.shard, fleet_ctx)
        except WorkerCrashed:
            raise
        except Exception as exc:
            # Same surface as a spawned worker that died during setup,
            # so callers handle in-process and process fleets alike.
            raise WorkerCrashed(
                f"worker {self.shard_id} raised during setup: {exc}",
                shard_id=self.shard_id,
                cause=f"{type(exc).__name__}: {exc}",
            ) from exc
        self._pending: Optional[Tuple[List[Handoff], Optional[float], Any]] = None
        self._busy_s = 0.0
        self._epoch = 0

    def ready(self) -> Tuple[float, Optional[float], List[Handoff]]:
        return (
            self.shard.server.latency_ms,
            self.shard.kernel.next_event_time(),
            self.shard.pending_cross_shard(),
        )

    def post_advance(self, barrier_ms: float, handoffs: List[Handoff]) -> None:
        t0 = process_time()
        try:
            if handoffs:
                self.shard.ingress(handoffs)
            out = self.shard.run_until_epoch(barrier_ms)
        except WorkerCrashed:
            raise
        except Exception as exc:
            # Same structured surface as a spawned worker that raised
            # mid-epoch (the coordinator stamps barriers/barrier_ms).
            raise WorkerCrashed(
                f"worker {self.shard_id} raised mid-epoch: {exc}",
                shard_id=self.shard_id,
                cause=f"{type(exc).__name__}: {exc}",
            ) from exc
        self._busy_s += process_time() - t0
        self._epoch += 1
        # In-process workers never block on a pipe, so stall is zero by
        # construction; CPU and RSS keep the wall section comparable.
        sample = self.shard.telemetry.sample(
            self._epoch,
            barrier_ms,
            handoffs_in=len(handoffs),
            handoffs_out=len(out),
            wall={
                "cpu_s": round(self._busy_s, 6),
                "stall_s": 0.0,
                "rss_kb": _rss_kb(),
            },
        )
        self._pending = (out, self.shard.kernel.next_event_time(), sample)

    def wait_barrier(self) -> Tuple[List[Handoff], Optional[float], Any]:
        pending, self._pending = self._pending, None
        return pending

    def post_finish(self) -> None:
        pass

    def wait_result(self) -> Dict[str, Any]:
        return collect_artifacts(self.shard, self._busy_s)

    def close(self) -> None:
        pass


class _ProcessWorker:
    """One spawned worker process behind a duplex pipe."""

    def __init__(
        self, spec: ShardSpec, workload: str, fleet_ctx, context, timeout_s: float
    ) -> None:
        self.shard_id = spec.shard_id
        self.timeout_s = timeout_s
        self.conn, child = context.Pipe()
        self.process = context.Process(
            target=fleet_worker_main,
            args=(child, spec, workload, fleet_ctx),
            name=f"fleet-{spec.shard_id}",
            daemon=True,
        )
        self.process.start()
        child.close()

    def _recv(self):
        try:
            if not self.conn.poll(self.timeout_s):
                cause = f"no reply within {self.timeout_s:.0f}s — presumed hung"
                raise WorkerCrashed(
                    f"worker {self.shard_id} produced nothing for "
                    f"{self.timeout_s:.0f}s — presumed hung",
                    shard_id=self.shard_id,
                    cause=cause,
                )
            message = self.conn.recv()
        except (EOFError, OSError) as exc:
            self.process.join(timeout=5.0)
            raise WorkerCrashed(
                f"worker {self.shard_id} died with exit code "
                f"{self.process.exitcode}",
                shard_id=self.shard_id,
                cause=f"process died with exit code {self.process.exitcode}",
            ) from exc
        if message[0] == "error":
            # The last non-empty traceback line is the exception itself —
            # the one-line cause the CLI prints.
            lines = [line for line in str(message[1]).splitlines() if line.strip()]
            raise WorkerCrashed(
                f"worker {self.shard_id} raised:\n{message[1]}",
                shard_id=self.shard_id,
                cause=lines[-1].strip() if lines else "unknown error",
            )
        return message

    def ready(self) -> Tuple[float, Optional[float], List[Handoff]]:
        # ("ready", shard_id, latency_ms, next_event, handoffs)
        message = self._recv()
        return message[2], message[3], message[4]

    def post_advance(self, barrier_ms: float, handoffs: List[Handoff]) -> None:
        self.conn.send(("advance", barrier_ms, handoffs))

    def wait_barrier(self) -> Tuple[List[Handoff], Optional[float], Any]:
        message = self._recv()  # ("barrier", handoffs, next_event, sample)
        return message[1], message[2], message[3]

    def post_finish(self) -> None:
        self.conn.send(("finish",))

    def wait_result(self) -> Dict[str, Any]:
        return self._recv()[1]  # ("result", artifacts)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------

def run_fleet(
    devices: Optional[int] = None,
    shards: int = 1,
    *,
    spec: Optional[ShardSpec] = None,
    seed: int = 0,
    hours: Optional[float] = None,
    duration_ms: Optional[float] = None,
    epoch_ms: Optional[float] = None,
    workload: str = "battery-monitor",
    collector: str = "fleet",
    fleet_id: str = "fleet",
    spans: bool = True,
    metrics: bool = True,
    processes: bool = True,
    barrier_timeout_s: float = 600.0,
    telemetry: bool = False,
    observer: Optional[Callable[[Dict[str, Any]], None]] = None,
    workload_ctx: Optional[Dict[str, Any]] = None,
) -> FleetResult:
    """Run one fleet partitioned across ``shards`` workers and merge.

    Pass either ``devices`` (a homogeneous battery-monitor fleet is
    built via :func:`fleet_spec`) or a full root ``spec``.  With
    ``processes=False`` the shards run in this process behind the same
    barrier protocol — byte-identical results, no spawn cost; the
    property tests use it.  ``epoch_ms`` defaults to the maximum safe
    value (the minimum cross-shard stanza latency reported by the
    workers); anything larger is rejected.

    ``telemetry=True`` arms the per-shard barrier sampler and attaches
    the collected :class:`~repro.obs.timeline.FleetTimeline` (plus the
    derived health verdict) to the result.  ``observer`` — a callable
    receiving each timeline frame as it is appended (e.g.
    :class:`~repro.obs.live.LiveView`) — implies telemetry.  Sampling
    is pull-only and never perturbs the simulation: reports and traces
    are byte-identical with telemetry on or off.
    """
    if observer is not None:
        telemetry = True
    if spec is None:
        if devices is None:
            raise FleetError("pass a device count or a root ShardSpec")
        spec = fleet_spec(
            devices, seed=seed, collector=collector, shard_id=fleet_id,
            spans=spans, metrics=metrics,
        )
    # A telemetry-armed root spec and the flag are equivalent: either
    # arms every shard's sampler (partitioning copies the field).
    telemetry = telemetry or spec.telemetry
    if telemetry and not spec.telemetry:
        spec = replace(spec, telemetry=True)
    if workload not in WORKLOADS:
        raise FleetError(
            f"unknown workload {workload!r}; have {sorted(WORKLOADS)}"
        )
    plan = plan_fleet(spec, shards)
    if hours is None and duration_ms is None:
        hours = 1.0
    total_ms = float(duration_ms if duration_ms is not None else hours * HOUR)
    if total_ms <= 0:
        raise FleetError(f"duration must be positive, got {total_ms} ms")

    fleet_ctx = {
        "deploy_jids": plan.device_jids,
        "collector_jids": plan.collector_jids,
    }
    if workload_ctx:
        # Extra workload inputs (e.g. the ScenarioSpec) ride along; they
        # must be picklable — the ctx crosses the spawn pipe as data.
        fleet_ctx.update(workload_ctx)
    wall_start = perf_counter()
    workers: List[Any] = []
    try:
        if processes and plan.n_shards > 1:
            context = multiprocessing.get_context("spawn")
            workers = [
                _ProcessWorker(
                    shard_spec, workload, fleet_ctx, context, barrier_timeout_s
                )
                for shard_spec in plan.shards
            ]
        else:
            workers = [
                _LocalWorker(shard_spec, workload, fleet_ctx)
                for shard_spec in plan.shards
            ]
        readies = [worker.ready() for worker in workers]
        min_latency = min(latency for latency, _, _ in readies)
        epoch = float(epoch_ms) if epoch_ms is not None else min_latency
        if not 0 < epoch <= min_latency:
            raise FleetError(
                f"epoch must be in (0, {min_latency}] ms — the minimum "
                f"cross-shard stanza latency bounds the barrier window — "
                f"got {epoch} ms"
            )

        next_events = [next_event for _, next_event, _ in readies]
        # Anything egressed during workload setup (time zero) is routed
        # with the first window grant, so receivers schedule it exactly
        # where the solo run would have.
        setup_handoffs: List[Handoff] = []
        for _, _, initial in readies:
            setup_handoffs.extend(initial)
        setup_handoffs.sort(key=_handoff_sort_key)
        outbox: List[List[Handoff]] = [[] for _ in workers]
        for handoff in setup_handoffs:
            outbox[plan.owner_of(handoff.to_jid)].append(handoff)
        handoffs_total = len(setup_handoffs)
        now = 0.0
        barriers = 0
        timeline = (
            FleetTimeline(
                fleet_id=plan.root.shard_id,
                devices=len(plan.device_jids),
                shards=plan.n_shards,
            )
            if telemetry
            else None
        )

        def exchange(barrier: float) -> None:
            """Grant the window ending at ``barrier`` to every worker,
            then collect, totally order, and route the handoffs."""
            nonlocal outbox, next_events, handoffs_total, barriers
            window_start = perf_counter()
            for index, worker in enumerate(workers):
                worker.post_advance(barrier, outbox[index])
            results = [worker.wait_barrier() for worker in workers]
            collected: List[Handoff] = []
            for out, _, _ in results:
                collected.extend(out)
            collected.sort(key=_handoff_sort_key)
            outbox = [[] for _ in workers]
            for handoff in collected:
                outbox[plan.owner_of(handoff.to_jid)].append(handoff)
            handoffs_total += len(collected)
            next_events = [next_event for _, next_event, _ in results]
            barriers += 1
            if timeline is not None:
                frame = timeline.append(
                    epoch=barriers,
                    barrier_ms=barrier,
                    samples=[sample for _, _, sample in results],
                    handoffs=len(collected),
                    backlog=sum(len(granted) for granted in outbox),
                    window_wall_s=perf_counter() - window_start,
                )
                if observer is not None:
                    observer(frame)

        try:
            while now < total_ms:
                wakeups = [t for t in next_events if t is not None]
                wakeups.extend(
                    handoff.submit_ms + min_latency
                    for granted in outbox
                    for handoff in granted
                )
                if not wakeups:
                    barrier = total_ms  # quiescent: nothing can happen again
                else:
                    barrier = min(total_ms, max(now, min(wakeups)) + epoch)
                exchange(barrier)
                now = barrier

            # Horizon drain: handoffs collected at the final barrier can
            # be due at or before the horizon (``run_until`` executes
            # events at exactly T), and executing them can egress more.
            # Keep draining zero-length windows until nothing new
            # crosses; afterwards the receivers' heaps hold the same
            # still-due entries the solo run would hold at T.
            while any(outbox):
                exchange(total_ms)
        except WorkerCrashed as exc:
            # Stamp how far the fleet got so the CLI can say "crashed at
            # epoch N (t=... ms sim)" without re-deriving it.
            exc.barriers = barriers
            exc.barrier_ms = now
            raise

        for worker in workers:
            worker.post_finish()
        artifacts = [worker.wait_result() for worker in workers]
    finally:
        for worker in workers:
            worker.close()

    wall_s = perf_counter() - wall_start
    report = merge_fleet_reports(
        [artifact["report"] for artifact in artifacts], fleet_id=plan.root.shard_id
    )
    return FleetResult(
        report=report,
        report_json=report_to_json(report),
        metrics=merge_metrics([artifact["metrics"] for artifact in artifacts]),
        trace_jsonl=merge_trace_jsonl(
            [(artifact["shard_id"], artifact["trace_jsonl"]) for artifact in artifacts]
        ),
        shard_reports=tuple(artifact["report"] for artifact in artifacts),
        devices=len(plan.device_jids),
        shards=plan.n_shards,
        epoch_ms=epoch,
        barriers=barriers,
        handoffs=handoffs_total,
        wall_s=wall_s,
        critical_path_s=max(
            artifact.get("busy_s", 0.0) for artifact in artifacts
        ),
        timeline=timeline,
        health=fleet_health(timeline) if timeline is not None else None,
        shard_extras=tuple(artifact.get("extra") for artifact in artifacts),
    )
