"""The fleet coordinator: conservative epoch-barrier synchronization.

One simulation, K shards, each advanced in lockstep windows:

* **Barrier math.**  The epoch length L must satisfy ``0 < L ≤ min
  cross-shard stanza latency`` (the switchboard's base latency —
  :attr:`~repro.core.shard.ShardSpec.latency_ms`, 80 ms by default —
  every cross-shard stanza spends at least that long on the wire).  A
  handoff submitted at time *s* inside the window ``(B−L, B]`` is
  exchanged at barrier *B* and is due at ``s + latency > B`` — always
  strictly in the receiver's future, so delivering it before the next
  window starts reproduces the solo schedule exactly.
* **Adaptive lookahead.**  Workers report their next-event time and
  their egress capability (:attr:`~repro.core.shard.Shard.egress_capable`
  — whether their topology holds any remote roster edge) at every
  barrier.  Only things that can *originate* cross-shard traffic bound
  the window: the next events of egress-capable shards, and the due
  times of handoffs granted to egress-capable receivers (a delivery can
  make a capable receiver egress in reaction).  The barrier lands one
  epoch past the earliest such wakeup; shards that cannot egress run
  arbitrarily wide windows, and when nothing anywhere can originate
  traffic the fleet jumps straight to the horizon.  Soundness rests on
  the capability contract (edges are wired before the window that uses
  them); the switchboard's late-due check and the coordinator's
  incapable-egress check turn any violation into a loud failure rather
  than a silently distorted schedule.
* **Determinism.**  Handoffs collected at a barrier are delivered in
  sorted ``(submit_ms, from_jid, seq)`` order — a total order (a JID
  lives on exactly one shard; ``seq`` is that shard's egress counter) —
  so the receiver schedules them identically no matter which worker
  answered first.
* **Data plane.**  Spawned workers exchange handoff batches as
  :mod:`repro.fleet.wire` frames — one struct-packed, zlib-compressed
  buffer per barrier instead of one pickle per stanza — and ship
  telemetry samples plus their final artifact blob through a per-shard
  :class:`~repro.obs.shm.ShmRing`, keeping the pipe a control channel.
  Both lanes degrade gracefully (inline pickles, chunkless results)
  with byte-identical outcomes.
* **Failures.**  A worker that dies, raises, or stops responding turns
  into :class:`WorkerCrashed`/:class:`FleetError` with the worker's
  traceback or exit code; every other worker is torn down and every
  shared-memory ring unlinked. No hangs, no ``/dev/shm`` leaks.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import zlib
from dataclasses import dataclass, replace
from time import perf_counter, process_time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.shard import Handoff, Shard, ShardSpec
from ..obs.shm import DEFAULT_RING_BYTES, ShmError, ShmRing
from ..obs.timeline import FleetTimeline, fleet_health
from ..sim.kernel import HOUR
from .merge import merge_fleet_reports, merge_metrics, merge_trace_jsonl, report_to_json
from .partition import FleetPlan, fleet_spec, plan_fleet
from .wire import decode_batch, encode_batch
from .worker import (
    CHUNK_TAG,
    TELEMETRY_TAG,
    WORKLOADS,
    WorkerCrashed,
    _rss_kb,
    collect_artifacts,
    fleet_worker_main,
)


class FleetError(RuntimeError):
    """A coordinator-level failure (bad epoch, misrouted handoff, …)."""


@dataclass
class FleetResult:
    """The merged outcome of one partitioned run."""

    report: Dict[str, Any]
    report_json: str
    metrics: Dict[str, Any]
    trace_jsonl: str
    shard_reports: Tuple[Dict[str, Any], ...]
    devices: int
    shards: int
    epoch_ms: float
    barriers: int
    handoffs: int
    wall_s: float
    #: CPU time of the busiest worker (ingress + run_until_epoch, no
    #: barrier waits) — the fleet's wall time once every worker has its
    #: own core.  On a single-core host ``wall_s`` serializes the
    #: workers; this is the parallel capacity the layout actually has.
    critical_path_s: float = 0.0
    #: Total wire-frame bytes that crossed the worker pipes (handoff
    #: batches in both directions, compressed).  Zero for in-process
    #: fleets — nothing crosses a pipe there.
    handoff_bytes: int = 0
    #: Per-barrier telemetry time-series (``None`` unless the run was
    #: started with ``telemetry=True`` or an observer).
    timeline: Optional[FleetTimeline] = None
    #: Coordinator health verdict derived from the timeline — slow or
    #: stalled shards, barrier imbalance (``None`` without telemetry).
    health: Optional[Dict[str, Any]] = None
    #: Per-shard workload extras (``artifacts["extra"]``), in shard
    #: order.  The scenario runner merges its per-shard summaries from
    #: here; ``None`` entries mean the shard had nothing to add.
    shard_extras: Tuple[Any, ...] = ()

    @property
    def events(self) -> int:
        return self.report["events_executed"]


def _handoff_sort_key(handoff: Handoff):
    return (handoff.submit_ms, handoff.from_jid, handoff.seq)


# ---------------------------------------------------------------------------
# Worker handles: same protocol in-process and across a pipe
# ---------------------------------------------------------------------------

class _LocalWorker:
    """Drives a shard in this process — the coordinator's fast path for
    tests and small fleets, bit-identical to the process form."""

    def __init__(self, spec: ShardSpec, workload: str, fleet_ctx) -> None:
        self.shard_id = spec.shard_id
        self.wire_bytes = 0  # nothing crosses a pipe in-process
        try:
            self.shard = Shard(spec)
            self.shard.open_boundary()
            WORKLOADS[workload](self.shard, fleet_ctx)
        except WorkerCrashed:
            raise
        except Exception as exc:
            # Same surface as a spawned worker that died during setup,
            # so callers handle in-process and process fleets alike.
            raise WorkerCrashed(
                f"worker {self.shard_id} raised during setup: {exc}",
                shard_id=self.shard_id,
                cause=f"{type(exc).__name__}: {exc}",
            ) from exc
        self._pending: Optional[
            Tuple[List[Handoff], Optional[float], bool, Any]
        ] = None
        self._busy_s = 0.0
        self._epoch = 0

    def ready(self) -> Tuple[float, Optional[float], List[Handoff], bool]:
        return (
            self.shard.server.latency_ms,
            self.shard.kernel.next_event_time(),
            self.shard.pending_cross_shard(),
            self.shard.egress_capable,
        )

    def post_advance(self, barrier_ms: float, handoffs: List[Handoff]) -> None:
        t0 = process_time()
        try:
            if handoffs:
                self.shard.ingress(handoffs)
            out = self.shard.run_until_epoch(barrier_ms)
        except WorkerCrashed:
            raise
        except Exception as exc:
            # Same structured surface as a spawned worker that raised
            # mid-epoch (the coordinator stamps barriers/barrier_ms).
            raise WorkerCrashed(
                f"worker {self.shard_id} raised mid-epoch: {exc}",
                shard_id=self.shard_id,
                cause=f"{type(exc).__name__}: {exc}",
            ) from exc
        self._busy_s += process_time() - t0
        self._epoch += 1
        # In-process workers never block on a pipe, so stall is zero by
        # construction; CPU and RSS keep the wall section comparable.
        sample = self.shard.telemetry.sample(
            self._epoch,
            barrier_ms,
            handoffs_in=len(handoffs),
            handoffs_out=len(out),
            wall={
                "cpu_s": round(self._busy_s, 6),
                "stall_s": 0.0,
                "rss_kb": _rss_kb(),
            },
        )
        self._pending = (
            out, self.shard.kernel.next_event_time(),
            self.shard.egress_capable, sample,
        )

    def wait_barrier(self) -> Tuple[List[Handoff], Optional[float], bool, Any]:
        pending, self._pending = self._pending, None
        return pending

    def post_finish(self) -> None:
        pass

    def wait_result(self) -> Dict[str, Any]:
        return collect_artifacts(self.shard, self._busy_s)

    def close(self) -> None:
        pass


class _ProcessWorker:
    """One spawned worker process behind a duplex pipe.

    The pipe carries control messages and wire frames; a per-shard
    shared-memory ring (created here, unlinked in :meth:`close` on
    *every* exit path, crashes included) carries telemetry samples and
    the chunked final artifact blob.  ``ring_bytes=0`` — or a platform
    without POSIX shared memory — disables the ring and everything
    falls back inline on the pipe, byte-identically.
    """

    def __init__(
        self, spec: ShardSpec, workload: str, fleet_ctx, context,
        timeout_s: float, ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        self.shard_id = spec.shard_id
        self.timeout_s = timeout_s
        self.wire_bytes = 0
        self.ring: Optional[ShmRing] = None
        if ring_bytes:
            try:
                self.ring = ShmRing.create(ring_bytes)
            except ShmError:
                self.ring = None  # no shm here: inline fallback
        try:
            self.conn, child = context.Pipe()
            self.process = context.Process(
                target=fleet_worker_main,
                args=(child, spec, workload, fleet_ctx,
                      self.ring.name if self.ring is not None else None),
                name=f"fleet-{spec.shard_id}",
                daemon=True,
            )
            self.process.start()
        except BaseException:
            if self.ring is not None:
                self.ring.unlink()
            raise
        child.close()

    def _recv(self):
        try:
            if not self.conn.poll(self.timeout_s):
                cause = f"no reply within {self.timeout_s:.0f}s — presumed hung"
                raise WorkerCrashed(
                    f"worker {self.shard_id} produced nothing for "
                    f"{self.timeout_s:.0f}s — presumed hung",
                    shard_id=self.shard_id,
                    cause=cause,
                )
            message = self.conn.recv()
        except (EOFError, OSError) as exc:
            self.process.join(timeout=5.0)
            raise WorkerCrashed(
                f"worker {self.shard_id} died with exit code "
                f"{self.process.exitcode}",
                shard_id=self.shard_id,
                cause=f"process died with exit code {self.process.exitcode}",
            ) from exc
        if message[0] == "error":
            # The last non-empty traceback line is the exception itself —
            # the one-line cause the CLI prints.
            lines = [line for line in str(message[1]).splitlines() if line.strip()]
            raise WorkerCrashed(
                f"worker {self.shard_id} raised:\n{message[1]}",
                shard_id=self.shard_id,
                cause=lines[-1].strip() if lines else "unknown error",
            )
        return message

    def ready(self) -> Tuple[float, Optional[float], List[Handoff], bool]:
        # ("ready", shard_id, latency_ms, next_event, frame, egress_capable)
        message = self._recv()
        frame = message[4]
        self.wire_bytes += len(frame)
        return message[2], message[3], decode_batch(frame), message[5]

    def post_advance(self, barrier_ms: float, handoffs: List[Handoff]) -> None:
        frame = encode_batch(handoffs)
        self.wire_bytes += len(frame)
        self.conn.send(("advance", barrier_ms, frame))

    def wait_barrier(self) -> Tuple[List[Handoff], Optional[float], bool, Any]:
        # ("barrier", frame, next_event, egress_capable, sample, in_ring)
        message = self._recv()
        frame, next_event, capable, sample, in_ring = message[1:6]
        self.wire_bytes += len(frame)
        if in_ring:
            sample = self._drain_sample()
        return decode_batch(frame), next_event, capable, sample

    def _drain_sample(self) -> Dict[str, Any]:
        """Pull the barrier's telemetry sample out of the ring."""
        if self.ring is None:
            raise FleetError(
                f"worker {self.shard_id} reported a ring sample but no "
                f"ring exists"
            )
        sample = None
        for record in self.ring.drain():
            if record[:1] == bytes((TELEMETRY_TAG,)) and sample is None:
                sample = json.loads(record[1:].decode("utf-8"))
            else:
                raise FleetError(
                    f"unexpected ring record from worker {self.shard_id} "
                    f"at a barrier (tag {record[:1]!r})"
                )
        if sample is None:
            raise FleetError(
                f"worker {self.shard_id} reported a ring sample but the "
                f"ring was empty"
            )
        return sample

    def post_finish(self) -> None:
        self.conn.send(("finish",))

    def wait_result(self) -> Dict[str, Any]:
        message = self._recv()
        if message[0] == "result":  # no ring: plain inline artifacts
            return message[1]
        if message[0] != "stream":
            raise FleetError(
                f"worker {self.shard_id} sent {message[0]!r} where a "
                f"result was expected"
            )
        # ("stream", blob_len, n_chunks) then per chunk: push → ("chunk",)
        # → drain → ("ok",).  The ring is empty again before every push,
        # so a chunk can never fail to fit.
        blob_len, n_chunks = message[1], message[2]
        pieces: List[bytes] = []
        for _ in range(n_chunks):
            note = self._recv()
            if note[0] != "chunk":
                raise FleetError(
                    f"worker {self.shard_id} sent {note[0]!r} mid-stream"
                )
            for record in self.ring.drain():
                if record[:1] != bytes((CHUNK_TAG,)):
                    raise FleetError(
                        f"unexpected ring record tag {record[:1]!r} in "
                        f"worker {self.shard_id}'s artifact stream"
                    )
                pieces.append(record[1:])
            self.conn.send(("ok",))
        done = self._recv()
        if done[0] != "done":
            raise FleetError(
                f"worker {self.shard_id} sent {done[0]!r} where the "
                f"stream end was expected"
            )
        blob = b"".join(pieces)
        if len(blob) != blob_len:
            raise FleetError(
                f"worker {self.shard_id}'s artifact stream is truncated: "
                f"got {len(blob)} of {blob_len} bytes"
            )
        return pickle.loads(zlib.decompress(blob))

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        # Unlink runs on every exit path — normal finish, WorkerCrashed,
        # coordinator exceptions — so a dead worker never leaks /dev/shm.
        if self.ring is not None:
            self.ring.unlink()


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------

def run_fleet(
    devices: Optional[int] = None,
    shards: int = 1,
    *,
    spec: Optional[ShardSpec] = None,
    seed: int = 0,
    hours: Optional[float] = None,
    duration_ms: Optional[float] = None,
    epoch_ms: Optional[float] = None,
    latency_ms: Optional[float] = None,
    workload: str = "battery-monitor",
    collector: str = "fleet",
    fleet_id: str = "fleet",
    spans: bool = True,
    metrics: bool = True,
    processes: bool = True,
    barrier_timeout_s: float = 600.0,
    shm_ring_bytes: int = DEFAULT_RING_BYTES,
    telemetry: bool = False,
    observer: Optional[Callable[[Dict[str, Any]], None]] = None,
    workload_ctx: Optional[Dict[str, Any]] = None,
) -> FleetResult:
    """Run one fleet partitioned across ``shards`` workers and merge.

    Pass either ``devices`` (a homogeneous battery-monitor fleet is
    built via :func:`fleet_spec`) or a full root ``spec``.  With
    ``processes=False`` the shards run in this process behind the same
    barrier protocol — byte-identical results, no spawn cost; the
    property tests use it.  ``epoch_ms`` defaults to the maximum safe
    value (the minimum cross-shard stanza latency reported by the
    workers); anything larger is rejected.

    ``latency_ms`` overrides the switchboard's base stanza latency —
    simulated physics, not a tuning knob: it changes the schedule
    itself, and it bounds the barrier window (see
    :class:`~repro.core.shard.ShardSpec`).  It must be positive and is
    applied to the root spec before partitioning, so solo and K-shard
    runs of the same latency always agree byte for byte.

    ``shm_ring_bytes`` sizes the per-shard shared-memory ring spawned
    workers use for telemetry and artifact streaming; ``0`` disables it
    (everything rides the pipe inline — same results, used by the
    fallback tests and on platforms without POSIX shared memory).

    ``telemetry=True`` arms the per-shard barrier sampler and attaches
    the collected :class:`~repro.obs.timeline.FleetTimeline` (plus the
    derived health verdict) to the result.  ``observer`` — a callable
    receiving each timeline frame as it is appended (e.g.
    :class:`~repro.obs.live.LiveView`) — implies telemetry.  Sampling
    is pull-only and never perturbs the simulation: reports and traces
    are byte-identical with telemetry on or off.
    """
    if observer is not None:
        telemetry = True
    if latency_ms is not None and not (
        isinstance(latency_ms, (int, float)) and latency_ms > 0
    ):
        raise FleetError(
            f"latency_ms must be a positive number of milliseconds, "
            f"got {latency_ms!r}"
        )
    if spec is None:
        if devices is None:
            raise FleetError("pass a device count or a root ShardSpec")
        spec = fleet_spec(
            devices, seed=seed, collector=collector, shard_id=fleet_id,
            spans=spans, metrics=metrics,
            latency_ms=latency_ms if latency_ms is not None else 80.0,
        )
    elif latency_ms is not None and spec.latency_ms != latency_ms:
        spec = replace(spec, latency_ms=latency_ms)
    # A telemetry-armed root spec and the flag are equivalent: either
    # arms every shard's sampler (partitioning copies the field).
    telemetry = telemetry or spec.telemetry
    if telemetry and not spec.telemetry:
        spec = replace(spec, telemetry=True)
    if workload not in WORKLOADS:
        raise FleetError(
            f"unknown workload {workload!r}; have {sorted(WORKLOADS)}"
        )
    plan = plan_fleet(spec, shards)
    if hours is None and duration_ms is None:
        hours = 1.0
    total_ms = float(duration_ms if duration_ms is not None else hours * HOUR)
    if total_ms <= 0:
        raise FleetError(f"duration must be positive, got {total_ms} ms")

    fleet_ctx = {
        "deploy_jids": plan.device_jids,
        "collector_jids": plan.collector_jids,
    }
    if workload_ctx:
        # Extra workload inputs (e.g. the ScenarioSpec) ride along; they
        # must be picklable — the ctx crosses the spawn pipe as data.
        fleet_ctx.update(workload_ctx)
    wall_start = perf_counter()
    workers: List[Any] = []
    try:
        if processes and plan.n_shards > 1:
            context = multiprocessing.get_context("spawn")
            workers = [
                _ProcessWorker(
                    shard_spec, workload, fleet_ctx, context,
                    barrier_timeout_s, shm_ring_bytes,
                )
                for shard_spec in plan.shards
            ]
        else:
            workers = [
                _LocalWorker(shard_spec, workload, fleet_ctx)
                for shard_spec in plan.shards
            ]
        readies = [worker.ready() for worker in workers]
        min_latency = min(latency for latency, _, _, _ in readies)
        epoch = float(epoch_ms) if epoch_ms is not None else min_latency
        if not 0 < epoch <= min_latency:
            raise FleetError(
                f"epoch must be in (0, {min_latency}] ms — the minimum "
                f"cross-shard stanza latency bounds the barrier window — "
                f"got {epoch} ms"
            )

        next_events = [next_event for _, next_event, _, _ in readies]
        capable = [flag for _, _, _, flag in readies]
        # Anything egressed during workload setup (time zero) is routed
        # with the first window grant, so receivers schedule it exactly
        # where the solo run would have.
        setup_handoffs: List[Handoff] = []
        for _, _, initial, _ in readies:
            setup_handoffs.extend(initial)
        setup_handoffs.sort(key=_handoff_sort_key)
        outbox: List[List[Handoff]] = [[] for _ in workers]
        for handoff in setup_handoffs:
            outbox[plan.owner_of(handoff.to_jid)].append(handoff)
        handoffs_total = len(setup_handoffs)
        now = 0.0
        barriers = 0
        timeline = (
            FleetTimeline(
                fleet_id=plan.root.shard_id,
                devices=len(plan.device_jids),
                shards=plan.n_shards,
            )
            if telemetry
            else None
        )

        def exchange(barrier: float) -> None:
            """Grant the window ending at ``barrier`` to every worker,
            then collect, totally order, and route the handoffs."""
            nonlocal outbox, next_events, capable, handoffs_total, barriers
            window_start = perf_counter()
            for index, worker in enumerate(workers):
                worker.post_advance(barrier, outbox[index])
            results = [worker.wait_barrier() for worker in workers]
            collected: List[Handoff] = []
            for index, (out, _, _, _) in enumerate(results):
                if out and not capable[index]:
                    # The window was placed assuming this shard could
                    # not originate traffic; silently accepting the
                    # handoffs could mis-time their delivery.
                    raise FleetError(
                        f"shard {workers[index].shard_id} egressed "
                        f"{len(out)} handoffs in a window placed on the "
                        f"assumption it could not (no remote roster "
                        f"edges at placement time) — the egress-"
                        f"capability contract requires edges to be "
                        f"wired before the window that uses them"
                    )
                collected.extend(out)
            collected.sort(key=_handoff_sort_key)
            outbox = [[] for _ in workers]
            for handoff in collected:
                outbox[plan.owner_of(handoff.to_jid)].append(handoff)
            handoffs_total += len(collected)
            next_events = [next_event for _, next_event, _, _ in results]
            capable = [flag for _, _, flag, _ in results]
            barriers += 1
            if timeline is not None:
                frame = timeline.append(
                    epoch=barriers,
                    barrier_ms=barrier,
                    samples=[sample for _, _, _, sample in results],
                    handoffs=len(collected),
                    backlog=sum(len(granted) for granted in outbox),
                    window_wall_s=perf_counter() - window_start,
                )
                if observer is not None:
                    observer(frame)

        try:
            while now < total_ms:
                # Adaptive horizon: only egress-capable shards can bound
                # the window.  Their next local event may egress, and a
                # handoff granted to a capable receiver may trigger an
                # egress at its due time; everything else — including
                # every event on incapable shards — runs free inside an
                # arbitrarily wide window.
                wakeups = [
                    next_event
                    for next_event, flag in zip(next_events, capable)
                    if flag and next_event is not None
                ]
                for index, granted in enumerate(outbox):
                    if capable[index]:
                        wakeups.extend(
                            handoff.submit_ms + min_latency
                            for handoff in granted
                        )
                if not wakeups:
                    barrier = total_ms  # nothing can cross again: jump
                else:
                    barrier = min(total_ms, max(now, min(wakeups)) + epoch)
                exchange(barrier)
                now = barrier

            # Horizon drain: handoffs collected at the final barrier can
            # be due at or before the horizon (``run_until`` executes
            # events at exactly T), and executing them can egress more.
            # Keep draining zero-length windows until nothing new
            # crosses; afterwards the receivers' heaps hold the same
            # still-due entries the solo run would hold at T.
            while any(outbox):
                exchange(total_ms)
        except WorkerCrashed as exc:
            # Stamp how far the fleet got so the CLI can say "crashed at
            # epoch N (t=... ms sim)" without re-deriving it.
            exc.barriers = barriers
            exc.barrier_ms = now
            raise

        for worker in workers:
            worker.post_finish()
        artifacts = [worker.wait_result() for worker in workers]
    finally:
        for worker in workers:
            worker.close()

    wall_s = perf_counter() - wall_start
    report = merge_fleet_reports(
        [artifact["report"] for artifact in artifacts], fleet_id=plan.root.shard_id
    )
    return FleetResult(
        report=report,
        report_json=report_to_json(report),
        metrics=merge_metrics([artifact["metrics"] for artifact in artifacts]),
        trace_jsonl=merge_trace_jsonl(
            [(artifact["shard_id"], artifact["trace_jsonl"]) for artifact in artifacts]
        ),
        shard_reports=tuple(artifact["report"] for artifact in artifacts),
        devices=len(plan.device_jids),
        shards=plan.n_shards,
        epoch_ms=epoch,
        barriers=barriers,
        handoffs=handoffs_total,
        wall_s=wall_s,
        critical_path_s=max(
            artifact.get("busy_s", 0.0) for artifact in artifacts
        ),
        handoff_bytes=sum(worker.wire_bytes for worker in workers),
        timeline=timeline,
        health=fleet_health(timeline) if timeline is not None else None,
        shard_extras=tuple(artifact.get("extra") for artifact in artifacts),
    )
