"""Deterministic fleet partitioning: one root spec → K shard specs.

The partitioner is pure data manipulation — no kernel is built here.
Three properties make the partitioned run byte-identical to the solo
one:

* **Global JID numbering.**  Device JIDs are assigned from the *root*
  roster order (``device-1@pogo`` … ``device-N@pogo``) and pinned into
  every per-shard :class:`DeviceSpec`.  Per-device random streams are
  keyed by JID (``accel/device-7@pogo`` …), so a shard hosting devices
  {2, 5, 8} draws, for each of them, exactly the bytes the single-shard
  run would have drawn.
* **Shared root seed.**  Every shard spec carries the root seed
  unchanged; :class:`~repro.sim.randomness.RandomStreams` derives each
  named stream from ``(seed, name)`` by hashing, so per-shard streams
  are independent of which other streams exist on the shard.
* **Deterministic assignment.**  Device *i* (0-based root order) lives
  on shard ``i % K``; collectors live on shard 0.  The mapping is a
  function of (roster, K) only.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..core.shard import DeviceSpec, ShardSpec
from ..device.radio import KPN, CarrierProfile


class PartitionError(ValueError):
    """Raised for rosters that cannot be partitioned unambiguously."""


def device_jid(index: int) -> str:
    """The global JID of the ``index``-th device (0-based root order)."""
    return f"device-{index + 1}@pogo"


def collector_jid(name: str) -> str:
    return f"{name}@pogo"


def fleet_spec(
    devices: int,
    *,
    seed: int = 0,
    collector: str = "fleet",
    shard_id: str = "fleet",
    carrier: CarrierProfile = KPN,
    record_trace: bool = False,
    spans: bool = True,
    metrics: bool = True,
    latency_ms: float = 80.0,
    device: Optional[DeviceSpec] = None,
) -> ShardSpec:
    """Build the root spec for a homogeneous N-device fleet.

    The default device shape matches the bench workload: sensors plus
    the e-mail app whose radio activity batches piggyback on (Table 3).

    ``latency_ms`` is the switchboard's base stanza latency — simulated
    physics, not a tuning knob: it changes the schedule itself, and it
    bounds the fleet's epoch-barrier window (see
    :class:`~repro.core.shard.ShardSpec`).  Partitioning copies it to
    every shard, so solo and K-shard runs of one spec always agree.
    """
    if devices < 0:
        raise PartitionError(f"device count must be >= 0, got {devices}")
    template = device if device is not None else DeviceSpec(with_email_app=True)
    return ShardSpec(
        shard_id=shard_id,
        seed=seed,
        carrier=carrier,
        record_trace=record_trace,
        spans=spans,
        metrics=metrics,
        latency_ms=latency_ms,
        collectors=(collector,),
        devices=tuple(template for _ in range(devices)),
    )


@dataclass(frozen=True)
class FleetPlan:
    """The full deterministic partition of one fleet.

    ``root`` is the input spec with every device JID made explicit —
    running ``Shard(plan.root)`` solo is the reference execution the
    merged K-shard run must reproduce byte for byte.  ``owners`` maps
    every JID (devices and collectors) to the index of the shard spec
    in ``shards`` that hosts it.
    """

    root: ShardSpec
    shards: Tuple[ShardSpec, ...]
    owners: Dict[str, int]
    device_jids: Tuple[str, ...]
    collector_jids: Tuple[str, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def owner_of(self, jid: str) -> int:
        try:
            return self.owners[jid]
        except KeyError:
            raise PartitionError(f"no shard in this plan hosts {jid}") from None


def plan_fleet(root: ShardSpec, shards: int) -> FleetPlan:
    """Split ``root`` into ``shards`` per-shard specs.

    Devices are dealt round-robin (device *i* → shard ``i % K``) so every
    shard carries an equal share of the fleet; collectors are placed on
    shard 0.  Shard ids are ``{root.shard_id}/{k}``.
    """
    if shards < 1:
        raise PartitionError(f"shard count must be >= 1, got {shards}")

    resolved_devices = []
    jids_seen: Dict[str, int] = {}
    for index, spec in enumerate(root.devices):
        jid = spec.jid if spec.jid is not None else device_jid(index)
        if jid in jids_seen:
            raise PartitionError(
                f"duplicate device JID {jid!r} at roster positions "
                f"{jids_seen[jid]} and {index}"
            )
        jids_seen[jid] = index
        resolved_devices.append(replace(spec, jid=jid))

    collector_names = list(root.collectors)
    if len(set(collector_names)) != len(collector_names):
        raise PartitionError(f"duplicate collector names: {collector_names}")
    collector_jids_ = tuple(collector_jid(name) for name in collector_names)
    clash = set(collector_jids_) & set(jids_seen)
    if clash:
        raise PartitionError(f"collector/device JID clash: {sorted(clash)}")

    resolved_root = replace(root, devices=tuple(resolved_devices))

    owners: Dict[str, int] = {}
    per_shard_devices: list = [[] for _ in range(shards)]
    for index, spec in enumerate(resolved_devices):
        shard_index = index % shards
        per_shard_devices[shard_index].append(spec)
        owners[spec.jid] = shard_index
    for jid in collector_jids_:
        owners[jid] = 0

    shard_specs = tuple(
        replace(
            resolved_root,
            shard_id=f"{root.shard_id}/{k}",
            collectors=root.collectors if k == 0 else (),
            devices=tuple(per_shard_devices[k]),
        )
        for k in range(shards)
    )
    return FleetPlan(
        root=resolved_root,
        shards=shard_specs,
        owners=owners,
        device_jids=tuple(spec.jid for spec in resolved_devices),
        collector_jids=collector_jids_,
    )
