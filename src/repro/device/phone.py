"""The simulated smartphone: composition of all hardware components.

A :class:`Phone` owns a power rail, CPU, battery, cellular modem and Wi-Fi
radio, and adds the two cross-cutting behaviours the middleware interacts
with:

* **Connectivity management.**  "Mobile phones frequently switch between
  wireless interfaces as the user moves in- or out of range of access
  points and cell towers" (Section 4.6).  The phone tracks the active
  interface (Wi-Fi preferred over cellular, like Android) and notifies
  listeners on changes, which is what drives Pogo's reconnection logic.
* **Lifecycle.**  Phones reboot and run out of battery (Section 5.3 lists
  these as causes of lost cluster state).  ``reboot()`` takes the device
  down for a configurable time and fires shutdown/boot listeners the Pogo
  runtime registers with.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.kernel import Kernel, SECOND
from ..sim.trace import TraceRecorder
from .battery import Battery, BatteryConfig
from .cpu import Cpu, CpuConfig
from .power import PowerRail
from .radio import KPN, CarrierProfile, Modem, RadioUnavailable
from .wifi import WifiConfig, WifiInterface, WifiUnavailable

#: Active-interface names.
INTERFACE_WIFI = "wifi"
INTERFACE_CELLULAR = "cellular"


class PhoneOffline(Exception):
    """Raised when a transfer is requested with no interface available."""


class Phone:
    """A simulated Android handset."""

    def __init__(
        self,
        kernel: Kernel,
        name: str = "phone",
        profile: CarrierProfile = KPN,
        cpu_config: Optional[CpuConfig] = None,
        wifi_config: Optional[WifiConfig] = None,
        battery_config: Optional[BatteryConfig] = None,
        trace: Optional[TraceRecorder] = None,
        simulate_paging: bool = False,
        track_power_history: bool = False,
        platform_floor_w: float = 0.003,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.trace = trace
        self.rail = PowerRail(kernel, track_history=track_power_history)
        # Always-on platform components (PMIC, RAM self-refresh, RTC).
        self.rail.set_draw("platform", platform_floor_w)
        self.cpu = Cpu(kernel, self.rail, cpu_config, name=f"{name}.cpu", trace=trace)
        self.battery = Battery(kernel, self.rail, battery_config)
        self.modem = Modem(
            kernel,
            self.rail,
            profile,
            name=f"{name}.modem",
            trace=trace,
            simulate_paging=simulate_paging,
        )
        self.wifi = WifiInterface(kernel, self.rail, wifi_config, name=f"{name}.wifi", trace=trace)
        self.wifi.on_connectivity.append(self._on_wifi_connectivity)

        self.alive = True
        self.reboot_count = 0
        self._wifi_desired = False
        #: When True the phone never associates with Wi-Fi (no *known*
        #: networks in range — e.g. abroad).  Scanning still works; only
        #: internet-over-Wi-Fi is affected.
        self.wifi_association_suppressed = False
        self.on_interface_change: List[Callable[[Optional[str]], None]] = []
        self.on_shutdown: List[Callable[[], None]] = []
        self.on_boot: List[Callable[[], None]] = []
        self._last_interface = self.active_interface()

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def active_interface(self) -> Optional[str]:
        """The interface data would use right now (Wi-Fi preferred)."""
        if not self.alive:
            return None
        if self.wifi.available:
            return INTERFACE_WIFI
        if self.modem.available:
            return INTERFACE_CELLULAR
        return None

    def _on_wifi_connectivity(self, _connected: bool) -> None:
        self._interface_changed()

    def _interface_changed(self) -> None:
        current = self.active_interface()
        if current == self._last_interface:
            return
        self._last_interface = current
        if self.trace is not None:
            self.trace.record(self.name, "interface_change", interface=current)
        # Interface changes are pushed to apps by the OS, waking the CPU.
        if self.alive:
            self.cpu.wake("connectivity")
        for listener in list(self.on_interface_change):
            listener(current)

    def set_cell_coverage(self, coverage: bool) -> None:
        self.modem.set_coverage(coverage)
        self._interface_changed()

    def set_data_enabled(self, enabled: bool) -> None:
        self.modem.set_data_enabled(enabled)
        self._interface_changed()

    def set_wifi_connected(self, connected: bool) -> None:
        self._wifi_desired = connected
        if self.alive:
            self.wifi.set_connected(connected and not self.wifi_association_suppressed)
        # wifi.on_connectivity already routes to _interface_changed().

    def suppress_wifi_association(self, suppressed: bool) -> None:
        """No known Wi-Fi networks available (user 2a abroad)."""
        self.wifi_association_suppressed = suppressed
        self.set_wifi_connected(self._wifi_desired)
        self._interface_changed()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def transfer(
        self,
        tx_bytes: int = 0,
        rx_bytes: int = 0,
        duration_hint_ms: float = 0.0,
        on_complete: Optional[Callable[[bool], None]] = None,
        label: str = "",
    ):
        """Send/receive over the active interface (Wi-Fi preferred)."""
        interface = self.active_interface()
        if interface == INTERFACE_WIFI:
            return self.wifi.transfer(tx_bytes, rx_bytes, duration_hint_ms, on_complete, label)
        if interface == INTERFACE_CELLULAR:
            return self.modem.transfer(tx_bytes, rx_bytes, duration_hint_ms, on_complete, label)
        raise PhoneOffline(f"{self.name}: no active interface")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reboot(self, downtime_ms: float = 45 * SECOND) -> None:
        """Power-cycle the device (loses all volatile state up the stack)."""
        if not self.alive:
            return
        self.alive = False
        self.reboot_count += 1
        if self.trace is not None:
            self.trace.record(self.name, "shutdown")
        for listener in list(self.on_shutdown):
            listener()
        self.modem.power_off()
        self.wifi.set_connected(False)
        self._interface_changed()
        self.kernel.schedule(downtime_ms, self._boot)

    def _boot(self) -> None:
        self.alive = True
        if self.trace is not None:
            self.trace.record(self.name, "boot")
        self.cpu.wake("boot")
        self.modem.power_on()
        self.wifi.set_connected(self._wifi_desired and not self.wifi_association_suppressed)
        self._interface_changed()
        for listener in list(self.on_boot):
            listener()

    @property
    def energy_joules(self) -> float:
        """Total energy drawn from the battery so far."""
        return self.rail.energy_joules
