"""3G modem model: RRC power states, carrier tail timers, byte counters.

Section 4.7 and Figure 3 of the paper describe the energy behaviour this
module reproduces.  A UMTS modem moves through radio resource control
(RRC) states:

* **IDLE** — duty-cycled paging; near-zero power (small periodic spikes,
  visible in Figure 3 before *a* and after *d*).
* **ramp-up** — several seconds of channel negotiation with the cell
  tower before any data flows (Figure 3, between *a* and the start of the
  transfer).
* **DCH** — dedicated channel, high power.  After the last transfer the
  modem *stays* in DCH for a carrier-configured inactivity timeout
  (≈6 s on KPN, between *b* and *c*).
* **FACH** — shared channel, medium power, for a further long timeout
  (≈53.5 s on KPN, between *c* and *d*).

The DCH + FACH dwell after the last byte is the **tail**; the paper's
Table 3 shows it differs strongly per carrier.  Per-carrier parameters
live in :class:`CarrierProfile`; the three profiles shipped here are
calibrated so the Table 3 *shape* (KPN longest tail and highest baseline;
single-digit-percent Pogo overhead) is reproduced.

The modem also maintains cumulative byte counters for its interface —
exactly the observable that Pogo's tail detection polls (Section 4.7:
"periodically read the number of bytes received and transmitted on the
2G/3G network interface").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Deque, Dict, List, Optional

from collections import deque

from ..sim.kernel import EventHandle, Kernel
from ..sim.trace import IntervalTrack, TraceRecorder


class RadioUnavailable(Exception):
    """Raised when a transfer is requested with no usable cellular link."""


@dataclass(frozen=True)
class CarrierProfile:
    """RRC timers, power levels and bandwidths for one mobile carrier.

    Power levels approximate published Galaxy Nexus class measurements
    (Balasubramanian et al., IMC'09; Qian et al., IMC'10 — the paper's
    refs [2, 24]); tail timers are per-carrier and calibrated against
    Figure 3 (KPN: ~6 s DCH, ~53.5 s FACH).
    """

    name: str
    ramp_ms: float = 2300.0
    dch_tail_ms: float = 6000.0
    fach_tail_ms: float = 53500.0
    fach_to_dch_ms: float = 600.0
    idle_w: float = 0.004
    ramp_w: float = 0.50
    dch_w: float = 0.80
    fach_w: float = 0.24
    uplink_bytes_per_s: float = 100_000.0
    downlink_bytes_per_s: float = 300_000.0
    min_transfer_ms: float = 250.0
    #: Paging duty cycle in IDLE (the small spikes in Figure 3).  Only
    #: simulated when ``Modem.simulate_paging`` is on; long experiments
    #: disable it to keep the event count down.
    paging_period_ms: float = 2560.0
    paging_duration_ms: float = 80.0
    paging_w: float = 0.12

    def with_overrides(self, **kwargs: Any) -> "CarrierProfile":
        """A copy of the profile with selected fields replaced."""
        return replace(self, **kwargs)


#: The three major Dutch carriers the paper measured (Table 3).  KPN shows
#: by far the longest FACH tail; T-Mobile the shortest.
KPN = CarrierProfile(name="KPN", dch_tail_ms=6000.0, fach_tail_ms=53500.0)
T_MOBILE = CarrierProfile(name="T-Mobile", dch_tail_ms=4500.0, fach_tail_ms=25000.0)
VODAFONE = CarrierProfile(name="Vodafone", dch_tail_ms=5000.0, fach_tail_ms=31000.0)

CARRIERS: Dict[str, CarrierProfile] = {p.name: p for p in (KPN, T_MOBILE, VODAFONE)}

#: RRC states.
IDLE = "idle"
RAMP = "ramp"
DCH = "dch"
FACH = "fach"
OFF = "off"


@dataclass
class TransferJob:
    """One queued data transfer."""

    tx_bytes: int = 0
    rx_bytes: int = 0
    #: Lower bound on the radio-active duration, for chatty exchanges
    #: (e.g. an IMAP dialogue) whose duration is latency- not
    #: bandwidth-bound.
    duration_hint_ms: float = 0.0
    on_complete: Optional[Callable[[bool], None]] = None
    label: str = ""


class Modem:
    """The cellular modem: a queue of transfers over an RRC state machine."""

    def __init__(
        self,
        kernel: Kernel,
        rail,
        profile: CarrierProfile,
        name: str = "modem",
        trace: Optional[TraceRecorder] = None,
        simulate_paging: bool = False,
    ) -> None:
        self._kernel = kernel
        self._rail = rail
        self.profile = profile
        self.name = name
        self.trace = trace
        self.simulate_paging = simulate_paging

        self.state = IDLE
        self.transferring = False
        self.data_enabled = True
        self.coverage = True
        #: Cumulative interface byte counters — what tail detection reads.
        self.bytes_tx = 0
        self.bytes_rx = 0
        self.transfer_count = 0
        #: Number of times the modem left IDLE, i.e. paid a ramp-up.  A
        #: synchronized Pogo adds payload without adding ramp-ups.
        self.rampup_count = 0

        self._queue: Deque[TransferJob] = deque()
        self._state_timer: Optional[EventHandle] = None
        self._job_timer: Optional[EventHandle] = None
        self._current_job: Optional[TransferJob] = None
        self._paging_timer: Optional[EventHandle] = None
        self._paging_blip_timer: Optional[EventHandle] = None

        self.on_state_change: List[Callable[[str, str], None]] = []
        self.active_track = IntervalTrack("radio", kernel.read_now)
        self._apply_power()
        self._arm_paging()

    # ------------------------------------------------------------------
    # Availability
    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        """Whether data can currently be sent over this modem."""
        return self.state != OFF and self.coverage and self.data_enabled

    def set_coverage(self, coverage: bool) -> None:
        """Cell coverage appears/disappears (user 3's 3G outage)."""
        if coverage == self.coverage:
            return
        self.coverage = coverage
        if not coverage:
            self._fail_all("coverage lost")

    def set_data_enabled(self, enabled: bool) -> None:
        """Mobile data toggle (user 2a turning off data roaming)."""
        if enabled == self.data_enabled:
            return
        self.data_enabled = enabled
        if not enabled:
            self._fail_all("data disabled")

    def power_off(self) -> None:
        self._fail_all("modem off")
        self._set_state(OFF)

    def power_on(self) -> None:
        if self.state == OFF:
            self._set_state(IDLE)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def transfer(
        self,
        tx_bytes: int = 0,
        rx_bytes: int = 0,
        duration_hint_ms: float = 0.0,
        on_complete: Optional[Callable[[bool], None]] = None,
        label: str = "",
    ) -> TransferJob:
        """Queue a transfer.  ``on_complete(success)`` fires when done.

        Raises :class:`RadioUnavailable` when there is no usable link;
        callers that can buffer (Pogo's transport) check
        :attr:`available` first.
        """
        if not self.available:
            raise RadioUnavailable(
                f"{self.name}: state={self.state} coverage={self.coverage} "
                f"data_enabled={self.data_enabled}"
            )
        job = TransferJob(tx_bytes, rx_bytes, duration_hint_ms, on_complete, label)
        self._queue.append(job)
        self._pump()
        return job

    def _pump(self) -> None:
        if self.transferring or not self._queue:
            return
        if self.state == DCH:
            self._cancel_state_timer()
            self._start_job()
        elif self.state == IDLE:
            self.rampup_count += 1
            self._set_state(RAMP)
            self._state_timer = self._kernel.schedule(self.profile.ramp_ms, self._ramp_done)
        elif self.state == FACH:
            # Promotion from shared to dedicated channel is faster than a
            # cold ramp-up but not free.
            self._cancel_state_timer()
            self._set_state(RAMP)
            self._state_timer = self._kernel.schedule(self.profile.fach_to_dch_ms, self._ramp_done)
        # If already in RAMP the job starts when the ramp completes.

    def _ramp_done(self) -> None:
        self._state_timer = None
        self._set_state(DCH)
        self._start_job()

    def _start_job(self) -> None:
        if not self._queue:
            self._arm_dch_tail()
            return
        job = self._queue.popleft()
        self._current_job = job
        self.transferring = True
        # Credit the byte counters at transfer start: the OS counters rise
        # as packets flow, so a 1 Hz poll observes the change mid-burst.
        self.bytes_tx += job.tx_bytes
        self.bytes_rx += job.rx_bytes
        self.transfer_count += 1
        duration = max(
            self.profile.min_transfer_ms,
            job.duration_hint_ms,
            (
                job.tx_bytes / self.profile.uplink_bytes_per_s
                + job.rx_bytes / self.profile.downlink_bytes_per_s
            )
            * 1000.0,
        )
        if self.trace is not None:
            self.trace.record(
                self.name, "transfer_start", label=job.label, tx=job.tx_bytes, rx=job.rx_bytes
            )
        self._job_timer = self._kernel.schedule(duration, self._job_done, job)

    def _job_done(self, job: TransferJob) -> None:
        self._job_timer = None
        self._current_job = None
        self.transferring = False
        if self.trace is not None:
            self.trace.record(self.name, "transfer_done", label=job.label)
        if job.on_complete is not None:
            job.on_complete(True)
        if self._queue:
            self._start_job()
        else:
            self._arm_dch_tail()

    def _fail_all(self, reason: str) -> None:
        """Abort the in-flight and queued jobs (link loss)."""
        jobs: List[TransferJob] = []
        if self._current_job is not None:
            jobs.append(self._current_job)
            self._current_job = None
            self.transferring = False
        if self._job_timer is not None:
            self._job_timer.cancel()
            self._job_timer = None
        jobs.extend(self._queue)
        self._queue.clear()
        if self.trace is not None and jobs:
            self.trace.record(self.name, "transfers_failed", reason=reason, count=len(jobs))
        if self.state == DCH:
            self._arm_dch_tail()
        elif self.state == RAMP:
            self._cancel_state_timer()
            self._set_state(IDLE)
        for job in jobs:
            if job.on_complete is not None:
                job.on_complete(False)

    # ------------------------------------------------------------------
    # Tail timers
    # ------------------------------------------------------------------
    def _arm_dch_tail(self) -> None:
        self._cancel_state_timer()
        self._state_timer = self._kernel.schedule(self.profile.dch_tail_ms, self._dch_tail_expired)

    def _dch_tail_expired(self) -> None:
        self._state_timer = None
        self._set_state(FACH)
        self._state_timer = self._kernel.schedule(self.profile.fach_tail_ms, self._fach_tail_expired)

    def _fach_tail_expired(self) -> None:
        self._state_timer = None
        self._set_state(IDLE)

    def _cancel_state_timer(self) -> None:
        if self._state_timer is not None:
            self._state_timer.cancel()
            self._state_timer = None

    # ------------------------------------------------------------------
    # State & power
    # ------------------------------------------------------------------
    def _set_state(self, new_state: str) -> None:
        old_state = self.state
        if new_state == old_state:
            return
        self.state = new_state
        self._apply_power()
        if old_state == IDLE:
            self._disarm_paging()
            self.active_track.open(label=new_state)
        if new_state in (IDLE, OFF):
            self.active_track.close()
            if new_state == IDLE:
                self._arm_paging()
        if self.trace is not None:
            self.trace.record(self.name, "state", old=old_state, new=new_state)
        for listener in list(self.on_state_change):
            listener(old_state, new_state)

    def _apply_power(self) -> None:
        watts = {
            OFF: 0.0,
            IDLE: self.profile.idle_w,
            RAMP: self.profile.ramp_w,
            DCH: self.profile.dch_w,
            FACH: self.profile.fach_w,
        }[self.state]
        self._rail.set_draw(self.name, watts)

    # ------------------------------------------------------------------
    # Paging duty cycle (cosmetic spikes in IDLE, Figure 3)
    # ------------------------------------------------------------------
    def _arm_paging(self) -> None:
        if not self.simulate_paging or self.state != IDLE:
            return
        self._paging_timer = self._kernel.schedule(self.profile.paging_period_ms, self._paging_blip)

    def _disarm_paging(self) -> None:
        for timer_attr in ("_paging_timer", "_paging_blip_timer"):
            timer = getattr(self, timer_attr)
            if timer is not None:
                timer.cancel()
                setattr(self, timer_attr, None)

    def _paging_blip(self) -> None:
        self._paging_timer = None
        if self.state != IDLE:
            return
        self._rail.set_draw(self.name, self.profile.idle_w + self.profile.paging_w)
        self._paging_blip_timer = self._kernel.schedule(self.profile.paging_duration_ms, self._paging_blip_end)

    def _paging_blip_end(self) -> None:
        self._paging_blip_timer = None
        if self.state == IDLE:
            self._apply_power()
        self._arm_paging()

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Combined counter, the quantity Pogo's tail detector samples."""
        return self.bytes_tx + self.bytes_rx
