"""Wi-Fi interface model: data transfers and access-point scans.

Two distinct roles, matching the paper:

* **Data.** One participant (user 7) had no mobile Internet and offloaded
  over Wi-Fi; phones also switch to Wi-Fi when in range of a known access
  point.  Wi-Fi transfers have no multi-second RRC tail, so they are
  modelled as a simple active-power burst.
* **Scanning.** The localization application's ``scan`` script requests an
  access-point scan every minute.  A scan takes 1–2 seconds ("If the CPU
  is not kept awake during the 1-2 seconds the process generally
  requires, the application will not be notified upon scan completion",
  Section 4.5) — callers must hold a wake lock for the result to arrive,
  which Pogo's scheduler does on their behalf.

The actual scan *contents* come from the world model: the environment
installs a ``scan_source`` callback returning the visible access points
at the phone's current location.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional, Tuple

from ..sim.kernel import EventHandle, Kernel
from ..sim.trace import TraceRecorder


class WifiUnavailable(Exception):
    """Raised when a data transfer is requested without a connection."""


@dataclass
class WifiConfig:
    """Power and timing parameters for the Wi-Fi radio."""

    idle_connected_w: float = 0.004
    active_w: float = 0.70
    scan_w: float = 0.45
    scan_duration_ms: float = 1500.0
    uplink_bytes_per_s: float = 500_000.0
    downlink_bytes_per_s: float = 1_000_000.0
    min_transfer_ms: float = 80.0


@dataclass
class WifiJob:
    tx_bytes: int = 0
    rx_bytes: int = 0
    duration_hint_ms: float = 0.0
    on_complete: Optional[Callable[[bool], None]] = None
    label: str = ""


class WifiInterface:
    """Wi-Fi radio with scanning and (tail-free) data transfer."""

    def __init__(
        self,
        kernel: Kernel,
        rail,
        config: Optional[WifiConfig] = None,
        name: str = "wifi",
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self._kernel = kernel
        self._rail = rail
        self.config = config or WifiConfig()
        self.name = name
        self.trace = trace

        self.enabled = True
        self.connected = False
        self.bytes_tx = 0
        self.bytes_rx = 0
        self.scan_count = 0

        #: Callback installed by the world model; returns the list of
        #: access-point readings visible at the phone's location.
        self.scan_source: Optional[Callable[[], List[Any]]] = None
        self.on_connectivity: List[Callable[[bool], None]] = []

        self._queue: Deque[WifiJob] = deque()
        self._busy = False
        self._scan_busy = False
        self._apply_power()

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    @property
    def available(self) -> bool:
        return self.enabled and self.connected

    def set_enabled(self, enabled: bool) -> None:
        if enabled == self.enabled:
            return
        self.enabled = enabled
        if not enabled and self.connected:
            self.set_connected(False)
        self._apply_power()

    def set_connected(self, connected: bool) -> None:
        """Association with a known AP appears/disappears (world-driven)."""
        if not self.enabled and connected:
            return
        if connected == self.connected:
            return
        self.connected = connected
        if not connected:
            self._fail_all("wifi disconnected")
        self._apply_power()
        if self.trace is not None:
            self.trace.record(self.name, "connectivity", connected=connected)
        for listener in list(self.on_connectivity):
            listener(connected)

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def transfer(
        self,
        tx_bytes: int = 0,
        rx_bytes: int = 0,
        duration_hint_ms: float = 0.0,
        on_complete: Optional[Callable[[bool], None]] = None,
        label: str = "",
    ) -> WifiJob:
        if not self.available:
            raise WifiUnavailable(f"{self.name}: enabled={self.enabled} connected={self.connected}")
        job = WifiJob(tx_bytes, rx_bytes, duration_hint_ms, on_complete, label)
        self._queue.append(job)
        self._pump()
        return job

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        job = self._queue.popleft()
        self._busy = True
        self.bytes_tx += job.tx_bytes
        self.bytes_rx += job.rx_bytes
        duration = max(
            self.config.min_transfer_ms,
            job.duration_hint_ms,
            (
                job.tx_bytes / self.config.uplink_bytes_per_s
                + job.rx_bytes / self.config.downlink_bytes_per_s
            )
            * 1000.0,
        )
        self._apply_power()
        self._kernel.schedule(duration, self._job_done, job)

    def _job_done(self, job: WifiJob) -> None:
        self._busy = False
        self._apply_power()
        if job.on_complete is not None:
            job.on_complete(True)
        self._pump()

    def _fail_all(self, reason: str) -> None:
        jobs = list(self._queue)
        self._queue.clear()
        if self.trace is not None and jobs:
            self.trace.record(self.name, "transfers_failed", reason=reason, count=len(jobs))
        for job in jobs:
            if job.on_complete is not None:
                job.on_complete(False)

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self, on_complete: Callable[[List[Any]], None]) -> bool:
        """Start an access-point scan; results delivered asynchronously.

        Returns ``False`` if the radio is disabled or a scan is already in
        flight (results will be shared by the earlier request in real
        Android; here the caller simply retries on its next interval).
        """
        if not self.enabled or self._scan_busy:
            return False
        self._scan_busy = True
        self.scan_count += 1
        self._apply_power()
        self._kernel.schedule(self.config.scan_duration_ms, self._scan_done, on_complete)
        return True

    def _scan_done(self, on_complete: Callable[[List[Any]], None]) -> None:
        self._scan_busy = False
        self._apply_power()
        readings = self.scan_source() if self.scan_source is not None else []
        if self.trace is not None:
            self.trace.record(self.name, "scan_done", ap_count=len(readings))
        on_complete(readings)

    # ------------------------------------------------------------------
    def _apply_power(self) -> None:
        if not self.enabled:
            watts = 0.0
        elif self._busy:
            watts = self.config.active_w
        elif self._scan_busy:
            watts = self.config.scan_w
        else:
            watts = self.config.idle_connected_w if self.connected else 0.001
        self._rail.set_draw(self.name, watts)

    @property
    def total_bytes(self) -> int:
        return self.bytes_tx + self.bytes_rx
