"""Battery model: state of charge, voltage curve and energy accounting.

The localization deployment sampled battery voltage once a minute (Section
5.2), and the example collector receives exactly those readings, so the
battery needs a plausible voltage curve.  The model is deliberately
simple:

* a fixed usable energy capacity (J), drained by the rail's integral;
* an open-circuit voltage that falls piecewise-linearly with state of
  charge (Li-ion-ish: 4.20 V full, ~3.70 V mid, 3.40 V empty);
* a load-dependent sag ``I * R_internal`` so that heavy radio activity is
  visible in the voltage signal, as it is on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.kernel import Kernel
from .power import PowerRail

#: Open-circuit voltage curve as (state_of_charge, volts) breakpoints.
DEFAULT_VOLTAGE_CURVE = (
    (0.00, 3.40),
    (0.05, 3.55),
    (0.20, 3.68),
    (0.50, 3.78),
    (0.80, 3.95),
    (1.00, 4.20),
)


@dataclass
class BatteryConfig:
    """Capacity and electrical parameters.

    The Galaxy Nexus shipped a 1750 mAh battery; at a 3.8 V nominal
    voltage that is roughly 1750 mAh * 3.6 * 3.8 ≈ 23,940 J.
    """

    capacity_j: float = 23_940.0
    internal_resistance_ohm: float = 0.25
    nominal_voltage: float = 3.8


class Battery:
    """Tracks state of charge from the rail's energy integral."""

    def __init__(
        self,
        kernel: Kernel,
        rail: PowerRail,
        config: Optional[BatteryConfig] = None,
        initial_level: float = 1.0,
    ) -> None:
        if not 0.0 <= initial_level <= 1.0:
            raise ValueError("initial_level must be within [0, 1]")
        self._kernel = kernel
        self._rail = rail
        self.config = config or BatteryConfig()
        self._initial_level = initial_level
        self._baseline_energy = rail.energy_joules
        self.on_depleted: List[Callable[[], None]] = []
        self._depleted_notified = False
        #: Charger state: SystemSens/LiveLab-style tools (and the
        #: alternative transmission policy the paper mentions) key off
        #: whether the phone is plugged in.
        self.charging = False
        self.on_charging_changed: List[Callable[[bool], None]] = []
        # Energy drawn while *unplugged* — what actually costs battery.
        self._off_charger_j = 0.0
        self._off_charger_mark = rail.energy_joules

    @property
    def drained_joules(self) -> float:
        """Energy drawn from the battery since construction/last recharge."""
        return self._rail.energy_joules - self._baseline_energy

    @property
    def level(self) -> float:
        """State of charge in [0, 1]."""
        level = self._initial_level - self.drained_joules / self.config.capacity_j
        return max(0.0, min(1.0, level))

    @property
    def depleted(self) -> bool:
        return self.level <= 0.0

    def check_depleted(self) -> bool:
        """Poll for depletion; fires ``on_depleted`` once when flat."""
        if self.depleted and not self._depleted_notified:
            self._depleted_notified = True
            for listener in list(self.on_depleted):
                listener()
        return self.depleted

    def recharge(self, level: float = 1.0) -> None:
        """Recharge to the given state of charge."""
        if not 0.0 <= level <= 1.0:
            raise ValueError("level must be within [0, 1]")
        self._initial_level = level
        self._baseline_energy = self._rail.energy_joules
        self._depleted_notified = False

    def set_charging(self, charging: bool) -> None:
        """Plug in / unplug the charger.

        The model does not simulate charge current; unplugging simply
        tops the state of charge up to full if the phone was plugged in
        long enough to matter (overnight charging).  What the middleware
        cares about is the *event*: the charger-delay transmission policy
        flushes on plug-in.
        """
        if charging == self.charging:
            return
        if charging:
            # Close the unplugged accounting interval.
            self._off_charger_j += self._rail.energy_joules - self._off_charger_mark
        else:
            self._off_charger_mark = self._rail.energy_joules
        self.charging = charging
        if not charging:
            self.recharge(1.0)
        for listener in list(self.on_charging_changed):
            listener(charging)

    @property
    def discharge_joules(self) -> float:
        """Cumulative energy drawn from the battery (excludes time on the
        charger, when the rail is mains-powered)."""
        total = self._off_charger_j
        if not self.charging:
            total += self._rail.energy_joules - self._off_charger_mark
        return total

    def open_circuit_voltage(self) -> float:
        """Voltage from the SoC curve, ignoring load."""
        soc = self.level
        curve = DEFAULT_VOLTAGE_CURVE
        for (s0, v0), (s1, v1) in zip(curve, curve[1:]):
            if soc <= s1:
                if s1 == s0:
                    return v1
                frac = (soc - s0) / (s1 - s0)
                return v0 + frac * (v1 - v0)
        return curve[-1][1]

    def voltage(self) -> float:
        """Terminal voltage under the present load (with IR sag)."""
        ocv = self.open_circuit_voltage()
        current_a = self._rail.total_watts / max(ocv, 1e-6)
        return max(0.0, ocv - current_a * self.config.internal_resistance_ohm)

    def reading(self) -> dict:
        """A battery-sensor style reading (what the example app reports)."""
        return {
            "voltage": round(self.voltage(), 4),
            "level": round(self.level, 4),
            "drained_j": round(self.drained_joules, 3),
        }
