"""CPU sleep/wake model: wake locks, alarms and sleep-frozen timers.

Section 4.5 of the paper describes the Android power-management semantics
Pogo is built around, and Section 4.7's tail-detection trick depends on one
subtle behaviour, all of which this module reproduces:

* With no wake locks held and no ongoing activity, the CPU goes to sleep.
  After its last activity it stays awake for "typically more than a
  second" before sleeping (:attr:`CpuConfig.awake_hold_ms`).
* While asleep the CPU can only be woken by an **alarm** (or an external
  event such as incoming network data, modelled as :meth:`Cpu.wake`).
* Ordinary timers (Java's ``Thread.sleep``) are **frozen** while the CPU
  sleeps: they only continue counting down once something *else* has woken
  the CPU.  Pogo uses exactly this to piggyback on other apps' wakeups —
  see :class:`SleepFrozenTimer` and :mod:`repro.core.tailsync`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set

from ..sim.kernel import EventHandle, Kernel
from ..sim.trace import IntervalTrack, TraceRecorder


@dataclass
class CpuConfig:
    """Power and timing parameters of the CPU model.

    Defaults approximate a 2012-era handset (Galaxy Nexus class): tens of
    milliwatts asleep (the whole platform floor is accounted elsewhere),
    a couple hundred milliwatts with the application processor awake, and
    roughly a second of lingering awake time after the last activity
    ("the processor will stay awake for typically more than a second
    before going back to sleep", Section 4.7).
    """

    sleep_w: float = 0.003
    awake_w: float = 0.160
    awake_hold_ms: float = 1100.0


class Alarm:
    """Handle for a one-shot or repeating CPU alarm."""

    def __init__(self, cpu: "Cpu", interval_ms: Optional[float], callback: Callable[..., Any], args: tuple):
        self._cpu = cpu
        self._interval = interval_ms
        self._callback = callback
        self._args = args
        self._handle: Optional[EventHandle] = None
        self.cancelled = False
        self.fire_count = 0

    def _arm(self, delay: float) -> None:
        handle = self._handle
        if handle is not None and handle.fired and not handle.cancelled:
            # Recycle the fired handle's storage instead of allocating a
            # fresh event per tick; the sequence number is consumed at
            # the same point, so same-instant FIFO order is unchanged.
            self._cpu._kernel.rearm(handle, delay)
        else:
            self._handle = self._cpu._kernel.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fire_count += 1
        self._cpu.wake("alarm")  # wake() also records the activity
        if self._interval is not None and not self.cancelled:
            self._arm(self._interval)
        self._callback(*self._args)

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class SleepFrozenTimer:
    """A timer that only counts down while the CPU is awake.

    This is the simulation analogue of ``Thread.sleep`` on Android: the
    timer's deadline is suspended when the CPU sleeps and resumes when the
    CPU is woken *by some other cause*.  Firing does not itself count as
    CPU activity, so a component polling on such timers (Pogo's tail
    detector) never extends the awake window or causes wakeups of its own.
    """

    def __init__(self, cpu: "Cpu", duration_ms: float, callback: Callable[[], Any]):
        if duration_ms < 0:
            raise ValueError("timer duration must be non-negative")
        self._cpu = cpu
        self._callback = callback
        self.remaining_ms = duration_ms
        self.cancelled = False
        self.fired = False
        self._handle: Optional[EventHandle] = None
        self._resumed_at: Optional[float] = None
        cpu._frozen_timers.add(self)
        if cpu.awake:
            self._resume()

    def restart(self, duration_ms: float) -> None:
        """Re-run a *fired* timer for another ``duration_ms``.

        Polling loops (the tail detector) re-run the same timer once a
        second for the whole simulation; restarting recycles the timer
        object and its kernel handle instead of allocating both per poll.
        """
        if duration_ms < 0:
            raise ValueError("timer duration must be non-negative")
        if self.cancelled or not self.fired:
            raise ValueError("restart() requires a timer that has fired")
        self.fired = False
        self.remaining_ms = duration_ms
        self._cpu._frozen_timers.add(self)
        if self._cpu.awake:
            self._resume()

    # -- called by the Cpu on state changes ----------------------------
    def _resume(self) -> None:
        if self.cancelled or self.fired:
            return
        self._resumed_at = self._cpu._kernel.now
        handle = self._handle
        if handle is not None and handle.fired and not handle.cancelled:
            self._cpu._kernel.rearm(handle, self.remaining_ms)
        else:
            self._handle = self._cpu._kernel.schedule(self.remaining_ms, self._fire)

    def _pause(self) -> None:
        if self.cancelled or self.fired or self._handle is None:
            return
        elapsed = self._cpu._kernel.now - (self._resumed_at or 0.0)
        remaining = self.remaining_ms - elapsed
        if remaining <= 0.0:
            # The deadline landed within the awake window (possibly at
            # the very instant the CPU re-sleeps): the timer elapsed, so
            # let the pending fire event run rather than freezing it.
            return
        self.remaining_ms = remaining
        self._handle.cancel()
        self._handle = None
        self._resumed_at = None

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fired = True
        self._cpu._frozen_timers.discard(self)
        self._callback()

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._cpu._frozen_timers.discard(self)


class Cpu:
    """The application processor: awake/asleep with wake locks and alarms."""

    def __init__(
        self,
        kernel: Kernel,
        rail,
        config: Optional[CpuConfig] = None,
        name: str = "cpu",
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self._kernel = kernel
        self._rail = rail
        self.config = config or CpuConfig()
        self.name = name
        self.trace = trace
        self.awake = True
        self._wake_locks: Dict[str, int] = {}
        self._last_activity = kernel.now
        self._sleep_check: Optional[EventHandle] = None
        self._frozen_timers: Set[SleepFrozenTimer] = set()
        self.on_wake: List[Callable[[str], None]] = []
        self.on_sleep: List[Callable[[], None]] = []
        self.awake_track = IntervalTrack("cpu", kernel.read_now)
        self.wake_count = 0
        self.awake_track.open(kernel.now, label="boot")
        self._rail.set_draw(self.name, self.config.awake_w)
        self.note_activity()

    # ------------------------------------------------------------------
    # Wake locks
    # ------------------------------------------------------------------
    def acquire_wake_lock(self, tag: str) -> None:
        """Acquire (or nest) a wake lock; wakes the CPU if asleep."""
        self.wake(f"wakelock:{tag}")
        self._wake_locks[tag] = self._wake_locks.get(tag, 0) + 1
        self.note_activity()

    def release_wake_lock(self, tag: str) -> None:
        """Release one hold on ``tag``.  Unknown tags raise ``KeyError``."""
        count = self._wake_locks[tag]
        if count <= 1:
            del self._wake_locks[tag]
        else:
            self._wake_locks[tag] = count - 1
        self.note_activity()

    @property
    def wake_locks_held(self) -> int:
        return sum(self._wake_locks.values())

    def holds_wake_lock(self, tag: str) -> bool:
        return tag in self._wake_locks

    # ------------------------------------------------------------------
    # Sleep / wake
    # ------------------------------------------------------------------
    def wake(self, reason: str = "external") -> bool:
        """Wake the CPU.  Returns ``True`` if it was asleep."""
        self.note_activity()
        if self.awake:
            return False
        self.awake = True
        self.wake_count += 1
        self._rail.set_draw(self.name, self.config.awake_w)
        self.awake_track.open(label=reason)
        if self.trace is not None:
            self.trace.record(self.name, "wake", reason=reason)
        for timer in list(self._frozen_timers):
            timer._resume()
        for listener in list(self.on_wake):
            listener(reason)
        return True

    def note_activity(self) -> None:
        """Record CPU activity; postpones sleep by ``awake_hold_ms``."""
        self._last_activity = self._kernel.now
        check = self._sleep_check
        if check is not None:
            if not (check.fired or check.cancelled):
                return
            if check.fired and not check.cancelled:
                # The sleep-check handle is the CPU's permanent timer
                # slot: recycle it instead of allocating one per wakeup.
                self._kernel.rearm(check, self.config.awake_hold_ms)
                return
        self._sleep_check = self._kernel.schedule(
            self.config.awake_hold_ms, self._maybe_sleep
        )

    def _maybe_sleep(self) -> None:
        check = self._sleep_check  # the handle that just fired
        if not self.awake:
            return
        if self._wake_locks:
            # Re-check when the hold would expire after the lock is gone.
            self._kernel.rearm(check, self.config.awake_hold_ms)
            return
        idle_for = self._kernel.now - self._last_activity
        # Millisecond tolerance and a floor on the re-arm delay: at large
        # simulated times the float residue of (hold - idle_for) can be
        # smaller than the clock's representable step, and rescheduling
        # by it would freeze simulated time (an infinite same-instant
        # loop).  Nothing in the model cares about sub-ms sleep timing.
        if idle_for + 1.0 < self.config.awake_hold_ms:
            self._kernel.rearm(
                check, max(self.config.awake_hold_ms - idle_for, 1.0)
            )
            return
        self._sleep_now()

    def _sleep_now(self) -> None:
        self.awake = False
        self._rail.set_draw(self.name, self.config.sleep_w)
        self.awake_track.close()
        if self.trace is not None:
            self.trace.record(self.name, "sleep")
        for timer in list(self._frozen_timers):
            timer._pause()
        for listener in list(self.on_sleep):
            listener()

    # ------------------------------------------------------------------
    # Alarms and timers
    # ------------------------------------------------------------------
    def set_alarm(self, delay_ms: float, callback: Callable[..., Any], *args: Any) -> Alarm:
        """One-shot alarm: wakes the CPU at fire time, then runs callback."""
        alarm = Alarm(self, None, callback, args)
        alarm._arm(delay_ms)
        return alarm

    def set_repeating_alarm(
        self, interval_ms: float, callback: Callable[..., Any], *args: Any, initial_delay_ms: Optional[float] = None
    ) -> Alarm:
        """Fixed-rate repeating alarm (like Android's ``setRepeating``)."""
        if interval_ms <= 0:
            raise ValueError("alarm interval must be positive")
        alarm = Alarm(self, interval_ms, callback, args)
        alarm._arm(interval_ms if initial_delay_ms is None else initial_delay_ms)
        return alarm

    def sleep_frozen_timer(self, duration_ms: float, callback: Callable[[], Any]) -> SleepFrozenTimer:
        """Timer with ``Thread.sleep`` semantics (frozen during CPU sleep)."""
        return SleepFrozenTimer(self, duration_ms, callback)
