"""Power accounting: the simulated battery rail and power meter.

The paper measured power by inserting a 0.33 Ω shunt in the battery line of
a Samsung Galaxy Nexus and sampling the voltage drop with an NI USB-6009
ADC (Section 5.2).  We reproduce the *measurement surface* rather than the
instrument: every hardware component (CPU, 3G modem, Wi-Fi) registers its
current draw with a :class:`PowerRail`, which

* keeps the exact piecewise-constant power function (breakpoints),
* integrates total energy in joules as the simulation advances, and
* optionally feeds a :class:`PowerMeter` that samples at a fixed rate like
  the ADC did, producing the trace plotted in Figure 3.

Units: power in **watts**, time in **milliseconds**, energy in **joules**.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.kernel import EventHandle, Kernel
from ..sim.trace import TimeSeries


class PowerRail:
    """Aggregates per-component power draw and integrates energy."""

    def __init__(self, kernel: Kernel, track_history: bool = False) -> None:
        self._kernel = kernel
        self._draws: Dict[str, float] = {}
        self._total_w = 0.0
        self._energy_j = 0.0
        self._last_change = kernel.now
        #: When true, every draw change appends a breakpoint to
        #: :attr:`history`.  Disabled by default: long simulations (the
        #: 24-day localization run) would otherwise accumulate millions of
        #: breakpoints nobody reads.
        self.track_history = track_history
        self.history = TimeSeries("rail_watts")
        if track_history:
            self.history.append(kernel.now, 0.0)

    def _settle(self) -> None:
        """Integrate energy for the interval since the last change."""
        now = self._kernel.now
        if now > self._last_change:
            self._energy_j += self._total_w * (now - self._last_change) / 1000.0
            self._last_change = now

    def set_draw(self, component: str, watts: float) -> None:
        """Set a component's instantaneous draw (overwrites previous)."""
        if watts < 0:
            raise ValueError(f"negative power draw for {component!r}: {watts}")
        self._settle()
        previous = self._draws.get(component, 0.0)
        if watts == previous:
            return
        self._draws[component] = watts
        self._total_w += watts - previous
        # Guard against float drift accumulating over long runs.
        if self._total_w < 1e-12:
            self._total_w = sum(self._draws.values())
        if self.track_history:
            # Two points per change draw the step edges exactly.
            self.history.append(self._kernel.now, self._total_w - (watts - previous))
            self.history.append(self._kernel.now, self._total_w)

    def draw_of(self, component: str) -> float:
        """Current draw of one component (0.0 if never registered)."""
        return self._draws.get(component, 0.0)

    @property
    def total_watts(self) -> float:
        """Instantaneous total draw on the rail."""
        return self._total_w

    @property
    def energy_joules(self) -> float:
        """Total energy drawn since construction, up to the current time."""
        self._settle()
        return self._energy_j

    def reset_energy(self) -> float:
        """Zero the energy counter; returns the value before the reset."""
        self._settle()
        energy, self._energy_j = self._energy_j, 0.0
        return energy


class PowerMeter:
    """Fixed-rate sampler of the rail, like the paper's shunt + ADC rig.

    The exact energy integral is always available from the rail itself;
    the meter exists to produce Figure 3 style traces and to let tests
    check that sampled and exact energies agree.
    """

    def __init__(self, kernel: Kernel, rail: PowerRail, interval_ms: float = 10.0) -> None:
        if interval_ms <= 0:
            raise ValueError("sampling interval must be positive")
        self._kernel = kernel
        self._rail = rail
        self.interval_ms = interval_ms
        self.samples = TimeSeries("meter_watts")
        self._pending: Optional[EventHandle] = None
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._sample()

    def stop(self) -> None:
        self.running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _sample(self) -> None:
        if not self.running:
            return
        self.samples.append(self._kernel.now, self._rail.total_watts)
        self._pending = self._kernel.schedule(self.interval_ms, self._sample)

    def energy_joules(self) -> float:
        """Energy estimate from the sampled trace (trapezoidal rule)."""
        return self.samples.integrate() / 1000.0
