"""Simulated phone hardware: CPU, battery, radios, power, background apps."""

from .battery import Battery, BatteryConfig
from .cpu import Alarm, Cpu, CpuConfig, SleepFrozenTimer
from .power import PowerMeter, PowerRail
from .radio import (
    CARRIERS,
    DCH,
    FACH,
    IDLE,
    KPN,
    OFF,
    RAMP,
    T_MOBILE,
    VODAFONE,
    CarrierProfile,
    Modem,
    RadioUnavailable,
)
from .wifi import WifiConfig, WifiInterface, WifiUnavailable
from .apps import ChattyApp, ChattyAppConfig, EmailApp, EmailConfig
from .phone import INTERFACE_CELLULAR, INTERFACE_WIFI, Phone, PhoneOffline

__all__ = [
    "Battery",
    "BatteryConfig",
    "Alarm",
    "Cpu",
    "CpuConfig",
    "SleepFrozenTimer",
    "PowerMeter",
    "PowerRail",
    "CARRIERS",
    "DCH",
    "FACH",
    "IDLE",
    "KPN",
    "OFF",
    "RAMP",
    "T_MOBILE",
    "VODAFONE",
    "CarrierProfile",
    "Modem",
    "RadioUnavailable",
    "WifiConfig",
    "WifiInterface",
    "WifiUnavailable",
    "ChattyApp",
    "ChattyAppConfig",
    "EmailApp",
    "EmailConfig",
    "INTERFACE_CELLULAR",
    "INTERFACE_WIFI",
    "Phone",
    "PhoneOffline",
]
