"""Background applications that generate the radio traffic Pogo rides on.

Section 4.7: "there are typically many applications already present on a
mobile phone that periodically trigger a 3G tail.  Examples are background
processes that check for e-mail, instant messaging applications, and
turn-based multi-player games."  The power experiment (Section 5.2) used a
single e-mail account checked at 5-minute intervals.

Each app wakes the CPU with an alarm (or reacts to a push), holds a wake
lock for the duration of its exchange, and transfers data over the phone's
active interface — which drags the modem through a ramp-up and a tail.
Pogo's tail detector observes the byte counters move and flushes its own
buffer into the same radio session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.kernel import MINUTE, Kernel
from ..sim.trace import IntervalTrack


@dataclass
class EmailConfig:
    """An e-mail poller (IMAP-style): small request, moderate response."""

    interval_ms: float = 5 * MINUTE
    tx_bytes: int = 2_048
    rx_bytes: int = 20_480
    #: A poll is a multi-round-trip dialogue; its radio-active time is
    #: latency-bound, not bandwidth-bound.
    duration_hint_ms: float = 800.0
    #: Local processing after the exchange (parsing, notification).
    processing_ms: float = 300.0


class EmailApp:
    """Checks for new mail on a repeating alarm (the Table 3 workload)."""

    def __init__(self, phone, config: Optional[EmailConfig] = None, name: str = "email") -> None:
        self.phone = phone
        self.config = config or EmailConfig()
        self.name = name
        self.check_count = 0
        self.failed_checks = 0
        self.activity_track = IntervalTrack(name, phone.kernel.read_now)
        self._alarm = None
        self._running = False

    def start(self, initial_delay_ms: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        self._alarm = self.phone.cpu.set_repeating_alarm(
            self.config.interval_ms, self._check, initial_delay_ms=initial_delay_ms
        )

    def stop(self) -> None:
        self._running = False
        if self._alarm is not None:
            self._alarm.cancel()
            self._alarm = None

    def _check(self) -> None:
        self.phone.cpu.acquire_wake_lock(self.name)
        self.activity_track.open(label="check")
        try:
            self.phone.transfer(
                tx_bytes=self.config.tx_bytes,
                rx_bytes=self.config.rx_bytes,
                duration_hint_ms=self.config.duration_hint_ms,
                on_complete=self._exchange_done,
                label=f"{self.name}:check",
            )
        except Exception:
            # No connectivity: give up until the next interval.
            self.failed_checks += 1
            self.activity_track.close()
            self.phone.cpu.release_wake_lock(self.name)

    def _exchange_done(self, success: bool) -> None:
        self.check_count += 1 if success else 0
        if not success:
            self.failed_checks += 1
        # Brief local processing, then release the lock.
        self.phone.kernel.schedule(self.config.processing_ms, self._processing_done)

    def _processing_done(self) -> None:
        self.activity_track.close()
        self.phone.cpu.note_activity()
        self.phone.cpu.release_wake_lock(self.name)


@dataclass
class ChattyAppConfig:
    """A randomized background app (IM client, turn-based game)."""

    mean_interval_ms: float = 12 * MINUTE
    min_interval_ms: float = 30_000.0
    tx_bytes: int = 512
    rx_bytes: int = 2_048
    duration_hint_ms: float = 400.0


class ChattyApp:
    """Randomly-timed background traffic, for richer tail-sync scenarios."""

    def __init__(self, phone, rng, config: Optional[ChattyAppConfig] = None, name: str = "im") -> None:
        self.phone = phone
        self.config = config or ChattyAppConfig()
        self.name = name
        self._rng = rng
        self.exchange_count = 0
        self.activity_track = IntervalTrack(name, phone.kernel.read_now)
        self._alarm = None
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._arm_next()

    def stop(self) -> None:
        self._running = False
        if self._alarm is not None:
            self._alarm.cancel()
            self._alarm = None

    def _arm_next(self) -> None:
        if not self._running:
            return
        delay = max(self.config.min_interval_ms, self._rng.expovariate(1.0 / self.config.mean_interval_ms))
        self._alarm = self.phone.cpu.set_alarm(delay, self._exchange)

    def _exchange(self) -> None:
        self.phone.cpu.acquire_wake_lock(self.name)
        self.activity_track.open(label="exchange")
        try:
            self.phone.transfer(
                tx_bytes=self.config.tx_bytes,
                rx_bytes=self.config.rx_bytes,
                duration_hint_ms=self.config.duration_hint_ms,
                on_complete=self._done,
                label=f"{self.name}:exchange",
            )
        except Exception:
            self.activity_track.close()
            self.phone.cpu.release_wake_lock(self.name)
            self._arm_next()

    def _done(self, success: bool) -> None:
        if success:
            self.exchange_count += 1
        self.activity_track.close()
        self.phone.cpu.release_wake_lock(self.name)
        self._arm_next()
